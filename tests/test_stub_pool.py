"""StubPool: keyed, TTL'd client-stub caching in the binding layer.

The contract under test: a pool hit skips handle validation and stub
construction entirely; TTL expiry forces a liveness re-validation
through the normal bind; ``refresh_members()`` and bind faults
invalidate; identity-stamped stubs (``headers_provider``) bypass the
pool; destroyed instances drop their pooled bindings; and the dynamic
WSDL path pays its fetch+parse once per TTL window.
"""

from __future__ import annotations

import pytest

from repro.core.semantic import PerformanceResult
from repro.experiments.common import build_synthetic_grid
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper
from repro.ogsi.container import GridEnvironment, StubPool
from repro.ogsi.dispatch import client_id_headers
from repro.ogsi.gsh import GshError

from tests.test_dispatch import deploy_echo


@pytest.fixture()
def env_echo():
    env = GridEnvironment()
    container = env.create_container("c:1")
    service, gsh = deploy_echo(container)
    return env, container, service, gsh


class TestStubPoolUnit:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            StubPool(ttl=0)
        with pytest.raises(ValueError):
            StubPool(capacity=0)

    def test_ttl_expiry_counts_and_misses(self):
        pool = StubPool(ttl=0.01)
        pool.put(("u", "P"), object())
        assert pool.get(("u", "P")) is not None
        import time

        time.sleep(0.03)
        assert pool.get(("u", "P")) is None
        stats = pool.stats()
        assert stats["expirations"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_capacity_evicts_lru(self):
        pool = StubPool(capacity=2)
        pool.put(("a", "P"), 1)
        pool.put(("b", "P"), 2)
        assert pool.get(("a", "P")) == 1  # refresh a's recency
        pool.put(("c", "P"), 3)  # evicts b
        assert pool.get(("b", "P")) is None
        assert pool.get(("a", "P")) == 1
        assert pool.stats()["evictions"] == 1

    def test_invalidate_drops_every_porttype_for_handle(self):
        pool = StubPool()
        pool.put(("u", "P"), 1)
        pool.put(("u", "Q"), 2)
        pool.put(("v", "P"), 3)
        assert pool.invalidate("u") == 2
        assert len(pool) == 1
        assert pool.stats()["invalidations"] == 2


class TestPooledBind:
    def test_hit_returns_same_stub(self, env_echo):
        env, container, service, gsh = env_echo
        first = env.pooled_stub_for_handle(gsh, service.porttype)
        second = env.pooled_stub_for_handle(gsh, service.porttype)
        assert second is first
        assert env.stub_pool.stats()["hits"] == 1
        assert first.ping("x") == "x"

    def test_headers_provider_bypasses_pool(self, env_echo):
        env, container, service, gsh = env_echo
        stamped = env.pooled_stub_for_handle(
            gsh, service.porttype, headers_provider=client_id_headers("alice")
        )
        assert stamped.ping("x") == "x"
        assert len(env.stub_pool) == 0

    def test_bind_fault_invalidates_handle(self, env_echo):
        env, container, service, gsh = env_echo
        env.pooled_stub_for_handle(gsh, service.porttype)
        assert len(env.stub_pool) == 1
        before = env.stub_pool.stats()["invalidations"]
        with pytest.raises(GshError):
            env.pooled_stub_for_handle(str(gsh) + "dead", service.porttype)
        assert env.stub_pool.stats()["invalidations"] == before
        # the live handle's entry survives an unrelated handle's fault
        assert len(env.stub_pool) == 1

    def test_expired_entry_revalidates_liveness(self, env_echo):
        env, container, service, gsh = env_echo
        env.stub_pool.ttl = 0.01
        stale = env.pooled_stub_for_handle(gsh, service.porttype)
        container.remove_service(gsh)
        import time

        time.sleep(0.03)
        # a fresh bind now sees the dead service instead of answering
        # from a stale pooled stub
        with pytest.raises(GshError):
            env.pooled_stub_for_handle(gsh, service.porttype)
        assert stale is not None


def _rows(metric: str, count: int) -> list[PerformanceResult]:
    return [
        PerformanceResult(metric, "/R", "s", float(i), float(i + 1), float(i))
        for i in range(count)
    ]


class TestFederationStubReuse:
    def test_repeat_queries_hit_the_pool(self):
        a = InMemoryWrapper(
            "A", [InMemoryExecution("0", {"numprocs": "2"}, _rows("m", 5))]
        )
        grid = build_synthetic_grid({"A": a})
        engine = grid.deploy_federation()
        engine.execute("SELECT m WHERE numprocs = 2")
        hits_before = grid.environment.stub_pool.stats()["hits"]
        engine.plan_cache.clear()
        engine.refresh_members()  # wholesale invalidation...
        assert len(grid.environment.stub_pool) == 0
        engine.execute("SELECT m WHERE numprocs = 2")
        engine.plan_cache.clear()
        engine.execute("SELECT m WHERE numprocs = 2")
        # ...and the rebuilt entries serve the second pass from the pool
        assert grid.environment.stub_pool.stats()["hits"] > hits_before

    def test_destroyed_binding_drops_pooled_stub(self):
        a = InMemoryWrapper(
            "A", [InMemoryExecution("0", {"numprocs": "2"}, _rows("m", 5))]
        )
        grid = build_synthetic_grid({"A": a})
        binding = grid.client.bind(
            next(
                service
                for org in grid.client.discover_organizations("%")
                for service in org.services()
            )
        )
        url = binding.gsh if isinstance(binding.gsh, str) else str(binding.gsh)
        before = grid.environment.stub_pool.stats()["invalidations"]
        binding.destroy()
        assert grid.environment.stub_pool.stats()["invalidations"] > before
        assert grid.environment.stub_pool.invalidate(url) == 0  # already gone
