"""Incremental materialized federated views.

A :class:`MaterializedView` is a standing federated query whose answer
the engine keeps current under ``data_updated`` traffic instead of
recomputing it per query.  The maintenance model is semi-naive delta
evaluation over *partitions* — one partition per ``(app, exec_id)`` the
view reads:

* **aggregate-merge** views keep each partition's combinable
  group -> metric -> :class:`~repro.fedquery.merge.Accumulator`
  snapshot; a data-update refetches only the notifying execution's
  snapshot (min/max are not invertible, so deltas replace a partition
  rather than subtract from a global state) and the output re-merges
  all snapshots.  ``mean`` folds as the (total, count) pair.
* **raw-splice** views keep each partition's projected rows; the output
  is the canonical ordering of their concatenation.
* **topk-bounded** (ORDER BY/LIMIT) views keep only each partition's
  own top-N candidate set: under the total row order the global top-N
  is always a subset of the union of per-partition top-Ns.
* **recompute** shapes (a non-combinable aggregate, should the grammar
  ever grow one) are flagged by :func:`~repro.fedquery.planner.view_shape`
  and fall back to recomputing the view on every update.

Consistency is tracked per view with an *(epoch, version)* pair:
``version`` advances with every applied change; ``epoch`` advances when
the view was rebuilt from scratch (an unattributable update, or any
maintenance failure).  Emitted :class:`ViewDelta` messages carry both,
so a subscriber applying a delta against a stale epoch or version can
detect the gap and refresh consistently instead of silently diverging.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass

from repro.fedquery.ast import Query, QueryError
from repro.fedquery.merge import ResultRow, StreamingMerger, TaskContext, order_rows
from repro.fedquery.parser import parse_query
from repro.fedquery.planner import MemberPlan, ViewShape, view_shape
from repro.fedquery.pushdown import filter_foci

#: every counter ``ViewMaintainer.stats()`` reports (plus "views")
VIEW_STAT_NAMES = (
    "views",
    "created",
    "dropped",
    "deltasApplied",
    "deltaRowsFetched",
    "deltaBytesFetched",
    "scopedRecomputes",
    "epochRefreshes",
    "noopUpdates",
    "pushedDeltas",
    "maintenanceErrors",
)


def empty_view_stats() -> dict[str, int]:
    return {name: 0 for name in VIEW_STAT_NAMES}


@dataclass(frozen=True)
class ViewDelta:
    """One versioned change to a view, in wire form.

    ``kind`` is ``delta`` (apply removed/added to the current rows),
    ``replace`` (added *is* the new row set — LIMIT views, where a
    one-row change can shift the whole window), or ``refresh`` (a new
    epoch: adopt added unconditionally).
    """

    view_id: str
    epoch: int
    from_version: int
    to_version: int
    kind: str
    removed: tuple[str, ...] = ()
    added: tuple[str, ...] = ()

    def encode(self) -> str:
        """One header line, then one ``-``/``+`` line per packed row."""
        lines = [
            f"{self.view_id}|{self.epoch}|{self.from_version}|"
            f"{self.to_version}|{self.kind}"
        ]
        lines.extend("-" + row for row in self.removed)
        lines.extend("+" + row for row in self.added)
        return "\n".join(lines)

    @staticmethod
    def decode(message: str) -> "ViewDelta":
        lines = message.split("\n")
        head = lines[0].split("|", 4)
        if len(head) != 5:
            raise QueryError(f"bad view delta header {lines[0]!r}")
        return ViewDelta(
            view_id=head[0],
            epoch=int(head[1]),
            from_version=int(head[2]),
            to_version=int(head[3]),
            kind=head[4],
            removed=tuple(l[1:] for l in lines[1:] if l.startswith("-")),
            added=tuple(l[1:] for l in lines[1:] if l.startswith("+")),
        )


@dataclass
class _Partition:
    """One execution's contribution to a view."""

    groups: dict | None = None  # aggregate-merge: group -> metric -> Accumulator
    rows: list[ResultRow] | None = None  # raw shapes (bounded for top-k)


class MaterializedView:
    """One standing query plus its maintained state."""

    def __init__(self, view_id: str, text: str, query: Query, shape: ViewShape):
        self.view_id = view_id
        self.text = text
        self.query = query
        self.shape = shape
        self.epoch = 1
        self.version = 1
        self.rows: list[ResultRow] = []
        #: (app, exec_id) -> _Partition
        self.partitions: dict[tuple[str, str], _Partition] = {}
        #: member apps the view depends on (contributing *or* skipped on
        #: a stats proof — a skip must be re-evaluated after an update)
        self.deps: set[str] = set()

    def packed_rows(self) -> list[str]:
        return [row.pack() for row in self.rows]

    def describe(self) -> str:
        return (
            f"{self.view_id}|{self.shape.kind}|epoch={self.epoch}"
            f"|version={self.version}|rows={len(self.rows)}"
        )


def _multiset_diff(
    old: list[str], new: list[str]
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    old_counts, new_counts = Counter(old), Counter(new)
    removed: list[str] = []
    for row, count in sorted((old_counts - new_counts).items()):
        removed.extend([row] * count)
    added: list[str] = []
    for row, count in sorted((new_counts - old_counts).items()):
        added.extend([row] * count)
    return tuple(removed), tuple(added)


class ViewMaintainer:
    """Owns every materialized view of one :class:`FederationEngine`.

    The engine's coherence sink routes each ``data_updated`` here (after
    releasing its own lock): precisely attributed updates refetch one
    partition, member-scoped ones recompute that member's partitions,
    unattributable ones rebuild every view under a new epoch.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self._views: dict[str, MaterializedView] = {}
        self._counter = 0
        self._lock = threading.RLock()
        #: callbacks fired with (view, delta) for every emitted change
        self._listeners: list = []
        self.counters = {name: 0 for name in VIEW_STAT_NAMES if name != "views"}

    # ------------------------------------------------------------ registry
    def add_listener(self, callback) -> None:
        self._listeners.append(callback)

    def create_view(self, query: str | Query) -> MaterializedView:
        text = query if isinstance(query, str) else query.fingerprint()
        parsed = parse_query(query) if isinstance(query, str) else query.validate()
        shape = view_shape(parsed)
        with self._lock:
            self._counter += 1
            view = MaterializedView(f"view-{self._counter}", text, parsed, shape)
            view.rows = self._rebuild(view)
            self._views[view.view_id] = view
            self.counters["created"] += 1
        return view

    def drop_view(self, view_id: str) -> bool:
        with self._lock:
            dropped = self._views.pop(view_id, None)
            if dropped is not None:
                self.counters["dropped"] += 1
            return dropped is not None

    def get_view(self, view_id: str) -> MaterializedView:
        with self._lock:
            view = self._views.get(view_id)
        if view is None:
            raise QueryError(f"unknown view {view_id!r}")
        return view

    def views(self) -> list[MaterializedView]:
        with self._lock:
            return list(self._views.values())

    def stats(self) -> dict[str, int]:
        with self._lock:
            out = dict(self.counters)
            out["views"] = len(self._views)
        return out

    # --------------------------------------------------------- maintenance
    def on_update(self, app: str, exec_id: str) -> None:
        """Precisely attributed update: refetch one partition per view."""
        with self._lock:
            for view in self._views.values():
                if app not in view.deps:
                    continue
                try:
                    if view.shape.combinable:
                        self._apply_delta(view, app, exec_id)
                    else:
                        self._recompute(view)
                except Exception:
                    self.counters["maintenanceErrors"] += 1
                    self._refresh_view(view)

    def on_member_update(self, app: str) -> None:
        """Member-scoped update: recompute that member's partitions."""
        with self._lock:
            for view in self._views.values():
                if app not in view.deps:
                    continue
                try:
                    self._recompute_member(view, app)
                except Exception:
                    self.counters["maintenanceErrors"] += 1
                    self._refresh_view(view)

    def on_full_refresh(self) -> None:
        """Unattributable update: rebuild every view under a new epoch."""
        with self._lock:
            for view in self._views.values():
                self._refresh_view(view)

    # ----------------------------------------------------------- internals
    # Maintenance plans always pass allow_tier0=False: a tier-0 member
    # has no executions to partition by, and view deltas *replace*
    # per-(app, exec) partition snapshots — it must fetch real data.
    def _apply_delta(self, view: MaterializedView, app: str, exec_id: str) -> None:
        """Semi-naive step: replace exactly the updated partition."""
        plan = self.engine._plan(view.query, allow_tier0=False)
        view.deps = self._plan_deps(plan)
        member = next((m for m in plan.members if m.app == app), None)
        if member is None:
            # fresh statistics (or the re-plan) prove the member out of
            # the view: every partition it contributed goes with it
            for key in [k for k in view.partitions if k[0] == app]:
                del view.partitions[key]
        else:
            binding = self.engine.members()[app]
            executions = self.engine._select_executions(
                member, binding, self._scratch_stats()
            )
            target = None
            for execution in executions:
                if self.engine._execution_id(execution) == exec_id:
                    target = execution
                    break
            if target is None:
                # the execution no longer matches the view's selector
                view.partitions.pop((app, exec_id), None)
            else:
                view.partitions[(app, exec_id)] = self._fetch_partition(
                    view, member, target
                )
        self.counters["deltasApplied"] += 1
        self._publish(view, self._fold(view))

    def _recompute_member(self, view: MaterializedView, app: str) -> None:
        """Scoped recompute: rebuild only *app*'s partitions."""
        plan = self.engine._plan(view.query, allow_tier0=False)
        view.deps = self._plan_deps(plan)
        for key in [k for k in view.partitions if k[0] == app]:
            del view.partitions[key]
        member = next((m for m in plan.members if m.app == app), None)
        if member is not None:
            self._fetch_member(view, member)
        self.counters["scopedRecomputes"] += 1
        self._publish(view, self._fold(view))

    def _recompute(self, view: MaterializedView) -> None:
        """Non-combinable fallback: full rebuild within the same epoch."""
        rows = self._rebuild(view)
        self.counters["scopedRecomputes"] += 1
        self._publish(view, rows, replace=True)

    def _refresh_view(self, view: MaterializedView) -> None:
        """Rebuild from scratch under a new epoch and push a refresh."""
        try:
            rows = self._rebuild(view)
        except Exception:
            self.counters["maintenanceErrors"] += 1
            return
        view.rows = rows
        view.epoch += 1
        view.version += 1
        self.counters["epochRefreshes"] += 1
        self._emit(
            view,
            ViewDelta(
                view_id=view.view_id,
                epoch=view.epoch,
                from_version=view.version - 1,
                to_version=view.version,
                kind="refresh",
                added=tuple(view.packed_rows()),
            ),
        )

    def _rebuild(self, view: MaterializedView) -> list[ResultRow]:
        """Full collection: fetch every member's partitions, then fold."""
        plan = self.engine._plan(view.query, allow_tier0=False)
        view.partitions = {}
        view.deps = self._plan_deps(plan)
        for member in plan.members:
            self._fetch_member(view, member)
        return self._fold(view)

    def _plan_deps(self, plan) -> set[str]:
        return {m.app for m in plan.members} | {s.app for s in plan.skipped}

    def _scratch_stats(self) -> dict[str, int]:
        return {"calls": 0, "executions": 0, "skipped_metrics": 0}

    def _fetch_member(self, view: MaterializedView, member: MemberPlan) -> None:
        binding = self.engine.members()[member.app]
        executions = self.engine._select_executions(
            member, binding, self._scratch_stats()
        )
        for execution in executions:
            exec_id = self.engine._execution_id(execution)
            view.partitions[(member.app, exec_id)] = self._fetch_partition(
                view, member, execution
            )

    def _member_subqueries(self, member: MemberPlan, execution) -> list:
        """The engine's per-execution metric filter (see _collect_tasks),
        probing the *target* execution — a delta fetch is per-execution,
        so the heterogeneous-member caveat does not apply."""
        if member.cost is not None and not member.cost.stats_missing:
            return list(member.subqueries)
        metrics = self.engine._member_metrics(member.app, execution)
        return [sq for sq in member.subqueries if sq.metric in metrics]

    def _fetch_partition(
        self, view: MaterializedView, member: MemberPlan, execution
    ) -> _Partition:
        """One execution's contribution, through a private merger.

        Raw sub-queries drain through ``stream_pr`` — the stats-driven
        chunked-cursor path — so a large partition never materializes
        an unbounded SOAP array just to maintain a view.
        """
        query = view.query
        exec_id = self.engine._execution_id(execution)
        info = dict(execution.info()) if member.needs_info else None
        ctx = TaskContext(app=member.app, exec_id=exec_id, info=info)
        merger = StreamingMerger(query)
        foci = filter_foci(execution.foci(), member.foci)
        fetched_rows = fetched_bytes = 0
        if foci:
            for sub in self._member_subqueries(member, execution):
                if sub.mode == "aggregate":
                    records = execution.get_pr_agg(
                        sub.metric,
                        foci,
                        sub.start,
                        sub.end,
                        sub.result_type,
                        min_value=sub.min_value,
                        max_value=sub.max_value,
                        group_by="focus" if sub.group_by_focus else "",
                    )
                    fetched_rows += len(records)
                    fetched_bytes += sum(len(r.pack()) for r in records)
                    merger.absorb_aggregates(ctx, sub.metric, records)
                else:
                    results = []
                    for result in execution.stream_pr(
                        sub.metric, foci, sub.start, sub.end, sub.result_type
                    ):
                        fetched_rows += 1
                        fetched_bytes += len(result.pack())
                        results.append(result)
                    merger.absorb_results(ctx, sub.metric, results)
        self.counters["deltaRowsFetched"] += fetched_rows
        self.counters["deltaBytesFetched"] += fetched_bytes
        if query.is_aggregate:
            return _Partition(groups=merger.group_accumulators())
        rows = merger.raw_rows()
        if view.shape.kind == "topk-bounded":
            # the partition's own top-N is a sufficient candidate set
            rows = order_rows(rows, query)
        return _Partition(rows=rows)

    def _fold(self, view: MaterializedView) -> list[ResultRow]:
        """Re-merge every partition into the view's output rows."""
        query = view.query
        if query.is_aggregate:
            merger = StreamingMerger(query)
            for partition in view.partitions.values():
                if partition.groups:
                    merger.absorb_groups(partition.groups)
            # the complete-group rule applies to the *merged* groups, so
            # a group partially present across partitions behaves exactly
            # as in a from-scratch execution
            return order_rows(merger.rows(), query)
        rows: list[ResultRow] = []
        for partition in view.partitions.values():
            if partition.rows:
                rows.extend(partition.rows)
        return order_rows(rows, query)

    def _publish(
        self, view: MaterializedView, rows: list[ResultRow], replace: bool = False
    ) -> None:
        """Adopt *rows*; emit a versioned delta if anything changed."""
        old_packed = view.packed_rows()
        view.rows = rows
        new_packed = view.packed_rows()
        if new_packed == old_packed:
            self.counters["noopUpdates"] += 1
            return
        from_version = view.version
        view.version += 1
        if replace or view.query.limit is not None:
            # a LIMIT window can shift wholesale; ship the new rows
            delta = ViewDelta(
                view_id=view.view_id,
                epoch=view.epoch,
                from_version=from_version,
                to_version=view.version,
                kind="replace",
                added=tuple(new_packed),
            )
        else:
            removed, added = _multiset_diff(old_packed, new_packed)
            delta = ViewDelta(
                view_id=view.view_id,
                epoch=view.epoch,
                from_version=from_version,
                to_version=view.version,
                kind="delta",
                removed=removed,
                added=added,
            )
        self._emit(view, delta)

    def _emit(self, view: MaterializedView, delta: ViewDelta) -> None:
        self.counters["pushedDeltas"] += 1
        for listener in list(self._listeners):
            try:
                listener(view, delta)
            except Exception:
                self.counters["maintenanceErrors"] += 1
