"""RPC call / response documents (RPC/encoded style).

A request body entry is ``<{service-ns}opName>`` containing one encoded
element per parameter, in order.  A response body entry is
``<{service-ns}opNameResponse>`` containing a single ``<return>`` element
(or nothing for void), or a SOAP fault.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soap.encoding import decode_value, encode_value
from repro.soap.envelope import SoapMessageError, build_envelope, parse_envelope
from repro.soap.faults import SoapFault
from repro.xmlkit import Element, QName


@dataclass
class RpcRequest:
    """A decoded RPC invocation."""

    namespace: str
    operation: str
    params: list[object]
    headers: list[Element]


@dataclass
class RpcResponse:
    """A decoded RPC result (``value`` is None for void operations)."""

    namespace: str
    operation: str
    value: object
    is_void: bool


def encode_request(
    namespace: str,
    operation: str,
    params: list[object],
    param_names: list[str] | None = None,
    headers: list[Element] | None = None,
) -> bytes:
    """Encode a call into envelope bytes."""
    names = param_names or [f"arg{i}" for i in range(len(params))]
    if len(names) != len(params):
        raise ValueError(f"{operation}: {len(params)} params but {len(names)} names")
    entry = Element(QName(namespace, operation))
    entry.declare("tns", namespace)
    for name, value in zip(names, params):
        entry.children.append(encode_value(name, value))
    return build_envelope(entry, headers=headers).to_bytes()


def decode_request(data: bytes) -> RpcRequest:
    """Decode envelope bytes into an :class:`RpcRequest`."""
    env = parse_envelope(data)
    entry = env.first_body_entry()
    if SoapFault.is_fault(entry):
        raise SoapFault.from_element(entry)
    params = [decode_value(child) for child in entry.iter_elements()]
    return RpcRequest(
        namespace=entry.tag.namespace,
        operation=entry.tag.local,
        params=params,
        headers=env.headers,
    )


def encode_response(
    namespace: str,
    operation: str,
    value: object,
    *,
    is_void: bool = False,
    headers: list[Element] | None = None,
) -> bytes:
    """Encode a successful result into envelope bytes."""
    entry = Element(QName(namespace, operation + "Response"))
    entry.declare("tns", namespace)
    if not is_void:
        entry.children.append(encode_value("return", value))
    return build_envelope(entry, headers=headers).to_bytes()


def encode_fault(fault: SoapFault) -> bytes:
    """Encode a fault into envelope bytes."""
    return build_envelope(fault.to_element()).to_bytes()


def decode_response(data: bytes) -> RpcResponse:
    """Decode envelope bytes into an :class:`RpcResponse`.

    Raises :class:`SoapFault` if the body carries a fault — this is the
    client half of the architecture-adapter conversion.
    """
    env = parse_envelope(data)
    entry = env.first_body_entry()
    if SoapFault.is_fault(entry):
        raise SoapFault.from_element(entry)
    if not entry.tag.local.endswith("Response"):
        raise SoapMessageError(f"unexpected response entry <{entry.tag.local}>")
    operation = entry.tag.local[: -len("Response")]
    ret = entry.find("return")
    if ret is None:
        return RpcResponse(entry.tag.namespace, operation, None, is_void=True)
    return RpcResponse(entry.tag.namespace, operation, decode_value(ret), is_void=False)
