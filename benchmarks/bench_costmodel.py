"""Cost-based per-member plan selection vs the global planner.

The scenario where statistics pay off: a *skewed* federation with one
fat member holding almost all rows next to many thin members, half of
which never record the queried metric at all.  A strict value predicate
(``value > t``) makes the global planner fall back to raw mode for the
whole federation — every one of the fat member's rows crosses the wire.
The cost model instead reads each member's ``getStats``: the predicate
is *vacuous* over the fat member's value range (aggregate with no
bounds), the metric is provably absent from half the thin members
(skipped outright), and only the genuinely ambiguous thin members ship
raw rows.

Two engines run over the same grid — ``cost_based=True`` vs the
``cost_based=False`` baseline — and the bench compares bytes moved
(``QueryResult.stats["payloadBytes"]``) and cold wall-clock.  The hard
acceptance check: the cost-based arm never moves *more* bytes than the
global arm, and strictly fewer on the skewed query.

``FEDQUERY_BENCH_QUICK=1`` (the CI mode) shrinks the federation so the
file runs in seconds while still asserting the same shape.
"""

from __future__ import annotations

import os
import random
import time

import pytest
from conftest import write_json, write_result

from repro.core.semantic import PerformanceResult
from repro.experiments.common import build_synthetic_grid
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper

QUICK = os.environ.get("FEDQUERY_BENCH_QUICK", "") not in ("", "0")

METRIC = "latency_us"

#: strict '>' is not pushable as inclusive bounds, so the global planner
#: runs the whole federation raw; the fat member's range sits entirely
#: above the threshold (vacuous -> bound-free aggregate), the metric is
#: absent from half the thin members (skip), the rest straddle it (raw)
SKEWED_QUERY = f"SELECT count({METRIC}), mean({METRIC}) WHERE value > 50.0 GROUP BY app"

#: already optimal globally (pushable aggregate): the cost model must
#: not regress it — bytes stay equal, it just also proves skips
AGGREGATE_QUERY = f"SELECT count({METRIC}), max({METRIC}) GROUP BY numprocs"


def _federation() -> dict[str, InMemoryWrapper]:
    rng = random.Random(20240806)
    wrappers: dict[str, InMemoryWrapper] = {}

    def result(metric: str, lo: int, hi: int) -> PerformanceResult:
        start = float(rng.randint(0, 5))
        return PerformanceResult(
            metric, "/Comm", "synthetic", start, start + 5.0,
            float(rng.randint(lo, hi)),
        )

    fat_execs = 12 if QUICK else 48
    fat_rows = 25 if QUICK else 120
    wrappers["FAT"] = InMemoryWrapper(
        "FAT",
        [
            InMemoryExecution(
                str(index),
                {"numprocs": "64"},
                [result(METRIC, 100, 900) for _ in range(fat_rows)],
            )
            for index in range(fat_execs)
        ],
    )
    thin_members = 4 if QUICK else 8
    for index in range(thin_members):
        # even thin members straddle the threshold (stay raw); odd ones
        # never record the metric (stats prove the skip)
        metric = METRIC if index % 2 == 0 else "cache_misses"
        wrappers[f"THIN{index}"] = InMemoryWrapper(
            f"THIN{index}",
            [
                InMemoryExecution(
                    str(exec_index),
                    {"numprocs": "4"},
                    [result(metric, 1, 400) for _ in range(5)],
                )
                for exec_index in range(2)
            ],
        )
    return wrappers


@pytest.fixture(scope="module")
def arms():
    grid = build_synthetic_grid(_federation())
    cost_engine = grid.deploy_federation(authority="fed-cost.pdx.edu:9090")
    global_engine = grid.deploy_federation(
        authority="fed-global.pdx.edu:9090", cost_based=False
    )
    yield {"cost-based": cost_engine, "global": global_engine}
    grid.cleanup()


def _run_cold(engine, text: str):
    engine.invalidate_cache()
    t0 = time.perf_counter()
    result = engine.execute(text)
    return time.perf_counter() - t0, result


def test_costmodel_bytes_moved(arms):
    queries = {"skewed strict-predicate": SKEWED_QUERY, "pushable aggregate": AGGREGATE_QUERY}
    table: dict[str, dict[str, dict[str, object]]] = {}
    for qname, text in queries.items():
        table[qname] = {}
        packed: dict[str, list[str]] = {}
        for arm, engine in arms.items():
            elapsed, result = _run_cold(engine, text)
            table[qname][arm] = {
                "seconds": elapsed,
                "bytes": result.stats["payloadBytes"],
                "records": result.stats["records"],
                "skipped": result.stats["skippedMembers"],
                "mode": result.plan.effective_mode,
                "estimated": result.stats["estimatedBytes"],
            }
            packed[arm] = [row.pack() for row in result.rows]
        # both arms answer identically, byte for byte
        assert packed["cost-based"] == packed["global"], qname

    lines = [
        f"Cost-based vs global plan selection ({'quick' if QUICK else 'full'} scale)",
        f"{'query':<26}{'arm':<12}{'mode':>10}{'records':>9}{'bytes':>10}"
        f"{'est.bytes':>11}{'skipped':>9}{'cold':>9}",
    ]
    for qname, by_arm in table.items():
        for arm, row in by_arm.items():
            lines.append(
                f"{qname:<26}{arm:<12}{row['mode']:>10}{row['records']:>9}"
                f"{row['bytes']:>10}{row['estimated']:>11}{row['skipped']:>9}"
                f"{row['seconds']:>8.3f}s"
            )
    skewed = table["skewed strict-predicate"]
    pushable = table["pushable aggregate"]
    ratio = skewed["global"]["bytes"] / max(1, skewed["cost-based"]["bytes"])
    lines.append(f"skewed-query transfer reduction: {ratio:.1f}x fewer bytes")
    write_result("costmodel_bytes.txt", "\n".join(lines))
    write_json(
        "costmodel",
        {
            "scale": "quick" if QUICK else "full",
            "skewed_bytes": {arm: row["bytes"] for arm, row in skewed.items()},
            "skewed_reduction": ratio,
            "pushable_bytes": {arm: row["bytes"] for arm, row in pushable.items()},
        },
    )

    # acceptance: the cost-based arm never moves more bytes than the
    # global planner, and strictly fewer on the skewed query
    for by_arm in table.values():
        assert by_arm["cost-based"]["bytes"] <= by_arm["global"]["bytes"]
    assert skewed["cost-based"]["bytes"] < skewed["global"]["bytes"]
    assert ratio >= 2.0, f"transfer reduction only {ratio:.2f}x"
    # the stats actually drove the plan: mixed modes plus proven skips
    assert skewed["cost-based"]["mode"] == "mixed"
    assert skewed["cost-based"]["skipped"] >= 1
    assert skewed["global"]["mode"] == "raw"
    # the already-optimal query was not regressed
    assert pushable["cost-based"]["bytes"] == pushable["global"]["bytes"]
