"""Columnar batch vs per-row XML: bytes on the wire and codec CPU.

The A1 serialization ablation showed per-row SOAP string arrays pay
~35 bytes of ``<item xsi:type="xsd:string">`` scaffolding per row *plus*
the row text itself.  The negotiated ``colbatch`` encoding collapses a
chunk into a handful of typed column records (dictionary-encoded focus/
metric/type columns, delta-RLE fixed-point time spans, packed doubles),
so the same SOAP envelope carries the chunk in a few strings instead of
thousands.

This bench pushes an A1-shaped workload (Vampir-style ``time_spent``
rows over 16 MPI foci) through the *full* wire path for both encodings —
``encode_chunk`` -> SOAP response encode -> parse -> ``decode_chunk`` —
and asserts the ISSUE's gates:

* **>= 10x** fewer serialized envelope bytes, and
* **>= 5x** less encode+decode CPU,

with the decoded rows byte-identical between arms.

``FEDQUERY_BENCH_QUICK=1`` (the CI mode) shrinks the row count so the
file runs in seconds while asserting the same ratios.
"""

from __future__ import annotations

import os
import time

from conftest import write_json, write_result

from repro.core.semantic import PerformanceResult
from repro.soap.chunks import (
    ENCODING_COLBATCH,
    ENCODING_XML,
    decode_chunk,
    encode_chunk,
)
from repro.soap.rpc import decode_response, encode_response

QUICK = os.environ.get("FEDQUERY_BENCH_QUICK", "") not in ("", "0")

TOTAL_ROWS = 10_000 if QUICK else 100_000
CHUNK_ROWS = 2_048
REPEAT = 3

MPI_OPS = [
    "Send", "Recv", "Isend", "Irecv", "Wait", "Waitall", "Barrier",
    "Bcast", "Reduce", "Allreduce", "Gather", "Scatter", "Alltoall",
    "Comm_rank", "Comm_size", "Finalize",
]


def _workload(n: int) -> list[str]:
    """A1-shaped rows: one Vampir time_spent measurement per MPI focus.

    Times are sequential fixed-point offsets (delta-RLE territory), and
    values come from a modest quantized pool (dictionary territory) —
    the distribution the ablation's trace stores actually produce.
    """
    rows = []
    for i in range(n):
        start = i * 0.015625
        value = ((i * 7 + i // 16) % 997) / 64
        rows.append(
            PerformanceResult(
                "time_spent",
                f"/Code/MPI/MPI_{MPI_OPS[i % len(MPI_OPS)]}",
                "vampir",
                start,
                start + 0.015625,
                value,
            ).pack()
        )
    return rows


def _chunks(rows: list[str]) -> list[tuple[int, list[str], bool]]:
    out = []
    for seq, lo in enumerate(range(0, len(rows), CHUNK_ROWS)):
        batch = rows[lo : lo + CHUNK_ROWS]
        out.append((seq, batch, lo + CHUNK_ROWS >= len(rows)))
    return out


def _run_arm(chunks, encoding: str) -> tuple[int, float, list[str]]:
    """Full wire path for one encoding: bytes, CPU seconds, decoded rows."""
    total_bytes = 0
    decoded: list[str] = []
    best = float("inf")
    for _ in range(REPEAT):
        total_bytes = 0
        decoded = []
        t0 = time.process_time()
        for seq, batch, done in chunks:
            payload = encode_chunk(seq, batch, done=done, encoding=encoding)
            wire = encode_response("urn:ppg", "next", payload)
            total_bytes += len(wire)
            response = decode_response(wire)
            envelope = decode_chunk(response.value)
            assert envelope.seq == seq
            decoded.extend(envelope.rows)
        best = min(best, time.process_time() - t0)
    return total_bytes, best, decoded


def test_wire_format_ratios():
    rows = _workload(TOTAL_ROWS)
    chunks = _chunks(rows)

    xml_bytes, xml_cpu, xml_rows = _run_arm(chunks, ENCODING_XML)
    col_bytes, col_cpu, col_rows = _run_arm(chunks, ENCODING_COLBATCH)

    assert xml_rows == rows, "xml arm must round-trip byte-identically"
    assert col_rows == rows, "colbatch arm must round-trip byte-identically"

    bytes_ratio = xml_bytes / col_bytes
    cpu_ratio = xml_cpu / col_cpu

    lines = [
        "Wire format: per-row XML vs negotiated columnar batch",
        f"(A1-shaped workload: {TOTAL_ROWS} rows, chunk={CHUNK_ROWS}, "
        f"quick={QUICK})",
        "",
        f"{'arm':<10} {'envelope bytes':>16} {'codec cpu (s)':>14} "
        f"{'bytes/row':>10}",
        f"{'xml':<10} {xml_bytes:>16,} {xml_cpu:>14.4f} "
        f"{xml_bytes / TOTAL_ROWS:>10.1f}",
        f"{'colbatch':<10} {col_bytes:>16,} {col_cpu:>14.4f} "
        f"{col_bytes / TOTAL_ROWS:>10.1f}",
        "",
        f"bytes-on-wire reduction: {bytes_ratio:.1f}x (gate: >= 10x)",
        f"encode+decode cpu reduction: {cpu_ratio:.1f}x (gate: >= 5x)",
    ]
    write_result("wire_format.txt", "\n".join(lines))
    write_json(
        "wire_format",
        {
            "rows": TOTAL_ROWS,
            "chunk_rows": CHUNK_ROWS,
            "xml_bytes": xml_bytes,
            "xml_cpu_s": xml_cpu,
            "colbatch_bytes": col_bytes,
            "colbatch_cpu_s": col_cpu,
            "bytes_reduction": bytes_ratio,
            "cpu_reduction": cpu_ratio,
            "quick": QUICK,
        },
    )

    assert bytes_ratio >= 10.0, (
        f"colbatch must cut envelope bytes >= 10x, got {bytes_ratio:.1f}x"
    )
    assert cpu_ratio >= 5.0, (
        f"colbatch must cut codec cpu >= 5x, got {cpu_ratio:.1f}x"
    )
