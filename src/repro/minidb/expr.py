"""Expression AST and evaluation.

Rows flow through the executor as flat tuples; a :class:`RowLayout` maps
``alias.column`` references to tuple slots.  Expressions are resolved
against a layout once (binding column refs to slots) and then evaluated
per row, which keeps the hot path to a tuple index plus Python ops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minidb.errors import ProgrammingError
from repro.minidb.types import SqlValue, compare_values

# --------------------------------------------------------------------- AST


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    value: SqlValue


@dataclass(frozen=True)
class ColumnRef(Expr):
    table: str | None  # alias or table name, or None if unqualified
    column: str


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # + - * / % ||
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Comparison(Expr):
    op: str  # = != < <= > >=
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BoolOp(Expr):
    op: str  # AND OR
    left: Expr
    right: Expr


@dataclass(frozen=True)
class NotOp(Expr):
    operand: Expr


@dataclass(frozen=True)
class Negate(Expr):
    operand: Expr


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool


@dataclass(frozen=True)
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # upper-cased
    args: tuple[Expr, ...]
    star: bool = False  # COUNT(*)


AGGREGATE_FUNCS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})
SCALAR_FUNCS = frozenset({"LOWER", "UPPER", "LENGTH", "ABS", "ROUND", "COALESCE"})


def contains_aggregate(expr: Expr) -> bool:
    """True if any node in *expr* is an aggregate function call."""
    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCS:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, (BinaryOp, Comparison, BoolOp)):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, (NotOp, Negate)):
        return contains_aggregate(expr.operand)
    if isinstance(expr, IsNull):
        return contains_aggregate(expr.operand)
    if isinstance(expr, InList):
        return contains_aggregate(expr.operand) or any(contains_aggregate(i) for i in expr.items)
    if isinstance(expr, Between):
        return any(contains_aggregate(e) for e in (expr.operand, expr.low, expr.high))
    if isinstance(expr, Like):
        return contains_aggregate(expr.operand) or contains_aggregate(expr.pattern)
    return False


def column_refs(expr: Expr) -> list[ColumnRef]:
    """All column references in *expr*, in evaluation order."""
    out: list[ColumnRef] = []

    def walk(node: Expr) -> None:
        if isinstance(node, ColumnRef):
            out.append(node)
        elif isinstance(node, (BinaryOp, Comparison, BoolOp)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (NotOp, Negate)):
            walk(node.operand)
        elif isinstance(node, IsNull):
            walk(node.operand)
        elif isinstance(node, InList):
            walk(node.operand)
            for item in node.items:
                walk(item)
        elif isinstance(node, Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, Like):
            walk(node.operand)
            walk(node.pattern)
        elif isinstance(node, FuncCall):
            for arg in node.args:
                walk(arg)

    walk(expr)
    return out


# ------------------------------------------------------------------ layout


class RowLayout:
    """Maps qualified/unqualified column names to tuple slots.

    ``slots`` is a list of ``(alias, column_name)`` pairs, one per tuple
    position.  Unqualified lookups are ambiguous if two aliases expose the
    same column name.
    """

    __slots__ = ("slots", "_by_qualified", "_by_name")

    def __init__(self, slots: list[tuple[str, str]]) -> None:
        self.slots = slots
        self._by_qualified: dict[tuple[str, str], int] = {}
        self._by_name: dict[str, list[int]] = {}
        for i, (alias, col) in enumerate(slots):
            self._by_qualified[(alias.lower(), col.lower())] = i
            self._by_name.setdefault(col.lower(), []).append(i)

    def resolve(self, ref: ColumnRef) -> int:
        if ref.table is not None:
            key = (ref.table.lower(), ref.column.lower())
            if key not in self._by_qualified:
                raise ProgrammingError(f"unknown column {ref.table}.{ref.column}")
            return self._by_qualified[key]
        hits = self._by_name.get(ref.column.lower(), [])
        if not hits:
            raise ProgrammingError(f"unknown column {ref.column!r}")
        if len(hits) > 1:
            raise ProgrammingError(f"ambiguous column {ref.column!r}")
        return hits[0]

    def concat(self, other: "RowLayout") -> "RowLayout":
        return RowLayout(self.slots + other.slots)


# -------------------------------------------------------------- evaluation


def like_match(text: str, pattern: str) -> bool:
    """SQL LIKE: ``%`` any run, ``_`` any single char. Case-sensitive."""
    # Iterative two-pointer algorithm with backtracking on '%'.
    ti = pi = 0
    star_pi = star_ti = -1
    while ti < len(text):
        if pi < len(pattern) and (pattern[pi] == "_" or pattern[pi] == text[ti]):
            ti += 1
            pi += 1
        elif pi < len(pattern) and pattern[pi] == "%":
            star_pi = pi
            star_ti = ti
            pi += 1
        elif star_pi != -1:
            star_ti += 1
            ti = star_ti
            pi = star_pi + 1
        else:
            return False
    while pi < len(pattern) and pattern[pi] == "%":
        pi += 1
    return pi == len(pattern)


class BoundExpr:
    """An expression resolved against a :class:`RowLayout`.

    ``eval(row)`` computes the value for one tuple.  Aggregate calls are
    *not* evaluated here — the executor replaces them with pre-computed
    slot references before binding (see ``executor._rewrite_aggregates``).
    """

    __slots__ = ("_fn",)

    def __init__(self, expr: Expr, layout: RowLayout) -> None:
        self._fn = _compile(expr, layout)

    def eval(self, row: tuple) -> SqlValue:
        return self._fn(row)


def _compile_literal_comparison(expr: "Comparison", layout: RowLayout):
    """Specialized closure for ``column <op> literal`` (either order).

    Returns None when the pattern does not apply; the caller falls back
    to the generic three-way comparison.
    """
    left, right, op = expr.left, expr.right, expr.op
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!=", "<>": "<>"}
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        left, right = right, left
        op = flipped[op]
    if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
        return None
    slot = layout.resolve(left)
    value = right.value
    if value is None:
        return lambda row: False  # comparisons with NULL are never true
    if isinstance(value, str):
        kinds: tuple[type, ...] = (str,)
    elif isinstance(value, bool):
        kinds = (bool,)
    elif isinstance(value, (int, float)):
        kinds = (int, float)
    else:  # pragma: no cover - literals are scalars by construction
        return None
    numeric = kinds == (int, float)

    def check(v: SqlValue) -> bool:
        if not isinstance(v, kinds):
            return False
        # bool is an int subclass but a distinct SQL kind.
        return not (numeric and isinstance(v, bool))

    if op == "=":
        return lambda row: check(row[slot]) and row[slot] == value
    if op in ("!=", "<>"):
        return lambda row: check(row[slot]) and row[slot] != value
    if op == "<":
        return lambda row: check(row[slot]) and row[slot] < value
    if op == "<=":
        return lambda row: check(row[slot]) and row[slot] <= value
    if op == ">":
        return lambda row: check(row[slot]) and row[slot] > value
    if op == ">=":
        return lambda row: check(row[slot]) and row[slot] >= value
    return None  # pragma: no cover


def _numeric(value: SqlValue, context: str) -> int | float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProgrammingError(f"{context} requires a number, got {value!r}")
    return value


def _compile(expr: Expr, layout: RowLayout):
    """Compile an expression tree to a closure over the row tuple."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, ColumnRef):
        slot = layout.resolve(expr)
        return lambda row: row[slot]

    if isinstance(expr, BinaryOp):
        left, right = _compile(expr.left, layout), _compile(expr.right, layout)
        op = expr.op

        def eval_binary(row: tuple) -> SqlValue:
            a, b = left(row), right(row)
            if a is None or b is None:
                return None
            if op == "||":
                if not isinstance(a, str) or not isinstance(b, str):
                    raise ProgrammingError(f"|| requires strings, got {a!r}, {b!r}")
                return a + b
            an, bn = _numeric(a, op), _numeric(b, op)
            if op == "+":
                return an + bn
            if op == "-":
                return an - bn
            if op == "*":
                return an * bn
            if op == "/":
                if bn == 0:
                    raise ProgrammingError("division by zero")
                result = an / bn
                return result
            if op == "%":
                if bn == 0:
                    raise ProgrammingError("modulo by zero")
                return an % bn
            raise ProgrammingError(f"unknown operator {op!r}")  # pragma: no cover

        return eval_binary

    if isinstance(expr, Comparison):
        # Fast path for the Mapping Layer's dominant pattern, column-vs-
        # literal comparisons in large scans (profiled: the generic
        # compare_values dispatch was ~40% of SMG98 query time).  The
        # specialized closures reproduce SQL semantics exactly: NULLs and
        # cross-kind comparisons are false.
        fast = _compile_literal_comparison(expr, layout)
        if fast is not None:
            return fast
        left, right = _compile(expr.left, layout), _compile(expr.right, layout)
        op = expr.op

        def eval_cmp(row: tuple) -> SqlValue:
            c = compare_values(left(row), right(row))
            if c is None:
                return False
            if op == "=":
                return c == 0
            if op in ("!=", "<>"):
                return c != 0
            if op == "<":
                return c < 0
            if op == "<=":
                return c <= 0
            if op == ">":
                return c > 0
            if op == ">=":
                return c >= 0
            raise ProgrammingError(f"unknown comparison {op!r}")  # pragma: no cover

        return eval_cmp

    if isinstance(expr, BoolOp):
        # Flatten AND/OR chains into a predicate list with early exit —
        # the parser nests N conjuncts N levels deep, which costs N
        # lambda frames per row in scan filters (profiled hot path).
        parts: list[Expr] = []

        def flatten(node: Expr) -> None:
            if isinstance(node, BoolOp) and node.op == expr.op:
                flatten(node.left)
                flatten(node.right)
            else:
                parts.append(node)

        flatten(expr)
        fns = [_compile(p, layout) for p in parts]
        if expr.op == "AND":

            def eval_and(row: tuple) -> bool:
                for fn in fns:
                    if not fn(row):
                        return False
                return True

            return eval_and

        def eval_or(row: tuple) -> bool:
            for fn in fns:
                if fn(row):
                    return True
            return False

        return eval_or

    if isinstance(expr, NotOp):
        operand = _compile(expr.operand, layout)
        return lambda row: not bool(operand(row))

    if isinstance(expr, Negate):
        operand = _compile(expr.operand, layout)

        def eval_neg(row: tuple) -> SqlValue:
            v = operand(row)
            return None if v is None else -_numeric(v, "unary -")

        return eval_neg

    if isinstance(expr, IsNull):
        operand = _compile(expr.operand, layout)
        negated = expr.negated
        return lambda row: (operand(row) is not None) if negated else (operand(row) is None)

    if isinstance(expr, InList):
        operand = _compile(expr.operand, layout)
        items = [_compile(i, layout) for i in expr.items]
        negated = expr.negated

        def eval_in(row: tuple) -> SqlValue:
            v = operand(row)
            if v is None:
                return False
            hit = any(compare_values(v, item(row)) == 0 for item in items)
            return (not hit) if negated else hit

        return eval_in

    if isinstance(expr, Between):
        operand = _compile(expr.operand, layout)
        low, high = _compile(expr.low, layout), _compile(expr.high, layout)
        negated = expr.negated

        def eval_between(row: tuple) -> SqlValue:
            v = operand(row)
            cl = compare_values(v, low(row))
            ch = compare_values(v, high(row))
            if cl is None or ch is None:
                return False
            hit = cl >= 0 and ch <= 0
            return (not hit) if negated else hit

        return eval_between

    if isinstance(expr, Like):
        operand = _compile(expr.operand, layout)
        pattern = _compile(expr.pattern, layout)
        negated = expr.negated

        def eval_like(row: tuple) -> SqlValue:
            v, p = operand(row), pattern(row)
            if v is None or p is None:
                return False
            if not isinstance(v, str) or not isinstance(p, str):
                raise ProgrammingError(f"LIKE requires strings, got {v!r}, {p!r}")
            hit = like_match(v, p)
            return (not hit) if negated else hit

        return eval_like

    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCS:
            raise ProgrammingError(
                f"aggregate {expr.name} not allowed here (use GROUP BY queries)"
            )
        if expr.name not in SCALAR_FUNCS:
            raise ProgrammingError(f"unknown function {expr.name!r}")
        args = [_compile(a, layout) for a in expr.args]
        name = expr.name

        def eval_func(row: tuple) -> SqlValue:
            values = [a(row) for a in args]
            return _scalar_func(name, values)

        return eval_func

    raise ProgrammingError(f"cannot evaluate expression node {type(expr).__name__}")


def _scalar_func(name: str, values: list[SqlValue]) -> SqlValue:
    if name == "COALESCE":
        for v in values:
            if v is not None:
                return v
        return None
    if name == "LENGTH":
        _require_arity(name, values, 1)
        v = values[0]
        if v is None:
            return None
        if not isinstance(v, str):
            raise ProgrammingError(f"LENGTH requires TEXT, got {v!r}")
        return len(v)
    if name in ("LOWER", "UPPER"):
        _require_arity(name, values, 1)
        v = values[0]
        if v is None:
            return None
        if not isinstance(v, str):
            raise ProgrammingError(f"{name} requires TEXT, got {v!r}")
        return v.lower() if name == "LOWER" else v.upper()
    if name == "ABS":
        _require_arity(name, values, 1)
        v = values[0]
        return None if v is None else abs(_numeric(v, "ABS"))
    if name == "ROUND":
        if len(values) not in (1, 2):
            raise ProgrammingError("ROUND takes 1 or 2 arguments")
        v = values[0]
        if v is None:
            return None
        digits = 0
        if len(values) == 2:
            d = values[1]
            if d is None:
                return None
            digits = int(_numeric(d, "ROUND digits"))
        return round(float(_numeric(v, "ROUND")), digits)
    raise ProgrammingError(f"unknown function {name!r}")  # pragma: no cover


def _require_arity(name: str, values: list[SqlValue], n: int) -> None:
    if len(values) != n:
        raise ProgrammingError(f"{name} takes exactly {n} argument(s), got {len(values)}")
