"""Recursive-descent XML parser.

Supports the subset of XML 1.0 needed by SOAP/WSDL payloads and the XML
data stores: elements, attributes, character data, the five predefined
entities plus numeric character references, CDATA sections, comments
(skipped), and namespace resolution.  DOCTYPE and processing instructions
other than the XML declaration are rejected — accepting them would widen
the attack surface for no benefit to the reproduction.
"""

from __future__ import annotations

from repro.xmlkit.model import Document, Element, QName


class XmlParseError(ValueError):
    """Raised when input is not well-formed (for our subset)."""

    def __init__(self, message: str, pos: int) -> None:
        super().__init__(f"{message} (at offset {pos})")
        self.pos = pos


_PREDEFINED = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}
_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:-.")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.n = len(text)

    # ------------------------------------------------------------- helpers
    def error(self, message: str) -> XmlParseError:
        return XmlParseError(message, self.pos)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.n else ""

    def startswith(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def expect(self, literal: str) -> None:
        if not self.startswith(literal):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def skip_ws(self) -> None:
        while self.pos < self.n and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_name(self) -> str:
        start = self.pos
        if self.pos >= self.n or not _is_name_start(self.text[self.pos]):
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < self.n and _is_name_char(self.text[self.pos]):
            self.pos += 1
        return self.text[start : self.pos]

    def read_reference(self) -> str:
        """Read an entity/char reference; cursor sits just past '&'."""
        semi = self.text.find(";", self.pos)
        if semi == -1 or semi - self.pos > 10:
            raise self.error("unterminated entity reference")
        body = self.text[self.pos : semi]
        self.pos = semi + 1
        if body.startswith("#x") or body.startswith("#X"):
            try:
                return chr(int(body[2:], 16))
            except ValueError:
                raise self.error(f"bad character reference &{body};") from None
        if body.startswith("#"):
            try:
                return chr(int(body[1:]))
            except ValueError:
                raise self.error(f"bad character reference &{body};") from None
        if body in _PREDEFINED:
            return _PREDEFINED[body]
        raise self.error(f"unknown entity &{body};")

    # ------------------------------------------------------------- grammar
    def parse_document(self) -> Document:
        version, encoding = "1.0", "utf-8"
        self.skip_ws()
        if self.startswith("<?xml"):
            version, encoding = self.parse_declaration()
        self.skip_misc()
        if self.pos >= self.n or self.peek() != "<":
            raise self.error("expected root element")
        root = self.parse_element(scope=[{"xml": "http://www.w3.org/XML/1998/namespace"}])
        self.skip_misc()
        if self.pos != self.n:
            raise self.error("trailing content after root element")
        return Document(root, version=version, encoding=encoding)

    def parse_declaration(self) -> tuple[str, str]:
        self.expect("<?xml")
        end = self.text.find("?>", self.pos)
        if end == -1:
            raise self.error("unterminated XML declaration")
        body = self.text[self.pos : end]
        self.pos = end + 2
        version = _pseudo_attr(body, "version") or "1.0"
        encoding = _pseudo_attr(body, "encoding") or "utf-8"
        return version, encoding

    def skip_misc(self) -> None:
        """Skip whitespace and comments between markup at document level."""
        while True:
            self.skip_ws()
            if self.startswith("<!--"):
                self.skip_comment()
            elif self.startswith("<!DOCTYPE"):
                raise self.error("DOCTYPE is not supported")
            elif self.startswith("<?"):
                raise self.error("processing instructions are not supported")
            else:
                return

    def skip_comment(self) -> None:
        self.expect("<!--")
        end = self.text.find("-->", self.pos)
        if end == -1:
            raise self.error("unterminated comment")
        self.pos = end + 3

    def parse_element(self, scope: list[dict[str, str]]) -> Element:
        self.expect("<")
        raw_name = self.read_name()
        raw_attrs: list[tuple[str, str]] = []
        nsdecls: dict[str, str] = {}
        while True:
            before = self.pos
            self.skip_ws()
            if self.startswith("/>") or self.startswith(">"):
                break
            if self.pos == before:
                raise self.error("expected whitespace before attribute")
            attr_name = self.read_name()
            self.skip_ws()
            self.expect("=")
            self.skip_ws()
            value = self.read_attr_value()
            if attr_name == "xmlns":
                nsdecls[""] = value
            elif attr_name.startswith("xmlns:"):
                nsdecls[attr_name[6:]] = value
            else:
                if any(existing == attr_name for existing, _ in raw_attrs):
                    raise self.error(f"duplicate attribute {attr_name!r}")
                raw_attrs.append((attr_name, value))

        scope.append(nsdecls)
        try:
            tag = self.resolve(raw_name, scope, is_attr=False)
            attrs: dict[QName, str] = {}
            for name, value in raw_attrs:
                qn = self.resolve(name, scope, is_attr=True)
                if qn in attrs:
                    raise self.error(f"duplicate attribute {qn}")
                attrs[qn] = value
            element = Element(tag, attrs=attrs, nsdecls=nsdecls)

            if self.startswith("/>"):
                self.pos += 2
                return element
            self.expect(">")
            self.parse_content(element, scope)
            # parse_content consumed up to '</'
            close_name = self.read_name()
            if close_name != raw_name:
                raise self.error(f"mismatched close tag </{close_name}> for <{raw_name}>")
            self.skip_ws()
            self.expect(">")
            return element
        finally:
            scope.pop()

    def parse_content(self, parent: Element, scope: list[dict[str, str]]) -> None:
        """Parse children until the start of this element's close tag ('</' consumed)."""
        text_parts: list[str] = []

        def flush() -> None:
            if text_parts:
                parent.children.append("".join(text_parts))
                text_parts.clear()

        while True:
            if self.pos >= self.n:
                raise self.error(f"unterminated element <{parent.tag.local}>")
            ch = self.peek()
            if ch == "<":
                if self.startswith("</"):
                    flush()
                    self.pos += 2
                    return
                if self.startswith("<!--"):
                    self.skip_comment()
                    continue
                if self.startswith("<![CDATA["):
                    self.pos += 9
                    end = self.text.find("]]>", self.pos)
                    if end == -1:
                        raise self.error("unterminated CDATA section")
                    text_parts.append(self.text[self.pos : end])
                    self.pos = end + 3
                    continue
                if self.startswith("<?"):
                    raise self.error("processing instructions are not supported")
                flush()
                parent.children.append(self.parse_element(scope))
                continue
            if ch == "&":
                self.pos += 1
                text_parts.append(self.read_reference())
                continue
            # Plain character run.
            start = self.pos
            while self.pos < self.n and self.text[self.pos] not in "<&":
                self.pos += 1
            text_parts.append(self.text[start : self.pos])

    def read_attr_value(self) -> str:
        quote = self.peek()
        if quote not in ('"', "'"):
            raise self.error("expected quoted attribute value")
        self.pos += 1
        parts: list[str] = []
        while True:
            if self.pos >= self.n:
                raise self.error("unterminated attribute value")
            ch = self.text[self.pos]
            if ch == quote:
                self.pos += 1
                return "".join(parts)
            if ch == "<":
                raise self.error("'<' not allowed in attribute value")
            if ch == "&":
                self.pos += 1
                parts.append(self.read_reference())
                continue
            start = self.pos
            while self.pos < self.n and self.text[self.pos] not in (quote, "<", "&"):
                self.pos += 1
            parts.append(self.text[start : self.pos])

    def resolve(self, raw: str, scope: list[dict[str, str]], *, is_attr: bool) -> QName:
        prefix, sep, local = raw.partition(":")
        if not sep:
            if is_attr:
                return QName("", raw)  # unprefixed attrs are in no namespace
            uri = self._lookup("", scope) or ""
            return QName(uri, raw)
        if ":" in local:
            raise self.error(f"invalid name {raw!r}")
        uri = self._lookup(prefix, scope)
        if uri is None:
            raise self.error(f"undeclared namespace prefix {prefix!r}")
        return QName(uri, local)

    @staticmethod
    def _lookup(prefix: str, scope: list[dict[str, str]]) -> str | None:
        for frame in reversed(scope):
            if prefix in frame:
                return frame[prefix]
        return None


def _pseudo_attr(body: str, name: str) -> str | None:
    """Extract ``name="value"`` from an XML-declaration body."""
    idx = body.find(name)
    if idx == -1:
        return None
    eq = body.find("=", idx)
    if eq == -1:
        return None
    rest = body[eq + 1 :].lstrip()
    if not rest or rest[0] not in "'\"":
        return None
    quote = rest[0]
    end = rest.find(quote, 1)
    if end == -1:
        return None
    return rest[1:end]


def parse(data: str | bytes) -> Document:
    """Parse an XML document from a string or UTF-8 bytes."""
    if isinstance(data, bytes):
        data = data.decode("utf-8")
    return _Parser(data).parse_document()
