"""Tests for clocks, metrics, hosts, network model, and transports."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import (
    Endpoint,
    HostTimeline,
    LoopbackTransport,
    NetworkModel,
    RealClock,
    Recorder,
    SimHost,
    TransportError,
    VirtualClock,
)
from repro.simnet.transport import RecordingTransport


class TestClocks:
    def test_real_clock_monotone(self):
        clock = RealClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_virtual_clock_advance(self):
        clock = VirtualClock(10.0)
        assert clock.now() == 10.0
        assert clock.advance(5.0) == 15.0
        assert clock.now() == 15.0

    def test_virtual_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_advance_to_never_goes_back(self):
        clock = VirtualClock(10.0)
        clock.advance_to(5.0)
        assert clock.now() == 10.0
        clock.advance_to(20.0)
        assert clock.now() == 20.0


class TestRecorder:
    def test_counters(self):
        rec = Recorder()
        rec.incr("x")
        rec.incr("x", 4)
        assert rec.count("x") == 5
        assert rec.count("missing") == 0

    def test_bytes_accounting(self):
        rec = Recorder()
        rec.record_bytes("sent", 100)
        rec.record_bytes("received", 40)
        assert rec.bytes_sent == 100
        assert rec.bytes_received == 40
        assert rec.bytes_total == 140

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            Recorder().record_bytes("sideways", 1)

    def test_timer_with_virtual_clock(self):
        clock = VirtualClock()
        rec = Recorder(clock)
        with rec.time("op"):
            clock.advance(2.5)
        stats = rec.timer("op")
        assert stats.count == 1
        assert stats.mean == 2.5

    def test_timer_statistics(self):
        rec = Recorder()
        for v in (1.0, 2.0, 3.0):
            rec.add_sample("t", v)
        stats = rec.timer("t")
        assert stats.mean == 2.0
        assert stats.stdev == pytest.approx(1.0)
        assert stats.cov == pytest.approx(0.5)
        assert (stats.minimum, stats.maximum) == (1.0, 3.0)

    def test_reset(self):
        rec = Recorder()
        rec.incr("x")
        rec.add_sample("t", 1.0)
        rec.reset()
        assert rec.count("x") == 0
        assert rec.timer("t").count == 0

    def test_snapshot_shape(self):
        rec = Recorder()
        rec.incr("c", 2)
        rec.add_sample("t", 0.5)
        snap = rec.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["timers"]["t"]["count"] == 1


class TestHostTimeline:
    def test_serialized_scheduling(self):
        timeline = HostTimeline()
        assert timeline.schedule(2.0) == (0.0, 2.0)
        assert timeline.schedule(3.0) == (2.0, 5.0)
        assert timeline.busy_until == 5.0
        assert timeline.total_busy == 5.0

    def test_ready_at_respected(self):
        timeline = HostTimeline()
        assert timeline.schedule(1.0, ready_at=10.0) == (10.0, 11.0)
        # Next task can't start before previous completion.
        assert timeline.schedule(1.0, ready_at=0.0) == (11.0, 12.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            HostTimeline().schedule(-1.0)

    def test_utilization(self):
        timeline = HostTimeline()
        timeline.schedule(2.0, ready_at=2.0)  # idle for the first 2 s
        assert timeline.utilization(4.0) == pytest.approx(0.5)
        assert timeline.utilization(0.0) == 0.0

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_makespan_equals_sum_when_all_ready(self, durations):
        timeline = HostTimeline()
        for d in durations:
            timeline.schedule(d)
        assert timeline.busy_until == pytest.approx(sum(durations))


class TestSimHost:
    def test_cpu_factor_scales_charge(self):
        slow = SimHost("s", cpu_factor=2.0)
        assert slow.charge(1.0) == (0.0, 2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimHost("h", cpu_factor=0)
        with pytest.raises(ValueError):
            SimHost("h", memory_mb=0)

    def test_memory_accounting_clamped(self):
        host = SimHost("h", memory_mb=100)
        host.allocate_memory(60)
        host.allocate_memory(60)
        assert host.memory_used_mb == 100
        host.release_memory(150)
        assert host.memory_used_mb == 0

    def test_resource_stats(self):
        host = SimHost("h", memory_mb=128)
        host.charge(1.0)
        host.allocate_memory(32)
        stats = host.resource_stats()
        assert stats["cpu_load"] == 1.0
        assert stats["memory_free_fraction"] == pytest.approx(0.75)
        assert stats["tasks_completed"] == 1.0

    def test_reset(self):
        host = SimHost("h")
        host.charge(1.0)
        host.allocate_memory(10)
        host.reset()
        assert host.timeline.busy_until == 0.0
        assert host.memory_used_mb == 0.0


class TestNetworkModel:
    def test_transfer_time_formula(self):
        net = NetworkModel(latency_s=0.001, bandwidth_bytes_per_s=1000.0)
        assert net.transfer_time(500) == pytest.approx(0.501)

    def test_loopback_latency(self):
        net = NetworkModel(loopback_latency_s=1e-5)
        assert net.transfer_time(10**9, same_host=True) == 1e-5

    def test_round_trip(self):
        net = NetworkModel(latency_s=0.001, bandwidth_bytes_per_s=1000.0)
        assert net.round_trip_time(100, 400) == pytest.approx(0.002 + 0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-1)

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=100, deadline=None)
    def test_transfer_time_monotone_in_bytes(self, n):
        net = NetworkModel()
        assert net.transfer_time(n + 1) >= net.transfer_time(n)


class TestEndpoint:
    def test_parse_http(self):
        ep = Endpoint.parse("http://host:8080/services/x")
        assert ep.authority == "host:8080"
        assert ep.path == "services/x"

    def test_parse_ppg_scheme(self):
        assert Endpoint.parse("ppg://h:1/p").authority == "h:1"

    @pytest.mark.parametrize("bad", ["ftp://x/y", "http://", "no-scheme/path"])
    def test_bad_urls_rejected(self, bad):
        with pytest.raises(TransportError):
            Endpoint.parse(bad)

    def test_url_roundtrip(self):
        assert Endpoint.parse("http://h:1/a/b").url() == "http://h:1/a/b"


class TestLoopbackTransport:
    def test_routing_by_authority(self):
        transport = LoopbackTransport()
        transport.bind("a:1", lambda path, req: f"a:{path}".encode())
        transport.bind("b:1", lambda path, req: b"b")
        assert transport.send("http://a:1/x/y", b"") == b"a:x/y"
        assert transport.send("http://b:1/z", b"") == b"b"

    def test_unbound_authority_raises(self):
        with pytest.raises(TransportError):
            LoopbackTransport().send("http://ghost:1/x", b"")

    def test_double_bind_rejected(self):
        transport = LoopbackTransport()
        transport.bind("a:1", lambda p, r: b"")
        with pytest.raises(TransportError):
            transport.bind("a:1", lambda p, r: b"")

    def test_unbind(self):
        transport = LoopbackTransport()
        transport.bind("a:1", lambda p, r: b"")
        transport.unbind("a:1")
        assert transport.authorities() == []

    def test_byte_recording(self):
        rec = Recorder()
        transport = LoopbackTransport(rec)
        transport.bind("a:1", lambda p, r: b"12345")
        transport.send("http://a:1/x", b"123")
        assert rec.bytes_sent == 3
        assert rec.bytes_received == 5
        assert rec.count("transport.calls") == 1

    def test_recording_transport_logs(self):
        inner = LoopbackTransport()
        inner.bind("a:1", lambda p, r: b"resp")
        recording = RecordingTransport(inner)
        recording.send("http://a:1/x", b"req")
        assert recording.log == [("http://a:1/x", b"req", b"resp")]


class TestSharedMediumNetwork:
    def test_transfers_serialize(self):
        from repro.simnet.network import NetworkModel, SharedMediumNetwork

        bus = SharedMediumNetwork(NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=1000.0))
        a = bus.schedule_transfer(500)          # 0.0 - 0.5
        b = bus.schedule_transfer(500)          # 0.5 - 1.0
        assert a == (0.0, 0.5)
        assert b == (0.5, 1.0)
        assert bus.transfers == 2

    def test_ready_at_respected(self):
        from repro.simnet.network import NetworkModel, SharedMediumNetwork

        bus = SharedMediumNetwork(NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=1000.0))
        start, end = bus.schedule_transfer(100, ready_at=5.0)
        assert start == 5.0 and end == pytest.approx(5.1)

    def test_utilization_and_reset(self):
        from repro.simnet.network import NetworkModel, SharedMediumNetwork

        bus = SharedMediumNetwork(NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=1000.0))
        bus.schedule_transfer(500, ready_at=0.5)
        assert bus.utilization(1.0) == pytest.approx(0.5)
        bus.reset()
        assert bus.busy_until == 0.0 and bus.transfers == 0
