"""Performance-Result cache (thesis §5.3.2.3 and Table 5).

The cache "stores the results of Performance Result queries in a hash
table indexed by a string value representing the parameters involved in
the query".  The thesis's prototype uses an unbounded table; its
future-work section proposes a replacement policy that "adjusts
dynamically depending on the host's available system resources" — both
are implemented, plus a plain LRU for the ablation bench.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting.

    ``invalidations`` counts entries dropped through targeted
    :meth:`PrCache.remove` calls (coherence-driven), as opposed to
    capacity ``evictions``.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_records(self) -> list[str]:
        """``name|value`` wire records, for SDE publication."""
        return [
            f"hits|{self.hits}",
            f"misses|{self.misses}",
            f"evictions|{self.evictions}",
            f"invalidations|{self.invalidations}",
            f"lookups|{self.lookups}",
            f"hitRate|{self.hit_rate:.6f}",
        ]


class PrCache(ABC):
    """Cache interface: string key -> list of packed PR strings."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    @abstractmethod
    def _get(self, key: str) -> list[str] | None: ...

    @abstractmethod
    def _put(self, key: str, value: list[str]) -> None: ...

    @abstractmethod
    def _remove(self, key: str) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    def get(self, key: str) -> list[str] | None:
        value = self._get(key)
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def put(self, key: str, value: list[str]) -> None:
        self._put(key, list(value))

    def remove(self, key: str) -> bool:
        """Drop one entry (targeted invalidation); True if it existed."""
        removed = self._remove(key)
        if removed:
            self.stats.invalidations += 1
        return removed

    def contains(self, key: str) -> bool:
        """Membership probe that does not touch the hit/miss counters."""
        return self._get(key) is not None

    def clear(self) -> None:  # pragma: no cover - overridden where stateful
        raise NotImplementedError


class NullCache(PrCache):
    """Caching disabled (the Table 5 "caching off" arm)."""

    def _get(self, key: str) -> list[str] | None:
        return None

    def _put(self, key: str, value: list[str]) -> None:
        pass

    def _remove(self, key: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        pass


class UnboundedCache(PrCache):
    """The thesis's prototype policy: keep everything."""

    def __init__(self) -> None:
        super().__init__()
        self._table: dict[str, list[str]] = {}

    def _get(self, key: str) -> list[str] | None:
        return self._table.get(key)

    def _put(self, key: str, value: list[str]) -> None:
        self._table[key] = value

    def _remove(self, key: str) -> bool:
        return self._table.pop(key, None) is not None

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        self._table.clear()


class LruCache(PrCache):
    """Bounded LRU."""

    def __init__(self, capacity: int) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._table: OrderedDict[str, list[str]] = OrderedDict()

    def _get(self, key: str) -> list[str] | None:
        value = self._table.get(key)
        if value is not None:
            self._table.move_to_end(key)
        return value

    def _put(self, key: str, value: list[str]) -> None:
        if key in self._table:
            self._table.move_to_end(key)
        self._table[key] = value
        while len(self._table) > self.capacity:
            self._table.popitem(last=False)
            self.stats.evictions += 1

    def _remove(self, key: str) -> bool:
        return self._table.pop(key, None) is not None

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        self._table.clear()


@dataclass
class AdaptiveCache(PrCache):
    """Capacity follows host free memory (future-work §7).

    ``stats_provider`` returns a resource snapshot with a
    ``memory_free_fraction`` entry (the Service Data Provider payload of
    :meth:`repro.simnet.host.SimHost.resource_stats`).  The effective
    capacity is ``max(min_capacity, int(max_capacity * free_fraction))``,
    re-evaluated on every insert; shrinking evicts in LRU order.
    """

    stats_provider: Callable[[], dict[str, float]] = lambda: {"memory_free_fraction": 1.0}
    max_capacity: int = 1024
    min_capacity: int = 8
    _table: OrderedDict = field(default_factory=OrderedDict)

    def __post_init__(self) -> None:
        super().__init__()
        if self.min_capacity < 1 or self.max_capacity < self.min_capacity:
            raise ValueError(
                f"need 1 <= min_capacity <= max_capacity, got "
                f"{self.min_capacity}, {self.max_capacity}"
            )

    def effective_capacity(self) -> int:
        snapshot = self.stats_provider()
        free = float(snapshot.get("memory_free_fraction", 1.0))
        free = min(1.0, max(0.0, free))
        return max(self.min_capacity, int(self.max_capacity * free))

    def _get(self, key: str) -> list[str] | None:
        value = self._table.get(key)
        if value is not None:
            self._table.move_to_end(key)
        return value

    def _put(self, key: str, value: list[str]) -> None:
        if key in self._table:
            self._table.move_to_end(key)
        self._table[key] = value
        capacity = self.effective_capacity()
        while len(self._table) > capacity:
            self._table.popitem(last=False)
            self.stats.evictions += 1

    def _remove(self, key: str) -> bool:
        return self._table.pop(key, None) is not None

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        self._table.clear()
