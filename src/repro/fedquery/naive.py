"""Naive federated query evaluation — the correctness oracle.

This walks the federation the way a hand-written client would: bind
every member, fetch **every** execution, pull info/metrics/foci for each
one, run plain ``getPR`` for each metric, and do all filtering and
aggregation client-side with its own arithmetic.  No push-down, no
``getPRAgg``, no caching, no concurrency.

It exists for two reasons: the property test compares the planner
pipeline against it on randomized queries, and the benchmark measures
what the push-down plan saves relative to it.  Keep it boring and
obviously correct — any cleverness belongs in the planner, not here.
"""

from __future__ import annotations

from repro.core.semantic import UNDEFINED_TYPE
from repro.fedquery.ast import Query, QueryError
from repro.fedquery.merge import RAW_COLUMNS, ResultRow, order_rows
from repro.fedquery.parser import parse_query
from repro.fedquery.pushdown import (
    app_matches,
    attrs_match,
    derive_window,
    exec_matches,
    filter_foci,
    focus_allowlist,
    matches_value,
    split_predicates,
)


def naive_query(query: str | Query, members: dict[str, object]) -> list[ResultRow]:
    """Evaluate *query* over *members* (name -> Application binding).

    Implements the same language semantics as the planned pipeline —
    attribute predicates and GROUP BY keys refer to published query
    params; a group must have matching results for every selected
    metric — but shares none of its execution machinery.
    """
    if isinstance(query, str):
        query = parse_query(query)
    else:
        query = query.validate()
    unknown = [name for name in query.sources if name not in members]
    if unknown:
        raise QueryError(
            f"unknown application(s) {unknown} (published: {', '.join(members)})"
        )
    split = split_predicates(query)
    start, end = derive_window(split.time)
    allowlist = focus_allowlist(split.focus)
    result_type = str(split.type.value) if split.type is not None else UNDEFINED_TYPE
    group_attrs = query.group_attributes()

    #: group key tuple -> metric -> list of matching values
    groups: dict[tuple[str, ...], dict[str, list[float]]] = {}
    raw_rows: list[ResultRow] = []

    for app in sorted(members):
        if query.sources and app not in query.sources:
            continue
        if not app_matches(app, split.app):
            continue
        binding = members[app]
        params = binding.exec_query_params()
        if any(pred.field not in params for pred in split.attrs):
            continue
        if any(attr not in params for attr in group_attrs):
            continue
        for execution in binding.all_executions():
            exec_id = _execution_id(execution)
            if not exec_matches(exec_id, split.exec_ids):
                continue
            info = dict(execution.info())
            if not attrs_match(info, split.attrs):
                continue
            foci = filter_foci(execution.foci(), allowlist)
            if not foci:
                continue
            available = execution.metrics()
            for metric in query.metrics:
                if metric not in available:
                    continue
                for result in execution.get_pr(metric, foci, start, end, result_type):
                    if not matches_value(result.value, split.value):
                        continue
                    if query.is_aggregate:
                        key = _group_key(query, app, exec_id, info, result.focus)
                        if key is None:
                            continue
                        groups.setdefault(key, {}).setdefault(metric, []).append(
                            result.value
                        )
                    else:
                        raw_rows.append(
                            ResultRow(
                                RAW_COLUMNS,
                                (
                                    app,
                                    exec_id,
                                    result.metric,
                                    result.focus,
                                    result.result_type,
                                    result.start,
                                    result.end,
                                    result.value,
                                ),
                            )
                        )

    if not query.is_aggregate:
        return order_rows(raw_rows, query)

    columns = query.output_columns
    rows: list[ResultRow] = []
    for key, metrics in groups.items():
        values: list[object] = list(key)
        complete = True
        for item in query.aggregates:
            matched = metrics.get(item.metric)
            if not matched:
                complete = False
                break
            values.append(_aggregate(item.func, matched))
        if complete:
            rows.append(ResultRow(columns, tuple(values)))
    return order_rows(rows, query)


def _execution_id(execution) -> str:
    if execution.is_local:
        return execution.exec_id
    from repro.fedquery.executor import _sde_values

    values = _sde_values(execution.find_service_data("name:execId"))
    if not values:
        raise QueryError(f"execution {execution.gsh} publishes no execId")
    return values[0]


def _group_key(
    query: Query, app: str, exec_id: str, info: dict[str, str], focus: str
) -> tuple[str, ...] | None:
    key: list[str] = []
    for name in query.group_by:
        if name == "app":
            key.append(app)
        elif name == "exec":
            key.append(exec_id)
        elif name == "focus":
            key.append(focus)
        else:
            stored = info.get(name)
            if stored is None:
                return None
            key.append(stored)
    return tuple(key)


def _aggregate(func: str, values: list[float]) -> object:
    if func == "count":
        return len(values)
    if func == "sum":
        return sum(values)
    if func == "mean":
        return sum(values) / len(values)
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    raise QueryError(f"unknown aggregate function {func!r}")
