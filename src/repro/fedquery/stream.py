"""Streamed federated execution: bounded-memory k-way member merge.

The bulk executor buffers every member task's whole payload before
merging; one large member therefore sets the peak memory for the whole
query.  The streaming path keeps memory bounded end to end:

* each member execution's rows are produced by a worker thread into a
  **bounded chunk queue** (:class:`MemberStream`) — at most
  ``chunk_depth`` chunks are ever outstanding per member, so a fast
  store cannot run ahead of a slow consumer (backpressure);
* producers emit rows **pre-sorted** by the canonical row order (the
  server-side ``ordered`` cursor contract plus metric-sorted sub-query
  concatenation), so a heap-based **k-way merge** across members yields
  the exact sequence the bulk path's global sort produces — byte
  identical, holding one row per member instead of the full result;
* the consumer-facing :class:`StreamedResult` finalizes bookkeeping on
  exhaustion (memoization, error accounting) and releases all member
  streams on early close.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from heapq import heappop, heappush
from typing import Callable, Iterable, Iterator

from repro.fedquery.ast import QueryError
from repro.fedquery.merge import ResultRow, row_sort_key

#: rows per chunk a streamed member task moves at a time
DEFAULT_CHUNK_ROWS = 256

#: bounded queue depth per member stream (the backpressure window)
DEFAULT_CHUNK_DEPTH = 2

#: estimated per-execution rows at which the engine switches a member
#: call from bulk getPR to a chunked cursor
DEFAULT_STREAM_THRESHOLD_ROWS = 512

#: streamed results larger than this (packed bytes) are not memoized —
#: accumulating them for the plan cache would defeat bounded memory
DEFAULT_MEMOIZE_MAX_BYTES = 512 * 1024


class MemberStream:
    """One member execution's sorted row stream, with backpressure.

    ``produce`` is a generator function ``produce(stop_event)`` yielding
    row chunks (lists of :class:`ResultRow`); it runs on this stream's
    worker thread and blocks whenever ``chunk_depth`` chunks are already
    queued.  The consumer pulls rows one at a time with
    :meth:`next_row`; ``None`` means the stream is finished — check
    :attr:`failure` to distinguish exhaustion from a mid-stream error.

    The bounded buffer is a condition-signalled deque: a producer blocked
    on a full window and a consumer blocked on an empty one wake each
    other (and :meth:`close`) immediately — no polling loop, no CPU burn
    while blocked, no latency tax on early close.

    ``runner`` (optional) hands the producer body to an external
    executor — the engine passes the fan-out scheduler's elastic stream
    lane, so producers reuse lane threads instead of costing one fresh
    thread per member stream.  Without it the stream owns a dedicated
    thread, exactly as before.
    """

    def __init__(
        self,
        label: str,
        produce: Callable[[threading.Event], Iterable[list[ResultRow]]],
        chunk_depth: int = DEFAULT_CHUNK_DEPTH,
        runner: Callable[[Callable[[], None]], None] | None = None,
    ) -> None:
        if chunk_depth < 1:
            raise ValueError(f"chunk_depth must be >= 1, got {chunk_depth}")
        self.label = label
        self._produce = produce
        self._depth = chunk_depth
        self._cond = threading.Condition()
        self._chunks: deque[list[ResultRow]] = deque()
        self._stop = threading.Event()
        self._producer_done = False
        self._buffer: list[ResultRow] = []
        self._index = 0
        self._finished = False
        self._started = False
        #: the producer's exception, visible before the final None
        self.failure: BaseException | None = None
        self._runner = runner
        self._producer_ident: int | None = None
        self._thread: threading.Thread | None = None
        if runner is None:
            self._thread = threading.Thread(
                target=self._run, name=f"fedstream-{label}", daemon=True
            )

    def start(self) -> None:
        self._started = True
        if self._thread is not None:
            self._thread.start()
        else:
            self._runner(self._run)

    # ------------------------------------------------------ producer side
    def _run(self) -> None:
        self._producer_ident = threading.get_ident()
        try:
            for chunk in self._produce(self._stop):
                if self._stop.is_set():
                    break
                if chunk and not self._enqueue(list(chunk)):
                    break
        except BaseException as exc:  # noqa: BLE001 - forwarded to consumer
            self.failure = exc
        finally:
            with self._cond:
                self._producer_done = True
                self._cond.notify_all()

    def _enqueue(self, chunk: list[ResultRow]) -> bool:
        """Blocking put, woken promptly by the consumer or :meth:`close`."""
        with self._cond:
            while len(self._chunks) >= self._depth and not self._stop.is_set():
                self._cond.wait()
            if self._stop.is_set():
                return False
            self._chunks.append(chunk)
            self._cond.notify_all()
            return True

    # ------------------------------------------------------ consumer side
    def next_row(self) -> ResultRow | None:
        if self._index >= len(self._buffer):
            with self._cond:
                while True:
                    if self._chunks:
                        self._buffer = self._chunks.popleft()
                        self._index = 0
                        self._cond.notify_all()  # window freed: wake producer
                        break
                    if self._finished or self._producer_done:
                        self._finished = True
                        return None
                    self._cond.wait()
        row = self._buffer[self._index]
        self._index += 1
        return row

    def close(self) -> None:
        """Stop the producer and drop whatever is still queued.

        Prompt: a producer blocked on a full window is woken by the
        condition immediately (it used to sleep out a 50 ms poll tick per
        member before noticing).
        """
        self._stop.set()
        with self._cond:
            self._finished = True
            self._chunks.clear()
            self._buffer = []
            self._index = 0
            self._cond.notify_all()
        if self._thread is not None:
            if self._thread.is_alive() and self._thread is not threading.current_thread():
                self._thread.join(timeout=2.0)
        elif self._started and self._producer_ident != threading.get_ident():
            # pooled producer: no thread to join — wait (bounded) for it
            # to notice the stop flag and drain out of its lane
            deadline = time.monotonic() + 2.0
            with self._cond:
                while not self._producer_done:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=min(remaining, 0.05))


def merge_streams(
    streams: list[MemberStream],
    on_error: Callable[[BaseException], None],
) -> Iterator[ResultRow]:
    """Heap k-way merge of sorted member streams.

    Yields rows in the canonical :func:`row_sort_key` order.  A stream
    that fails mid-way is dropped after its already-merged rows (the
    fan-out degradation contract: surviving members still answer),
    except :class:`QueryError`, which is a hard protocol failure and
    propagates.
    """

    def advance(stream: MemberStream) -> ResultRow | None:
        row = stream.next_row()
        if row is None and stream.failure is not None:
            failure, stream.failure = stream.failure, None
            if isinstance(failure, QueryError):
                raise failure
            on_error(failure)
        return row

    heap: list[tuple[tuple, int, ResultRow]] = []
    for index, stream in enumerate(streams):
        row = advance(stream)
        if row is not None:
            heappush(heap, (row_sort_key(row), index, row))
    while heap:
        _, index, row = heappop(heap)
        yield row
        nxt = advance(streams[index])
        if nxt is not None:
            heappush(heap, (row_sort_key(nxt), index, nxt))


class StreamedResult:
    """Iterator of result rows from ``FederationEngine.execute(stream=True)``.

    Mirrors :class:`~repro.fedquery.executor.QueryResult`'s metadata
    (``columns``/``cached``/``plan``/``stats``/``errors``) but delivers
    rows incrementally.  ``errors`` and ``stats`` keep filling in while
    the stream drains; they are final once iteration completes
    (``complete`` is True).  Closing early — explicitly, via the context
    manager, or by dropping out of a ``for`` loop and calling
    :meth:`close` — releases every member stream; a partially drained
    result is never memoized.
    """

    def __init__(
        self,
        columns: tuple[str, ...],
        source: Iterator[ResultRow],
        plan=None,
        cached: bool = False,
        stats: dict | None = None,
        errors: list[str] | None = None,
        on_close: Callable[[], None] | None = None,
    ) -> None:
        self.columns = columns
        self.plan = plan
        self.cached = cached
        self.stats = stats if stats is not None else {}
        self.errors = errors if errors is not None else []
        self._source = iter(source)
        self._on_close = on_close
        self.complete = False
        self.closed = False

    def __iter__(self) -> "StreamedResult":
        return self

    def __next__(self) -> ResultRow:
        try:
            return next(self._source)
        except StopIteration:
            self.complete = True
            self.close()
            raise

    def rows(self) -> list[ResultRow]:
        """Drain the remainder into a list (the bulk-compatible form)."""
        return list(self)

    def close(self) -> None:
        """Release member streams; safe to call repeatedly."""
        if self.closed:
            return
        self.closed = True
        closer = getattr(self._source, "close", None)
        if closer is not None:
            closer()  # GeneratorExit runs the producer-side finally blocks
        callback, self._on_close = self._on_close, None
        if callback is not None:
            callback()

    def __enter__(self) -> "StreamedResult":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
