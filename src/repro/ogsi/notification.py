"""Notification PortTypes (push and pull delivery).

The thesis's future-work section proposes notifications for data-store
updates, deliverable "using either a 'push' or a 'pull' model".  Both are
implemented:

* **push** — a :class:`NotificationSourceMixin` keeps subscriptions and,
  on ``notify``, invokes ``DeliverNotification`` on each sink's stub
  through the normal transport (real SOAP round trip per delivery);
* **pull** — a :class:`PullNotificationSink` deployed next to the client
  queues deliveries; the client drains it with ``poll()``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.ogsi.dispatch import suspend_dispatch
from repro.ogsi.gsh import GridServiceHandle, GshError
from repro.ogsi.porttypes import NOTIFICATION_SINK_PORTTYPE
from repro.ogsi.service import GridServiceBase


@dataclass
class Subscription:
    subscription_id: str
    topic: str
    sink_handle: str
    expires_at: float


class NotificationSourceMixin:
    """Mixin adding NotificationSource operations to a Grid service.

    The host class must be a :class:`GridServiceBase` (needs
    ``container``/``require_active``).  Topics are plain strings; a
    subscription to topic ``"*"`` receives everything.
    """

    def _init_notification_source(self) -> None:
        self._subscriptions: dict[str, Subscription] = {}
        self._subscription_counter = 0
        #: deliveries that raised but whose subscription was kept
        self.delivery_failures = 0

    def SubscribeToNotificationTopic(
        self, topic: str, sinkHandle: str, expirationTime: float
    ) -> str:
        self.require_active()  # type: ignore[attr-defined]
        if not topic:
            raise ValueError("topic may not be empty")
        GridServiceHandle.parse(sinkHandle)  # validate
        self._subscription_counter += 1
        sub_id = f"sub-{self._subscription_counter}"
        expires = float("inf") if expirationTime <= 0 else float(expirationTime)
        self._subscriptions[sub_id] = Subscription(sub_id, topic, sinkHandle, expires)
        return sub_id

    def UnsubscribeFromNotificationTopic(self, subscriptionId: str) -> None:
        self.require_active()  # type: ignore[attr-defined]
        self._subscriptions.pop(subscriptionId, None)

    def notify(self, topic: str, message: str) -> int:
        """Push *message* to all live subscribers of *topic*.

        Returns the number of successful deliveries.  Two failure modes
        are distinguished:

        * the sink *handle* no longer resolves to a live service
          (:class:`GshError`) — the sink is dead, so the subscription is
          dropped (the soft-state convention);
        * anything else — a transient bind problem or a delivery that
          raises — keeps the subscription and counts the failure in
          :attr:`delivery_failures`.  A sink that is merely unlucky
          (container busy, flaky transport) must not lose its
          subscription.

        Expired subscriptions are pruned on every pass, whether or not
        their topic matches.  Deliveries are SOAP round trips into other
        containers, so they run under
        :func:`~repro.ogsi.dispatch.suspend_dispatch`: every dispatch
        gate the calling thread holds is released for the duration —
        two containers notifying each other's sinks can therefore never
        deadlock on each other's dispatch state.
        """
        container = self.container  # type: ignore[attr-defined]
        if container is None:
            raise RuntimeError("source is not deployed")
        now = container.clock.now()
        targets: list[Subscription] = []
        for sub_id, sub in list(self._subscriptions.items()):
            if sub.expires_at <= now:
                self._subscriptions.pop(sub_id, None)
                continue
            if sub.topic in ("*", topic):
                targets.append(sub)
        delivered = 0
        environment = container.environment
        with suspend_dispatch():
            for sub in targets:
                try:
                    stub = environment.stub_for_handle(
                        sub.sink_handle, NOTIFICATION_SINK_PORTTYPE
                    )
                except GshError:
                    # dead sink: the handle no longer names a live service
                    self._subscriptions.pop(sub.subscription_id, None)
                    continue
                except Exception:
                    self.delivery_failures += 1
                    continue
                try:
                    stub.DeliverNotification(topic, message)
                    delivered += 1
                except Exception:
                    self.delivery_failures += 1
        return delivered

    def notify_async(self, topic: str, message: str) -> None:
        """Queue a :meth:`notify` on the environment's reactor.

        Returns immediately; delivery happens on the reactor thread with
        no dispatch state held at all.  Use
        ``environment.reactor.drain()`` in tests to wait for completion.
        """
        container = self.container  # type: ignore[attr-defined]
        if container is None:
            raise RuntimeError("source is not deployed")
        container.environment.reactor.call_soon(self.notify, topic, message)

    def subscription_count(self) -> int:
        return len(self._subscriptions)


class NotificationSinkBase(GridServiceBase):
    """A sink that hands deliveries to a callback."""

    porttype = NOTIFICATION_SINK_PORTTYPE

    def __init__(self, callback=None) -> None:
        super().__init__()
        self.callback = callback

    def DeliverNotification(self, topic: str, message: str) -> None:
        self.require_active()
        if self.callback is not None:
            self.callback(topic, message)


class PullNotificationSink(NotificationSinkBase):
    """A sink that queues deliveries for client polling (the pull model)."""

    def __init__(self, max_queue: int = 1024) -> None:
        super().__init__(callback=None)
        self.max_queue = max_queue
        self._queue: deque[tuple[str, str]] = deque()
        self.dropped = 0

    def DeliverNotification(self, topic: str, message: str) -> None:
        self.require_active()
        if len(self._queue) >= self.max_queue:
            self._queue.popleft()  # O(1) overflow drop
            self.dropped += 1
        self._queue.append((topic, message))

    def poll(self, max_items: int | None = None) -> list[tuple[str, str]]:
        """Drain up to *max_items* queued (topic, message) pairs."""
        if max_items is None or max_items >= len(self._queue):
            items, self._queue = list(self._queue), deque()
            return items
        return [self._queue.popleft() for _ in range(max_items)]

    def pending(self) -> int:
        return len(self._queue)
