#!/usr/bin/env python
"""Replica distribution and the scalability experiment (Figure 12).

Shows the Manager interleaving Execution instance creation across two
replica hosts ("ID 1 on Host A, ID 2 on Host B, ..." — thesis §5.3.1.4),
then runs a reduced Figure 12 sweep and prints the table and chart.

Run: ``python examples/replica_scalability.py``
"""

from repro.core import PPerfGridClient, PPerfGridSite, SiteConfig
from repro.core.prcache import NullCache
from repro.datastores import generate_hpl
from repro.experiments import run_scalability_experiment
from repro.mapping import HplRdbmsWrapper
from repro.ogsi import GridEnvironment
from repro.ogsi.gsh import GridServiceHandle
from repro.simnet.host import SimHost


def show_interleaving() -> None:
    env = GridEnvironment()
    wrapper = HplRdbmsWrapper(generate_hpl(num_executions=32).to_database())
    site = PPerfGridSite(
        env,
        SiteConfig("hostA:8080", "HPL", cache_factory=NullCache),
        wrapper,
        host=SimHost("host-A"),
    )
    site.add_replica("hostB:8080", host=SimHost("host-B"))

    client = PPerfGridClient(env)
    app = client.bind(site.factory_url, "HPL")
    executions = app.all_executions()

    print("Manager interleaving of Execution instances across replica hosts:")
    for execution in executions[:8]:
        gsh = GridServiceHandle.parse(execution.gsh)
        print(f"  execution instance {gsh.instance_id:>2} -> {gsh.authority}")
    counts = site.manager.assignment_counts()
    print("Assignment totals:")
    for factory, n in counts.items():
        print(f"  {GridServiceHandle.parse(factory).authority}: {n} instances")
    print(f"Manager instance-cache entries: {site.manager.cached_count()}")
    # A second identical query hits the Manager's GSH cache — no new
    # instances are created.
    before = site.manager.creations
    app.all_executions()
    print(f"Instances created by a repeated query: {site.manager.creations - before}")


def main() -> None:
    show_interleaving()
    print("\nRunning the Figure 12 sweep (reduced rounds for demo speed)...\n")
    result = run_scalability_experiment(
        counts=(2, 4, 8, 16, 32), repeats=10, rounds=2
    )
    print(result.to_table())
    print()
    print(result.to_chart())


if __name__ == "__main__":
    main()
