"""One-command reproduction report.

``python -m repro.experiments.report [--quick] [--out FILE]`` regenerates
every thesis artifact (Tables 1-5, Figure 12) plus the three ablations
and writes a single text report.  ``--quick`` shrinks datasets and query
counts for a fast smoke run (~15 s); the default matches the paper's
parameters (~2 min).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.ablations import (
    run_cache_policy_ablation,
    run_distribution_ablation,
    run_network_contention_ablation,
    run_serialization_ablation,
)
from repro.experiments.caching import run_caching_experiment
from repro.experiments.common import GridScale
from repro.experiments.overhead import run_overhead_experiment
from repro.experiments.porttypes import render_table1, render_table2, render_table3
from repro.experiments.scalability import run_scalability_experiment


def generate_report(quick: bool = False) -> str:
    """Run every experiment and return the combined report text."""
    scale = GridScale.tiny() if quick else GridScale.paper()
    sections: list[str] = [
        "PPerfGrid reproduction report",
        "=" * 70,
        f"mode: {'quick (reduced datasets)' if quick else 'paper-scale'}",
        "",
        render_table1(),
        "",
        render_table2(),
        "",
        render_table3(),
        "",
    ]

    t0 = time.perf_counter()
    if quick:
        overhead = run_overhead_experiment(scale, hpl_queries=10, rma_queries=10, smg98_queries=5)
    else:
        overhead = run_overhead_experiment(scale)
    sections += [overhead.to_table(), f"(ran in {time.perf_counter() - t0:.1f}s)", ""]

    t0 = time.perf_counter()
    if quick:
        scalability = run_scalability_experiment(counts=(2, 4, 8), repeats=3, rounds=2)
    else:
        scalability = run_scalability_experiment(
            counts=(2, 4, 8, 16, 32, 64, 124), repeats=10, rounds=3
        )
    sections += [
        scalability.to_table(),
        "",
        scalability.to_chart(),
        f"(ran in {time.perf_counter() - t0:.1f}s)",
        "",
    ]

    t0 = time.perf_counter()
    caching = run_caching_experiment(scale, num_queries=6 if quick else 30)
    sections += [caching.to_table(), f"(ran in {time.perf_counter() - t0:.1f}s)", ""]

    serialization = run_serialization_ablation(
        payload_sizes=(1, 100, 1000) if quick else (1, 10, 100, 1000, 5000),
        trials=5 if quick else 20,
    )
    sections += [serialization.to_table(), ""]
    homogeneous = run_distribution_ablation(host_factors=(1.0, 1.0))
    heterogeneous = run_distribution_ablation(
        host_factors=(1.0, 3.0), scenario="heterogeneous (3x slower host B)"
    )
    sections += [homogeneous.to_table(), "", heterogeneous.to_table(), ""]
    sections += [
        run_cache_policy_ablation(skewed=True).to_table(),
        "",
        run_cache_policy_ablation(skewed=False).to_table(),
        "",
        run_network_contention_ablation().to_table(),
        "",
    ]
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced datasets (~15s)")
    parser.add_argument("--out", default=None, help="write the report to a file")
    args = parser.parse_args(argv)
    report = generate_report(quick=args.quick)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"report written to {args.out}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
