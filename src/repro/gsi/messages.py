"""Message-level security: signature headers and container verifiers."""

from __future__ import annotations

import hashlib
import hmac
from typing import Callable

from repro.gsi.credentials import CertificateAuthority, Credential, CredentialError, ProxyCredential
from repro.simnet.clock import Clock
from repro.xmlkit import Element, QName

GSI_NS = "urn:ppg:gsi"

_SIGNATURE_TAG = QName(GSI_NS, "Signature")


def _body_digest(request: bytes) -> str:
    return hashlib.sha256(request).hexdigest()


def sign_request(
    credential: Credential | ProxyCredential, operation: str, request: bytes
) -> Element:
    """Build a signature header element for one request.

    The signed statement covers the operation name and a digest of the
    (unsigned) request body, so a header cannot be replayed onto a
    different call.
    """
    digest = _body_digest(request)
    statement = f"{credential.identity}|{operation}|{digest}".encode()
    header = Element(_SIGNATURE_TAG)
    header.declare("gsi", GSI_NS)
    header.subelement(QName(GSI_NS, "Identity"), credential.identity)
    header.subelement(QName(GSI_NS, "Operation"), operation)
    header.subelement(QName(GSI_NS, "Digest"), digest)
    header.subelement(QName(GSI_NS, "Value"), credential.sign(statement))
    return header


def signature_header_provider(
    credential: Credential | ProxyCredential,
) -> Callable[[str, bytes], list[Element]]:
    """A headers provider for :func:`repro.wsdl.make_stub`."""

    def provide(operation: str, provisional_request: bytes) -> list[Element]:
        return [sign_request(credential, operation, provisional_request)]

    return provide


def make_verifier(
    ca: CertificateAuthority, clock: Clock, *, required: bool = True
) -> Callable[[list[Element], bytes], None]:
    """A container-side verifier checking the signature header.

    ``required=False`` admits unsigned requests but still validates any
    signature present (the migration posture).  The digest check is
    structural only — the provisional encoding the client signs differs
    from the final bytes (it lacks the header itself), so the verifier
    recomputes the HMAC over the *claimed* digest, catching identity
    forgery and operation splicing, which is what the experiments need.
    """

    def verify(headers: list[Element], request: bytes) -> None:
        signature = None
        for header in headers:
            if header.tag == _SIGNATURE_TAG:
                signature = header
                break
        if signature is None:
            if required:
                raise CredentialError("request is not signed")
            return
        identity_el = signature.find("Identity")
        operation_el = signature.find("Operation")
        digest_el = signature.find("Digest")
        value_el = signature.find("Value")
        if None in (identity_el, operation_el, digest_el, value_el):
            raise CredentialError("malformed signature header")
        identity = identity_el.text()  # type: ignore[union-attr]
        operation = operation_el.text()  # type: ignore[union-attr]
        digest = digest_el.text()  # type: ignore[union-attr]
        value = value_el.text()  # type: ignore[union-attr]
        key = ca.key_for_identity(identity, clock.now())
        statement = f"{identity}|{operation}|{digest}".encode()
        expected = hmac.new(key, statement, hashlib.sha256).hexdigest()
        if not hmac.compare_digest(expected, value):
            raise CredentialError(f"bad signature for identity {identity!r}")

    return verify
