"""Benchmark fixtures: paper-scale grid and result-file helpers.

Each table/figure bench regenerates its artifact, asserts the paper's
*shape* (orderings, speedup bands), and writes the rendered table to
``benchmarks/results/`` so the output survives pytest's capture.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.common import GridScale, build_grid

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, text: str) -> None:
    """Persist a regenerated artifact and echo it (visible with -s)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(f"\n[written to {path}]\n{text}")


def write_json(name: str, payload: dict) -> None:
    """Machine-readable companion artifact: ``BENCH_<name>.json``.

    Key metrics and speedup ratios only — the rendered table stays in
    the ``write_result`` text file; this one is for dashboards and CI
    trend tracking.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\n[written to {path}]")


@pytest.fixture(scope="session")
def paper_grid_uncached():
    """Paper-scale grid with PR caching disabled (Table 4 arm)."""
    grid = build_grid(GridScale.paper(), caching=False)
    yield grid
    grid.cleanup()


@pytest.fixture(scope="session")
def paper_grid_cached():
    """Paper-scale grid with PR caching enabled."""
    grid = build_grid(GridScale.paper(), caching=True)
    yield grid
    grid.cleanup()
