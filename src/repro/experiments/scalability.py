"""Figure 12 — scalability via replica-host distribution.

Thesis method (§6.5): a client queries Performance Results from N
Execution instances of the HPL source (N in {2,4,8,16,32,64,124}), each
query in its own thread and repeated 10 times per thread to create load;
the whole set runs 10 times.  The *non-optimized* arm hosts every
instance on one machine; the *optimized* arm lets the Manager interleave
instances across two replica hosts.  Mean speedup in the thesis: 2.14.

Reproduction method: queries execute for real through the full SOAP
stack (caching off), and each query's measured service cost is replayed
onto simulated single-CPU host timelines — per-host work serializes,
hosts run in parallel, a fast-Ethernet network model charges each
response transfer.  The replay substitutes for Java threads because
CPython threads cannot express two genuinely parallel hosts in one
process (see DESIGN.md §5); everything the speedup depends on — who runs
which query, and that a host runs one query at a time — is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.charts import ascii_line_chart
from repro.analysis.stats import mean, relative_change, speedup
from repro.analysis.tables import format_table
from repro.core.client import PPerfGridClient
from repro.core.prcache import NullCache
from repro.core.semantic import UNDEFINED_TYPE
from repro.core.session import PPerfGridSite, SiteConfig
from repro.datastores.generators.hpl import generate_hpl
from repro.mapping.rdbms import HplRdbmsWrapper
from repro.ogsi.container import GridEnvironment
from repro.ogsi.gsh import GridServiceHandle
from repro.simnet.host import SimHost
from repro.simnet.network import NetworkModel

DEFAULT_COUNTS = (2, 4, 8, 16, 32, 64, 124)


@dataclass
class ScalabilityResult:
    counts: list[int]
    nonoptimized_s: list[float]
    optimized_s: list[float]
    repeats: int
    rounds: int
    mean_speedup: float = field(init=False)

    def __post_init__(self) -> None:
        self.mean_speedup = mean(
            [speedup(a, b) for a, b in zip(self.nonoptimized_s, self.optimized_s)]
        )

    def speedups(self) -> list[float]:
        return [speedup(a, b) for a, b in zip(self.nonoptimized_s, self.optimized_s)]

    def relative_changes(self) -> list[float]:
        return [
            relative_change(a, b) for a, b in zip(self.nonoptimized_s, self.optimized_s)
        ]

    def to_table(self) -> str:
        headers = ["Executions", "Non-Optimized (ms)", "Optimized (ms)", "Relative Change", "Speedup"]
        rows = []
        for i, count in enumerate(self.counts):
            rows.append(
                [
                    count,
                    self.nonoptimized_s[i] * 1000,
                    self.optimized_s[i] * 1000,
                    f"{self.relative_changes()[i]:.2f}%",
                    f"{self.speedups()[i]:.2f}",
                ]
            )
        table = format_table(headers, rows, title="Figure 12: PPerfGrid Scalability")
        return table + f"\nMean speedup: {self.mean_speedup:.2f}"

    def to_chart(self) -> str:
        return ascii_line_chart(
            list(self.counts),
            {
                "Optimized": [t * 1000 for t in self.optimized_s],
                "Non-Optimized": [t * 1000 for t in self.nonoptimized_s],
            },
            title="Figure 12: Scalability (milliseconds vs # Execution GSs in query)",
            y_label="ms",
        )


def _build_hpl_grid(
    num_executions: int, replicas: int
) -> tuple[GridEnvironment, PPerfGridClient, PPerfGridSite, list[SimHost]]:
    """One HPL site on host A, plus ``replicas - 1`` replica hosts."""
    environment = GridEnvironment()
    hosts = [SimHost("host-A")]
    wrapper = HplRdbmsWrapper(generate_hpl(num_executions=num_executions).to_database())
    site = PPerfGridSite(
        environment,
        SiteConfig(
            "hostA.pdx.edu:8080",
            "HPL",
            timed_mapping=False,
            cache_factory=NullCache,
        ),
        wrapper,
        host=hosts[0],
    )
    for i in range(1, replicas):
        letter = chr(ord("A") + i)
        host = SimHost(f"host-{letter}")
        hosts.append(host)
        site.add_replica(f"host{letter}.pdx.edu:8080", host=host)
    client = PPerfGridClient(environment)
    return environment, client, site, hosts


def run_scalability_experiment(
    counts: tuple[int, ...] | list[int] = DEFAULT_COUNTS,
    repeats: int = 10,
    rounds: int = 10,
    replicas: int = 2,
    network: NetworkModel | None = None,
) -> ScalabilityResult:
    """Run both arms of the Figure 12 experiment.

    ``repeats`` x ``rounds`` = queries per Execution instance (paper:
    10 x 10 = 100).  ``replicas`` is the optimized arm's host count
    (paper: 2).

    Each query executes once for real through the full SOAP stack and its
    measured cost is replayed onto *both* placements — all on host A
    (non-optimized) versus the Manager's interleaved assignment
    (optimized) — so the comparison sees identical workloads and the
    speedup reflects placement alone, with natural per-query cost
    variation carried through.
    """
    if max(counts) < 1 or replicas < 2:
        raise ValueError("need at least one execution and two replica hosts")
    network = network or NetworkModel()
    max_count = max(counts)
    environment, client, site, hosts = _build_hpl_grid(max_count, replicas)
    binding = client.bind(site.factory_url, "HPL")
    executions = binding.all_executions()
    # Warm the query path (interpreter caches, lazily built structures) so
    # one-time costs do not land inside the measured samples.
    for execution in executions[: min(8, len(executions))]:
        for _ in range(5):
            execution.get_pr("gflops", ["/Run"], result_type=UNDEFINED_TYPE)
    host_by_authority = {
        container.authority: container.host
        for container in environment.containers()
        if container.host is not None
    }
    recorder = environment.recorder
    clock = environment.clock
    single = SimHost("single-host")
    nonopt: list[float] = []
    opt: list[float] = []
    for count in counts:
        subset = executions[:count]
        single.timeline.reset()
        for host in hosts:
            host.timeline.reset()
        for _ in range(rounds):
            for execution in subset:
                authority = GridServiceHandle.parse(execution.gsh).authority
                assigned = host_by_authority[authority]
                for _ in range(repeats):
                    bytes_before = recorder.bytes_total
                    t0 = clock.now()
                    execution.get_pr("gflops", ["/Run"], result_type=UNDEFINED_TYPE)
                    service_cost = clock.now() - t0
                    moved = recorder.bytes_total - bytes_before
                    transfer = network.round_trip_time(moved // 2, moved - moved // 2)
                    cost = service_cost + transfer
                    single.charge(cost)
                    assigned.charge(cost)
        nonopt.append(single.timeline.busy_until)
        opt.append(max(host.timeline.busy_until for host in hosts))
    return ScalabilityResult(
        counts=list(counts),
        nonoptimized_s=nonopt,
        optimized_s=opt,
        repeats=repeats,
        rounds=rounds,
    )
