"""The HandleMap PortType: GSH -> Grid Service Reference resolution."""

from __future__ import annotations

from repro.ogsi.gsh import GridServiceHandle, GshError
from repro.ogsi.porttypes import HANDLE_MAP_PORTTYPE
from repro.ogsi.service import GridServiceBase


class HandleMapService(GridServiceBase):
    """Resolves handles for services deployed in a known environment.

    The environment is injected at construction (a
    :class:`~repro.ogsi.container.GridEnvironment`); handles naming
    services that are not currently deployed raise, matching OGSI's
    behaviour for stale GSHs.
    """

    porttype = HANDLE_MAP_PORTTYPE

    def __init__(self, environment) -> None:
        super().__init__()
        self.environment = environment

    def FindByHandle(self, handle: str) -> str:
        self.require_active()
        gsh = GridServiceHandle.parse(handle)
        container = self.environment.container_for(gsh.authority)
        if container is None or not container.has_service(gsh):
            raise GshError(f"handle {handle!r} does not resolve to a live service")
        return gsh.endpoint_url()
