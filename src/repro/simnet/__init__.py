"""Simulated grid substrate: clocks, hosts, network model, transports.

The thesis ran on two Sun Ultra 5/10 workstations and a fast-Ethernet
LAN.  This package replaces that hardware with:

* :class:`~repro.simnet.clock.RealClock` / ``VirtualClock`` — time sources;
* :class:`~repro.simnet.metrics.Recorder` — byte/time instrumentation used
  by Table 4 ("total bytes transferred per query");
* :class:`~repro.simnet.host.SimHost` — a single-CPU host whose work is
  serialized on a timeline (the basis of the Figure 12 scalability replay);
* :class:`~repro.simnet.network.NetworkModel` — latency + bandwidth costs;
* :class:`~repro.simnet.transport` — the bytes-in/bytes-out boundary
  between client stubs and service containers.
"""

from repro.simnet.clock import Clock, RealClock, VirtualClock
from repro.simnet.events import EventScheduler, FifoResource, simulate_scalability_des
from repro.simnet.host import HostTimeline, SimHost
from repro.simnet.metrics import Recorder, TimerStats
from repro.simnet.network import NetworkModel
from repro.simnet.transport import (
    Endpoint,
    LoopbackTransport,
    RequestHandler,
    Transport,
    TransportError,
)

__all__ = [
    "Clock",
    "Endpoint",
    "EventScheduler",
    "FifoResource",
    "HostTimeline",
    "simulate_scalability_des",
    "LoopbackTransport",
    "NetworkModel",
    "RealClock",
    "Recorder",
    "RequestHandler",
    "SimHost",
    "TimerStats",
    "Transport",
    "TransportError",
    "VirtualClock",
]
