#!/usr/bin/env python
"""Federating a PerfDMF profile database (thesis §2.4).

"PPerfGrid could be used to expose a PerfDMF profile database for
analysis with performance data from other locations."  Here the same
SMG98 runs exist twice — as a raw Vampir trace (five-table RDBMS) and as
a PerfDMF profile derived from it — published by two sites.  One client
queries both through the identical Execution interface and verifies the
aggregated answers coincide, trace granularity notwithstanding.

Run: ``python examples/perfdmf_federation.py``
"""

from repro.core import PPerfGridClient, PPerfGridSite, SiteConfig, compare_executions
from repro.datastores import generate_smg98
from repro.datastores.perfdmf import profile_from_trace
from repro.mapping import PerfDmfWrapper, Smg98RdbmsWrapper
from repro.ogsi import GridEnvironment


def main() -> None:
    trace = generate_smg98(num_executions=3, intervals_per_execution=4000)
    profile = profile_from_trace(trace)

    env = GridEnvironment()
    trace_site = PPerfGridSite(
        env, SiteConfig("vampir.site:8080", "SMG98"), Smg98RdbmsWrapper(trace.to_database())
    )
    profile_site = PPerfGridSite(
        env,
        SiteConfig("perfdmf.site:8080", "SMG98-PerfDMF"),
        PerfDmfWrapper(profile.to_database()),
    )

    client = PPerfGridClient(env)
    trace_app = client.bind(trace_site.factory_url, "SMG98")
    profile_app = client.bind(profile_site.factory_url, "SMG98-PerfDMF")

    print("Trace store app info:  ", trace_app.app_info()["description"])
    print("Profile store app info:", profile_app.app_info()["description"])

    trace_exec = trace_app.all_executions()[0]
    profile_exec = profile_app.all_executions()[0]

    # Different granularity behind the same interface:
    focus = "/Code/MPI/MPI_Waitall"
    trace_prs = trace_exec.get_pr("time_spent", [focus])
    profile_prs = profile_exec.get_pr("time_spent", [focus])
    print(f"\n{focus} time_spent:")
    print(f"  trace store returned   {len(trace_prs):>5} PRs (one per interval)")
    print(f"  profile store returned {len(profile_prs):>5} PR  (pre-aggregated total)")

    total = sum(pr.value for pr in trace_prs)
    print(f"  trace sum = {total:.6f}s, profile total = {profile_prs[0].value:.6f}s")

    # The comparison layer makes the equivalence one call:
    mpi_foci = [f for f in profile_exec.foci() if "/MPI/" in f]
    comparison = compare_executions(trace_exec, profile_exec, "time_spent", mpi_foci)
    print(f"\nPer-focus trace-vs-profile ratios over {len(mpi_foci)} MPI foci:")
    print(comparison.to_table())
    mismatched = [r.focus for r in comparison.rows if r.ratio and abs(r.ratio - 1) > 1e-9]
    print(f"\nFoci where the two tools disagree: {mismatched or 'none'}")


if __name__ == "__main__":
    main()
