"""The Virtualization Layer: PPerfGrid client, virtual objects, panels.

This is the library form of the thesis's Swing client (Figures 8-11):

* service discovery against the UDDI registry (Figure 8);
* :class:`ApplicationBinding` / :class:`ExecutionBinding` — the virtual
  objects: local stubs through which remote Applications/Executions are
  used "as if they were local objects";
* :class:`ApplicationQueryPanel` / :class:`ExecutionQueryPanel` — the
  batch query tables of Figures 9 and 10, including the future-work
  metric-value filter;
* the local-bypass optimization of §7: a data store co-located with the
  client is accessed directly through its wrapper, skipping the Services
  Layer.
"""

from __future__ import annotations

import os
import threading

from dataclasses import dataclass, field

from typing import Callable, Iterator

from repro.core.semantic import (
    APPLICATION_PORTTYPE,
    EXECUTION_PORTTYPE,
    UNDEFINED_TYPE,
    PerformanceResult,
    StoreStats,
    pr_sort_key,
)
from repro.mapping.base import ApplicationWrapper
from repro.ogsi.container import GridEnvironment
from repro.ogsi.cursor import RESULT_CURSOR_PORTTYPE
from repro.ogsi.porttypes import FACTORY_PORTTYPE
from repro.soap.chunks import ENCODING_XML, WIRE_ENCODINGS, ChunkError, decode_chunk
from repro.soap.faults import SoapFault
from repro.uddi.proxy import OrganizationProxy, ServiceProxy, UddiClient

#: default page size a chunked iterator requests per ``next`` call
DEFAULT_CHUNK_ROWS = 256

#: estimated result rows above which ``stream_pr`` prefers a cursor
#: over one bulk getPR (the stats-driven auto-fallback threshold)
DEFAULT_STREAM_THRESHOLD_ROWS = 512


def default_accept_encodings() -> tuple[str, ...]:
    """Wire encodings a new chunked iterator advertises.

    ``PPG_ACCEPT_ENCODINGS`` (comma-separated) overrides the built-in
    list; setting it to ``xml`` pins every cursor drain in the process
    to the per-row fallback — the CI leg that keeps that path covered.
    """
    override = os.environ.get("PPG_ACCEPT_ENCODINGS")
    if override:
        return tuple(item.strip() for item in override.split(",") if item.strip())
    return WIRE_ENCODINGS


def _parse_pairs(records: list[str]) -> dict[str, str]:
    """Parse ``"name|value"`` records into a dict."""
    out: dict[str, str] = {}
    for record in records:
        name, _, value = record.partition("|")
        out[name] = value
    return out


def _parse_params(records: list[str]) -> dict[str, list[str]]:
    """Parse ``"name|v1|v2|..."`` records into attribute -> values."""
    out: dict[str, list[str]] = {}
    for record in records:
        parts = record.split("|")
        out[parts[0]] = parts[1:]
    return out


class ChunkedResultIterator:
    """Client half of the ResultCursor protocol: a plain iterator.

    Pages through a remote cursor with ``next(maxRows)`` calls, verifies
    chunk sequence numbers, and yields one decoded row at a time —
    client memory stays bounded by one chunk regardless of result size.
    ``decoder`` maps each packed row string to the yielded object
    (identity when omitted).  The cursor is closed automatically when
    the stream is exhausted; close early (or use the context-manager
    form) to release a partially drained cursor without waiting for its
    server-side TTL.

    ``accept_encodings`` is the content-encoding advertisement sent to
    the cursor before the first fetch (default:
    :func:`default_accept_encodings`).  A cursor without a ``negotiate``
    operation — a member predating the columnar format — faults the
    handshake and the iterator falls back to XML rows transparently.
    Once negotiated, the encoding is pinned: a chunk arriving in any
    other encoding is a protocol error.
    """

    def __init__(
        self,
        environment: GridEnvironment,
        cursor_handle: str,
        max_rows: int = DEFAULT_CHUNK_ROWS,
        decoder: Callable[[str], object] | None = None,
        accept_encodings: tuple[str, ...] | None = None,
    ) -> None:
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        self.environment = environment
        self.cursor_handle = cursor_handle
        self.max_rows = max_rows
        self._decoder = decoder
        self._stub = environment.stub_for_handle(cursor_handle, RESULT_CURSOR_PORTTYPE)
        self._buffer: tuple[str, ...] = ()
        self._index = 0
        self._expected_seq = 0
        self._done = False
        self._closed = False
        self.chunks_fetched = 0
        self.rows_fetched = 0
        self.accept_encodings = (
            tuple(accept_encodings)
            if accept_encodings is not None
            else default_accept_encodings()
        )
        self.encoding = self._negotiate()

    def _negotiate(self) -> str:
        """The cursor-create-time handshake (see the class docstring)."""
        if set(self.accept_encodings) <= {ENCODING_XML}:
            return ENCODING_XML  # nothing beyond the baseline: skip the round trip
        try:
            chosen = str(self._stub.negotiate(",".join(self.accept_encodings)))
        except SoapFault:
            # a cursor that does not speak negotiation serves XML rows,
            # exactly as it always has — transparent fallback
            return ENCODING_XML
        if chosen != ENCODING_XML and chosen not in self.accept_encodings:
            self.close()
            raise ChunkError(
                f"cursor {self.cursor_handle} chose encoding {chosen!r}, "
                f"which this client did not advertise {self.accept_encodings}"
            )
        return chosen

    def _fetch(self) -> None:
        payload = list(self._stub.next(self.max_rows))
        try:
            envelope = decode_chunk(payload)
            if envelope.encoding != self.encoding:
                raise ChunkError(
                    f"cursor {self.cursor_handle} switched encoding mid-stream: "
                    f"chunk {envelope.seq} arrived as {envelope.encoding!r}, "
                    f"negotiated {self.encoding!r}"
                )
            if envelope.seq != self._expected_seq:
                raise ChunkError(
                    f"cursor {self.cursor_handle} returned chunk {envelope.seq}, "
                    f"expected {self._expected_seq} (missed or replayed fetch)"
                )
        except ChunkError:
            # a broken stream cannot be resynchronized — destroy the
            # server-side cursor now instead of leaving it to linger
            # until the TTL sweep reclaims it
            self.close()
            raise
        self._expected_seq += 1
        self._buffer = envelope.rows
        self._index = 0
        self._done = envelope.done
        self.chunks_fetched += 1
        self.rows_fetched += len(envelope.rows)

    def __iter__(self) -> "ChunkedResultIterator":
        return self

    def __next__(self) -> object:
        while self._index >= len(self._buffer):
            if self._done or self._closed:
                self.close()
                raise StopIteration
            self._fetch()
        row = self._buffer[self._index]
        self._index += 1
        return self._decoder(row) if self._decoder is not None else row

    def close(self) -> None:
        """Release the server-side cursor (idempotent, best-effort).

        Best-effort because the cursor may already be gone — expired by
        TTL, or reclaimed after a server restart — and tearing down an
        iterator must not raise for it.
        """
        if self._closed:
            return
        self._closed = True
        self._buffer = ()
        try:
            self._stub.close()
        except Exception:
            pass

    def __enter__(self) -> "ChunkedResultIterator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ExecutionBinding:
    """A virtual Execution object (remote, via stub)."""

    def __init__(self, environment: GridEnvironment, gsh: str) -> None:
        self.environment = environment
        self.gsh = gsh
        self.stub = environment.pooled_stub_for_handle(gsh, EXECUTION_PORTTYPE)

    @property
    def is_local(self) -> bool:
        return False

    def info(self) -> dict[str, str]:
        return _parse_pairs(self.stub.getInfo())

    def foci(self) -> list[str]:
        return list(self.stub.getFoci())

    def metrics(self) -> list[str]:
        return list(self.stub.getMetrics())

    def types(self) -> list[str]:
        return list(self.stub.getTypes())

    def time_range(self) -> tuple[float, float]:
        start, end = self.stub.getTimeStartEnd()
        return (float(start), float(end))

    def get_pr(
        self,
        metric: str,
        foci: list[str],
        start: float | None = None,
        end: float | None = None,
        result_type: str = UNDEFINED_TYPE,
    ) -> list[PerformanceResult]:
        """Query Performance Results (the Table 4 "total query time" path)."""
        if start is None or end is None:
            t0, t1 = self.time_range()
            start = t0 if start is None else start
            end = t1 if end is None else end
        with self.environment.recorder.time("virtualization.getPR"):
            packed = self.stub.getPR(metric, list(foci), repr(start), repr(end), result_type)
        return [PerformanceResult.unpack(p) for p in packed]

    def get_pr_chunked(
        self,
        metric: str,
        foci: list[str],
        start: float | None = None,
        end: float | None = None,
        result_type: str = UNDEFINED_TYPE,
        max_rows: int = DEFAULT_CHUNK_ROWS,
        ordered: bool = False,
        accept_encodings: tuple[str, ...] | None = None,
    ) -> ChunkedResultIterator:
        """Open a ResultCursor over the query and return its iterator.

        The returned :class:`ChunkedResultIterator` yields
        :class:`PerformanceResult` objects one chunk at a time; close it
        early to release a partially drained cursor.
        ``accept_encodings`` is the wire-encoding advertisement for the
        cursor handshake (None: the client default).
        """
        if start is None or end is None:
            t0, t1 = self.time_range()
            start = t0 if start is None else start
            end = t1 if end is None else end
        with self.environment.recorder.time("virtualization.getPRChunked"):
            handle = self.stub.getPRChunked(
                metric, list(foci), repr(start), repr(end), result_type, bool(ordered)
            )
        return ChunkedResultIterator(
            self.environment, handle, max_rows=max_rows,
            decoder=PerformanceResult.unpack,
            accept_encodings=accept_encodings,
        )

    def stream_pr(
        self,
        metric: str,
        foci: list[str],
        start: float | None = None,
        end: float | None = None,
        result_type: str = UNDEFINED_TYPE,
        max_rows: int = DEFAULT_CHUNK_ROWS,
        threshold_rows: int = DEFAULT_STREAM_THRESHOLD_ROWS,
        estimated_rows: int | None = None,
        ordered: bool = False,
        accept_encodings: tuple[str, ...] | None = None,
    ) -> Iterator[PerformanceResult]:
        """Transparent iteration: chunked for big results, bulk for small.

        ``estimated_rows`` drives the choice — pass the cost model's
        estimate when one is at hand (the federated executor does);
        without one the execution's ``getStats`` row count for *metric*
        is consulted.  Estimates at or above ``threshold_rows`` (and
        unknown sizes, the conservative case — bulk is the memory risk)
        stream through a cursor; provably small results fall back to one
        bulk ``getPR``, sparing the cursor round trips.
        """
        if estimated_rows is None:
            try:
                stats = self.get_stats().metric(metric)
                estimated_rows = stats.rows if stats is not None else 0
            except Exception:
                estimated_rows = None  # unknown: stream, the safe side
        if estimated_rows is not None and estimated_rows < threshold_rows:
            results = self.get_pr(metric, foci, start, end, result_type)
            if ordered:
                results.sort(key=pr_sort_key)
            return iter(results)
        return iter(
            self.get_pr_chunked(
                metric, foci, start, end, result_type,
                max_rows=max_rows, ordered=ordered,
                accept_encodings=accept_encodings,
            )
        )

    def get_pr_agg(
        self,
        metric: str,
        foci: list[str],
        start: float | None = None,
        end: float | None = None,
        result_type: str = UNDEFINED_TYPE,
        min_value: float | None = None,
        max_value: float | None = None,
        group_by: str = "",
    ):
        """Server-side aggregation (the federated-query push-down path).

        Returns :class:`~repro.core.semantic.AggregateRecord` buckets;
        only those cross the wire, not the individual results.
        """
        from repro.core.semantic import AggregateRecord

        if start is None or end is None:
            t0, t1 = self.time_range()
            start = t0 if start is None else start
            end = t1 if end is None else end
        with self.environment.recorder.time("virtualization.getPRAgg"):
            packed = self.stub.getPRAgg(
                metric,
                list(foci),
                repr(start),
                repr(end),
                result_type,
                "" if min_value is None else repr(min_value),
                "" if max_value is None else repr(max_value),
                group_by,
            )
        return [AggregateRecord.unpack(p) for p in packed]

    def find_service_data(self, query: str) -> str:
        """FindServiceData passthrough (supports the ``xpath:`` dialect)."""
        return self.stub.FindServiceData(query)

    def get_stats(self) -> StoreStats:
        """Per-execution store statistics (the cost model's input)."""
        with self.environment.recorder.time("virtualization.getStats"):
            return StoreStats.unpack_records(list(self.stub.getStats()))

    def get_pr_async(
        self,
        metric: str,
        foci: list[str],
        sink_handle: str,
        start: float | None = None,
        end: float | None = None,
        result_type: str = UNDEFINED_TYPE,
    ) -> str:
        """Submit a registry-callback query (§7); returns the query id."""
        if start is None or end is None:
            t0, t1 = self.time_range()
            start = t0 if start is None else start
            end = t1 if end is None else end
        return self.stub.getPRAsync(
            metric, list(foci), repr(start), repr(end), result_type, sink_handle
        )

    def subscribe(self, topic: str, sink_handle: str, expiration: float = 0.0) -> str:
        return self.stub.SubscribeToNotificationTopic(topic, sink_handle, expiration)

    def destroy(self) -> None:
        self.stub.Destroy()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ExecutionBinding {self.gsh}>"


class LocalExecutionBinding:
    """Local-bypass Execution: direct wrapper access, no Services Layer."""

    def __init__(self, environment: GridEnvironment, wrapper, exec_id: str) -> None:
        self.environment = environment
        self.wrapper = wrapper
        self.exec_id = exec_id
        self.gsh = f"local:{exec_id}"

    @property
    def is_local(self) -> bool:
        return True

    def info(self) -> dict[str, str]:
        return dict(self.wrapper.get_info())

    def foci(self) -> list[str]:
        return self.wrapper.get_foci()

    def metrics(self) -> list[str]:
        return self.wrapper.get_metrics()

    def types(self) -> list[str]:
        return self.wrapper.get_types()

    def time_range(self) -> tuple[float, float]:
        return self.wrapper.get_time_start_end()

    def get_pr(
        self,
        metric: str,
        foci: list[str],
        start: float | None = None,
        end: float | None = None,
        result_type: str = UNDEFINED_TYPE,
    ) -> list[PerformanceResult]:
        if start is None or end is None:
            t0, t1 = self.time_range()
            start = t0 if start is None else start
            end = t1 if end is None else end
        with self.environment.recorder.time("virtualization.getPR.local"):
            return self.wrapper.get_pr(metric, list(foci), start, end, result_type)

    def stream_pr(
        self,
        metric: str,
        foci: list[str],
        start: float | None = None,
        end: float | None = None,
        result_type: str = UNDEFINED_TYPE,
        max_rows: int = DEFAULT_CHUNK_ROWS,
        threshold_rows: int = DEFAULT_STREAM_THRESHOLD_ROWS,
        estimated_rows: int | None = None,
        ordered: bool = False,
        accept_encodings: tuple[str, ...] | None = None,
    ) -> Iterator[PerformanceResult]:
        """Local bypass streaming: the wrapper's lazy scan, no cursor.

        There is no Services Layer to chunk through, so the threshold
        machinery is moot — the wrapper's ``iter_pr`` is already
        zero-copy (and ``accept_encodings`` with it: nothing crosses a
        wire).  ``ordered`` still sorts (materializing), matching the
        remote contract.
        """
        if start is None or end is None:
            t0, t1 = self.time_range()
            start = t0 if start is None else start
            end = t1 if end is None else end
        if ordered:
            results = self.wrapper.get_pr(metric, list(foci), start, end, result_type)
            results.sort(key=pr_sort_key)
            return iter(results)
        return self.wrapper.iter_pr(metric, list(foci), start, end, result_type)

    def get_pr_agg(
        self,
        metric: str,
        foci: list[str],
        start: float | None = None,
        end: float | None = None,
        result_type: str = UNDEFINED_TYPE,
        min_value: float | None = None,
        max_value: float | None = None,
        group_by: str = "",
    ):
        """Server-side aggregation via the wrapper directly (local bypass)."""
        if start is None or end is None:
            t0, t1 = self.time_range()
            start = t0 if start is None else start
            end = t1 if end is None else end
        with self.environment.recorder.time("virtualization.getPRAgg.local"):
            return self.wrapper.get_pr_aggregate(
                metric, list(foci), start, end, result_type,
                min_value, max_value, group_by,
            )

    def get_stats(self) -> StoreStats:
        """Store statistics via the wrapper directly (local bypass)."""
        return self.wrapper.get_stats()


class ApplicationBinding:
    """A virtual Application object (remote, via stub).

    ``stub`` (optional) supplies a pre-built stub — used by the dynamic
    WSDL-driven binding path, where the interface was parsed off the wire
    rather than taken from the compile-time PortType constant.
    """

    def __init__(
        self,
        environment: GridEnvironment,
        instance_gsh: str,
        name: str = "",
        stub=None,
    ) -> None:
        self.environment = environment
        self.gsh = instance_gsh
        self.name = name
        self.stub = stub or environment.pooled_stub_for_handle(
            instance_gsh, APPLICATION_PORTTYPE
        )

    @property
    def is_local(self) -> bool:
        return False

    def app_info(self) -> dict[str, str]:
        return _parse_pairs(self.stub.getAppInfo())

    def num_executions(self) -> int:
        return int(self.stub.getNumExecs())

    def exec_query_params(self) -> dict[str, list[str]]:
        return _parse_params(self.stub.getExecQueryParams())

    def all_executions(self) -> list[ExecutionBinding]:
        return [ExecutionBinding(self.environment, g) for g in self.stub.getAllExecs()]

    def query_executions(
        self, attribute: str, value: str, operator: str = "="
    ) -> list[ExecutionBinding]:
        if operator == "=":
            handles = self.stub.getExecs(attribute, value)
        else:
            handles = self.stub.getExecsOp(attribute, value, operator)
        return [ExecutionBinding(self.environment, g) for g in handles]

    def get_stats(self) -> StoreStats:
        """Application-wide store statistics (the cost model's input)."""
        with self.environment.recorder.time("virtualization.getStats"):
            return StoreStats.unpack_records(list(self.stub.getStats()))

    def destroy(self) -> None:
        self.stub.Destroy()
        # the instance is gone; a pooled binding to it must not be
        # handed to the next caller
        self.environment.stub_pool.invalidate(self.gsh)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ApplicationBinding {self.name or self.gsh}>"


class LocalApplicationBinding:
    """Local-bypass Application: direct wrapper access (§7 optimization)."""

    def __init__(self, environment: GridEnvironment, wrapper: ApplicationWrapper, name: str = "") -> None:
        self.environment = environment
        self.wrapper = wrapper
        self.name = name
        self.gsh = f"local:{name}"

    @property
    def is_local(self) -> bool:
        return True

    def app_info(self) -> dict[str, str]:
        return dict(self.wrapper.get_app_info())

    def num_executions(self) -> int:
        return self.wrapper.get_num_execs()

    def exec_query_params(self) -> dict[str, list[str]]:
        return self.wrapper.get_exec_query_params()

    def all_executions(self) -> list[LocalExecutionBinding]:
        return [
            LocalExecutionBinding(self.environment, self.wrapper.execution(i), i)
            for i in self.wrapper.get_all_exec_ids()
        ]

    def query_executions(
        self, attribute: str, value: str, operator: str = "="
    ) -> list[LocalExecutionBinding]:
        ids = self.wrapper.get_exec_ids(attribute, value, operator)
        return [
            LocalExecutionBinding(self.environment, self.wrapper.execution(i), i)
            for i in ids
        ]

    def get_stats(self) -> StoreStats:
        """Store statistics via the wrapper directly (local bypass)."""
        return self.wrapper.get_stats()


class AsyncQueryCollector:
    """Client-side half of the registry-callback query model (§7).

    Deploys a pull sink next to the client; :meth:`collect` drains
    deliveries and files them by query id.  ``results[qid]`` holds the
    parsed PerformanceResults once the callback arrived; failed queries
    appear in ``errors[qid]`` instead.
    """

    _counter = 0

    def __init__(self, environment: GridEnvironment, authority: str = "ppg-client:7070") -> None:
        from repro.ogsi.notification import PullNotificationSink

        self.environment = environment
        container = environment.container_for(authority)
        if container is None:
            container = environment.create_container(authority)
        self.sink = PullNotificationSink()
        AsyncQueryCollector._counter += 1
        self.sink_gsh = container.deploy(
            f"services/async-sink/{AsyncQueryCollector._counter}", self.sink
        )
        self.results: dict[str, list[PerformanceResult]] = {}
        self.errors: dict[str, str] = {}

    @property
    def sink_handle(self) -> str:
        return self.sink_gsh.url()

    def collect(self) -> int:
        """Drain pending deliveries; returns how many queries completed."""
        drained = 0
        for topic, message in self.sink.poll():
            kind, _, query_id = topic.partition("/")
            if kind == "pr-result":
                packed = message.split("\n") if message else []
                self.results[query_id] = [PerformanceResult.unpack(p) for p in packed]
                drained += 1
            elif kind == "pr-error":
                self.errors[query_id] = message
                drained += 1
        return drained

    def wait_for(self, query_id: str) -> list[PerformanceResult]:
        """Collect until *query_id* has completed; raises on query error.

        Delivery is synchronous in-process, so a single collect suffices;
        the loop shape documents the protocol for a networked deployment.
        """
        if query_id not in self.results and query_id not in self.errors:
            self.collect()
        if query_id in self.errors:
            raise RuntimeError(f"async query {query_id} failed: {self.errors[query_id]}")
        if query_id not in self.results:
            raise KeyError(f"no callback received for query {query_id}")
        return self.results[query_id]

    def close(self) -> None:
        self.sink.Destroy()


class ViewSubscription:
    """The client half of ``subscribeView``: a live replica of one view.

    Fetches the view's consistent snapshot (``getView``), deploys a
    NotificationSink next to the client, and subscribes it to the view's
    delta topic.  Every pushed :class:`~repro.fedquery.views.ViewDelta`
    is applied to :attr:`rows`; a delta whose epoch or base version does
    not match the local state (a missed or reordered delivery, or a
    server-side rebuild raced past us) triggers a consistent re-fetch
    instead of silently diverging — counted in :attr:`stale_refreshes`.
    """

    _counter = 0

    def __init__(
        self,
        environment: GridEnvironment,
        registry_stub,
        view_id: str,
        authority: str = "ppg-client:7070",
    ) -> None:
        from repro.ogsi.notification import NotificationSinkBase

        self.environment = environment
        self._stub = registry_stub
        self.view_id = view_id
        self.epoch = 0
        self.version = 0
        self.query = None
        self.rows: list = []
        self.deltas_applied = 0
        self.stale_refreshes = 0
        container = environment.container_for(authority)
        if container is None:
            container = environment.create_container(authority)
        ViewSubscription._counter += 1
        self._sink = NotificationSinkBase(callback=self._on_delivery)
        self._sink_gsh = container.deploy(
            f"services/view-sink/{ViewSubscription._counter}", self._sink
        )
        self.refresh()
        self.subscription_id = self._stub.subscribeView(
            view_id, self._sink_gsh.url()
        )

    def refresh(self) -> None:
        """Adopt the registry's current snapshot (epoch, version, rows)."""
        from repro.fedquery.merge import ResultRow
        from repro.fedquery.parser import parse_query

        records = list(self._stub.getView(self.view_id))
        header = _parse_view_header(records[:6])
        self.epoch = int(header["epoch"])
        self.version = int(header["version"])
        self.query = parse_query(header["query"])
        self.rows = [ResultRow.unpack(packed) for packed in records[6:]]

    def _on_delivery(self, topic: str, message: str) -> None:
        from repro.fedquery.views import ViewDelta

        self.apply(ViewDelta.decode(message))

    def apply(self, delta) -> None:
        """Apply one pushed delta (see the consistency rules above)."""
        from collections import Counter

        from repro.fedquery.merge import ResultRow, order_rows

        if delta.view_id != self.view_id:
            return
        if delta.kind == "refresh":
            # a new epoch replaces local state unconditionally
            self.epoch = delta.epoch
            self.version = delta.to_version
            self.rows = [ResultRow.unpack(packed) for packed in delta.added]
            self.deltas_applied += 1
            return
        if delta.epoch != self.epoch or delta.from_version != self.version:
            self.stale_refreshes += 1
            self.refresh()
            return
        if delta.kind == "replace":
            self.rows = [ResultRow.unpack(packed) for packed in delta.added]
        else:
            counts = Counter(row.pack() for row in self.rows)
            for packed in delta.removed:
                if counts.get(packed, 0) <= 0:
                    # the delta removes a row we never had: local state
                    # has diverged, so fall back to a consistent refresh
                    self.stale_refreshes += 1
                    self.refresh()
                    return
                counts[packed] -= 1
            for packed in delta.added:
                counts[packed] += 1
            rows = []
            for packed, count in counts.items():
                rows.extend([ResultRow.unpack(packed)] * count)
            # the canonical order is deterministic, so re-sorting the
            # multiset reproduces the server's row order byte for byte
            self.rows = order_rows(rows, self.query)
        self.version = delta.to_version
        self.deltas_applied += 1

    def close(self) -> None:
        try:
            self._stub.UnsubscribeFromNotificationTopic(self.subscription_id)
        except Exception:
            pass
        self._sink.Destroy()


class QueryRows(list):
    """Federated query rows, plus approximate-answer metadata.

    A plain ``list`` of ResultRow (so every existing caller's indexing,
    iteration, and ``len`` work unchanged) carrying ``approx`` and
    ``error_bounds`` — one ``{column label: (lo, hi)}`` dict per row; an
    empty dict means every cell in that row is exact.
    """

    def __init__(self, rows, approx: bool = False, error_bounds=None) -> None:
        super().__init__(rows)
        self.approx = approx
        self.error_bounds = list(error_bounds or [])


def _parse_view_header(records: list[str]) -> dict[str, str]:
    """Parse getView's ``name|value`` header records (query text may
    itself contain ``|``-free SQL, but split on the first bar only)."""
    header: dict[str, str] = {}
    for record in records:
        name, _, value = record.partition("|")
        header[name] = value
    return header


class PPerfGridClient:
    """The client application: discovery, binding, and query panels."""

    def __init__(self, environment: GridEnvironment, uddi_handle: str | None = None) -> None:
        self.environment = environment
        self.uddi = (
            UddiClient.connect(environment, uddi_handle) if uddi_handle is not None else None
        )
        #: the Figure 8 "Current Bindings" list
        self.bindings: list[ApplicationBinding | LocalApplicationBinding] = []
        #: factory URL -> wrapper, for the local-bypass optimization
        self._local_wrappers: dict[str, ApplicationWrapper] = {}
        #: FederatedQuery service stub, set by :meth:`use_federation`
        self._fed_stub = None
        #: ViewRegistry service stub, set by :meth:`use_views`
        self._views_stub = None

    # ------------------------------------------------------------ discovery
    def discover_organizations(self, name_pattern: str = "%") -> list[OrganizationProxy]:
        if self.uddi is None:
            raise RuntimeError("no UDDI registry configured for this client")
        return self.uddi.find_organizations(name_pattern)

    def register_local_wrapper(self, factory_url: str, wrapper: ApplicationWrapper) -> None:
        """Mark a factory's data store as host-local (enables bypass)."""
        self._local_wrappers[factory_url] = wrapper

    # -------------------------------------------------------------- binding
    def bind(self, service: ServiceProxy | str, name: str = "") -> ApplicationBinding | LocalApplicationBinding:
        """Bind to a published Application (creates a service instance).

        ``service`` is a UDDI ServiceProxy or a raw factory GSH/URL.  If
        the factory's data store was registered as local, the Services
        Layer is skipped entirely (future-work §7 bypass).
        """
        if isinstance(service, ServiceProxy):
            factory_url = service.factory_url
            name = name or service.name
        else:
            factory_url = service
        local = self._local_wrappers.get(factory_url)
        if local is not None:
            binding: ApplicationBinding | LocalApplicationBinding = LocalApplicationBinding(
                self.environment, local, name
            )
        else:
            factory_stub = self.environment.stub_for_handle(factory_url, FACTORY_PORTTYPE)
            instance_gsh = factory_stub.CreateService([])
            binding = ApplicationBinding(self.environment, instance_gsh, name)
        self.bindings.append(binding)
        return binding

    def bind_dynamic(self, service: ServiceProxy | str, name: str = "") -> ApplicationBinding:
        """Bind using only the service's published WSDL (Figure 1 flow).

        Unlike :meth:`bind`, no compile-time PortType is consulted: the
        factory's and the created instance's interfaces are both fetched
        as WSDL service data and parsed into stubs — the workflow a
        non-Python PPerfGrid client would follow.
        """
        if isinstance(service, ServiceProxy):
            factory_url = service.factory_url
            name = name or service.name
        else:
            factory_url = service
        factory_stub = self.environment.pooled_stub_from_wsdl(factory_url)
        instance_gsh = factory_stub.CreateService([])
        instance_stub = self.environment.pooled_stub_from_wsdl(instance_gsh)
        binding = ApplicationBinding(self.environment, instance_gsh, name, stub=instance_stub)
        self.bindings.append(binding)
        return binding

    # ---------------------------------------------------- federated queries
    def use_federation(self, handle: str) -> None:
        """Point this client at a deployed FederatedQuery service."""
        from repro.fedquery.service import FEDERATED_QUERY_PORTTYPE

        self._fed_stub = self.environment.stub_for_handle(
            handle, FEDERATED_QUERY_PORTTYPE
        )

    def query(self, text: str, approx: bool = False, tolerance: float | None = None, **options):
        """Run a federated query; returns a list of ResultRow objects.

        Requires :meth:`use_federation` first — the query text travels
        to the FederatedQuery service over SOAP and packed result rows
        come back (see README "Federated queries" for the grammar).

        ``approx=True`` (aggregate queries only) runs the approximate
        tier-0 path: the returned list is a :class:`QueryRows` whose
        ``error_bounds`` holds one ``{label: (lo, hi)}`` dict per row —
        existing list-shaped callers are unchanged.  ``tolerance`` caps
        the worst per-cell relative error a sketch answer may carry;
        members over the cap fall back to the exact paths server-side.
        """
        from repro.fedquery.ast import QueryError
        from repro.fedquery.merge import ResultRow, split_bounds

        if options:
            raise QueryError(
                f"unknown query option(s) {sorted(options)}; "
                "supported: approx, tolerance"
            )
        if tolerance is not None and not approx:
            raise QueryError("tolerance requires approx=True")
        if self._fed_stub is None:
            raise RuntimeError("no federation configured; call use_federation() first")
        with self.environment.recorder.time("virtualization.fedquery"):
            if approx:
                packed = self._fed_stub.queryApprox(
                    text, "" if tolerance is None else repr(float(tolerance))
                )
            else:
                packed = self._fed_stub.query(text)
        if not approx:
            return [ResultRow.unpack(p) for p in packed]
        packed_rows, bounds = split_bounds(packed)
        return QueryRows(
            [ResultRow.unpack(p) for p in packed_rows],
            approx=True,
            error_bounds=bounds,
        )

    def query_stream(
        self,
        text: str,
        max_rows: int = DEFAULT_CHUNK_ROWS,
        accept_encodings: tuple[str, ...] | None = None,
    ):
        """Run a federated query through a ResultCursor.

        Where :meth:`query` transfers the whole row set in one SOAP
        array, this opens a cursor over the federation's *streamed*
        execution (``FederationEngine.execute(stream=True)``) and
        returns a :class:`ChunkedResultIterator` yielding ResultRow
        objects — rows flow member-chunk by member-chunk end to end, in
        the same order :meth:`query` would return them.  Close the
        iterator early to release the cursor and its member streams.
        """
        if self._fed_stub is None:
            raise RuntimeError("no federation configured; call use_federation() first")
        from repro.fedquery.merge import ResultRow

        with self.environment.recorder.time("virtualization.fedquery.stream"):
            handle = self._fed_stub.queryChunked(text)
        return ChunkedResultIterator(
            self.environment, handle, max_rows=max_rows, decoder=ResultRow.unpack,
            accept_encodings=accept_encodings,
        )

    def explain_query(self, text: str) -> str:
        """The FederatedQuery service's plan description for *text*."""
        if self._fed_stub is None:
            raise RuntimeError("no federation configured; call use_federation() first")
        return "\n".join(self._fed_stub.explainQuery(text))

    def explain(self, text: str) -> str:
        """The cost-annotated plan for *text* (explainPlan operation).

        Unlike :meth:`explain_query`, the description includes the cost
        model's per-member decisions: chosen mode, estimated rows and
        transfer bytes, and any stats-proven skips.
        """
        if self._fed_stub is None:
            raise RuntimeError("no federation configured; call use_federation() first")
        return "\n".join(self._fed_stub.explainPlan(text))

    def subscribe_updates(self) -> int:
        """Ask the federation to subscribe to member data-update topics.

        Afterwards a ``data_updated()`` on any member Execution drops
        exactly the cached plans that read it (see README "Update
        notifications & cache coherence").  Returns the number of new
        subscriptions made.
        """
        if self._fed_stub is None:
            raise RuntimeError("no federation configured; call use_federation() first")
        return int(self._fed_stub.subscribeUpdates())

    def coherence_stats(self) -> dict[str, int]:
        """The federation's cache-coherence counters."""
        if self._fed_stub is None:
            raise RuntimeError("no federation configured; call use_federation() first")
        records = _parse_pairs(self._fed_stub.coherenceStats())
        return {name: int(value) for name, value in records.items()}

    # ----------------------------------------------------- materialized views
    def use_views(self, handle: str) -> None:
        """Point this client at a deployed ViewRegistry service."""
        from repro.fedquery.viewservice import VIEW_REGISTRY_PORTTYPE

        self._views_stub = self.environment.stub_for_handle(
            handle, VIEW_REGISTRY_PORTTYPE
        )

    def _require_views(self):
        if self._views_stub is None:
            raise RuntimeError("no view registry configured; call use_views() first")
        return self._views_stub

    def create_view(self, text: str) -> str:
        """Register *text* as a materialized view; returns its view id."""
        return str(self._require_views().createView(text))

    def drop_view(self, view_id: str) -> bool:
        return bool(int(self._require_views().dropView(view_id)))

    def get_view(self, view_id: str):
        """The view's current snapshot: (header dict, list of ResultRow)."""
        from repro.fedquery.merge import ResultRow

        records = list(self._require_views().getView(view_id))
        header = _parse_view_header(records[:6])
        rows = [ResultRow.unpack(packed) for packed in records[6:]]
        return header, rows

    def subscribe_view(
        self, view_id: str, authority: str = "ppg-client:7070"
    ) -> ViewSubscription:
        """Subscribe to a view's pushed deltas; returns the live replica."""
        return ViewSubscription(
            self.environment, self._require_views(), view_id, authority
        )

    def view_stats(self) -> dict[str, int]:
        """The federation's view-maintenance counters."""
        records = _parse_pairs(self._require_views().viewStats())
        return {name: int(value) for name, value in records.items()}

    def unbind_all(self) -> None:
        for binding in self.bindings:
            if isinstance(binding, ApplicationBinding):
                try:
                    binding.destroy()
                except Exception:
                    pass
        self.bindings.clear()


@dataclass
class ApplicationQuery:
    """One row of the Figure 9 query table."""

    binding: ApplicationBinding | LocalApplicationBinding
    attribute: str
    value: str
    operator: str = "="


@dataclass
class ApplicationQueryPanel:
    """The Application Query Panel: batch queries for Executions.

    Successive queries against the same Application OR together (thesis
    §5.3.1.2); results are deduplicated by Execution GSH.
    """

    queries: list[ApplicationQuery] = field(default_factory=list)

    def add_query(
        self,
        binding: ApplicationBinding | LocalApplicationBinding,
        attribute: str,
        value: str,
        operator: str = "=",
    ) -> None:
        self.queries.append(ApplicationQuery(binding, attribute, value, operator))

    def clear(self) -> None:
        self.queries.clear()

    def run_queries(self) -> list[ExecutionBinding | LocalExecutionBinding]:
        """The 'Run Queries' button."""
        out: list[ExecutionBinding | LocalExecutionBinding] = []
        seen: set[str] = set()
        for query in self.queries:
            for execution in query.binding.query_executions(
                query.attribute, query.value, query.operator
            ):
                if execution.gsh not in seen:
                    seen.add(execution.gsh)
                    out.append(execution)
        return out


@dataclass
class ExecutionQuery:
    """One row of the Figure 10 query table, plus the §7 value filter."""

    metric: str
    foci: list[str]
    start: float | None = None
    end: float | None = None
    result_type: str = UNDEFINED_TYPE
    #: optional metric-value filter (future-work §7): keep only results
    #: with min_value <= value <= max_value
    min_value: float | None = None
    max_value: float | None = None

    def matches(self, result: PerformanceResult) -> bool:
        if self.min_value is not None and result.value < self.min_value:
            return False
        if self.max_value is not None and result.value > self.max_value:
            return False
        return True


@dataclass
class ExecutionQueryPanel:
    """The Execution Query Panel: batch PR queries over bound Executions."""

    executions: list[ExecutionBinding | LocalExecutionBinding] = field(default_factory=list)
    queries: list[ExecutionQuery] = field(default_factory=list)

    def add_query(self, query: ExecutionQuery) -> None:
        self.queries.append(query)

    def run_queries(self) -> dict[str, list[PerformanceResult]]:
        """The 'Run Queries' button: execution GSH -> filtered results."""
        out: dict[str, list[PerformanceResult]] = {}
        for execution in self.executions:
            out[execution.gsh] = self._query_one(execution)
        return out

    def run_queries_parallel(self, max_workers: int = 8) -> dict[str, list[PerformanceResult]]:
        """Run with concurrent per-Execution queries, as the thesis's client does.

        "Each query to an Execution was made in a separate thread" (§6.5).
        Results are identical to :meth:`run_queries`; within one process
        the threads interleave on the GIL rather than truly parallelize,
        which is why the Figure 12 experiment replays onto simulated
        hosts instead (DESIGN.md §5).

        The threads come from the process-wide shared fan-out scheduler
        — repeated panel runs reuse warm workers instead of creating and
        joining ``max_workers`` threads per call.  ``max_workers`` bounds
        this call's concurrency (a semaphore over the shared pool), not
        the pool size.
        """
        from concurrent.futures import wait
        from repro.fedquery.scheduler import shared_scheduler

        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        pool = shared_scheduler()
        gate = threading.Semaphore(max_workers)

        def gated(execution):
            with gate:
                return self._query_one(execution)

        futures = {
            execution.gsh: pool.submit(
                lambda execution=execution: gated(execution), tenant="panel"
            )
            for execution in self.executions
        }
        wait(list(futures.values()))
        return {gsh: future.result() for gsh, future in futures.items()}

    def _query_one(self, execution) -> list[PerformanceResult]:
        collected: list[PerformanceResult] = []
        for query in self.queries:
            results = execution.get_pr(
                query.metric, query.foci, query.start, query.end, query.result_type
            )
            collected.extend(r for r in results if query.matches(r))
        return collected
