"""A tiny internal reactor: one daemon thread running scheduled callables.

The dispatch rewrite moves work that must never run while holding
dispatch state — asynchronous notification delivery, periodic lifetime
sweeps — onto a per-:class:`~repro.ogsi.container.GridEnvironment` event
loop.  The reactor is deliberately small: a monotonic-time priority
queue of callables drained by one daemon thread, with ``drain()`` so
tests can wait for quiescence deterministically.

Scheduling uses real (``time.monotonic``) delays even when the grid runs
on a :class:`~repro.simnet.clock.VirtualClock`: the reactor paces *host*
work (delivery, sweeps), not modeled grid time.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable


class RepeatingTask:
    """Handle for a ``call_every`` job; ``cancel()`` stops future runs."""

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Reactor:
    """Single-threaded deferred-work loop with timed scheduling."""

    def __init__(self, name: str = "reactor") -> None:
        self._name = name
        self._cond = threading.Condition()
        #: heap of (due, seq, fn) — seq keeps FIFO order for equal due times
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._thread: threading.Thread | None = None
        self._running_one = False
        self._shutdown = False
        self.tasks_run = 0
        self.task_failures = 0

    # ---------------------------------------------------------- scheduling
    def call_soon(self, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` on the reactor thread as soon as possible."""
        self._schedule(time.monotonic(), fn, args)

    def call_later(self, delay: float, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` on the reactor thread after *delay* seconds."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._schedule(time.monotonic() + delay, fn, args)

    def call_every(self, interval: float, fn: Callable, *args) -> RepeatingTask:
        """Run ``fn(*args)`` every *interval* seconds until cancelled."""
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        task = RepeatingTask()

        def tick() -> None:
            if task.cancelled:
                return
            try:
                fn(*args)
            finally:
                if not task.cancelled:
                    try:
                        self._schedule(time.monotonic() + interval, tick, ())
                    except RuntimeError:
                        # shut down while this tick ran (shutdown-while-
                        # sweeping): stop repeating, don't count a failure
                        pass
        self._schedule(time.monotonic() + interval, tick, ())
        return task

    def _schedule(self, due: float, fn: Callable, args: tuple) -> None:
        bound = (lambda: fn(*args)) if args else fn
        with self._cond:
            if self._shutdown:
                raise RuntimeError(f"reactor {self._name!r} is shut down")
            heapq.heappush(self._queue, (due, next(self._seq), bound))
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name=f"reactor-{self._name}", daemon=True
                )
                self._thread.start()
            self._cond.notify_all()

    # --------------------------------------------------------------- worker
    def _run(self) -> None:
        while True:
            with self._cond:
                while True:
                    if self._shutdown:
                        return
                    if self._queue:
                        due = self._queue[0][0]
                        wait = due - time.monotonic()
                        if wait <= 0:
                            _, _, fn = heapq.heappop(self._queue)
                            self._running_one = True
                            break
                        self._cond.wait(timeout=wait)
                    else:
                        self._cond.wait()
            try:
                fn()
            except Exception:
                self.task_failures += 1
            finally:
                with self._cond:
                    self.tasks_run += 1
                    self._running_one = False
                    self._cond.notify_all()

    # -------------------------------------------------------------- control
    @property
    def is_shutdown(self) -> bool:
        with self._cond:
            return self._shutdown

    def pending(self) -> int:
        with self._cond:
            return len(self._queue) + (1 if self._running_one else 0)

    def drain(self, timeout: float = 10.0) -> bool:
        """Block until every *currently due* task has run (True on success).

        Tasks scheduled for the future (``call_later`` / ``call_every``)
        don't hold ``drain`` open past their next due time — it waits for
        quiescence of due work, not for the end of time.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                now = time.monotonic()
                due = [item for item in self._queue if item[0] <= now]
                if not due and not self._running_one:
                    return True
                remaining = deadline - now
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=min(remaining, 0.05))

    def shutdown(self) -> None:
        """Stop the worker; pending tasks are dropped.  Idempotent."""
        with self._cond:
            self._shutdown = True
            self._queue.clear()
            self._cond.notify_all()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=2.0)
