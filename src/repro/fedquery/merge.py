"""Streaming merge of per-execution partial results.

Sub-query payloads arrive from the fan-out in completion order; the
merger folds each into per-group accumulators immediately (aggregate
queries) or appends projected rows (raw queries), so memory stays
proportional to the *output*, not to the number of executions touched.

count/sum/mean/min/max are all recoverable from the combinable
(count, total, min, max) accumulator, which is what makes partial
aggregation at the stores safe to merge here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.semantic import AggregateRecord, PerformanceResult, ordering_key
from repro.fedquery.ast import Query, QueryError
from repro.fedquery.pushdown import matches_value

#: raw-mode output columns, in order
RAW_COLUMNS = ("app", "exec", "metric", "focus", "type", "start", "end", "value")

#: columns parsed back as floats when unpacking
_FLOAT_COLUMNS = frozenset({"start", "end", "value"})


@dataclass(frozen=True)
class ResultRow:
    """One output row: parallel (columns, values) tuples.

    Values are strings for group keys / identity columns and numbers for
    measurements and aggregates, so rows survive a ``pack``/``unpack``
    round trip through the SOAP string array unchanged.
    """

    columns: tuple[str, ...]
    values: tuple[object, ...]

    def as_dict(self) -> dict[str, object]:
        return dict(zip(self.columns, self.values))

    def __getitem__(self, column: str) -> object:
        try:
            return self.values[self.columns.index(column)]
        except ValueError as exc:
            raise KeyError(column) from exc

    def pack(self) -> str:
        """Wire form: ``col=value|col=value|...`` (floats via repr)."""
        parts = []
        for column, value in zip(self.columns, self.values):
            rendered = repr(value) if isinstance(value, float) else str(value)
            parts.append(f"{column}={rendered}")
        return "|".join(parts)

    @staticmethod
    def unpack(text: str) -> "ResultRow":
        columns: list[str] = []
        values: list[object] = []
        for part in text.split("|"):
            column, sep, rendered = part.partition("=")
            if not sep:
                raise ValueError(f"bad ResultRow field {part!r} in {text!r}")
            columns.append(column)
            values.append(_parse_value(column, rendered))
        return ResultRow(tuple(columns), tuple(values))


def _parse_value(column: str, rendered: str) -> object:
    if column.startswith("count("):
        return int(rendered)
    if column in _FLOAT_COLUMNS or "(" in column:
        return float(rendered)
    return rendered


class Accumulator:
    """Combinable partial aggregate for one (group, metric)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = 0.0
        self.maximum = 0.0

    def add(self, value: float) -> None:
        if self.count == 0:
            self.minimum = value
            self.maximum = value
        else:
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
        self.count += 1
        self.total += value

    def absorb(self, record: AggregateRecord) -> None:
        if record.count <= 0:
            return
        if self.count == 0:
            self.minimum = record.minimum
            self.maximum = record.maximum
        else:
            if record.minimum < self.minimum:
                self.minimum = record.minimum
            if record.maximum > self.maximum:
                self.maximum = record.maximum
        self.count += record.count
        self.total += record.total

    def merge(self, other: "Accumulator") -> None:
        """Fold another combinable accumulator in (view re-merges)."""
        if other.count <= 0:
            return
        if self.count == 0:
            self.minimum = other.minimum
            self.maximum = other.maximum
        else:
            if other.minimum < self.minimum:
                self.minimum = other.minimum
            if other.maximum > self.maximum:
                self.maximum = other.maximum
        self.count += other.count
        self.total += other.total

    def result(self, func: str) -> object:
        if func == "count":
            return self.count
        if func == "sum":
            return self.total
        if func == "mean":
            return self.total / self.count
        if func == "min":
            return self.minimum
        if func == "max":
            return self.maximum
        raise QueryError(f"unknown aggregate function {func!r}")


@dataclass(frozen=True)
class TaskContext:
    """Identity of the execution a payload came from."""

    app: str
    exec_id: str = ""
    info: dict[str, str] | None = None


class StreamingMerger:
    """Folds per-execution payloads into the final row set."""

    def __init__(self, query: Query) -> None:
        self.query = query
        #: group key tuple -> metric -> Accumulator
        self._groups: dict[tuple[str, ...], dict[str, Accumulator]] = {}
        self._raw_rows: list[ResultRow] = []

    # ------------------------------------------------------------ absorb
    def absorb_aggregates(
        self, ctx: TaskContext, metric: str, records: list[AggregateRecord]
    ) -> None:
        """Fold getPRAgg buckets from one execution into the groups."""
        for record in records:
            if record.count <= 0:
                continue
            key = self._group_key(ctx, focus=record.group)
            if key is None:
                continue
            self._accumulator(key, metric).absorb(record)

    def absorb_results(
        self, ctx: TaskContext, metric: str, results: list[PerformanceResult]
    ) -> None:
        """Fold raw getPR rows: filter by value predicates, then reduce
        (aggregate query) or project (raw query)."""
        value_preds = self.query.predicates_on("value")
        for result in results:
            if value_preds and not matches_value(result.value, value_preds):
                continue
            if self.query.is_aggregate:
                key = self._group_key(ctx, focus=result.focus)
                if key is None:
                    continue
                self._accumulator(key, metric).add(result.value)
            else:
                self._raw_rows.append(
                    ResultRow(
                        RAW_COLUMNS,
                        (
                            ctx.app,
                            ctx.exec_id,
                            result.metric,
                            result.focus,
                            result.result_type,
                            result.start,
                            result.end,
                            result.value,
                        ),
                    )
                )

    # -------------------------------------------------------------- keys
    def _group_key(self, ctx: TaskContext, focus: str) -> tuple[str, ...] | None:
        """The group tuple for one record (None drops the record —
        an execution lacking a grouping attribute contributes nothing)."""
        key: list[str] = []
        info = ctx.info or {}
        for name in self.query.group_by:
            if name == "app":
                key.append(ctx.app)
            elif name == "exec":
                key.append(ctx.exec_id)
            elif name == "focus":
                key.append(focus)
            else:
                stored = info.get(name)
                if stored is None:
                    return None
                key.append(stored)
        return tuple(key)

    def _accumulator(self, key: tuple[str, ...], metric: str) -> Accumulator:
        metrics = self._groups.get(key)
        if metrics is None:
            metrics = self._groups[key] = {}
        acc = metrics.get(metric)
        if acc is None:
            acc = metrics[metric] = Accumulator()
        return acc

    # ------------------------------------------------ partition snapshots
    def group_accumulators(self) -> dict[tuple[str, ...], dict[str, Accumulator]]:
        """Snapshot of the per-group accumulators.

        View maintenance keeps one snapshot per member execution and
        rebuilds the view output by re-merging all partitions — min/max
        are not invertible, so deltas *replace* a partition's snapshot
        instead of subtracting from a global state.
        """
        return {key: dict(metrics) for key, metrics in self._groups.items()}

    def raw_rows(self) -> list[ResultRow]:
        """Snapshot of the (unordered) raw rows absorbed so far."""
        return list(self._raw_rows)

    def absorb_groups(
        self, groups: dict[tuple[str, ...], dict[str, Accumulator]]
    ) -> None:
        """Fold another merger's group snapshot in (combinable merge)."""
        for key, metrics in groups.items():
            for metric, acc in metrics.items():
                self._accumulator(key, metric).merge(acc)

    # ------------------------------------------------------------- output
    def rows(self) -> list[ResultRow]:
        """Materialize the (unordered) output rows."""
        if not self.query.is_aggregate:
            return list(self._raw_rows)
        columns = self.query.output_columns
        out: list[ResultRow] = []
        for key, metrics in self._groups.items():
            values: list[object] = list(key)
            complete = True
            for item in self.query.aggregates:
                acc = metrics.get(item.metric)
                if acc is None or acc.count == 0:
                    # a group never emits partial rows: it must have at
                    # least one matching result for every selected metric
                    complete = False
                    break
                values.append(acc.result(item.func))
            if complete:
                out.append(ResultRow(columns, tuple(values)))
        return out


# the canonical per-cell order lives in the semantic layer so server-side
# cursor sorting (repro.core) and this client-side merge agree by
# construction; the old private name stays as an alias for callers
_ordering_key = ordering_key


def row_sort_key(row: ResultRow) -> tuple:
    """Whole-row canonical sort key (what :func:`order_rows` sorts by,
    and what the streaming k-way merge heaps member rows on)."""
    return tuple(ordering_key(v) for v in row.values)


def order_rows(rows: list[ResultRow], query: Query) -> list[ResultRow]:
    """Deterministic ordering + LIMIT.

    Rows are first sorted by every column (numeric-aware) so output is
    reproducible without an ORDER BY; an explicit ORDER BY then applies
    as the primary, stable key.
    """
    ordered = sorted(rows, key=row_sort_key)
    if query.order_by is not None:
        column = query.order_by
        ordered.sort(
            key=lambda r: _ordering_key(r[column]), reverse=query.order_desc
        )
    if query.limit is not None:
        ordered = ordered[: query.limit]
    return ordered


# ---------------------------------------------------- approximate answers

#: wire marker for per-row error-bound records appended after packed rows
#: (unambiguous: a packed ResultRow's first field always contains ``=``
#: before any ``|``, so it can never start with this prefix)
BOUNDS_PREFIX = "@bounds|"


def pack_bounds(error_bounds: list[dict[str, tuple[float, float]]]) -> list[str]:
    """Bounds wire records: ``@bounds|row_index|label|lo|hi`` per cell."""
    records: list[str] = []
    for index, bounds in enumerate(error_bounds):
        for label, (low, high) in sorted(bounds.items()):
            records.append(f"{BOUNDS_PREFIX}{index}|{label}|{low!r}|{high!r}")
    return records


def split_bounds(
    packed: list[str],
) -> tuple[list[str], list[dict[str, tuple[float, float]]]]:
    """Separate packed rows from trailing ``@bounds`` records.

    Returns the row strings and one bounds dict per row (empty dict =
    every cell exact), in row order.
    """
    rows = [entry for entry in packed if not entry.startswith(BOUNDS_PREFIX)]
    bounds: list[dict[str, tuple[float, float]]] = [{} for _ in rows]
    for entry in packed:
        if not entry.startswith(BOUNDS_PREFIX):
            continue
        parts = entry.split("|")
        if len(parts) != 5:
            raise ValueError(f"bad bounds record {entry!r}")
        _, index_text, label, low, high = parts
        index = int(index_text)
        if not 0 <= index < len(rows):
            raise ValueError(f"bounds record {entry!r} references no row")
        bounds[index][label] = (float(low), float(high))
    return rows, bounds


class _IntervalCell:
    """Interval accumulator for one (group, metric) approximate cell.

    Mirrors :class:`Accumulator`, but every component is an interval:
    exact contributions (fan-out members) add zero-width, tier-0 sketch
    estimates add their :class:`~repro.fedquery.sketch.WindowEstimate`
    bounds.  Count and sum intervals add across members (sums of sound
    intervals stay sound); the value envelope and the exact extrema
    combine by min/max.
    """

    __slots__ = (
        "count_est", "count_lo", "count_hi",
        "sum_est", "sum_lo", "sum_hi",
        "value_lo", "value_hi", "minimum", "maximum", "touched",
    )

    def __init__(self) -> None:
        self.count_est = 0.0
        self.count_lo = 0.0
        self.count_hi = 0.0
        self.sum_est = 0.0
        self.sum_lo = 0.0
        self.sum_hi = 0.0
        self.value_lo = 0.0
        self.value_hi = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.touched = False

    def _widen_envelope(self, low: float, high: float) -> None:
        if not self.touched:
            self.value_lo, self.value_hi = low, high
            self.touched = True
        else:
            self.value_lo = min(self.value_lo, low)
            self.value_hi = max(self.value_hi, high)

    def add_estimate(self, est) -> None:
        """Fold one member's WindowEstimate in."""
        if est.count_hi <= 0.0:
            return
        self.count_est += est.count_est
        self.count_lo += est.count_lo
        self.count_hi += est.count_hi
        self.sum_est += est.sum_est
        self.sum_lo += est.sum_lo
        self.sum_hi += est.sum_hi
        self._widen_envelope(est.value_lo, est.value_hi)
        if est.min_exact is not None and (
            self.minimum is None or est.min_exact < self.minimum
        ):
            self.minimum = est.min_exact
        if est.max_exact is not None and (
            self.maximum is None or est.max_exact > self.maximum
        ):
            self.maximum = est.max_exact

    def add_accumulator(self, acc: Accumulator) -> None:
        """Fold one member's exact accumulator in (zero-width)."""
        if acc.count <= 0:
            return
        count = float(acc.count)
        self.count_est += count
        self.count_lo += count
        self.count_hi += count
        self.sum_est += acc.total
        self.sum_lo += acc.total
        self.sum_hi += acc.total
        self._widen_envelope(acc.minimum, acc.maximum)
        if self.minimum is None or acc.minimum < self.minimum:
            self.minimum = acc.minimum
        if self.maximum is None or acc.maximum > self.maximum:
            self.maximum = acc.maximum

    @property
    def present(self) -> bool:
        """Does this metric's estimate keep the group in the output?
        Mirrors the exact merger's rule (count > 0) on the estimate."""
        return round(self.count_est) >= 1

    def cell(self, func: str) -> tuple[object, tuple[float, float]]:
        """(value, (lo, hi)) for one aggregate cell."""
        if func == "count":
            return int(round(self.count_est)), (self.count_lo, self.count_hi)
        if func == "sum":
            return self.sum_est, (self.sum_lo, self.sum_hi)
        if func == "mean":
            mean = self.sum_est / self.count_est
            low, high = self.value_lo, self.value_hi
            if self.count_lo >= 1.0:
                corners = [
                    self.sum_lo / self.count_lo, self.sum_lo / self.count_hi,
                    self.sum_hi / self.count_lo, self.sum_hi / self.count_hi,
                ]
                low = max(low, min(corners))
                high = min(high, max(corners))
                if low > high:  # float-drift guard
                    low, high = min(corners), max(corners)
            mean = max(low, min(mean, high))
            return mean, (low, high)
        if func == "min":
            assert self.minimum is not None
            return self.minimum, (self.minimum, self.minimum)
        if func == "max":
            assert self.maximum is not None
            return self.maximum, (self.maximum, self.maximum)
        raise QueryError(f"unknown aggregate function {func!r}")


class BoundsTracker:
    """Approximate-answer assembly for tier-0-capable aggregate plans.

    Collects tier-0 :class:`~repro.fedquery.sketch.WindowEstimate`
    partials and exact fan-out accumulators per (group, metric), then
    materializes rows with per-cell ``(lo, hi)`` error bounds.  Only
    used when the planner proved the query shape tier-0 eligible, so
    group keys are at most ``(app,)``.
    """

    def __init__(self, query: Query) -> None:
        self.query = query
        self._cells: dict[tuple[str, ...], dict[str, _IntervalCell]] = {}

    def _cell(self, key: tuple[str, ...], metric: str) -> _IntervalCell:
        metrics = self._cells.setdefault(key, {})
        cell = metrics.get(metric)
        if cell is None:
            cell = metrics[metric] = _IntervalCell()
        return cell

    def _key(self, app: str) -> tuple[str, ...]:
        return tuple(app if name == "app" else "" for name in self.query.group_by)

    def add_estimates(self, app: str, partials: tuple) -> None:
        """One tier-0 member's (metric, WindowEstimate) partials."""
        key = self._key(app)
        for metric, est in partials:
            self._cell(key, metric).add_estimate(est)

    def add_groups(
        self, groups: dict[tuple[str, ...], dict[str, Accumulator]]
    ) -> None:
        """Exact accumulators from the fan-out members' merger."""
        for key, metrics in groups.items():
            for metric, acc in metrics.items():
                self._cell(key, metric).add_accumulator(acc)

    def rows(self) -> tuple[list[ResultRow], dict[tuple[str, ...], dict[str, tuple[float, float]]]]:
        """(unordered rows, per-group per-label bounds).

        A group emits only when every selected metric's estimated count
        is at least one — the estimate-side mirror of the exact merger's
        all-metrics-present rule."""
        columns = self.query.output_columns
        out: list[ResultRow] = []
        bounds_by_key: dict[tuple[str, ...], dict[str, tuple[float, float]]] = {}
        for key, metrics in self._cells.items():
            values: list[object] = list(key)
            bounds: dict[str, tuple[float, float]] = {}
            complete = True
            for item in self.query.aggregates:
                cell = metrics.get(item.metric)
                if cell is None or not cell.present:
                    complete = False
                    break
                value, (low, high) = cell.cell(item.func)
                values.append(value)
                if low != high:
                    bounds[item.label] = (low, high)
            if complete:
                out.append(ResultRow(columns, tuple(values)))
                bounds_by_key[key] = bounds
        return out, bounds_by_key
