"""Concurrent clients vs container dispatch: the MDS2-style curve.

Two scenarios, one per dispatch pathology the async core fixes:

* **Throughput vs concurrent clients** — threaded clients hammer a grid
  of containers hosting I/O-modeled services (each call sleeps a fixed
  service time, the in-process stand-in for a store/disk round trip).
  Under the legacy whole-container lock (``serialize_dispatch=True``)
  throughput flatlines at ``containers / service_time`` no matter how
  many clients arrive; per-service gates scale until every deployed
  service is busy.  The shape assertion mirrors the MDS2 measurements
  the grid-monitoring literature reports: concurrency scales with the
  number of independently dispatchable endpoints, not with lock count.

* **Overload with and without admission control** — far more clients
  than one slow service can carry.  Without admission every request
  convoys on the dispatch gate and p99 latency grows with the client
  count; with a bounded queue (``max_inflight``/``max_queue_depth``)
  excess arrivals are shed with a ``ServerBusy`` fault immediately and
  the requests that *are* admitted see a short, bounded queue.

``FEDQUERY_BENCH_QUICK=1`` (the CI mode) shrinks the sweep so the file
runs in seconds while asserting the same shape.
"""

from __future__ import annotations

import os
import threading
import time

from conftest import write_json, write_result

from repro.ogsi import (
    GRID_SERVICE_PORTTYPE,
    GridEnvironment,
    GridServiceBase,
    client_id_headers,
    is_busy_fault,
)
from repro.soap.faults import SoapFault
from repro.wsdl.porttype import Operation, Parameter, PortType

QUICK = os.environ.get("FEDQUERY_BENCH_QUICK", "") not in ("", "0")

#: modeled store access time per request (sleep: I/O-bound, GIL-free)
SERVICE_TIME_S = 0.002
CONTAINERS = 2
SERVICES_PER_CONTAINER = 4
CLIENT_SWEEP = (1, 2, 4, 8) if QUICK else (1, 2, 4, 8, 16)
REQUESTS_PER_CLIENT = 25 if QUICK else 50

#: overload scenario: one slow service, many impatient clients
OVERLOAD_SERVICE_TIME_S = 0.004
OVERLOAD_CLIENTS = 8 if QUICK else 16
OVERLOAD_REQUESTS_PER_CLIENT = 15 if QUICK else 25

STORE_PORTTYPE = PortType(
    "SlowStore",
    "urn:bench-store",
    (Operation("fetch", (Parameter("key", "xsd:string"),), "xsd:string"),),
    extends=(GRID_SERVICE_PORTTYPE,),
)


class SlowStoreService(GridServiceBase):
    """Models a wrapper whose every call blocks on its backing store."""

    porttype = STORE_PORTTYPE

    def __init__(self, service_time_s: float) -> None:
        super().__init__()
        self.service_time_s = service_time_s

    def fetch(self, key: str) -> str:
        time.sleep(self.service_time_s)
        return f"value-for-{key}"


def _build_grid(serialize_dispatch: bool):
    env = GridEnvironment()
    endpoints = []
    for c in range(CONTAINERS):
        container = env.create_container(
            f"bench-{c}:1", serialize_dispatch=serialize_dispatch
        )
        for s in range(SERVICES_PER_CONTAINER):
            gsh = container.deploy(
                f"services/store-{s}", SlowStoreService(SERVICE_TIME_S)
            )
            endpoints.append(gsh)
    return env, endpoints


def _run_clients(env, endpoints, clients: int, requests: int) -> dict:
    """Each client round-robins across every endpoint; returns stats."""
    latencies: list[float] = []
    shed = 0
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client(client_id: int) -> None:
        nonlocal shed
        stubs = [
            env.stub_for_handle(
                gsh, STORE_PORTTYPE,
                headers_provider=client_id_headers(f"client-{client_id}"),
            )
            for gsh in endpoints
        ]
        barrier.wait(timeout=30.0)
        mine: list[float] = []
        my_shed = 0
        for i in range(requests):
            stub = stubs[(client_id + i) % len(stubs)]
            t0 = time.perf_counter()
            try:
                stub.fetch(f"k{i}")
            except SoapFault as fault:
                if not is_busy_fault(fault):
                    raise
                my_shed += 1
                continue
            mine.append(time.perf_counter() - t0)
        with lock:
            latencies.extend(mine)
            shed += my_shed

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait(timeout=30.0)
    t0 = time.perf_counter()
    for t in threads:
        t.join(timeout=120.0)
    elapsed = time.perf_counter() - t0
    assert not any(t.is_alive() for t in threads), "client thread hung"
    latencies.sort()

    def pct(p: float) -> float:
        if not latencies:
            return float("nan")
        return latencies[min(len(latencies) - 1, int(p * len(latencies)))]

    return {
        "clients": clients,
        "handled": len(latencies),
        "shed": shed,
        "elapsed_s": elapsed,
        "throughput": len(latencies) / elapsed if elapsed > 0 else 0.0,
        "p50_ms": pct(0.50) * 1e3,
        "p99_ms": pct(0.99) * 1e3,
    }


def test_throughput_scales_with_concurrent_clients():
    arms = {}
    for label, serialize in (("legacy-container-lock", True), ("per-service", False)):
        env, endpoints = _build_grid(serialize_dispatch=serialize)
        arms[label] = [
            _run_clients(env, endpoints, clients, REQUESTS_PER_CLIENT)
            for clients in CLIENT_SWEEP
        ]

    lines = [
        "Throughput vs concurrent clients "
        f"({CONTAINERS} containers x {SERVICES_PER_CONTAINER} services, "
        f"{SERVICE_TIME_S * 1e3:.0f} ms service time)",
        f"{'clients':>8} | {'legacy req/s':>13} | {'per-service req/s':>18} | {'speedup':>8}",
    ]
    for legacy, fine in zip(arms["legacy-container-lock"], arms["per-service"]):
        speedup = fine["throughput"] / legacy["throughput"]
        lines.append(
            f"{legacy['clients']:>8} | {legacy['throughput']:>13.0f} | "
            f"{fine['throughput']:>18.0f} | {speedup:>7.1f}x"
        )

    # shape: with one client the arms are equivalent (no contention)...
    solo_legacy = arms["legacy-container-lock"][0]["throughput"]
    solo_fine = arms["per-service"][0]["throughput"]
    assert solo_fine > 0.5 * solo_legacy
    # ...and at the top of the sweep per-service dispatch must scale past
    # the container-lock ceiling (8 gates vs 2 locks: >= 2x is lenient)
    max_legacy = arms["legacy-container-lock"][-1]["throughput"]
    max_fine = arms["per-service"][-1]["throughput"]
    assert max_fine >= 2.0 * max_legacy, (
        f"per-service {max_fine:.0f} req/s vs legacy {max_legacy:.0f} req/s"
    )
    # legacy also must actually flatline near the theoretical lock ceiling
    ceiling = CONTAINERS / SERVICE_TIME_S
    assert max_legacy < 1.5 * ceiling

    write_result("concurrency_curve.txt", "\n".join(lines))
    write_json(
        "concurrency_curve",
        {
            "containers": CONTAINERS,
            "services_per_container": SERVICES_PER_CONTAINER,
            "service_time_ms": SERVICE_TIME_S * 1e3,
            "client_sweep": list(CLIENT_SWEEP),
            "arms": arms,
            "quick": QUICK,
        },
    )


def test_admission_control_bounds_overload_latency():
    def overload_arm(max_inflight, max_queue_depth):
        env = GridEnvironment()
        container = env.create_container(
            "overload:1",
            max_inflight=max_inflight,
            max_queue_depth=max_queue_depth,
        )
        gsh = container.deploy(
            "services/store", SlowStoreService(OVERLOAD_SERVICE_TIME_S)
        )
        stats = _run_clients(
            env, [gsh], OVERLOAD_CLIENTS, OVERLOAD_REQUESTS_PER_CLIENT
        )
        stats["container"] = container.stats()
        return stats

    unbounded = overload_arm(None, None)
    bounded = overload_arm(max_inflight=1, max_queue_depth=2)

    lines = [
        "Overload: "
        f"{OVERLOAD_CLIENTS} clients x {OVERLOAD_REQUESTS_PER_CLIENT} requests, "
        f"1 service, {OVERLOAD_SERVICE_TIME_S * 1e3:.0f} ms service time",
        f"{'arm':>18} | {'handled':>8} | {'shed':>6} | {'p50 ms':>8} | {'p99 ms':>8}",
    ]
    for label, stats in (("no admission", unbounded), ("admission(1,2)", bounded)):
        lines.append(
            f"{label:>18} | {stats['handled']:>8} | {stats['shed']:>6} | "
            f"{stats['p50_ms']:>8.1f} | {stats['p99_ms']:>8.1f}"
        )

    # without admission every request convoys behind the whole client herd
    assert unbounded["shed"] == 0
    assert unbounded["p99_ms"] > OVERLOAD_CLIENTS * OVERLOAD_SERVICE_TIME_S * 1e3 * 0.5
    # with a bounded queue the excess is shed as ServerBusy immediately
    # and the admitted requests see a short queue: bounded p99
    assert bounded["shed"] > 0
    assert bounded["container"]["requestsShed"] == bounded["shed"]
    assert bounded["p99_ms"] < unbounded["p99_ms"], (
        f"admission p99 {bounded['p99_ms']:.1f} ms vs "
        f"unbounded {unbounded['p99_ms']:.1f} ms"
    )

    write_result("concurrency_overload.txt", "\n".join(lines))
    write_json(
        "concurrency_overload",
        {
            "clients": OVERLOAD_CLIENTS,
            "requests_per_client": OVERLOAD_REQUESTS_PER_CLIENT,
            "service_time_ms": OVERLOAD_SERVICE_TIME_S * 1e3,
            "unbounded": unbounded,
            "bounded": bounded,
            "quick": QUICK,
        },
    )
