"""Synthetic dataset generators (seeded, deterministic)."""
