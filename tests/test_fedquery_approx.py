"""Approximate federated queries: bounded answers from merged sketches.

The contract under test: every cell of an ``approx=True`` answer either
is exact or carries a sound ``(lo, hi)`` interval containing the true
aggregate; a requested ``tolerance`` makes over-wide members fall back
to the exact paths; sketchless members always fall back.  The main
suite is randomized (honouring ``--seed`` like the oracle) and checks
every reported bound against ground truth computed directly from the
backing values.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.semantic import PerformanceResult
from repro.experiments.common import build_synthetic_grid
from repro.fedquery import QueryError
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper

METRIC = "m"


def build_federation(values_by_app: dict[str, list[float]]):
    wrappers = {
        app: InMemoryWrapper(
            app,
            [
                InMemoryExecution(
                    "0", {"numprocs": "4"},
                    [
                        PerformanceResult(METRIC, "/R", "synthetic", 0.0, 1.0, v)
                        for v in vals
                    ],
                )
            ],
        )
        for app, vals in values_by_app.items()
    }
    grid = build_synthetic_grid(wrappers)
    return grid, grid.deploy_federation()


def ground_truth(values_by_app: dict[str, list[float]], threshold: float):
    """Exact per-app (count, sum, mean) for ``value > threshold``."""
    truth = {}
    for app, vals in values_by_app.items():
        selected = [v for v in vals if v > threshold]
        if selected:
            truth[app] = (
                len(selected), math.fsum(selected), math.fsum(selected) / len(selected)
            )
    return truth


def assert_row_within_bounds(row, bounds, truth_cells):
    labels = (f"count({METRIC})", f"sum({METRIC})", f"mean({METRIC})")
    for label, exact in zip(labels, truth_cells):
        got = row[label]
        if label in bounds:
            low, high = bounds[label]
            assert low <= exact <= high, f"{label}: {exact} outside [{low}, {high}]"
            assert low <= got <= high  # the estimate itself respects them
        else:
            # no interval reported: the cell claims exactness
            assert got == pytest.approx(exact, rel=1e-9, abs=1e-12), label


class TestRandomizedWithinBounds:
    def test_every_bound_contains_ground_truth(self, oracle_seed):
        rng = random.Random(5100 + oracle_seed)
        for trial in range(8):
            values_by_app = {
                f"APP{i}": [
                    rng.uniform(0.0, 1000.0)
                    for _ in range(rng.randint(5, 80))
                ]
                for i in range(rng.randint(2, 4))
            }
            grid, engine = build_federation(values_by_app)
            try:
                for _ in range(4):
                    threshold = rng.uniform(-100.0, 1100.0)
                    query = (
                        f"SELECT count({METRIC}), sum({METRIC}), mean({METRIC}) "
                        f"WHERE value > {threshold!r} GROUP BY app"
                    )
                    result = engine.execute(query, approx=True)
                    assert result.approx is True
                    assert result.stats["calls"] == 0, "sketches answer every member"
                    truth = ground_truth(values_by_app, threshold)
                    assert {row["app"] for row in result.rows} <= set(values_by_app)
                    for row, bounds in zip(result.rows, result.error_bounds):
                        app = row["app"]
                        if app in truth:
                            assert_row_within_bounds(row, bounds, truth[app])
                        else:
                            # emitted on a nonzero *estimate* while the
                            # true count is 0: the intervals must still
                            # contain the truth (count and sum both 0)
                            low, high = bounds[f"count({METRIC})"]
                            assert low <= 0.0 <= high
                            low, high = bounds[f"sum({METRIC})"]
                            assert low <= 0.0 <= high
                    reported = {row["app"] for row in result.rows}
                    for app, cells in truth.items():
                        if app not in reported:
                            # soundly omitted only if the count could be 0,
                            # i.e. nothing *provably* matched
                            assert cells[0] >= 1
            finally:
                grid.cleanup()

    def test_integer_valued_data_often_exact(self, oracle_seed):
        """Vacuous windows over integer data give exact tier-0 answers
        even through the approximate entry point (empty bounds)."""
        rng = random.Random(6200 + oracle_seed)
        values_by_app = {
            "A": [float(rng.randint(1, 100)) for _ in range(30)],
        }
        grid, engine = build_federation(values_by_app)
        try:
            result = engine.execute(
                f"SELECT count({METRIC}), sum({METRIC}) "
                f"WHERE value > 0.0 GROUP BY app",
                approx=True,
            )
            assert result.stats["calls"] == 0
            assert result.error_bounds == [{}]
            truth = ground_truth(values_by_app, 0.0)["A"]
            assert result.rows[0][f"count({METRIC})"] == truth[0]
            assert result.rows[0][f"sum({METRIC})"] == pytest.approx(truth[1])
        finally:
            grid.cleanup()


class TestToleranceFallback:
    VALUES = {"A": [float(v) for v in range(1, 101)], "B": [5.0, 500.0, 995.0]}
    QUERY = (
        f"SELECT count({METRIC}), sum({METRIC}), mean({METRIC}) "
        f"WHERE value > 50.0 GROUP BY app"
    )

    def test_zero_tolerance_forces_exact_fallback(self):
        grid, engine = build_federation(self.VALUES)
        try:
            result = engine.execute(self.QUERY, approx=True, tolerance=0.0)
            # every member's sketch bounds are wider than 0 here, so all
            # fall back: real fan-out, exact cells, no intervals
            assert result.stats["calls"] > 0
            assert result.stats["tier0Members"] == 0
            assert all(bounds == {} for bounds in result.error_bounds)
            truth = ground_truth(self.VALUES, 50.0)
            for row in result.rows:
                count, total, mean = truth[row["app"]]
                assert row[f"count({METRIC})"] == count
                assert row[f"sum({METRIC})"] == pytest.approx(total)
                assert row[f"mean({METRIC})"] == pytest.approx(mean)
        finally:
            grid.cleanup()

    def test_loose_tolerance_keeps_tier0(self):
        grid, engine = build_federation(self.VALUES)
        try:
            result = engine.execute(self.QUERY, approx=True, tolerance=10.0)
            assert result.stats["calls"] == 0
            assert result.stats["tier0Members"] == 2
            assert any(bounds for bounds in result.error_bounds)
        finally:
            grid.cleanup()

    def test_tolerance_prunes_only_over_wide_members(self):
        """A tight-but-nonzero tolerance keeps narrow-bound members at
        tier 0 while wide-bound ones fall back — per member."""
        values = {
            # vacuous window: provably exact, rel error 0
            "EXACT": [float(v) for v in range(60, 90)],
            # straddling window: genuinely wide bounds
            "WIDE": [1.0, 49.0, 51.0, 99.0],
        }
        grid, engine = build_federation(values)
        try:
            result = engine.execute(self.QUERY, approx=True, tolerance=1e-6)
            tiers = {m.app: m.tier for m in result.plan.members}
            assert tiers["EXACT"] == "tier0-stats"
            assert not result.plan.members[
                [m.app for m in result.plan.members].index("WIDE")
            ].is_tier0
            truth = ground_truth(values, 50.0)
            for row in result.rows:
                count, total, _ = truth[row["app"]]
                assert row[f"count({METRIC})"] == count
                assert row[f"sum({METRIC})"] == pytest.approx(total)
        finally:
            grid.cleanup()


class TestStructuralFallbacks:
    def test_sketchless_member_falls_back_in_approx_mode(self):
        import dataclasses

        values = {"A": [float(v) for v in range(1, 51)], "B": [10.0, 60.0, 90.0]}
        wrappers = {
            app: InMemoryWrapper(
                app,
                [
                    InMemoryExecution(
                        "0", {},
                        [
                            PerformanceResult(METRIC, "/R", "synthetic", 0.0, 1.0, v)
                            for v in vals
                        ],
                    )
                ],
            )
            for app, vals in values.items()
        }
        real_stats = wrappers["B"].get_stats
        wrappers["B"].get_stats = lambda: dataclasses.replace(
            real_stats(), sketches=()
        )
        grid = build_synthetic_grid(wrappers)
        engine = grid.deploy_federation()
        try:
            result = engine.execute(
                f"SELECT count({METRIC}) WHERE value > 25.0 GROUP BY app",
                approx=True,
            )
            assert result.stats["calls"] > 0  # B fanned out
            truth = ground_truth(values, 25.0)
            for row, bounds in zip(result.rows, result.error_bounds):
                count = truth[row["app"]][0]
                if bounds:
                    low, high = bounds[f"count({METRIC})"]
                    assert low <= count <= high
                else:
                    assert row[f"count({METRIC})"] == count
        finally:
            grid.cleanup()

    def test_approx_requires_aggregate(self):
        grid, engine = build_federation({"A": [1.0]})
        try:
            with pytest.raises(QueryError, match="requires an aggregate"):
                engine.execute(f"SELECT {METRIC}", approx=True)
        finally:
            grid.cleanup()

    def test_approx_cannot_stream(self):
        grid, engine = build_federation({"A": [1.0]})
        try:
            with pytest.raises(QueryError, match="cannot stream"):
                engine.execute(
                    f"SELECT count({METRIC}) GROUP BY app",
                    stream=True,
                    approx=True,
                )
        finally:
            grid.cleanup()

    def test_tolerance_without_approx_rejected(self):
        grid, engine = build_federation({"A": [1.0]})
        try:
            with pytest.raises(QueryError, match="tolerance requires approx"):
                engine.execute(
                    f"SELECT count({METRIC}) GROUP BY app", tolerance=0.1
                )
        finally:
            grid.cleanup()
