"""Site deployment helper: wire one published dataset end to end.

A "site" in the thesis is an organization publishing one Application
dataset: a container on some host runs an Application Factory, an
Execution Factory, and the (internal) Manager; the factory URL is
published to the UDDI registry.  :class:`PPerfGridSite` performs that
wiring, including replica Execution Factories on additional hosts for
the scalability experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.application import ApplicationService
from repro.core.execution import ExecutionService
from repro.core.manager import DistributionPolicy, ManagerService
from repro.core.prcache import PrCache, UnboundedCache
from repro.mapping.base import ApplicationWrapper, TimedExecutionWrapper
from repro.ogsi.container import GridEnvironment, ServiceContainer
from repro.ogsi.factory import FactoryService
from repro.ogsi.gsh import GridServiceHandle
from repro.simnet.host import SimHost
from repro.uddi.proxy import UddiClient

#: builds a fresh PR cache per Execution instance
CacheFactory = Callable[[], PrCache]


@dataclass
class SiteConfig:
    """Configuration for one site."""

    authority: str  # e.g. "siteA:8080"
    app_name: str  # e.g. "HPL"
    #: relative lifetime granted to created instances (None = immortal)
    instance_lifetime: float | None = None
    #: whether Mapping-Layer getPR calls are timed into the recorder
    timed_mapping: bool = True
    cache_factory: CacheFactory = field(default=UnboundedCache)
    #: when set, Execution PR caches are byte-budget LRUs of this size
    #: (overrides cache_factory) so cached results cannot grow unbounded
    cache_max_bytes: int | None = None

    def build_cache(self) -> PrCache:
        if self.cache_max_bytes is not None:
            from repro.core.prcache import ByteBudgetLruCache

            return ByteBudgetLruCache(max_bytes=self.cache_max_bytes)
        return self.cache_factory()


class PPerfGridSite:
    """One deployed dataset: factories + Manager on one (or more) hosts."""

    def __init__(
        self,
        environment: GridEnvironment,
        config: SiteConfig,
        wrapper: ApplicationWrapper,
        host: SimHost | None = None,
        policy: DistributionPolicy | None = None,
    ) -> None:
        self.environment = environment
        self.config = config
        self.wrapper = wrapper
        container = environment.container_for(config.authority)
        self.container: ServiceContainer = container or environment.create_container(
            config.authority, host=host
        )
        base = f"services/{config.app_name}"

        self.execution_factory = FactoryService(
            self._execution_builder(self.wrapper),
            instance_lifetime=config.instance_lifetime,
        )
        self.execution_factory_gsh = self.container.deploy(
            f"{base}/ExecutionFactory", self.execution_factory
        )

        self.manager = ManagerService([self.execution_factory_gsh.url()], policy=policy)
        self.manager_gsh = self.container.deploy(f"{base}/Manager", self.manager)

        self.application_factory = FactoryService(
            self._application_builder(),
            instance_lifetime=config.instance_lifetime,
        )
        self.application_factory_gsh = self.container.deploy(
            f"{base}/ApplicationFactory", self.application_factory
        )
        self.replica_containers: list[ServiceContainer] = []

    # ------------------------------------------------------------ builders
    def _execution_builder(self, wrapper: ApplicationWrapper):
        def build(params: list[str]) -> ExecutionService:
            if not params:
                raise ValueError("Execution factory needs the execution id")
            exec_id = params[0]
            exec_wrapper = wrapper.execution(exec_id)
            if self.config.timed_mapping:
                exec_wrapper = TimedExecutionWrapper(exec_wrapper, self.environment.recorder)
            return ExecutionService(exec_wrapper, exec_id, cache=self.config.build_cache())

        return build

    def _application_builder(self):
        def build(params: list[str]) -> ApplicationService:
            return ApplicationService(self.wrapper, self.manager_gsh.url())

        return build

    # ------------------------------------------------------------ replicas
    def add_replica(
        self,
        authority: str,
        host: SimHost | None = None,
        wrapper: ApplicationWrapper | None = None,
    ) -> GridServiceHandle:
        """Deploy a replica Execution Factory on another host.

        ``wrapper`` defaults to the site's wrapper (a replicated data
        store would normally have its own wrapper over the local copy;
        passing one models that).
        """
        container = self.environment.container_for(authority)
        if container is None:
            container = self.environment.create_container(authority, host=host)
        self.replica_containers.append(container)
        replica_factory = FactoryService(
            self._execution_builder(wrapper or self.wrapper),
            instance_lifetime=self.config.instance_lifetime,
        )
        suffix = len(self.replica_containers)
        gsh = container.deploy(
            f"services/{self.config.app_name}/ExecutionFactory-replica{suffix}",
            replica_factory,
        )
        self.manager.add_replica(gsh.url())
        return gsh

    # ---------------------------------------------------------- publishing
    def publish(self, uddi: UddiClient, org_key: str, description: str = "") -> str:
        """Publish this site's Application factory to the UDDI registry."""
        return uddi.publish_service(
            org_key,
            self.config.app_name,
            self.application_factory_gsh.url(),
            description or f"{self.config.app_name} performance data at {self.config.authority}",
        )

    @property
    def factory_url(self) -> str:
        return self.application_factory_gsh.url()
