#!/usr/bin/env python
"""Federated comparison across heterogeneous stores (Figures 8-11).

Three organizations publish performance data in three different formats
— HPL in a relational database, the same HPL content in native XML, and
PRESTA RMA in flat text files.  The client sees one uniform interface:
the same query panels work against all of them, which is the thesis's
central claim.

Run: ``python examples/federated_comparison.py``
"""

import tempfile

from repro.core import (
    ApplicationQueryPanel,
    ExecutionQuery,
    ExecutionQueryPanel,
    PPerfGridClient,
    PPerfGridSite,
    SiteConfig,
)
from repro.core.visualize import render_series_table
from repro.datastores import TextFileStore, XmlStore, generate_hpl, generate_presta
from repro.mapping import HplRdbmsWrapper, HplXmlWrapper, PrestaTextWrapper
from repro.ogsi import GridEnvironment
from repro.uddi import UddiClient, UddiRegistryServer


def main() -> None:
    env = GridEnvironment()
    registry = env.create_container("registry.example.org:9090")
    uddi_gsh = registry.deploy("services/uddi", UddiRegistryServer())
    uddi = UddiClient.connect(env, uddi_gsh)

    hpl = generate_hpl(seed=7)

    # Site A: HPL in an RDBMS.
    org_a = uddi.publish_organization("Lab A (RDBMS)", "a@example.org")
    site_a = PPerfGridSite(
        env, SiteConfig("siteA:8080", "HPL"), HplRdbmsWrapper(hpl.to_database())
    )
    site_a.publish(uddi, org_a)

    # Site B: the *same content* in native XML — different schema/format,
    # same PortTypes (the future-work §7 comparison store).
    org_b = uddi.publish_organization("Lab B (XML)", "b@example.org")
    site_b = PPerfGridSite(
        env, SiteConfig("siteB:8080", "HPL-XML"), HplXmlWrapper(XmlStore(hpl.to_xml()))
    )
    site_b.publish(uddi, org_b)

    # Site C: a different dataset entirely, in flat text files.
    org_c = uddi.publish_organization("Lab C (text files)", "c@example.org")
    with tempfile.TemporaryDirectory() as presta_dir:
        generate_presta(seed=13, num_executions=8).write_files(presta_dir)
        site_c = PPerfGridSite(
            env,
            SiteConfig("siteC:8080", "PRESTA-RMA"),
            PrestaTextWrapper(TextFileStore(presta_dir)),
        )
        site_c.publish(uddi, org_c)

        # ---------------- consumer: service discovery (Figure 8) ----------
        client = PPerfGridClient(env, uddi_gsh.url())
        print("Organizations in the registry:")
        bindings = []
        for org in client.discover_organizations("%"):
            for service in org.services():
                print(f"  {org.name:<22} -> {service.name} @ {service.factory_url}")
                bindings.append(client.bind(service))

        # ------------- Application Query Panel (Figure 9) -----------------
        by_name = {b.name: b for b in bindings}
        panel = ApplicationQueryPanel()
        panel.add_query(by_name["HPL"], "numprocs", "16")
        panel.add_query(by_name["HPL-XML"], "numprocs", "16")
        panel.add_query(by_name["PRESTA-RMA"], "numprocs", "16")
        executions = panel.run_queries()
        print(f"\nApplication Query Panel returned {len(executions)} executions")

        # The uniform view: identical HPL content behind two formats.
        rdbms_execs = by_name["HPL"].query_executions("numprocs", "16")
        xml_execs = by_name["HPL-XML"].query_executions("numprocs", "16")
        v_rdbms = rdbms_execs[0].get_pr("gflops", ["/Run"])[0].value
        v_xml = xml_execs[0].get_pr("gflops", ["/Run"])[0].value
        print(
            f"Same run through two formats: RDBMS gflops={v_rdbms}, "
            f"XML gflops={v_xml} (equal: {v_rdbms == v_xml})"
        )

        # ------------- Execution Query Panel (Figure 10) ------------------
        rma_execs = by_name["PRESTA-RMA"].query_executions("numprocs", "16")
        exec_panel = ExecutionQueryPanel(executions=rma_execs[:2])
        # Future-work §7 extension: filter results by metric value.
        exec_panel.add_query(
            ExecutionQuery(
                "bandwidth_mbps", ["/Op/MPI_Put"], min_value=50.0
            )
        )
        results = exec_panel.run_queries()
        for gsh, prs in results.items():
            print(f"\n{gsh}\n  MPI_Put sweeps with bandwidth >= 50 MB/s:")
            print(render_series_table(prs, max_rows=8))


if __name__ == "__main__":
    main()
