"""Data Layer: synthetic datasets and heterogeneous stores.

The thesis's three test datasets are reproduced by seeded synthetic
generators with the same shapes and storage formats:

========  =======================================  =======================
Dataset   Content                                  Storage (as in thesis)
========  =======================================  =======================
HPL       124 runs of the High-Performance         relational DB, 1 table;
          Linpack benchmark (gflops, runtime, ...)  also an XML file (§7)
SMG98     Vampir-style trace of a semicoarsening   relational DB, 5 tables
          multigrid solver: processes, functions,
          timed intervals, messages
PRESTA    MPI-2 RMA latency/bandwidth sweeps       flat ASCII text files;
RMA       across message sizes                      also relational (§7)
========  =======================================  =======================

Generators are deterministic given a seed; sizes are parameters so tests
stay fast while benchmarks match the paper's proportions (HPL queries
fast/tiny, RMA fast/large-payload, SMG98 slow/largest-payload).
"""

from repro.datastores.generators.hpl import HplDataset, generate_hpl
from repro.datastores.generators.presta import PrestaDataset, PrestaExecution, generate_presta
from repro.datastores.generators.smg98 import Smg98Dataset, generate_smg98
from repro.datastores.textfiles import TextFileStore, parse_presta_file
from repro.datastores.xmlstore import XmlStore

__all__ = [
    "HplDataset",
    "PrestaDataset",
    "PrestaExecution",
    "Smg98Dataset",
    "TextFileStore",
    "XmlStore",
    "generate_hpl",
    "generate_presta",
    "generate_smg98",
    "parse_presta_file",
]
