"""Query planning and execution (iterator model).

The planner is rule-based and small:

* equality predicates of the form ``col = literal`` on the driving table
  use a hash index when one exists;
* joins whose ON condition contains an equality between one column from
  each side become hash joins; everything else is a filtered nested loop;
* aggregation materializes groups in a dict keyed by GROUP BY values.

Results stream lazily where possible — the thesis notes Enosys-style
"lazy evaluation ... using an adaptation of relational database iterator
models", and the Mapping Layer benefits from LIMIT short-circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from repro.minidb.errors import ProgrammingError
from repro.minidb.expr import (
    AGGREGATE_FUNCS,
    Between,
    BinaryOp,
    BoolOp,
    BoundExpr,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    NotOp,
    RowLayout,
    contains_aggregate,
)
from repro.minidb.sql_ast import JoinClause, OrderItem, SelectStmt, TableRef
from repro.minidb.storage import Table
from repro.minidb.types import SqlValue, sort_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.minidb.database import Database


@dataclass
class ResultSet:
    """Materialized query result: column names plus row tuples."""

    columns: list[str]
    rows: list[tuple]

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> SqlValue:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ProgrammingError(
                f"scalar() requires a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[SqlValue]:
        """All values of one output column."""
        low = name.lower()
        for i, col in enumerate(self.columns):
            if col.lower() == low:
                return [row[i] for row in self.rows]
        raise ProgrammingError(f"no output column {name!r}")

    def dicts(self) -> list[dict[str, SqlValue]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


# ----------------------------------------------------------------- planner


def _split_conjuncts(expr: Expr | None) -> list[Expr]:
    if expr is None:
        return []
    if isinstance(expr, BoolOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _join_conjuncts(conjuncts: list[Expr]) -> Expr | None:
    if not conjuncts:
        return None
    expr = conjuncts[0]
    for other in conjuncts[1:]:
        expr = BoolOp("AND", expr, other)
    return expr


def _index_probe(
    conjuncts: list[Expr], table: Table, alias: str
) -> tuple[str, SqlValue, list[Expr]] | None:
    """Find ``col = literal`` (either order) with an index on *col*.

    Returns (index_name, probe_value, remaining_conjuncts) or None.
    """
    for i, conj in enumerate(conjuncts):
        if not (isinstance(conj, Comparison) and conj.op == "="):
            continue
        for ref, lit in ((conj.left, conj.right), (conj.right, conj.left)):
            if not (isinstance(ref, ColumnRef) and isinstance(lit, Literal)):
                continue
            if ref.table is not None and ref.table.lower() != alias.lower():
                continue
            try:
                table.schema.column_index(ref.column)
            except ProgrammingError:
                continue
            index = table.index_on(ref.column)
            if index is None:
                continue
            remaining = conjuncts[:i] + conjuncts[i + 1 :]
            return index.name, lit.value, remaining
    return None


def _equi_join_keys(
    condition: Expr, left_layout: RowLayout, right_layout: RowLayout
) -> tuple[Expr, Expr, Expr | None] | None:
    """Split an ON condition into (left_key, right_key, residual).

    Looks for one conjunct that is an equality with all column refs on one
    side resolvable in the left layout and the other side in the right.
    """

    def side(expr: Expr) -> str | None:
        refs = _refs(expr)
        if not refs:
            return None
        sides = set()
        for ref in refs:
            if _resolvable(ref, left_layout):
                sides.add("L")
            elif _resolvable(ref, right_layout):
                sides.add("R")
            else:
                return None
        return sides.pop() if len(sides) == 1 else None

    conjuncts = _split_conjuncts(condition)
    for i, conj in enumerate(conjuncts):
        if not (isinstance(conj, Comparison) and conj.op == "="):
            continue
        ls, rs = side(conj.left), side(conj.right)
        if ls == "L" and rs == "R":
            left_key, right_key = conj.left, conj.right
        elif ls == "R" and rs == "L":
            left_key, right_key = conj.right, conj.left
        else:
            continue
        residual = _join_conjuncts(conjuncts[:i] + conjuncts[i + 1 :])
        return left_key, right_key, residual
    return None


def _refs(expr: Expr) -> list[ColumnRef]:
    from repro.minidb.expr import column_refs

    return column_refs(expr)


def _resolvable(ref: ColumnRef, layout: RowLayout) -> bool:
    try:
        layout.resolve(ref)
        return True
    except ProgrammingError:
        return False


# ---------------------------------------------------------------- executor


class SelectExecutor:
    """Executes one SELECT statement against a database."""

    def __init__(self, db: "Database", stmt: SelectStmt) -> None:
        self.db = db
        self.stmt = stmt
        self._residual_where: Expr | None = None

    def run(self) -> ResultSet:
        stmt = self.stmt
        layout, rows = self._base_rows(stmt.table, stmt.where)
        for join in stmt.joins:
            layout, rows = self._apply_join(layout, rows, join)
        residual = self._residual_where
        if residual is not None:
            bound = BoundExpr(residual, layout)
            rows = (row for row in rows if bound.eval(row))

        wants_aggregate = (
            bool(stmt.group_by)
            or stmt.having is not None
            or any(not it.is_star and contains_aggregate(it.expr) for it in stmt.items)
            or any(contains_aggregate(o.expr) for o in stmt.order_by)
        )
        if wants_aggregate:
            columns, out_rows = self._aggregate(layout, rows)
        else:
            columns, out_rows = self._project(layout, rows)

        if stmt.distinct:
            seen: set[tuple] = set()
            unique: list[tuple] = []
            for row in out_rows:
                key = tuple(sort_key(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            out_rows = unique
        if stmt.offset:
            out_rows = out_rows[stmt.offset :]
        if stmt.limit is not None:
            out_rows = out_rows[: stmt.limit]
        return ResultSet(columns, out_rows)

    def explain(self) -> list[str]:
        """Describe the plan this executor would run, one line per stage.

        Mirrors the decisions in :meth:`run` (index probe selection,
        hash- vs nested-loop join) without touching any rows — used to
        test the planner and to diagnose slow Mapping-Layer queries.
        """
        stmt = self.stmt
        lines: list[str] = []
        table = self.db.table(stmt.table.table)
        layout = RowLayout([(stmt.table.alias, c.name) for c in table.schema.columns])
        conjuncts = _split_conjuncts(stmt.where)
        probe = _index_probe(conjuncts, table, stmt.table.alias) if conjuncts else None
        if probe is not None:
            index_name, value, remaining = probe
            index = table.indexes[index_name]
            lines.append(
                f"IndexLookup {stmt.table.table} AS {stmt.table.alias} "
                f"USING {index_name} ({index.column} = {value!r})"
            )
            residual = _join_conjuncts(remaining)
        else:
            lines.append(f"SeqScan {stmt.table.table} AS {stmt.table.alias}")
            residual = stmt.where
        for join in stmt.joins:
            right_table = self.db.table(join.table.table)
            right_layout = RowLayout(
                [(join.table.alias, c.name) for c in right_table.schema.columns]
            )
            keys = _equi_join_keys(join.condition, layout, right_layout)
            kind = "Left" if join.left_outer else "Inner"
            if keys is not None:
                lines.append(
                    f"HashJoin ({kind}) {join.table.table} AS {join.table.alias}"
                )
            else:
                lines.append(
                    f"NestedLoopJoin ({kind}) {join.table.table} AS {join.table.alias}"
                )
            layout = layout.concat(right_layout)
        if residual is not None:
            lines.append("Filter")
        wants_aggregate = (
            bool(stmt.group_by)
            or stmt.having is not None
            or any(not it.is_star and contains_aggregate(it.expr) for it in stmt.items)
            or any(contains_aggregate(o.expr) for o in stmt.order_by)
        )
        if wants_aggregate:
            lines.append(f"Aggregate (group keys: {len(stmt.group_by)})")
            if stmt.having is not None:
                lines.append("Having")
        if stmt.order_by:
            lines.append(f"Sort ({len(stmt.order_by)} key(s))")
        if stmt.distinct:
            lines.append("Distinct")
        if stmt.offset or stmt.limit is not None:
            lines.append(f"Limit {stmt.limit} Offset {stmt.offset}")
        return lines

    # ------------------------------------------------------------- stages
    def _base_rows(
        self, ref: TableRef, where: Expr | None
    ) -> tuple[RowLayout, Iterator[tuple]]:
        table = self.db.table(ref.table)
        layout = RowLayout([(ref.alias, col.name) for col in table.schema.columns])
        conjuncts = _split_conjuncts(where)
        probe = _index_probe(conjuncts, table, ref.alias) if conjuncts else None
        if probe is not None:
            index_name, value, remaining = probe
            self._residual_where = _join_conjuncts(remaining)
            index = table.indexes[index_name]
            rowids = sorted(index.lookup(value))
            rows: Iterator[tuple] = (
                table.rows[rid] for rid in rowids if table.rows[rid] is not None
            )
            return layout, rows
        self._residual_where = where
        return layout, (row for _, row in table.scan())

    def _apply_join(
        self, left_layout: RowLayout, left_rows: Iterator[tuple], join: JoinClause
    ) -> tuple[RowLayout, Iterator[tuple]]:
        table = self.db.table(join.table.table)
        right_layout = RowLayout(
            [(join.table.alias, col.name) for col in table.schema.columns]
        )
        out_layout = left_layout.concat(right_layout)
        right_width = len(right_layout.slots)
        keys = _equi_join_keys(join.condition, left_layout, right_layout)

        if keys is not None:
            left_key_expr, right_key_expr, residual = keys
            right_key = BoundExpr(right_key_expr, right_layout)
            build: dict[SqlValue, list[tuple]] = {}
            for _, row in table.scan():
                k = right_key.eval(row)
                if k is not None:
                    build.setdefault(k, []).append(row)
            left_key = BoundExpr(left_key_expr, left_layout)
            bound_residual = BoundExpr(residual, out_layout) if residual is not None else None

            def hash_join() -> Iterator[tuple]:
                null_pad = (None,) * right_width
                for lrow in left_rows:
                    matched = False
                    k = left_key.eval(lrow)
                    if k is not None:
                        for rrow in build.get(k, ()):
                            combined = lrow + rrow
                            if bound_residual is None or bound_residual.eval(combined):
                                matched = True
                                yield combined
                    if join.left_outer and not matched:
                        yield lrow + null_pad

            return out_layout, hash_join()

        bound = BoundExpr(join.condition, out_layout)
        right_rows = [row for _, row in table.scan()]

        def nested_loop() -> Iterator[tuple]:
            null_pad = (None,) * right_width
            for lrow in left_rows:
                matched = False
                for rrow in right_rows:
                    combined = lrow + rrow
                    if bound.eval(combined):
                        matched = True
                        yield combined
                if join.left_outer and not matched:
                    yield lrow + null_pad

        return out_layout, nested_loop()

    def _expand_items(self, layout: RowLayout) -> list[tuple[str, Expr]]:
        """Expand stars; return (output_name, expr) pairs."""
        out: list[tuple[str, Expr]] = []
        for i, item in enumerate(self.stmt.items):
            if item.is_star:
                for alias, col in layout.slots:
                    if item.star_table is None or alias.lower() == item.star_table.lower():
                        out.append((col, ColumnRef(alias, col)))
                if item.star_table is not None and not any(
                    alias.lower() == item.star_table.lower() for alias, _ in layout.slots
                ):
                    raise ProgrammingError(f"unknown table alias {item.star_table!r} in select *")
                continue
            name = item.alias
            if name is None:
                name = item.expr.column if isinstance(item.expr, ColumnRef) else f"expr{i + 1}"
            out.append((name, item.expr))
        if not out:
            raise ProgrammingError("empty select list")
        return out

    def _project(
        self, layout: RowLayout, rows: Iterator[tuple]
    ) -> tuple[list[str], list[tuple]]:
        items = self._expand_items(layout)
        columns = [name for name, _ in items]
        bound = [BoundExpr(expr, layout) for _, expr in items]
        order = self.stmt.order_by
        if not order:
            return columns, [tuple(b.eval(row) for b in bound) for row in rows]
        order_bound = [self._bind_order(o, items, layout) for o in order]
        decorated: list[tuple[tuple, tuple]] = []
        for row in rows:
            projected = tuple(b.eval(row) for b in bound)
            key_parts = []
            for ob, positional in order_bound:
                value = projected[ob] if positional else ob.eval(row)  # type: ignore[index]
                key_parts.append(sort_key(value))
            decorated.append((tuple(key_parts), projected))
        decorated.sort(key=lambda pair: self._order_cmp_key(pair[0]))
        return columns, [projected for _, projected in decorated]

    def _order_cmp_key(self, key_parts: tuple) -> tuple:
        out = []
        for part, item in zip(key_parts, self.stmt.order_by):
            out.append(_Reversed(part) if item.descending else part)
        return tuple(out)

    def _bind_order(
        self, item: OrderItem, items: list[tuple[str, Expr]], layout: RowLayout
    ):
        """Bind one ORDER BY item: positional int, output alias, or expression."""
        expr = item.expr
        if isinstance(expr, Literal) and isinstance(expr.value, int):
            pos = expr.value
            if not 1 <= pos <= len(items):
                raise ProgrammingError(f"ORDER BY position {pos} out of range")
            return pos - 1, True
        if isinstance(expr, ColumnRef) and expr.table is None:
            for i, (name, _) in enumerate(items):
                if name.lower() == expr.column.lower():
                    return i, True
        return BoundExpr(expr, layout), False

    # -------------------------------------------------------- aggregation
    def _aggregate(
        self, layout: RowLayout, rows: Iterator[tuple]
    ) -> tuple[list[str], list[tuple]]:
        stmt = self.stmt
        items = self._expand_items(layout)
        group_exprs = list(stmt.group_by)
        # Collect every distinct aggregate call appearing anywhere.
        agg_calls: list[FuncCall] = []

        def collect(expr: Expr) -> None:
            if isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCS:
                if expr not in agg_calls:
                    agg_calls.append(expr)
                return
            for child in _children(expr):
                collect(child)

        for _, expr in items:
            collect(expr)
        if stmt.having is not None:
            collect(stmt.having)
        for order in stmt.order_by:
            collect(order.expr)

        # Validate: non-aggregate output expressions must be group keys.
        for name, expr in items:
            if not contains_aggregate(expr) and expr not in group_exprs:
                if group_exprs or not agg_calls:
                    raise ProgrammingError(
                        f"output column {name!r} must appear in GROUP BY or an aggregate"
                    )
                # Implicit single-group aggregate (no GROUP BY): bare columns invalid.
                raise ProgrammingError(
                    f"output column {name!r} is not aggregated (no GROUP BY present)"
                )

        bound_groups = [BoundExpr(e, layout) for e in group_exprs]
        bound_agg_args = [
            BoundExpr(call.args[0], layout) if call.args else None for call in agg_calls
        ]

        groups: dict[tuple, list[_AggState]] = {}
        group_values: dict[tuple, tuple] = {}
        for row in rows:
            key_values = tuple(b.eval(row) for b in bound_groups)
            key = tuple(sort_key(v) for v in key_values)
            states = groups.get(key)
            if states is None:
                states = [_AggState(call.name) for call in agg_calls]
                groups[key] = states
                group_values[key] = key_values
            for state, arg, call in zip(states, bound_agg_args, agg_calls):
                if call.star:
                    state.update(1)
                else:
                    state.update(arg.eval(row))  # type: ignore[union-attr]

        if not groups and not group_exprs:
            # Aggregates over an empty input produce one row.
            groups[()] = [_AggState(call.name) for call in agg_calls]
            group_values[()] = ()

        # Build the group-row layout: g0..gN-1 then a0..aM-1.
        slots = [("__grp", f"g{i}") for i in range(len(group_exprs))]
        slots += [("__agg", f"a{i}") for i in range(len(agg_calls))]
        group_layout = RowLayout(slots)

        def rewrite(expr: Expr) -> Expr:
            for i, g in enumerate(group_exprs):
                if expr == g:
                    return ColumnRef("__grp", f"g{i}")
            if isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCS:
                return ColumnRef("__agg", f"a{agg_calls.index(expr)}")
            return _rebuild(expr, rewrite)

        columns = [name for name, _ in items]
        bound_items = [BoundExpr(rewrite(expr), group_layout) for _, expr in items]
        bound_having = (
            BoundExpr(rewrite(stmt.having), group_layout) if stmt.having is not None else None
        )
        alias_to_expr = {name.lower(): expr for name, expr in items}

        def order_expr(expr: Expr) -> Expr:
            """Resolve output aliases / positions before the aggregate rewrite."""
            if isinstance(expr, Literal) and isinstance(expr.value, int):
                pos = expr.value
                if not 1 <= pos <= len(items):
                    raise ProgrammingError(f"ORDER BY position {pos} out of range")
                return rewrite(items[pos - 1][1])
            if isinstance(expr, ColumnRef) and expr.table is None:
                aliased = alias_to_expr.get(expr.column.lower())
                if aliased is not None:
                    return rewrite(aliased)
            return rewrite(expr)

        order_keys = [
            (BoundExpr(order_expr(o.expr), group_layout), o.descending) for o in stmt.order_by
        ]

        out: list[tuple[tuple, tuple]] = []
        for key, states in groups.items():
            group_row = group_values[key] + tuple(s.result() for s in states)
            if bound_having is not None and not bound_having.eval(group_row):
                continue
            projected = tuple(b.eval(group_row) for b in bound_items)
            sort_parts = tuple(
                _Reversed(sort_key(b.eval(group_row))) if desc else sort_key(b.eval(group_row))
                for b, desc in order_keys
            )
            out.append((sort_parts, projected))
        if order_keys:
            out.sort(key=lambda pair: pair[0])
        return columns, [projected for _, projected in out]


class _Reversed:
    """Inverts comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


class _AggState:
    """Incremental state for one aggregate over one group."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: float | int = 0
        self.minimum: SqlValue = None
        self.maximum: SqlValue = None

    def update(self, value: SqlValue) -> None:
        if value is None:
            return
        self.count += 1
        if self.name in ("SUM", "AVG"):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ProgrammingError(f"{self.name} requires numeric input, got {value!r}")
            self.total += value
        elif self.name == "MIN":
            if self.minimum is None or sort_key(value) < sort_key(self.minimum):
                self.minimum = value
        elif self.name == "MAX":
            if self.maximum is None or sort_key(value) > sort_key(self.maximum):
                self.maximum = value

    def result(self) -> SqlValue:
        if self.name == "COUNT":
            return self.count
        if self.count == 0:
            return None
        if self.name == "SUM":
            return self.total
        if self.name == "AVG":
            return self.total / self.count
        if self.name == "MIN":
            return self.minimum
        return self.maximum


def _children(expr: Expr) -> list[Expr]:
    if isinstance(expr, (BinaryOp, Comparison, BoolOp)):
        return [expr.left, expr.right]
    if isinstance(expr, (NotOp, Negate)):
        return [expr.operand]
    if isinstance(expr, IsNull):
        return [expr.operand]
    if isinstance(expr, InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, Like):
        return [expr.operand, expr.pattern]
    if isinstance(expr, FuncCall):
        return list(expr.args)
    return []


def _rebuild(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild an expression applying *fn* to each child."""
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, fn(expr.left), fn(expr.right))
    if isinstance(expr, Comparison):
        return Comparison(expr.op, fn(expr.left), fn(expr.right))
    if isinstance(expr, BoolOp):
        return BoolOp(expr.op, fn(expr.left), fn(expr.right))
    if isinstance(expr, NotOp):
        return NotOp(fn(expr.operand))
    if isinstance(expr, Negate):
        return Negate(fn(expr.operand))
    if isinstance(expr, IsNull):
        return IsNull(fn(expr.operand), expr.negated)
    if isinstance(expr, InList):
        return InList(fn(expr.operand), tuple(fn(i) for i in expr.items), expr.negated)
    if isinstance(expr, Between):
        return Between(fn(expr.operand), fn(expr.low), fn(expr.high), expr.negated)
    if isinstance(expr, Like):
        return Like(fn(expr.operand), fn(expr.pattern), expr.negated)
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(fn(a) for a in expr.args), expr.star)
    return expr
