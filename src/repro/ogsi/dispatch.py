"""Non-blocking dispatch core: per-service serialization + admission control.

The container used to take one global re-entrant lock around every
request, which capped each authority at one in-flight request and made
cross-container notification a lock-ordering deadlock (two containers
delivering into each other's sinks while each held its own dispatch
lock).  This module replaces that lock with three cooperating pieces:

* :class:`ServiceGate` — a re-entrant, *fully releasable* mutex, one per
  deployed service path.  Dispatch serializes per service instead of per
  container, so requests to different services in one container proceed
  concurrently while a single stateful instance still sees one request
  at a time.
* a per-thread **dispatch frame stack** — every dispatch pushes the gate
  it holds; :func:`suspend_dispatch` releases every gate the current
  thread holds for the duration of an outbound SOAP call (notification
  delivery), restoring them afterwards.  No SOAP round trip is ever made
  while holding dispatch state, which is the deadlock fix.
* :class:`AdmissionController` — a bounded request queue at the
  container ingress with per-client fair (round-robin) queueing and
  load-shedding: when the queue is at its configured bound, the request
  is refused with a ``Server``-role busy :class:`BusyFault` instead of
  piling onto the convoy.  Nested dispatches (a service calling another
  service mid-request) bypass admission — admitted work must be able to
  run to completion, or a saturated queue deadlocks against itself.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.soap.faults import SoapFault
from repro.xmlkit import Element


class BusyFault(SoapFault):
    """The load-shedding fault: the container refused to queue a request.

    Always ``Server``-role (the caller did nothing wrong; retrying later
    is legitimate) with a ``ServerBusy`` detail so clients can tell a
    shed from an application fault.
    """

    def __init__(self, message: str) -> None:
        super().__init__("Server", message, detail="ServerBusy")


def is_busy_fault(fault: SoapFault) -> bool:
    """True when *fault* is a load-shed (client-side faults re-decode)."""
    return fault.code == "Server" and fault.detail == "ServerBusy"


# --------------------------------------------------------------------- gates
class ServiceGate:
    """A re-entrant mutex whose full recursion depth can be released.

    ``release_save``/``acquire_restore`` (the :class:`threading.Condition`
    idiom) let :func:`suspend_dispatch` drop the gate across an outbound
    call even when dispatch has nested back into the same service.
    """

    __slots__ = ("_cond", "_owner", "_depth")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._owner: int | None = None
        self._depth = 0

    def acquire(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._owner == me:
                self._depth += 1
                return
            while self._owner is not None:
                self._cond.wait()
            self._owner = me
            self._depth = 1

    def release(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._owner != me:
                raise RuntimeError("release of a gate not owned by this thread")
            self._depth -= 1
            if self._depth == 0:
                self._owner = None
                self._cond.notify()

    def release_save(self) -> int:
        """Release the gate completely; returns the saved depth."""
        me = threading.get_ident()
        with self._cond:
            if self._owner != me:
                raise RuntimeError("release_save of a gate not owned by this thread")
            depth, self._depth, self._owner = self._depth, 0, None
            self._cond.notify()
            return depth

    def acquire_restore(self, depth: int) -> None:
        """Re-take the gate at the previously saved recursion depth."""
        me = threading.get_ident()
        with self._cond:
            while self._owner is not None:
                self._cond.wait()
            self._owner = me
            self._depth = depth

    def held_by_me(self) -> bool:
        return self._owner == threading.get_ident()


class _Frames(threading.local):
    def __init__(self) -> None:  # per-thread initializer
        self.stack: list[ServiceGate] = []


_FRAMES = _Frames()


def in_dispatch() -> bool:
    """True while the current thread is inside any container dispatch."""
    return bool(_FRAMES.stack)


def dispatch_depth() -> int:
    return len(_FRAMES.stack)


@contextmanager
def dispatch_frame(gate: ServiceGate) -> Iterator[None]:
    """Hold *gate* for one dispatch, visible to :func:`suspend_dispatch`."""
    gate.acquire()
    _FRAMES.stack.append(gate)
    try:
        yield
    finally:
        _FRAMES.stack.pop()
        gate.release()


@contextmanager
def suspend_dispatch() -> Iterator[None]:
    """Release every dispatch gate this thread holds for the duration.

    The notification source wraps its delivery loop in this so the SOAP
    round trips into other containers are made with no dispatch state
    held — the cross-container deadlock fix.  Gates are restored in
    their original (outermost-first) acquisition order.
    """
    unique: list[ServiceGate] = []
    for gate in _FRAMES.stack:  # outermost first; dedupe nested re-entries
        if gate not in unique:
            unique.append(gate)
    saved = [(gate, gate.release_save()) for gate in reversed(unique)]
    try:
        yield
    finally:
        for gate, depth in reversed(saved):  # outermost first again
            gate.acquire_restore(depth)


# ----------------------------------------------------------------- admission
class AdmissionController:
    """Bounded ingress queue with per-client fair (round-robin) admission.

    ``max_inflight`` is the number of requests dispatched concurrently
    (``None`` = unbounded: no queueing ever happens); ``max_queue_depth``
    bounds how many requests may wait (``None`` = unbounded queue; ``0``
    = shed immediately when saturated).  Waiters are kept in one FIFO per
    client and admitted round-robin across clients, so one aggressive
    client cannot starve the rest.
    """

    def __init__(
        self,
        max_inflight: int | None = None,
        max_queue_depth: int | None = None,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ValueError(f"max_queue_depth must be >= 0, got {max_queue_depth}")
        self.max_inflight = max_inflight
        self.max_queue_depth = max_queue_depth
        self._cond = threading.Condition()
        #: client key -> FIFO of waiting tickets (single-element lists)
        self._waiters: dict[str, deque[list[bool]]] = {}
        #: round-robin order over clients that currently have waiters
        self._rotation: deque[str] = deque()
        self.inflight = 0
        self.queued = 0
        self.admitted = 0
        self.shed = 0
        self.queue_waits = 0
        self.peak_inflight = 0
        self.peak_queued = 0

    def acquire(self, client: str) -> None:
        """Admit one request for *client*, queueing or shedding as needed.

        Raises :class:`BusyFault` when the wait queue is at its bound.
        """
        with self._cond:
            if self.max_inflight is None or (
                self.inflight < self.max_inflight and not self._rotation
            ):
                self._admit_locked()
                return
            if (
                self.max_queue_depth is not None
                and self.queued >= self.max_queue_depth
            ):
                self.shed += 1
                raise BusyFault(
                    f"busy: {self.queued} request(s) already queued "
                    f"(bound {self.max_queue_depth}), try again later"
                )
            ticket: list[bool] = [False]
            fifo = self._waiters.get(client)
            if fifo is None:
                fifo = self._waiters[client] = deque()
            if not fifo:
                self._rotation.append(client)
            fifo.append(ticket)
            self.queued += 1
            self.queue_waits += 1
            self.peak_queued = max(self.peak_queued, self.queued)
            while not ticket[0]:
                self._cond.wait()

    def release(self) -> None:
        """One dispatched request finished; admit the next fair waiter."""
        with self._cond:
            self.inflight -= 1
            self._grant_locked()
            if self.inflight == 0 and self.queued == 0:
                self._cond.notify_all()  # wake wait_idle

    def wait_idle(self, timeout: float = 5.0) -> bool:
        """Block until no request is in flight or queued (True on success).

        The teardown half of the admission contract: environment close
        drains in-flight dispatches through this before stopping the
        reactor, so a service mid-request never sees its infrastructure
        vanish under it.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while self.inflight > 0 or self.queued > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=min(remaining, 0.05))
            return True

    def _admit_locked(self) -> None:
        self.inflight += 1
        self.admitted += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)

    def _grant_locked(self) -> None:
        granted = False
        while self._rotation and (
            self.max_inflight is None or self.inflight < self.max_inflight
        ):
            client = self._rotation.popleft()
            fifo = self._waiters[client]
            ticket = fifo.popleft()
            if fifo:
                self._rotation.append(client)  # round-robin re-queue
            else:
                del self._waiters[client]
            ticket[0] = True
            self.queued -= 1
            self._admit_locked()
            granted = True
        if granted:
            self._cond.notify_all()

    def snapshot(self) -> dict[str, int]:
        with self._cond:
            return {
                "inflight": self.inflight,
                "queueDepth": self.queued,
                "admitted": self.admitted,
                "shed": self.shed,
                "queueWaits": self.queue_waits,
                "peakInflight": self.peak_inflight,
                "peakQueueDepth": self.peak_queued,
            }


# -------------------------------------------------------------- dispatch core
class DispatchCore:
    """One container's gate table (plus the legacy single-gate ablation).

    ``serialize_all=True`` restores the old whole-container serialization
    (every path shares one gate) — kept as the baseline arm for the
    concurrency benchmark and as an escape hatch for services that share
    mutable state across paths without their own locking.
    """

    def __init__(self, serialize_all: bool = False) -> None:
        self.serialize_all = serialize_all
        self._gates: dict[str, ServiceGate] = {}
        self._lock = threading.Lock()
        self._global_gate = ServiceGate() if serialize_all else None

    def gate_for(self, path: str) -> ServiceGate:
        if self._global_gate is not None:
            return self._global_gate
        with self._lock:
            gate = self._gates.get(path)
            if gate is None:
                gate = self._gates[path] = ServiceGate()
            return gate

    def discard(self, path: str) -> None:
        """Forget a removed service's gate (holders keep their reference)."""
        if self._global_gate is None:
            with self._lock:
                self._gates.pop(path, None)

    def gate_count(self) -> int:
        with self._lock:
            return len(self._gates)


# ------------------------------------------------------------ client identity
#: SOAP header element name carrying an explicit client identity
CLIENT_ID_HEADER = "clientId"


class _ClientContext(threading.local):
    value: str | None = None


_CLIENT_CONTEXT = _ClientContext()


def current_client_id() -> str | None:
    """The ``clientId`` header of the request this thread is dispatching.

    ``None`` outside dispatch, and for requests that carried no header —
    the engine's tenant scheduling then falls back to its default
    tenant, exactly as admission control falls back to the thread key.
    """
    return _CLIENT_CONTEXT.value


@contextmanager
def client_context(client_id: str | None) -> Iterator[None]:
    """Make *client_id* visible via :func:`current_client_id` within."""
    previous = _CLIENT_CONTEXT.value
    _CLIENT_CONTEXT.value = client_id
    try:
        yield
    finally:
        _CLIENT_CONTEXT.value = previous

_CLIENT_ID_RE = re.compile(
    rb"<(?:[A-Za-z0-9_.-]+:)?clientId(?:\s[^>]*)?>([^<]{1,128})</"
)


def extract_client_id(request: bytes) -> str | None:
    """Cheaply pull a ``<clientId>`` header value out of raw request bytes.

    Admission runs *before* the envelope is parsed (shedding must stay
    cheap under overload), so the client key comes from a byte scan, not
    a DOM walk.  Absent header -> ``None``; the container then falls back
    to the calling thread's identity, which is exactly one simulated
    client in every harness this repo runs.
    """
    match = _CLIENT_ID_RE.search(request)
    if match is None:
        return None
    return match.group(1).decode("utf-8", "replace").strip() or None


def client_id_headers(client_id: str) -> Callable[[str, bytes], list[Element]]:
    """A stub ``headers_provider`` stamping every request with *client_id*."""
    if not client_id:
        raise ValueError("client_id may not be empty")

    def provider(_operation: str, _payload: bytes) -> list[Element]:
        return [Element(CLIENT_ID_HEADER, children=[client_id])]

    return provider
