"""UDDI-style business registry (thesis §5.5.1, Figure 8).

PPerfGrid publishers create an **Organization** entry (contact info) and
one **Service** entry per published Application dataset; the Service
entry carries the URL of the Application Grid service factory.  Consumers
retrieve all Organizations or query them by name, then bind to the
factories of the Services they select.

:class:`UddiRegistryServer` is the registry itself (deployable as a Grid
service); :class:`OrganizationProxy` / :class:`ServiceProxy` are the
simplified client-side classes (the UDDI4J-analog mentioned in §5.5.1).
"""

from repro.uddi.registry_server import (
    OrganizationEntry,
    ServiceEntry,
    UDDI_PORTTYPE,
    UddiError,
    UddiRegistryServer,
)
from repro.uddi.proxy import OrganizationProxy, ServiceProxy, UddiClient

__all__ = [
    "OrganizationEntry",
    "OrganizationProxy",
    "ServiceEntry",
    "ServiceProxy",
    "UDDI_PORTTYPE",
    "UddiClient",
    "UddiError",
    "UddiRegistryServer",
]
