"""Simulated hosts.

A :class:`SimHost` models the thesis's single-CPU Sun workstations: work
submitted to a host executes serially, so the completion time of a batch
is the sum of its pieces, while two hosts proceed in parallel.  The
Figure 12 scalability experiment replays measured per-query costs onto
host timelines and reads off the makespan.

Hosts also expose coarse resource statistics (load, memory pressure) via
:meth:`SimHost.resource_stats`; the adaptive cache-replacement policy
from the thesis's future-work section consumes these through a Service
Data Provider service.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class HostTimeline:
    """Serialized CPU timeline of one host.

    ``schedule(duration, ready_at)`` places a task on the CPU no earlier
    than *ready_at* and no earlier than the previous task's completion,
    returning (start, end).
    """

    busy_until: float = 0.0
    total_busy: float = 0.0
    tasks: int = 0

    def schedule(self, duration: float, ready_at: float = 0.0) -> tuple[float, float]:
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        start = max(self.busy_until, ready_at)
        end = start + duration
        self.busy_until = end
        self.total_busy += duration
        self.tasks += 1
        return start, end

    def reset(self) -> None:
        self.busy_until = 0.0
        self.total_busy = 0.0
        self.tasks = 0

    def utilization(self, horizon: float) -> float:
        """Fraction of [0, horizon] this host spent busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.total_busy / horizon)


@dataclass
class SimHost:
    """A named host with a CPU speed factor and simple resource stats.

    ``cpu_factor`` scales charged durations: a task measured at *d*
    seconds on the reference machine takes ``d * cpu_factor`` here.  The
    thesis's two service hosts are identical (factor 1.0); the
    distribution-policy ablation uses heterogeneous factors.
    """

    name: str
    cpu_factor: float = 1.0
    memory_mb: int = 128
    timeline: HostTimeline = field(default_factory=HostTimeline)
    #: memory consumed by caches etc., maintained by services on this host
    memory_used_mb: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_factor <= 0:
            raise ValueError(f"cpu_factor must be positive, got {self.cpu_factor}")
        if self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {self.memory_mb}")

    def charge(self, duration: float, ready_at: float = 0.0) -> tuple[float, float]:
        """Schedule *duration* (reference seconds) of CPU work."""
        return self.timeline.schedule(duration * self.cpu_factor, ready_at)

    def allocate_memory(self, mb: float) -> None:
        self.memory_used_mb = min(self.memory_mb, self.memory_used_mb + mb)

    def release_memory(self, mb: float) -> None:
        self.memory_used_mb = max(0.0, self.memory_used_mb - mb)

    def resource_stats(self, horizon: float | None = None) -> dict[str, float]:
        """CPU / memory usage snapshot (the Service Data Provider payload)."""
        horizon = horizon if horizon is not None else self.timeline.busy_until
        return {
            "cpu_load": self.timeline.utilization(horizon),
            "memory_used_mb": self.memory_used_mb,
            "memory_total_mb": float(self.memory_mb),
            "memory_free_fraction": 1.0 - self.memory_used_mb / self.memory_mb,
            "tasks_completed": float(self.timeline.tasks),
        }

    def reset(self) -> None:
        self.timeline.reset()
        self.memory_used_mb = 0.0
