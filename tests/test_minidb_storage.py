"""Unit tests for row storage, indexes, constraints, and bulk load."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb.errors import IntegrityError, ProgrammingError
from repro.minidb.schema import ColumnDef, TableSchema
from repro.minidb.storage import HashIndex, Table
from repro.minidb.types import SqlType


def _schema(name="t"):
    return TableSchema(
        name,
        [
            ColumnDef("id", SqlType.INTEGER, primary_key=True),
            ColumnDef("grp", SqlType.TEXT),
            ColumnDef("x", SqlType.REAL),
        ],
    )


class TestSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(ProgrammingError):
            TableSchema("t", [ColumnDef("a", SqlType.TEXT), ColumnDef("A", SqlType.TEXT)])

    def test_multiple_pks_rejected(self):
        with pytest.raises(ProgrammingError):
            TableSchema(
                "t",
                [
                    ColumnDef("a", SqlType.INTEGER, primary_key=True),
                    ColumnDef("b", SqlType.INTEGER, primary_key=True),
                ],
            )

    def test_column_lookup_case_insensitive(self):
        schema = _schema()
        assert schema.column_index("GRP") == 1
        assert schema.column("ID").primary_key
        with pytest.raises(ProgrammingError):
            schema.column_index("nope")

    def test_primary_key_property(self):
        assert _schema().primary_key.name == "id"
        no_pk = TableSchema("t", [ColumnDef("a", SqlType.TEXT)])
        assert no_pk.primary_key is None


class TestHashIndex:
    def test_nulls_not_indexed(self):
        index = HashIndex("i", "c")
        index.add(None, 1)
        assert len(index) == 0
        assert index.lookup(None) == set()

    def test_add_remove(self):
        index = HashIndex("i", "c")
        index.add("v", 1)
        index.add("v", 2)
        assert index.lookup("v") == {1, 2}
        index.remove("v", 1)
        assert index.lookup("v") == {2}
        index.remove("v", 2)
        assert index.lookup("v") == set()

    def test_unique_violation(self):
        index = HashIndex("i", "c", unique=True)
        index.add("v", 1)
        with pytest.raises(IntegrityError):
            index.add("v", 2)


class TestTable:
    def test_pk_index_created_automatically(self):
        table = Table(_schema())
        assert any(name.startswith("__pk_") for name in table.indexes)

    def test_insert_with_missing_optional_columns(self):
        table = Table(_schema())
        table.insert({"id": 1})
        assert table.rows[0] == (1, None, None)

    def test_insert_unknown_column_rejected(self):
        table = Table(_schema())
        with pytest.raises(ProgrammingError):
            table.insert({"id": 1, "ghost": 2})

    def test_pk_required(self):
        table = Table(_schema())
        with pytest.raises(IntegrityError):
            table.insert({"grp": "a"})

    def test_not_null_enforced_on_update(self):
        schema = TableSchema(
            "t",
            [
                ColumnDef("id", SqlType.INTEGER, primary_key=True),
                ColumnDef("req", SqlType.TEXT, not_null=True),
            ],
        )
        table = Table(schema)
        table.insert({"id": 1, "req": "x"})
        with pytest.raises(IntegrityError):
            table.update_row(0, {"req": None})

    def test_unique_enforced_on_update(self):
        table = Table(_schema())
        table.insert({"id": 1})
        table.insert({"id": 2})
        with pytest.raises(IntegrityError):
            table.update_row(1, {"id": 1})

    def test_update_same_value_allowed(self):
        table = Table(_schema())
        table.insert({"id": 1, "grp": "a"})
        table.update_row(0, {"id": 1, "grp": "b"})
        assert table.rows[0] == (1, "b", None)

    def test_cannot_drop_pk_index(self):
        table = Table(_schema())
        with pytest.raises(ProgrammingError):
            table.drop_index("__pk_t")

    def test_secondary_index_maintained(self):
        table = Table(_schema())
        table.create_index("by_grp", "grp")
        rid = table.insert({"id": 1, "grp": "a"})
        assert table.index_on("grp").lookup("a") == {rid}
        table.update_row(rid, {"grp": "b"})
        assert table.index_on("grp").lookup("a") == set()
        assert table.index_on("grp").lookup("b") == {rid}
        table.delete_row(rid)
        assert table.index_on("grp").lookup("b") == set()

    def test_index_built_over_existing_rows(self):
        table = Table(_schema())
        for i in range(5):
            table.insert({"id": i, "grp": "g"})
        index = table.create_index("late", "grp")
        assert len(index.lookup("g")) == 5

    def test_double_delete_rejected(self):
        table = Table(_schema())
        rid = table.insert({"id": 1})
        table.delete_row(rid)
        with pytest.raises(ProgrammingError):
            table.delete_row(rid)

    def test_compaction_preserves_content_and_indexes(self):
        table = Table(_schema())
        for i in range(200):
            table.insert({"id": i, "grp": f"g{i % 3}"})
        table.create_index("by_grp", "grp")
        # Delete just over half so the live count drops strictly below
        # len(rows)//2, which is what triggers compaction.
        table.delete_rows([rid for rid, row in table.scan() if row[0] % 2 == 0 or row[0] == 1])
        assert len(table) == 99
        # Compaction happened (tombstones cleared).
        assert all(row is not None for row in table.rows)
        survivors = {row[0] for _, row in table.scan()}
        assert survivors == {i for i in range(200) if i % 2 == 1 and i != 1}
        # Indexes point at valid post-compaction rowids.
        for rid in table.index_on("grp").lookup("g1"):
            assert table.rows[rid] is not None

    def test_insert_many_validates(self):
        table = Table(_schema())
        with pytest.raises(ProgrammingError):
            table.insert_many(["id", "grp"], [(1,)])
        with pytest.raises(IntegrityError):
            table.insert_many(["grp"], [("orphan",)])  # missing PK
        table.insert_many(["id", "x"], [(1, 2), (2, 3.5)])
        assert table.rows[0] == (1, None, 2.0)

    def test_insert_many_unique_check(self):
        table = Table(_schema())
        table.insert_many(["id"], [(1,), (2,)])
        with pytest.raises(IntegrityError):
            table.insert_many(["id"], [(2,)])

    @given(st.lists(st.integers(0, 500), unique=True, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_pk_lookup_invariant(self, ids):
        table = Table(_schema())
        table.insert_many(["id"], [(i,) for i in ids])
        pk = table.index_on("id")
        for i in ids:
            hits = pk.lookup(i)
            assert len(hits) == 1
            assert table.rows[next(iter(hits))][0] == i
