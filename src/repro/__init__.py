"""PPerfGrid reproduction.

A from-scratch Python implementation of *PPerfGrid: A Grid Services-Based
Tool for the Exchange of Heterogeneous Parallel Performance Data*
(J. J. Hoffman, Portland State University, 2004), including every
substrate the thesis builds on: an XML/SOAP/WSDL stack, an OGSI-style
Grid-services runtime, a relational engine, a UDDI registry, GSI-style
security, simulated hosts/network, and the three heterogeneous
performance data stores of its evaluation.

Quickstart::

    from repro.experiments import build_grid, GridScale

    grid = build_grid(GridScale.tiny())
    app = grid.bind("HPL")
    executions = app.query_executions("numprocs", "16")
    results = executions[0].get_pr("gflops", ["/Run"])

See ``examples/`` for full walkthroughs and ``benchmarks/`` for the
table/figure reproductions.
"""

__version__ = "1.0.0"

from repro.core import (
    ApplicationService,
    ExecutionService,
    ManagerService,
    PPerfGridClient,
    PPerfGridSite,
    PerformanceResult,
    SiteConfig,
)
from repro.ogsi import GridEnvironment

__all__ = [
    "ApplicationService",
    "ExecutionService",
    "GridEnvironment",
    "ManagerService",
    "PPerfGridClient",
    "PPerfGridSite",
    "PerformanceResult",
    "SiteConfig",
    "__version__",
]
