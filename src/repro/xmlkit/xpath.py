"""An XPath 1.0 subset.

The thesis's future-work section (§7) proposes exposing Execution service
data (metrics, foci, types, times) as Service Data Elements queryable with
XPath via GT3.2's WS Information Services.  This module implements the
subset needed for that feature and for querying XML data stores:

* absolute (``/a/b``) and relative (``a/b``) location paths
* ``//`` descendant-or-self steps
* name tests (matched on local name, or ``prefix:name`` with a namespace
  map), ``*`` wildcards, ``@attr`` attribute steps, ``text()`` node tests,
  and ``.`` / ``..`` steps
* predicates: ``[n]`` positional, ``[last()]``, ``[@a]``, ``[@a='v']``,
  ``[child]``, ``[child='v']``, ``[.='v']``, with ``=`` and ``!=``

Results are lists of :class:`Element` for element paths and lists of
``str`` for attribute / ``text()`` paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmlkit.model import Element


class XPathError(ValueError):
    """Raised on an expression outside the supported subset."""


@dataclass(frozen=True)
class _Step:
    axis: str  # "child" | "descendant-or-self" | "self" | "parent" | "attribute"
    test: str  # local name, "*", or "text()"
    prefix: str | None = None
    predicates: tuple[str, ...] = field(default_factory=tuple)


def _tokenize_path(expr: str) -> tuple[bool, list[str]]:
    """Split a path expression into step strings, tracking absoluteness.

    Returns (absolute, raw_steps) where '//' is encoded as a '' raw step
    preceding the step it modifies.
    """
    expr = expr.strip()
    if not expr:
        raise XPathError("empty expression")
    absolute = expr.startswith("/")
    steps: list[str] = []
    i = 0
    if absolute:
        i = 1
        if expr.startswith("//"):
            steps.append("")  # descendant marker
            i = 2
    buf: list[str] = []
    depth = 0
    quote: str | None = None
    while i < len(expr):
        ch = expr[i]
        if quote is not None:
            buf.append(ch)
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            buf.append(ch)
        elif ch == "[":
            depth += 1
            buf.append(ch)
        elif ch == "]":
            depth -= 1
            buf.append(ch)
        elif ch == "/" and depth == 0:
            steps.append("".join(buf))
            buf = []
            if expr.startswith("//", i):
                steps.append("")
                i += 1
        else:
            buf.append(ch)
        i += 1
    if quote is not None or depth != 0:
        raise XPathError(f"unbalanced expression: {expr!r}")
    steps.append("".join(buf))
    if any(s == "" for s in steps[-1:]):
        raise XPathError("expression may not end with '/'")
    return absolute, steps


def _parse_step(raw: str) -> _Step:
    raw = raw.strip()
    predicates: list[str] = []
    while raw.endswith("]"):
        open_idx = _matching_open_bracket(raw)
        predicates.insert(0, raw[open_idx + 1 : -1].strip())
        raw = raw[:open_idx].strip()
    if raw == ".":
        return _Step("self", "*", predicates=tuple(predicates))
    if raw == "..":
        return _Step("parent", "*", predicates=tuple(predicates))
    axis = "child"
    if raw.startswith("@"):
        axis = "attribute"
        raw = raw[1:]
    elif raw.startswith("attribute::"):
        axis = "attribute"
        raw = raw[len("attribute::") :]
    elif raw.startswith("child::"):
        raw = raw[len("child::") :]
    elif raw.startswith("descendant-or-self::"):
        axis = "descendant-or-self"
        raw = raw[len("descendant-or-self::") :]
    if raw == "text()":
        if axis != "child":
            raise XPathError("text() only supported on the child axis")
        return _Step("child", "text()", predicates=tuple(predicates))
    if not raw:
        raise XPathError("empty step")
    prefix: str | None = None
    if ":" in raw:
        prefix, _, raw = raw.partition(":")
    if raw != "*" and not all(c.isalnum() or c in "_-." for c in raw):
        raise XPathError(f"unsupported node test {raw!r}")
    return _Step(axis, raw, prefix=prefix, predicates=tuple(predicates))


def _matching_open_bracket(raw: str) -> int:
    depth = 0
    quote: str | None = None
    for i in range(len(raw) - 1, -1, -1):
        ch = raw[i]
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "]":
            depth += 1
        elif ch == "[":
            depth -= 1
            if depth == 0:
                return i
    raise XPathError(f"unbalanced predicate in step {raw!r}")


def _name_matches(el: Element, step: _Step, ns: dict[str, str] | None) -> bool:
    if step.test == "*":
        return True
    if el.tag.local != step.test:
        return False
    if step.prefix is not None:
        if not ns or step.prefix not in ns:
            raise XPathError(f"undeclared prefix {step.prefix!r} in expression")
        return el.tag.namespace == ns[step.prefix]
    return True


class _Context:
    """Evaluation context: nodes with parent links for '..' support."""

    def __init__(self, root: Element) -> None:
        self.parents: dict[int, Element | None] = {id(root): None}
        for el in root.iter_all():
            for child in el.iter_elements():
                self.parents[id(child)] = el


def _eval_predicate(pred: str, el: Element, position: int, size: int, ns: dict[str, str] | None) -> bool:
    pred = pred.strip()
    if not pred:
        raise XPathError("empty predicate")
    if pred.isdigit():
        return position == int(pred)
    if pred == "last()":
        return position == size
    for op in ("!=", "="):
        idx = _find_top_level(pred, op)
        if idx != -1:
            lhs = pred[:idx].strip()
            rhs = pred[idx + len(op) :].strip()
            lval = _predicate_value(lhs, el, ns)
            rval = _predicate_literal(rhs)
            if lval is None:
                return op == "!="
            return (lval == rval) if op == "=" else (lval != rval)
    # Existence tests.
    if pred.startswith("@"):
        name = pred[1:].strip()
        return any(k.local == name for k in el.attrs)
    sub = _Step("child", pred if ":" not in pred else pred.split(":", 1)[1],
                prefix=pred.split(":", 1)[0] if ":" in pred else None)
    return any(_name_matches(c, sub, ns) for c in el.iter_elements())


def _find_top_level(text: str, needle: str) -> int:
    quote: str | None = None
    i = 0
    while i <= len(text) - len(needle):
        ch = text[i]
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif text.startswith(needle, i):
            # Avoid matching '=' inside '!='.
            if needle == "=" and i > 0 and text[i - 1] == "!":
                i += 1
                continue
            return i
        i += 1
    return -1


def _predicate_value(lhs: str, el: Element, ns: dict[str, str] | None) -> str | None:
    if lhs == ".":
        return el.all_text()
    if lhs == "text()":
        return el.text()
    if lhs.startswith("@"):
        name = lhs[1:].strip()
        for k, v in el.attrs.items():
            if k.local == name:
                return v
        return None
    step = _parse_step(lhs)
    for child in el.iter_elements():
        if _name_matches(child, step, ns):
            return child.all_text()
    return None


def _predicate_literal(rhs: str) -> str:
    if len(rhs) >= 2 and rhs[0] in "'\"" and rhs[-1] == rhs[0]:
        return rhs[1:-1]
    if rhs.replace(".", "", 1).replace("-", "", 1).isdigit():
        return rhs
    raise XPathError(f"unsupported comparison operand {rhs!r}")


def xpath_select(
    root: Element,
    expr: str,
    namespaces: dict[str, str] | None = None,
) -> list[Element] | list[str]:
    """Evaluate *expr* with *root* as both the context node and document root.

    For absolute paths the first name test must match the root element
    itself (as if the document node were the context).
    """
    absolute, raw_steps = _tokenize_path(expr)
    steps: list[_Step] = []
    descend_next = False
    for raw in raw_steps:
        if raw == "":
            descend_next = True
            continue
        step = _parse_step(raw)
        if descend_next:
            step = _Step("descendant-or-self", step.test, step.prefix, step.predicates)
            descend_next = False
        steps.append(step)
    if not steps:
        raise XPathError(f"no steps in {expr!r}")
    # Prefix declarations are validated eagerly so a bad expression fails
    # even when no node happens to match.
    for step in steps:
        if step.prefix is not None and (not namespaces or step.prefix not in namespaces):
            raise XPathError(f"undeclared prefix {step.prefix!r} in expression")

    ctx = _Context(root)
    if absolute:
        first = steps[0]
        if first.axis == "attribute" or first.test == "text()":
            raise XPathError("absolute path must start with an element step")
        if first.axis == "descendant-or-self":
            current: list[Element] = _apply_predicates(
                [el for el in root.iter_all() if _name_matches(el, first, namespaces)],
                first.predicates, namespaces,
            )
        else:
            current = (
                _apply_predicates([root], first.predicates, namespaces)
                if _name_matches(root, first, namespaces)
                else []
            )
        steps = steps[1:]
    else:
        current = [root]

    for i, step in enumerate(steps):
        is_last = i == len(steps) - 1
        if step.axis == "attribute":
            if not is_last:
                raise XPathError("attribute step must be last")
            values: list[str] = []
            for el in current:
                for k, v in el.attrs.items():
                    if step.test == "*" or k.local == step.test:
                        values.append(v)
            return values
        if step.test == "text()":
            if not is_last:
                raise XPathError("text() step must be last")
            return [el.text() for el in current if el.text()]
        next_nodes: list[Element] = []
        seen: set[int] = set()
        for el in current:
            if step.axis == "self":
                candidates = [el]
            elif step.axis == "parent":
                parent = ctx.parents.get(id(el))
                candidates = [parent] if parent is not None else []
            elif step.axis == "descendant-or-self":
                candidates = [d for d in el.iter_all() if _name_matches(d, step, namespaces)]
            else:
                candidates = [c for c in el.iter_elements() if _name_matches(c, step, namespaces)]
            if step.axis in ("self", "parent"):
                candidates = [c for c in candidates if _name_matches(c, step, namespaces)]
            candidates = _apply_predicates(candidates, step.predicates, namespaces)
            for c in candidates:
                if id(c) not in seen:
                    seen.add(id(c))
                    next_nodes.append(c)
        current = next_nodes
    return current


def _apply_predicates(
    nodes: list[Element], predicates: tuple[str, ...], ns: dict[str, str] | None
) -> list[Element]:
    for pred in predicates:
        size = len(nodes)
        nodes = [el for pos, el in enumerate(nodes, 1) if _eval_predicate(pred, el, pos, size, ns)]
    return nodes
