"""Tests for the synthetic dataset generators and the text/XML stores."""

import pytest

from repro.datastores import (
    TextFileStore,
    XmlStore,
    generate_hpl,
    generate_presta,
    generate_smg98,
    parse_presta_file,
)
from repro.datastores.generators.presta import PRESTA_MSG_SIZES, PRESTA_OPERATIONS
from repro.datastores.generators.smg98 import SMG98_FUNCTIONS
from repro.datastores.textfiles import TextStoreError
from repro.datastores.xmlstore import XmlStoreError


class TestHplGenerator:
    def test_determinism(self):
        a = generate_hpl(seed=5, num_executions=10)
        b = generate_hpl(seed=5, num_executions=10)
        assert a.rows == b.rows

    def test_seed_changes_output(self):
        a = generate_hpl(seed=5, num_executions=10)
        b = generate_hpl(seed=6, num_executions=10)
        assert a.rows != b.rows

    def test_row_invariants(self):
        ds = generate_hpl(num_executions=50)
        assert ds.num_executions == 50
        for row in ds.rows:
            assert row["numprocs"] == row["p"] * row["q"]
            assert row["gflops"] > 0
            assert row["runtimesec"] > 0
            # gflops * time == flops(N) by construction
            flops = (2.0 / 3.0) * row["n"] ** 3 + 2.0 * row["n"] ** 2
            assert row["gflops"] * 1e9 * row["runtimesec"] == pytest.approx(
                flops, rel=0.01
            )

    def test_unique_runids(self):
        ds = generate_hpl(num_executions=124)
        assert len({r["runid"] for r in ds.rows}) == 124

    def test_to_database(self, hpl_db):
        assert hpl_db.query("SELECT COUNT(*) FROM hpl_runs").scalar() == 20

    def test_to_xml_roundtrip(self, hpl_dataset):
        store = XmlStore(hpl_dataset.to_xml())
        assert len(store.runs()) == hpl_dataset.num_executions
        run = store.run_by_id(1)
        assert run is not None
        assert float(run.get("gflops")) == hpl_dataset.rows[0]["gflops"]


class TestSmg98Generator:
    def test_determinism(self):
        kwargs = dict(seed=3, num_executions=2, intervals_per_execution=50, messages_per_execution=10)
        assert generate_smg98(**kwargs).intervals == generate_smg98(**kwargs).intervals

    def test_sizes(self, smg98_dataset):
        assert smg98_dataset.num_executions == 3
        assert len(smg98_dataset.intervals) == 3 * 400
        assert len(smg98_dataset.messages) == 3 * 80
        assert len(smg98_dataset.functions) == len(SMG98_FUNCTIONS)

    def test_interval_invariants(self, smg98_dataset):
        runtimes = {e["execid"]: e["runtime"] for e in smg98_dataset.executions}
        valid_procs = {p["procid"]: p["execid"] for p in smg98_dataset.processes}
        for row in smg98_dataset.intervals:
            assert 0.0 <= row["start_ts"] <= row["end_ts"] <= runtimes[row["execid"]]
            assert valid_procs[row["procid"]] == row["execid"]
            assert 1 <= row["funcid"] <= len(SMG98_FUNCTIONS)

    def test_message_invariants(self, smg98_dataset):
        for row in smg98_dataset.messages:
            assert row["send_ts"] <= row["recv_ts"]
            assert row["sender"] != row["receiver"]

    def test_processes_per_execution_match_numprocs(self, smg98_dataset):
        by_exec: dict[int, int] = {}
        for p in smg98_dataset.processes:
            by_exec[p["execid"]] = by_exec.get(p["execid"], 0) + 1
        for e in smg98_dataset.executions:
            assert by_exec[e["execid"]] == e["numprocs"]

    def test_to_database_tables(self, smg98_db):
        assert smg98_db.table_names() == [
            "executions",
            "functions",
            "intervals",
            "messages",
            "processes",
        ]


class TestPrestaGenerator:
    def test_determinism(self):
        a = generate_presta(seed=2, num_executions=3)
        b = generate_presta(seed=2, num_executions=3)
        assert [e.measurements for e in a.executions] == [
            e.measurements for e in b.executions
        ]

    def test_measurement_grid_complete(self, presta_dataset):
        for execution in presta_dataset.executions:
            keys = {(op, size) for op, size, *_ in execution.measurements}
            assert len(keys) == len(PRESTA_OPERATIONS) * len(PRESTA_MSG_SIZES)

    def test_latency_monotone_in_size(self, presta_dataset):
        # alpha-beta model with bounded noise: large sizes are always
        # slower than tiny ones even if adjacent points jitter.
        for execution in presta_dataset.executions:
            by_op: dict[str, dict[int, float]] = {}
            for op, size, _, lat, _ in execution.measurements:
                by_op.setdefault(op, {})[size] = lat
            for latencies in by_op.values():
                assert latencies[PRESTA_MSG_SIZES[-1]] > latencies[PRESTA_MSG_SIZES[0]]

    def test_bandwidth_consistent_with_latency(self, presta_dataset):
        for execution in presta_dataset.executions:
            for _, size, _, lat, bw in execution.measurements:
                assert bw == pytest.approx(size / lat, rel=0.01)


class TestTextStore:
    def test_parse_roundtrip(self, presta_dataset, tmp_path):
        presta_dataset.write_files(tmp_path)
        execution = presta_dataset.executions[0]
        parsed = parse_presta_file(str(tmp_path / f"presta_rma_{execution.execid}.txt"))
        assert parsed.execid == execution.execid
        assert parsed.numprocs == execution.numprocs
        assert len(parsed.measurements) == len(execution.measurements)
        assert parsed.measurements[0][0] == execution.measurements[0][0]

    def test_store_listing(self, presta_store):
        assert presta_store.execution_ids() == [1, 2, 3, 4]
        assert presta_store.has_execution(2)
        assert not presta_store.has_execution(99)

    def test_load_counts_parses(self, presta_store):
        before = presta_store.parse_count
        presta_store.load(1)
        presta_store.load(1)
        assert presta_store.parse_count == before + 2

    def test_header_only(self, presta_store):
        header = presta_store.load_header_only(1)
        assert "numprocs" in header and "rundate" in header

    def test_unknown_execution_raises(self, presta_store):
        with pytest.raises(TextStoreError):
            presta_store.load(99)

    def test_missing_directory_raises(self):
        with pytest.raises(TextStoreError):
            TextFileStore("/no/such/dir")

    def test_malformed_file_raises(self, tmp_path):
        bad = tmp_path / "presta_rma_1.txt"
        bad.write_text("# execid: 1\nop msgsize iters latency_us bandwidth_mbps\nonly two\n")
        store = TextFileStore(str(tmp_path))
        with pytest.raises(TextStoreError):
            store.load(1)

    def test_missing_header_raises(self, tmp_path):
        bad = tmp_path / "presta_rma_1.txt"
        bad.write_text("op msgsize iters latency_us bandwidth_mbps\n")
        store = TextFileStore(str(tmp_path))
        with pytest.raises(TextStoreError):
            store.load(1)

    def test_bad_column_header_raises(self, tmp_path):
        bad = tmp_path / "presta_rma_1.txt"
        bad.write_text("# execid: 1\nwrong header line\n")
        store = TextFileStore(str(tmp_path))
        with pytest.raises(TextStoreError):
            store.load(1)

    def test_non_matching_files_ignored(self, tmp_path, presta_dataset):
        presta_dataset.write_files(tmp_path)
        (tmp_path / "README.txt").write_text("not a data file")
        (tmp_path / "presta_rma_notanumber.txt").write_text("x")
        store = TextFileStore(str(tmp_path))
        assert store.execution_ids() == [1, 2, 3, 4]


class TestXmlStore:
    def test_select(self, hpl_dataset):
        store = XmlStore(hpl_dataset.to_xml())
        ids = store.select("/hplResults/run/@runid")
        assert len(ids) == hpl_dataset.num_executions

    def test_attribute_values_unique_sorted(self, hpl_dataset):
        store = XmlStore(hpl_dataset.to_xml())
        values = store.attribute_values("machine")
        assert values == sorted(set(values))

    def test_run_by_id_missing(self, hpl_dataset):
        store = XmlStore(hpl_dataset.to_xml())
        assert store.run_by_id(9999) is None

    def test_malformed_document_raises(self):
        with pytest.raises(XmlStoreError):
            XmlStore("<oops")

    def test_from_file(self, hpl_dataset, tmp_path):
        path = tmp_path / "hpl.xml"
        path.write_text(hpl_dataset.to_xml())
        store = XmlStore.from_file(str(path))
        assert len(store.runs()) == hpl_dataset.num_executions
