#!/usr/bin/env python
"""XPath queries over Execution service data (future-work §7).

GT3.2's WS Information Services let service data elements be queried
with XPath.  Execution instances here expose metrics, foci, types, and
the time range as SDEs, so a client can answer discovery questions with
one FindServiceData call instead of four PortType operations.

Run: ``python examples/xpath_service_data.py``
"""

from repro.core import PPerfGridClient, PPerfGridSite, SiteConfig
from repro.datastores import generate_smg98
from repro.mapping import Smg98RdbmsWrapper
from repro.ogsi import GridEnvironment
from repro.xmlkit import parse


def main() -> None:
    env = GridEnvironment()
    site = PPerfGridSite(
        env,
        SiteConfig("siteA:8080", "SMG98"),
        Smg98RdbmsWrapper(
            generate_smg98(num_executions=2, intervals_per_execution=500).to_database()
        ),
    )
    client = PPerfGridClient(env)
    app = client.bind(site.factory_url, "SMG98")
    execution = app.all_executions()[0]

    # Name-dialect query: one SDE by name.
    print("SDE 'timeStartEnd':")
    print(" ", execution.find_service_data("timeStartEnd"))

    # XPath dialect: all MPI code foci.
    xml = execution.find_service_data(
        "xpath://serviceDataElement[@name='foci']/value"
    )
    values = [el.text() for el in parse(xml).root.iter_elements()]
    mpi_foci = [v for v in values if v.startswith("/Code/MPI/")]
    print(f"\nMPI foci via XPath ({len(mpi_foci)} of {len(values)} foci):")
    for focus in mpi_foci:
        print("  ", focus)

    # XPath dialect: does this execution record the func_calls metric?
    xml = execution.find_service_data(
        "xpath://serviceDataElement[@name='metrics']/value[.='func_calls']"
    )
    print("\nfunc_calls present:", "func_calls" in xml)

    # Introspection SDEs every Grid service carries (OGSI FindServiceData).
    print("\nIntrospection:")
    for name in ("handle", "interfaces"):
        print(f"  {name}: {execution.find_service_data(name)}")


if __name__ == "__main__":
    main()
