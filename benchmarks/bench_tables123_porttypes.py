"""Tables 1-3 — PortType listings (regenerated from the live definitions).

These tables are interface specifications, so "reproducing" them is a
conformance check plus rendering; the timed component is WSDL document
generation/parsing, the operation a client performs when binding.
"""

from conftest import write_result

from repro.core.semantic import APPLICATION_PORTTYPE, EXECUTION_PORTTYPE
from repro.experiments import render_table1, render_table2, render_table3
from repro.wsdl import generate_wsdl, parse_wsdl


def test_table1_application_porttype(benchmark):
    table = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    assert "getExecs" in table and "Grid Service Handles" in table
    write_result("table1_application_porttype.txt", table)


def test_table2_execution_porttype(benchmark):
    table = benchmark.pedantic(render_table2, rounds=1, iterations=1)
    assert "getPR" in table and "getTimeStartEnd" in table
    write_result("table2_execution_porttype.txt", table)


def test_table3_ogsa_porttypes(benchmark):
    table = benchmark.pedantic(render_table3, rounds=1, iterations=1)
    for op in ("FindServiceData", "SetTerminationTime", "Destroy", "CreateService"):
        assert op in table
    write_result("table3_ogsa_porttypes.txt", table)


def test_wsdl_generation_speed(benchmark):
    """Microbenchmark: render the Application PortType's WSDL."""
    text = benchmark(generate_wsdl, APPLICATION_PORTTYPE, "http://h:1/services/app")
    assert "getAllExecs" in text


def test_wsdl_parse_speed(benchmark):
    """Microbenchmark: parse the Execution PortType's WSDL (bind step)."""
    text = generate_wsdl(EXECUTION_PORTTYPE, "http://h:1/services/exec")
    porttype, endpoint = benchmark(parse_wsdl, text)
    assert porttype.has_operation("getPR")
    assert endpoint.endswith("/services/exec")
