"""Mergeable sketches and the tier-0 answer machinery.

Two sketch kinds ride the existing ``getStats`` wire path (packed as
extra ``StoreStats`` records, merged member-side exactly like
:meth:`repro.core.semantic.StoreStats.merge`):

* :class:`MetricSketch` — per metric: the exact matching-row ``count``,
  value ``total``, observed ``minimum``/``maximum``, plus a fixed-bucket
  histogram of the value distribution.  A wrapper may only emit one when
  it was built from a *complete scan* of the metric's rows over all foci
  and the full time window (the same row set ``getPR`` with no
  constraints returns) — that exactness contract is what lets the
  planner answer whole sub-queries from the sketch alone.
* :class:`DistinctSketch` — per group key: a linear-counting bitmap
  whose merge is a bitwise OR, estimating the number of distinct values
  across the federation (duplicates across members collapse, which a
  per-member count could never do).

Histogram merges must stay *sound* after rebinning: when two sketches
with different value ranges merge, a source bucket's mass is spread
proportionally over the target buckets it overlaps.  Every target
bucket that receives mass from a source bucket ``[l, h]`` overlaps it,
so ``[l, h]`` lies within the target bucket widened by one source bucket
width — the ``fuzz`` field records the accumulated widening, and
:func:`estimate_window` classifies buckets against predicates over their
*widened* ranges.  Mass in a bucket whose widened range provably
satisfies (or provably violates) every predicate is exactly countable,
which is how tier-0 exact answers and the approximate mode's hard error
bounds fall out of one code path:

* all buckets provably inside → the answer is *exact* (tier0-stats);
* a mix → interval bounds ``[lo, hi]`` guaranteed to contain the true
  aggregate (tier0-sketch), with an estimate from the uniform-spread
  assumption clamped into the bounds.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

from repro.fedquery.ast import Predicate
from repro.fedquery.cost import unsatisfiable_over, vacuous_over, value_fraction
from repro.fedquery.pushdown import WINDOW_END, WINDOW_START, matches_value

#: histogram resolution: fixed so aligned merges stay exact bucket-wise
HIST_BUCKETS = 32

#: linear-counting bitmap width (bits) for distinct-count sketches
DISTINCT_BITS = 256

#: tier labels surfaced by explainPlan (satellite: tier per member)
TIER0_STATS = "tier0-stats"
TIER0_SKETCH = "tier0-sketch"


@dataclass(frozen=True)
class MetricSketch:
    """Mergeable value-distribution sketch for one metric.

    ``count``/``total``/``minimum``/``maximum`` are exact over the
    metric's full row set (the builder contract).  ``counts``/``totals``
    attribute that mass to ``len(counts)`` equal-width buckets over
    ``[minimum, maximum]``; after a rebinning merge the attribution is
    approximate but every unit of mass in bucket *i* belongs to a row
    whose value lies within the bucket range widened by ``fuzz`` (and
    clipped to the exact global range).  ``exact_buckets`` is True while
    per-bucket counts and totals are still exact (fresh sketches, and
    merges of identically-binned exact sketches).
    """

    metric: str
    count: int
    total: float
    minimum: float
    maximum: float
    counts: tuple[float, ...]
    totals: tuple[float, ...]
    fuzz: float = 0.0
    exact_buckets: bool = True

    # ------------------------------------------------------------ geometry
    def bucket_width(self) -> float:
        if not self.counts or self.maximum <= self.minimum:
            return 0.0
        return (self.maximum - self.minimum) / len(self.counts)

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        width = self.bucket_width()
        if width == 0.0:
            return (self.minimum, self.maximum)
        low = self.minimum + index * width
        if index == len(self.counts) - 1:
            return (low, self.maximum)  # absorb float drift at the top edge
        return (low, low + width)

    def buckets(self) -> list[tuple[float, float, float, float]]:
        """(mass, total, low, high) per bucket; degenerate sketches fold
        into one bucket spanning the whole exact range."""
        if not self.counts:
            if self.count <= 0:
                return []
            return [(float(self.count), self.total, self.minimum, self.maximum)]
        out = []
        for index, (mass, tot) in enumerate(zip(self.counts, self.totals)):
            low, high = self.bucket_bounds(index)
            out.append((mass, tot, low, high))
        return out

    # ------------------------------------------------------------ builders
    @classmethod
    def from_values(
        cls, metric: str, values: list[float], buckets: int = HIST_BUCKETS
    ) -> "MetricSketch":
        """Exact sketch from a complete scan of the metric's values."""
        if not values:
            return cls(metric, 0, 0.0, 0.0, 0.0, (), ())
        minimum = min(values)
        maximum = max(values)
        total = math.fsum(values)
        if maximum <= minimum:
            return cls(
                metric, len(values), total, minimum, maximum,
                (float(len(values)),), (total,),
            )
        width = (maximum - minimum) / buckets
        counts = [0.0] * buckets
        totals = [0.0] * buckets
        for value in values:
            index = min(buckets - 1, int((value - minimum) / width))
            counts[index] += 1.0
            totals[index] += value
        return cls(
            metric, len(values), total, minimum, maximum,
            tuple(counts), tuple(totals),
        )

    @classmethod
    def merge(cls, parts: list["MetricSketch"]) -> "MetricSketch":
        """Combine sketches of disjoint row sets into one.

        Identically-binned parts add bucket-wise and stay as exact as
        their inputs; differently-binned parts rebin proportionally into
        ``HIST_BUCKETS`` buckets over the union range, widening ``fuzz``
        by each part's source bucket width so bucket classification in
        :func:`estimate_window` stays sound.
        """
        name = parts[0].metric if parts else ""
        live = [part for part in parts if part.count > 0]
        if not live:
            return cls(name, 0, 0.0, 0.0, 0.0, (), ())
        if len(live) == 1:
            return live[0]
        count = sum(part.count for part in live)
        total = math.fsum(part.total for part in live)
        minimum = min(part.minimum for part in live)
        maximum = max(part.maximum for part in live)
        first = live[0]
        if all(
            part.minimum == first.minimum
            and part.maximum == first.maximum
            and len(part.counts) == len(first.counts)
            for part in live
        ):
            counts = [0.0] * len(first.counts)
            totals = [0.0] * len(first.counts)
            for part in live:
                for index, (mass, tot) in enumerate(zip(part.counts, part.totals)):
                    counts[index] += mass
                    totals[index] += tot
            return cls(
                name, count, total, minimum, maximum,
                tuple(counts), tuple(totals),
                fuzz=max(part.fuzz for part in live),
                exact_buckets=all(part.exact_buckets for part in live),
            )
        if maximum <= minimum:
            return cls(
                name, count, total, minimum, maximum,
                (float(count),), (total,),
                fuzz=max(part.fuzz for part in live),
            )
        width = (maximum - minimum) / HIST_BUCKETS
        counts = [0.0] * HIST_BUCKETS
        totals = [0.0] * HIST_BUCKETS
        fuzz = 0.0
        for part in live:
            fuzz = max(fuzz, part.fuzz + part.bucket_width())
            for mass, tot, low, high in part.buckets():
                if mass <= 0.0 and tot == 0.0:
                    continue
                if high <= low:  # point mass lands in one target bucket
                    index = min(HIST_BUCKETS - 1, int((low - minimum) / width))
                    counts[index] += mass
                    totals[index] += tot
                    continue
                start = max(0, min(HIST_BUCKETS - 1, int((low - minimum) / width)))
                stop = max(0, min(HIST_BUCKETS - 1, int((high - minimum) / width)))
                for index in range(start, stop + 1):
                    b_low = minimum + index * width
                    overlap = min(high, b_low + width) - max(low, b_low)
                    if overlap <= 0.0:
                        continue
                    share = overlap / (high - low)
                    counts[index] += mass * share
                    totals[index] += tot * share
        return cls(
            name, count, total, minimum, maximum,
            tuple(counts), tuple(totals),
            fuzz=fuzz, exact_buckets=False,
        )

    # ---------------------------------------------------------------- wire
    def pack(self) -> str:
        """Wire form: ``sketch|metric|count|total|min|max|fuzz|exact|counts|totals``
        (bucket lists comma-separated — ``|`` delimits fields)."""
        return (
            f"sketch|{self.metric}|{self.count}|{self.total!r}|"
            f"{self.minimum!r}|{self.maximum!r}|{self.fuzz!r}|"
            f"{1 if self.exact_buckets else 0}|"
            + ",".join(repr(value) for value in self.counts)
            + "|"
            + ",".join(repr(value) for value in self.totals)
        )

    @staticmethod
    def unpack(rest: str) -> "MetricSketch":
        parts = rest.split("|")
        if len(parts) != 9:
            raise ValueError(f"bad MetricSketch record {rest!r}")
        metric, count, total, minimum, maximum, fuzz, exact, counts, totals = parts
        return MetricSketch(
            metric=metric,
            count=int(count),
            total=float(total),
            minimum=float(minimum),
            maximum=float(maximum),
            counts=tuple(float(v) for v in counts.split(",") if v),
            totals=tuple(float(v) for v in totals.split(",") if v),
            fuzz=float(fuzz),
            exact_buckets=exact.strip() not in ("0", ""),
        )


@dataclass(frozen=True)
class DistinctSketch:
    """Linear-counting distinct-value sketch for one group key.

    ``bitmap`` holds ``bits`` hash buckets; merge is bitwise OR, so the
    federation-wide estimate counts each distinct value once no matter
    how many members publish it.  Estimates only — never a proof.
    """

    key: str
    bits: int = DISTINCT_BITS
    bitmap: int = 0

    @classmethod
    def from_values(cls, key: str, values: list[str], bits: int = DISTINCT_BITS) -> "DistinctSketch":
        bitmap = 0
        for value in values:
            bitmap |= 1 << (zlib.crc32(str(value).encode("utf-8")) % bits)
        return cls(key=key, bits=bits, bitmap=bitmap)

    @classmethod
    def merge(cls, parts: list["DistinctSketch"]) -> "DistinctSketch":
        if not parts:
            return cls(key="")
        bits = max(part.bits for part in parts)
        bitmap = 0
        for part in parts:
            if part.bits == bits:
                bitmap |= part.bitmap
        return cls(key=parts[0].key, bits=bits, bitmap=bitmap)

    def estimate(self) -> float:
        """Linear-counting estimate of the distinct-value count."""
        zeros = self.bits - bin(self.bitmap).count("1")
        if zeros <= 0:
            return float(self.bits)
        return self.bits * math.log(self.bits / zeros)

    def pack(self) -> str:
        """Wire form: ``distinct|key|bits|bitmap-hex``."""
        return f"distinct|{self.key}|{self.bits}|{self.bitmap:x}"

    @staticmethod
    def unpack(rest: str) -> "DistinctSketch":
        parts = rest.split("|")
        if len(parts) != 3:
            raise ValueError(f"bad DistinctSketch record {rest!r}")
        key, bits, bitmap = parts
        return DistinctSketch(key=key, bits=int(bits), bitmap=int(bitmap, 16))


# --------------------------------------------------------------- estimation


@dataclass(frozen=True)
class WindowEstimate:
    """Sound bounds (and a clamped estimate) for one metric under the
    query's value predicates, derived purely from its sketch.

    The invariants the executor and planner rely on:

    * the true matching-row count lies in ``[count_lo, count_hi]``;
    * the true matching-value sum lies in ``[sum_lo, sum_hi]``;
    * every matching value lies in ``[value_lo, value_hi]``;
    * ``min_exact``/``max_exact`` are the *exact* filtered extrema when
      provable (the global extremum itself satisfies the predicates),
      ``None`` otherwise;
    * zero-width count and sum bounds are exact answers.
    """

    count_est: float
    count_lo: float
    count_hi: float
    sum_est: float
    sum_lo: float
    sum_hi: float
    min_exact: float | None
    max_exact: float | None
    value_lo: float
    value_hi: float

    @property
    def empty(self) -> bool:
        return self.count_hi <= 0.0

    @property
    def exact(self) -> bool:
        return self.count_lo == self.count_hi and self.sum_lo == self.sum_hi


EMPTY_ESTIMATE = WindowEstimate(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, None, None, 0.0, 0.0)


def _allowed_hull(preds: tuple[Predicate, ...]) -> tuple[float, float]:
    """Interval hull of values any satisfying row may take (``!=`` and
    the hull's open/closed distinction are conservatively ignored)."""
    low, high = -math.inf, math.inf
    for pred in preds:
        bound = float(str(pred.value))
        if pred.op == "=":
            low, high = max(low, bound), min(high, bound)
        elif pred.op in ("<", "<="):
            high = min(high, bound)
        elif pred.op in (">", ">="):
            low = max(low, bound)
    return low, high


def _exact_estimate(sketch: MetricSketch, preds: tuple[Predicate, ...]) -> WindowEstimate:
    """Every row matches: the sketch scalars are the exact answer."""
    count = float(sketch.count)
    return WindowEstimate(
        count_est=count, count_lo=count, count_hi=count,
        sum_est=sketch.total, sum_lo=sketch.total, sum_hi=sketch.total,
        min_exact=sketch.minimum, max_exact=sketch.maximum,
        value_lo=sketch.minimum, value_hi=sketch.maximum,
    )


def estimate_window(
    sketch: MetricSketch, preds: tuple[Predicate, ...]
) -> WindowEstimate:
    """Sound count/sum bounds for the rows matching *preds*.

    Each bucket's range is widened by the sketch ``fuzz`` (clipped to
    the exact global range) and classified: *inside* when every widened
    value satisfies all predicates, *outside* when some predicate is
    unsatisfiable over it, *partial* otherwise.  Inside mass bounds the
    count from below, ``count - outside mass`` from above; sum bounds
    combine the direct per-bucket envelopes with the complement route
    ``exact total - excluded`` — whichever is tighter — so full coverage
    degenerates to the exact answer regardless of merge history.
    """
    if sketch.count <= 0:
        return EMPTY_ESTIMATE
    if not preds:
        return _exact_estimate(sketch, preds)
    gmin, gmax = sketch.minimum, sketch.maximum
    if any(unsatisfiable_over(pred, gmin, gmax) for pred in preds):
        return EMPTY_ESTIMATE
    buckets = sketch.buckets()
    fuzz = sketch.fuzz
    trust_totals = sketch.exact_buckets
    hull_lo, hull_hi = _allowed_hull(preds)
    value_lo = max(gmin, hull_lo)
    value_hi = min(gmax, hull_hi)

    count_in = 0.0
    count_out = 0.0
    count_est = 0.0
    sum_est = 0.0
    direct_lo = direct_hi = 0.0  # sum over selected rows, direct route
    excl_lo = excl_hi = 0.0  # sum over excluded rows, complement route
    all_inside = True
    for mass, tot, low, high in buckets:
        if mass <= 0.0:
            continue
        w_low = max(gmin, low - fuzz)
        w_high = min(gmax, high + fuzz)
        if all(vacuous_over(pred, w_low, w_high) for pred in preds):
            count_in += mass
            count_est += mass
            sum_est += tot
            if trust_totals:
                direct_lo += tot
                direct_hi += tot
            else:
                direct_lo += mass * w_low
                direct_hi += mass * w_high
            continue
        all_inside = False
        if any(unsatisfiable_over(pred, w_low, w_high) for pred in preds):
            count_out += mass
            if trust_totals:
                excl_lo += tot
                excl_hi += tot
            else:
                excl_lo += mass * w_low
                excl_hi += mass * w_high
            continue
        # partial bucket: between 0 and all of its mass is selected
        fraction = value_fraction(preds, low, high)
        count_est += mass * fraction
        sum_est += tot * fraction
        env_lo = max(w_low, hull_lo)
        env_hi = min(w_high, hull_hi)
        direct_lo += min(0.0, mass * env_lo)
        direct_hi += max(0.0, mass * env_hi)
        excl_lo += min(0.0, mass * w_low)
        excl_hi += max(0.0, mass * w_high)
    if all_inside:
        # full coverage: exact regardless of any float drift in the
        # (possibly rebinned) per-bucket masses
        return _exact_estimate(sketch, preds)
    count_lo = count_in
    count_hi = float(sketch.count) - count_out
    min_exact = sketch.minimum if matches_value(sketch.minimum, preds) else None
    max_exact = sketch.maximum if matches_value(sketch.maximum, preds) else None
    if min_exact is not None or max_exact is not None:
        # the surviving extremum is itself a matching row
        count_lo = max(count_lo, 1.0)
    count_lo = max(0.0, min(count_lo, count_hi))
    sum_lo = max(direct_lo, sketch.total - excl_hi)
    sum_hi = min(direct_hi, sketch.total - excl_lo)
    if sum_lo > sum_hi:  # float-drift guard; the routes agree in theory
        sum_lo, sum_hi = min(direct_lo, sum_lo), max(direct_hi, sum_hi)
    # partial-coverage sum bounds come from bucket totals summed in scan
    # order; the exact pipeline sums the same rows in merge order, so the
    # true value can sit one ulp outside — pad by a relative epsilon
    # (counts are integer sums, exact in floats, and need no pad)
    pad = 1e-9 * max(1.0, abs(sum_lo), abs(sum_hi))
    sum_lo -= pad
    sum_hi += pad
    count_est = max(count_lo, min(count_est, count_hi))
    sum_est = max(sum_lo, min(sum_est, sum_hi))
    return WindowEstimate(
        count_est=count_est, count_lo=count_lo, count_hi=count_hi,
        sum_est=sum_est, sum_lo=sum_lo, sum_hi=sum_hi,
        min_exact=min_exact, max_exact=max_exact,
        value_lo=value_lo, value_hi=value_hi,
    )


def mean_bounds(est: WindowEstimate) -> tuple[float, float]:
    """Sound bounds on the mean of the selected rows.

    The ratio corners of the count/sum intervals (when at least one row
    provably matches) intersect with the selected-value envelope — each
    route is sound alone, so the intersection is too.
    """
    low, high = est.value_lo, est.value_hi
    if est.count_lo >= 1.0:
        corners = [
            est.sum_lo / est.count_lo, est.sum_lo / est.count_hi,
            est.sum_hi / est.count_lo, est.sum_hi / est.count_hi,
        ]
        low = max(low, min(corners))
        high = min(high, max(corners))
        if low > high:  # float-drift guard
            low, high = min(corners), max(corners)
    return low, high


# ------------------------------------------------------------ tier-0 answers


def tier0_query_eligible(query, split, window, allowlist) -> bool:
    """Can this query *shape* be answered from member metadata alone?

    Sketches summarize a metric's full row set per member, so the query
    must not slice below the member level: aggregate-only select, group
    keys at most ``app``, no execution/attribute/focus/type predicates,
    and the full time window (stats are never window proofs).
    """
    return (
        query.is_aggregate
        and set(query.group_by) <= {"app"}
        and not split.exec_ids
        and not split.attrs
        and allowlist is None
        and split.type is None
        and window == (WINDOW_START, WINDOW_END)
    )


def _item_answerable(func: str, est: WindowEstimate, approx: bool) -> bool:
    if est.empty:
        return True  # contributes nothing; the group simply won't emit
    if func == "count":
        return approx or est.count_lo == est.count_hi
    if func == "sum":
        return approx or est.sum_lo == est.sum_hi
    if func == "mean":
        return approx or est.exact
    if func == "min":
        return est.min_exact is not None
    if func == "max":
        return est.max_exact is not None
    return False


def _item_rel_error(func: str, est: WindowEstimate) -> float:
    """Relative half-width of one aggregate cell's bounds (0 = exact)."""
    if est.empty:
        return 0.0
    if func == "count":
        width = est.count_hi - est.count_lo
        scale = max(abs(est.count_est), 1.0)
    elif func == "sum":
        width = est.sum_hi - est.sum_lo
        scale = max(abs(est.sum_est), 1e-9)
    elif func == "mean":
        low, high = mean_bounds(est)
        width = high - low
        scale = max(abs(est.sum_est) / max(est.count_est, 1e-9), 1e-9)
    else:  # min/max are only answerable exactly
        return 0.0
    return width / (2.0 * scale)


def tier0_member_answer(
    query,
    value_preds: tuple[Predicate, ...],
    stats,
    approx: bool,
    tolerance: float | None,
) -> tuple[str, tuple[tuple[str, WindowEstimate], ...]] | None:
    """One member's tier-0 verdict: ``(tier, per-metric partials)``.

    ``None`` means the member cannot be answered from metadata (missing
    or incomplete stats, a metric without a sketch, an inexact answer in
    exact mode, or bounds wider than the requested tolerance) — the
    executor then falls back to push-down/raw for this member only.
    Metrics the stats prove empty (absent, or an exact zero row count)
    contribute :data:`EMPTY_ESTIMATE` — the exact zero-row answer.
    """
    if stats is None or not stats.complete:
        return None
    partials: list[tuple[str, WindowEstimate]] = []
    worst = 0.0
    exact = True
    for metric in query.metrics:
        metric_stats = stats.metric(metric)
        if metric_stats is None or metric_stats.rows == 0:
            partials.append((metric, EMPTY_ESTIMATE))
            continue
        sketch = stats.sketch(metric)
        if sketch is None:
            return None
        est = estimate_window(sketch, value_preds)
        partials.append((metric, est))
        for item in query.aggregates:
            if item.metric != metric:
                continue
            if not _item_answerable(item.func, est, approx):
                return None
            rel = _item_rel_error(item.func, est)
            worst = max(worst, rel)
            if rel > 0.0:
                exact = False
    if approx and tolerance is not None and worst > tolerance:
        return None
    return (TIER0_STATS if exact else TIER0_SKETCH), tuple(partials)


# ------------------------------------------------------------ build helpers


def sketches_from_values(values: dict[str, list[float]]) -> tuple[MetricSketch, ...]:
    """One exact sketch per metric from complete per-metric value scans."""
    return tuple(
        MetricSketch.from_values(metric, metric_values)
        for metric, metric_values in sorted(values.items())
    )


def distincts_from_values(values: dict[str, list[str]]) -> tuple[DistinctSketch, ...]:
    """One distinct-count sketch per group key."""
    return tuple(
        DistinctSketch.from_values(key, key_values)
        for key, key_values in sorted(values.items())
    )
