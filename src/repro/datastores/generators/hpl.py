"""Synthetic HPL (High-Performance Linpack) dataset.

HPL solves a random dense linear system; a run is characterized by the
problem size N, block size NB, process grid P x Q, and yields a runtime
and a GFLOPS rate.  The synthetic model follows the benchmark's cost
shape — ``flops = 2/3 N^3 + 2 N^2``, efficiency degrading with grid
asymmetry and communication — with seeded noise.  The thesis's HPL store
has 124 executions in a single relational table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.minidb import Database
from repro.xmlkit import Document, Element, serialize

HPL_METRICS = ("gflops", "runtimesec", "resid")
HPL_ATTRIBUTES = ("runid", "rundate", "n", "nb", "p", "q", "numprocs", "machine")

_MACHINES = ("wyeast", "sisters", "jefferson")
_N_CHOICES = (2000, 4000, 8000, 12000, 16000, 20000)
_NB_CHOICES = (32, 64, 128, 256)
_GRIDS = ((1, 1), (1, 2), (2, 2), (2, 4), (4, 4), (4, 8), (8, 8))


@dataclass
class HplDataset:
    """Generated HPL runs; ``rows`` are column-name -> value dicts."""

    rows: list[dict] = field(default_factory=list)

    @property
    def num_executions(self) -> int:
        return len(self.rows)

    def to_database(self) -> Database:
        """Load into a fresh single-table minidb database (thesis layout)."""
        db = Database("hpl")
        db.execute(
            """
            CREATE TABLE hpl_runs (
                runid INTEGER PRIMARY KEY,
                rundate TEXT NOT NULL,
                n INTEGER NOT NULL,
                nb INTEGER NOT NULL,
                p INTEGER NOT NULL,
                q INTEGER NOT NULL,
                numprocs INTEGER NOT NULL,
                runtimesec REAL NOT NULL,
                gflops REAL NOT NULL,
                resid REAL NOT NULL,
                machine TEXT NOT NULL
            )
            """
        )
        db.execute("CREATE INDEX idx_hpl_numprocs ON hpl_runs (numprocs)")
        db.execute("CREATE INDEX idx_hpl_machine ON hpl_runs (machine)")
        cols = (
            "runid rundate n nb p q numprocs runtimesec gflops resid machine".split()
        )
        db.load_rows("hpl_runs", cols, [tuple(row[c] for c in cols) for row in self.rows])
        return db

    def to_xml(self) -> str:
        """Render as the XML store proposed in the thesis's future work."""
        root = Element("hplResults")
        for row in self.rows:
            run = root.subelement("run")
            for key, value in row.items():
                run.set(key, str(value))
        return serialize(Document(root), indent=2)


def generate_hpl(seed: int = 7, num_executions: int = 124) -> HplDataset:
    """Generate *num_executions* HPL runs (the thesis dataset has 124)."""
    rng = random.Random(seed)
    rows: list[dict] = []
    for runid in range(1, num_executions + 1):
        n = rng.choice(_N_CHOICES)
        nb = rng.choice(_NB_CHOICES)
        p, q = rng.choice(_GRIDS)
        numprocs = p * q
        machine = rng.choice(_MACHINES)
        # Peak per process ~1.2 GFLOPS (2004-era); efficiency decays with
        # process count (communication) and grid asymmetry.
        peak = 1.2 * numprocs
        comm_eff = 1.0 / (1.0 + 0.04 * (numprocs - 1))
        asym_eff = 1.0 - 0.05 * abs(p - q) / max(p, q)
        size_eff = min(1.0, n / 8000.0)  # small problems underutilize
        noise = rng.gauss(1.0, 0.03)
        gflops = max(0.05, peak * comm_eff * asym_eff * (0.55 + 0.45 * size_eff) * noise)
        flops = (2.0 / 3.0) * n**3 + 2.0 * n**2
        runtimesec = flops / (gflops * 1e9)
        resid = abs(rng.gauss(0, 1)) * 1e-12
        month = 1 + (runid * 7) % 12
        day = 1 + (runid * 13) % 28
        rows.append(
            {
                "runid": runid,
                "rundate": f"2004-{month:02d}-{day:02d}",
                "n": n,
                "nb": nb,
                "p": p,
                "q": q,
                "numprocs": numprocs,
                "runtimesec": round(runtimesec, 4),
                "gflops": round(gflops, 4),
                "resid": resid,
                "machine": machine,
            }
        )
    return HplDataset(rows=rows)
