"""Wrapper interfaces (the Mapping Layer contract).

``ApplicationWrapper`` mirrors Table 1, ``ExecutionWrapper`` mirrors
Table 2, both in native Python types; the Semantic Layer services do the
string packing/unpacking the wire format requires.

A wrapper object covers one *published dataset*; execution wrappers are
obtained per execution id via :meth:`ApplicationWrapper.execution`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import replace
from typing import Iterator

from repro.core.semantic import (
    UNDEFINED_TYPE,
    AggregateRecord,
    MetricStats,
    PerformanceResult,
    StoreStats,
)
from repro.simnet.metrics import Recorder

#: comparison operators accepted by attribute queries
OPERATORS = ("=", "!=", "<", "<=", ">", ">=")


class MappingError(ValueError):
    """Raised for unknown executions, attributes, metrics, or foci."""


class ApplicationWrapper(ABC):
    """Table 1 semantics against one data store."""

    #: the tool type of results in this store (e.g. "vampir")
    result_type: str = "unknown"

    @abstractmethod
    def get_app_info(self) -> list[tuple[str, str]]:
        """(name, value) pairs describing the application."""

    @abstractmethod
    def get_exec_query_params(self) -> dict[str, list[str]]:
        """attribute -> sorted unique values (as strings)."""

    @abstractmethod
    def get_all_exec_ids(self) -> list[str]:
        """Unique execution ids, sorted."""

    @abstractmethod
    def get_exec_ids(self, attribute: str, value: str, operator: str = "=") -> list[str]:
        """Execution ids whose *attribute* compares to *value*."""

    @abstractmethod
    def execution(self, exec_id: str) -> "ExecutionWrapper":
        """An execution wrapper for one id (raises MappingError if unknown)."""

    def get_num_execs(self) -> int:
        return len(self.get_all_exec_ids())

    def get_stats(self) -> StoreStats:
        """Application-level store statistics for the cost-based planner.

        Generic fallback: merge per-execution stats.  Store-specific
        wrappers override this with one cheap query (SQL ``COUNT``/
        ``MIN``/``MAX``, header scans, ...).  Overrides must honour the
        :class:`repro.core.semantic.StoreStats` soundness contract:
        ``rows == 0`` exact, value ranges conservative supersets, foci
        and types complete — or set ``complete=False``.
        """
        exec_ids = self.get_all_exec_ids()
        merged = StoreStats.merge(
            [self.execution(exec_id).get_stats() for exec_id in exec_ids]
        )
        if merged.distinct("exec") is None:
            from repro.fedquery.sketch import DistinctSketch

            merged = replace(
                merged,
                distincts=merged.distincts
                + (DistinctSketch.from_values("exec", exec_ids),),
            )
        return merged

    def attribute_distincts(self) -> tuple:
        """Distinct-count sketches for this store's group keys.

        One sketch per published query attribute plus the execution ids
        — exact inputs here (the stores enumerate their values), but the
        sketches stay estimates after federation-wide merges, which is
        all the planner uses them for (group-cardinality estimates in
        ``explainPlan``, never proofs).  Store-specific ``get_stats``
        overrides attach these; the generic fallback gets per-execution
        distincts through :meth:`StoreStats.merge` instead.
        """
        from repro.fedquery.sketch import DistinctSketch

        sketches = [DistinctSketch.from_values("exec", self.get_all_exec_ids())]
        for attr, values in sorted(self.get_exec_query_params().items()):
            sketches.append(DistinctSketch.from_values(attr, values))
        return tuple(sketches)

    @staticmethod
    def check_operator(operator: str) -> None:
        if operator not in OPERATORS:
            raise MappingError(f"unsupported operator {operator!r} (use one of {OPERATORS})")


def compare_attribute(stored: str, value: str, operator: str) -> bool:
    """Attribute comparison: numeric when both sides parse as numbers."""
    try:
        a: float | str = float(stored)
        b: float | str = float(value)
    except ValueError:
        a, b = stored, value
    if operator == "=":
        return a == b
    if operator == "!=":
        return a != b
    if operator == "<":
        return a < b  # type: ignore[operator]
    if operator == "<=":
        return a <= b  # type: ignore[operator]
    if operator == ">":
        return a > b  # type: ignore[operator]
    if operator == ">=":
        return a >= b  # type: ignore[operator]
    raise MappingError(f"unsupported operator {operator!r}")


class ExecutionWrapper(ABC):
    """Table 2 semantics for one execution of one data store."""

    @abstractmethod
    def get_info(self) -> list[tuple[str, str]]:
        """(name, value) pairs describing the execution."""

    @abstractmethod
    def get_foci(self) -> list[str]:
        """All focus paths, sorted, no duplicates."""

    @abstractmethod
    def get_metrics(self) -> list[str]:
        """All metric names, sorted, no duplicates."""

    @abstractmethod
    def get_types(self) -> list[str]:
        """All tool types present, sorted, no duplicates."""

    @abstractmethod
    def get_time_start_end(self) -> tuple[float, float]:
        """(start, end) of the execution."""

    @abstractmethod
    def get_pr(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
    ) -> list[PerformanceResult]:
        """Performance Results matching the tuple (thesis §5.3.2.2).

        ``result_type`` of ``"UNDEFINED"`` matches any tool type.
        """

    def iter_pr(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
    ) -> Iterator[PerformanceResult]:
        """Incremental form of :meth:`get_pr`, for streaming cursors.

        Generic fallback: materializes :meth:`get_pr` and yields from it
        — correct everywhere, lazy nowhere.  Wrappers whose stores can
        scan incrementally override this so an unordered cursor holds
        O(1) rows server-side; the yielded order must match ``get_pr``.
        """
        yield from self.get_pr(metric, foci, start, end, result_type)

    def get_pr_aggregate(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
        min_value: float | None = None,
        max_value: float | None = None,
        group_by: str = "",
    ) -> list[AggregateRecord]:
        """Aggregate matching Performance Results at the store.

        Generic fallback: evaluates :meth:`get_pr` and reduces the rows
        in the Mapping Layer — still server-side, so only accumulator
        buckets cross the Services Layer.  RDBMS wrappers override this
        with real SQL ``WHERE``/``GROUP BY`` push-down.

        ``min_value``/``max_value`` filter rows by value (inclusive);
        ``group_by`` is ``""`` (one global bucket) or ``"focus"`` (one
        bucket per result focus).  Buckets are only emitted for non-empty
        groups — a query matching nothing returns no records.
        """
        if group_by not in ("", "focus"):
            raise MappingError(f"unsupported aggregate group_by {group_by!r}")
        buckets: dict[str, list[float]] = {}
        for result in self.get_pr(metric, foci, start, end, result_type):
            value = result.value
            if min_value is not None and value < min_value:
                continue
            if max_value is not None and value > max_value:
                continue
            key = result.focus if group_by == "focus" else ""
            acc = buckets.get(key)
            if acc is None:
                buckets[key] = [1.0, value, value, value]
            else:
                acc[0] += 1.0
                acc[1] += value
                if value < acc[2]:
                    acc[2] = value
                if value > acc[3]:
                    acc[3] = value
        return [
            AggregateRecord(key, int(acc[0]), acc[1], acc[2], acc[3])
            for key, acc in sorted(buckets.items())
        ]

    def get_stats(self) -> StoreStats:
        """Store statistics for this execution (cost-based planner input).

        Generic fallback: exact by construction — it runs :meth:`get_pr`
        per metric over all foci and the full time window and counts what
        comes back, so the :class:`repro.core.semantic.StoreStats`
        soundness contract holds trivially.  Because that is a complete
        scan, the same values legitimately feed per-metric
        :class:`~repro.fedquery.sketch.MetricSketch` histograms (the
        tier-0 exactness contract).  Store wrappers override this with
        cheap native queries when a full scan would be expensive.
        """
        from repro.fedquery.sketch import distincts_from_values, sketches_from_values

        foci = self.get_foci()
        start, end = self.get_time_start_end()
        metrics = []
        scanned: dict[str, list[float]] = {}
        for metric in self.get_metrics():
            values = [
                result.value
                for result in self.get_pr(metric, foci, 0.0, 1e30, UNDEFINED_TYPE)
            ]
            scanned[metric] = values
            metrics.append(
                MetricStats(
                    metric=metric,
                    rows=len(values),
                    minimum=min(values) if values else 0.0,
                    maximum=max(values) if values else 0.0,
                )
            )
        return StoreStats(
            executions=1,
            start=start,
            end=end,
            foci=tuple(foci),
            types=tuple(self.get_types()),
            metrics=tuple(metrics),
            sketches=sketches_from_values(scanned),
            distincts=distincts_from_values(
                {key: [value] for key, value in self.get_info()}
            ),
        )


class TimedExecutionWrapper(ExecutionWrapper):
    """Decorator recording Mapping-Layer query time into a recorder.

    This is the instrumentation point of the Table 4 experiment: "The
    Mapping Layer class call to getPR was timed to measure elapsed time
    for the local ... queries necessary to produce one Performance
    Result."
    """

    def __init__(self, inner: ExecutionWrapper, recorder: Recorder, timer_name: str = "mapping.getPR") -> None:
        self.inner = inner
        self.recorder = recorder
        self.timer_name = timer_name

    def get_info(self) -> list[tuple[str, str]]:
        return self.inner.get_info()

    def get_foci(self) -> list[str]:
        return self.inner.get_foci()

    def get_metrics(self) -> list[str]:
        return self.inner.get_metrics()

    def get_types(self) -> list[str]:
        return self.inner.get_types()

    def get_time_start_end(self) -> tuple[float, float]:
        return self.inner.get_time_start_end()

    def get_pr(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
    ) -> list[PerformanceResult]:
        with self.recorder.time(self.timer_name):
            return self.inner.get_pr(metric, foci, start, end, result_type)

    def iter_pr(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
    ) -> Iterator[PerformanceResult]:
        # Forward so the inner wrapper's lazy scan (if any) is used; the
        # timer covers iterator construction only — per-row draining is
        # client-paced and would misattribute wire wait to the store.
        with self.recorder.time(f"{self.timer_name}.iter"):
            return self.inner.iter_pr(metric, foci, start, end, result_type)

    def get_pr_aggregate(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
        min_value: float | None = None,
        max_value: float | None = None,
        group_by: str = "",
    ) -> list[AggregateRecord]:
        # Forward to the inner wrapper so its SQL push-down (if any) is
        # used; inheriting the default would silently aggregate in Python.
        with self.recorder.time(f"{self.timer_name}.agg"):
            return self.inner.get_pr_aggregate(
                metric, foci, start, end, result_type, min_value, max_value, group_by
            )

    def get_stats(self) -> StoreStats:
        # Forward so the inner wrapper's cheap native stats query (if
        # any) is used instead of the generic full-scan default.
        with self.recorder.time(f"{self.timer_name}.stats"):
            return self.inner.get_stats()
