"""Tests for the XPath subset."""

import pytest

from repro.xmlkit import Element, XPathError, parse, xpath_select

DOC = """
<catalog>
  <book id="1" lang="en"><title>Dune</title><price>9</price></book>
  <book id="2" lang="de"><title>Faust</title><price>12</price></book>
  <book id="3" lang="en"><title>Emma</title><price>7</price>
    <notes><note>classic</note><note>romance</note></notes>
  </book>
  <magazine id="4"><title>Wired</title></magazine>
</catalog>
"""


@pytest.fixture(scope="module")
def root():
    return parse(DOC).root


class TestPaths:
    def test_absolute_child_path(self, root):
        books = xpath_select(root, "/catalog/book")
        assert len(books) == 3

    def test_absolute_root_mismatch(self, root):
        assert xpath_select(root, "/other/book") == []

    def test_relative_path(self, root):
        assert len(xpath_select(root, "book/title")) == 3

    def test_wildcard(self, root):
        assert len(xpath_select(root, "/catalog/*")) == 4

    def test_descendant_or_self(self, root):
        notes = xpath_select(root, "//note")
        assert [n.text() for n in notes] == ["classic", "romance"]

    def test_descendant_in_middle(self, root):
        assert len(xpath_select(root, "/catalog//title")) == 4

    def test_dot_and_dotdot(self, root):
        up = xpath_select(root, "book/title/..")
        assert all(el.tag.local == "book" for el in up)
        selves = xpath_select(root, "book/.")
        assert len(selves) == 3

    def test_text_step(self, root):
        titles = xpath_select(root, "/catalog/book/title/text()")
        assert titles == ["Dune", "Faust", "Emma"]

    def test_attribute_step(self, root):
        ids = xpath_select(root, "/catalog/book/@id")
        assert ids == ["1", "2", "3"]

    def test_attribute_wildcard(self, root):
        values = xpath_select(root, "/catalog/magazine/@*")
        assert values == ["4"]


class TestPredicates:
    def test_positional(self, root):
        second = xpath_select(root, "/catalog/book[2]")
        assert second[0].get("id") == "2"

    def test_last(self, root):
        last = xpath_select(root, "/catalog/book[last()]")
        assert last[0].get("id") == "3"

    def test_attr_equality(self, root):
        en = xpath_select(root, "/catalog/book[@lang='en']")
        assert [b.get("id") for b in en] == ["1", "3"]

    def test_attr_inequality(self, root):
        not_en = xpath_select(root, "/catalog/book[@lang!='en']")
        assert [b.get("id") for b in not_en] == ["2"]

    def test_attr_existence(self, root):
        with_lang = xpath_select(root, "/catalog/*[@lang]")
        assert len(with_lang) == 3

    def test_child_value(self, root):
        dune = xpath_select(root, "/catalog/book[title='Dune']")
        assert [b.get("id") for b in dune] == ["1"]

    def test_child_existence(self, root):
        with_notes = xpath_select(root, "/catalog/book[notes]")
        assert [b.get("id") for b in with_notes] == ["3"]

    def test_dot_value(self, root):
        hits = xpath_select(root, "//note[.='classic']")
        assert len(hits) == 1

    def test_chained_predicates(self, root):
        hits = xpath_select(root, "/catalog/book[@lang='en'][2]")
        assert [b.get("id") for b in hits] == ["3"]

    def test_numeric_literal_comparison(self, root):
        hits = xpath_select(root, "/catalog/book[price=12]")
        assert [b.get("id") for b in hits] == ["2"]


class TestNamespaces:
    def test_prefixed_name_test(self):
        root = parse('<a xmlns:n="urn:n"><n:b/><b/></a>').root
        hits = xpath_select(root, "n:b", namespaces={"n": "urn:n"})
        assert len(hits) == 1
        assert hits[0].tag.namespace == "urn:n"

    def test_undeclared_prefix_raises(self):
        root = Element("a")
        with pytest.raises(XPathError):
            xpath_select(root, "n:b")

    def test_bare_name_matches_any_namespace(self):
        root = parse('<a xmlns:n="urn:n"><n:b/><b/></a>').root
        assert len(xpath_select(root, "b")) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "expr",
        ["", "/", "a/", "a[", "a]", "//", "a/@x/b", "a/text()/b", "/@x"],
    )
    def test_unsupported_expressions_raise(self, expr):
        root = Element("a")
        with pytest.raises(XPathError):
            xpath_select(root, expr)

    def test_unsupported_predicate_function_raises_on_match(self):
        root = parse("<r><a/></r>").root
        with pytest.raises(XPathError):
            xpath_select(root, "a[foo() = 1]")

    def test_dedup_across_branches(self):
        # //x//x must not return the same node twice via different paths.
        root = parse("<r><x><x/></x></r>").root
        hits = xpath_select(root, "//x")
        assert len(hits) == 2
