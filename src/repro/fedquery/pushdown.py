"""Predicate classification and push-down analysis.

The planner decides, per predicate, where it can be evaluated:

* ``app`` predicates prune federation members outright;
* execution-attribute predicates (and ``exec``) push down through
  ``getExecsOp`` — every store answers them against its own engine
  (SQL for the RDBMS stores, header scans for text);
* ``focus`` predicates constrain the *query foci* passed to ``getPR``
  (the thesis's query model: foci are an input coordinate, so selecting
  them shrinks the store-side scan);
* ``start``/``end`` predicates become the getPR time window;
* ``type`` predicates become the getPR resultType;
* ``value`` predicates push down as inclusive bounds on ``getPRAgg``
  when every one is ``>=``, ``<=`` or ``=``; a strict ``<``/``>``/``!=``
  forces raw rows back to the client for exact filtering.

Everything here is pure analysis over the AST — no I/O — so the same
functions serve the planner, the executor's residual filters, and the
naive reference implementation the oracle test compares against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fedquery.ast import Predicate, Query
from repro.mapping.base import compare_attribute

#: window defaults when the query has no start/end predicates; stores
#: clamp or filter against these exactly as against user bounds
WINDOW_START = 0.0
WINDOW_END = 1e30

#: value-predicate operators expressible as inclusive getPRAgg bounds
_PUSHABLE_VALUE_OPS = ("=", "<=", ">=")


@dataclass(frozen=True)
class PredicateSplit:
    """The WHERE conjunction, bucketed by evaluation site."""

    app: tuple[Predicate, ...]
    exec_ids: tuple[Predicate, ...]
    focus: tuple[Predicate, ...]
    type: Predicate | None
    time: tuple[Predicate, ...]
    value: tuple[Predicate, ...]
    attrs: tuple[Predicate, ...]


def split_predicates(query: Query) -> PredicateSplit:
    buckets: dict[str, list[Predicate]] = {
        "app": [], "exec": [], "focus": [], "type": [], "time": [], "value": [], "attrs": []
    }
    for pred in query.where:
        if pred.field in ("start", "end"):
            buckets["time"].append(pred)
        elif pred.field in buckets:
            buckets[pred.field].append(pred)
        else:
            buckets["attrs"].append(pred)
    types = buckets["type"]
    return PredicateSplit(
        app=tuple(buckets["app"]),
        exec_ids=tuple(buckets["exec"]),
        focus=tuple(buckets["focus"]),
        type=types[0] if types else None,
        time=tuple(buckets["time"]),
        value=tuple(buckets["value"]),
        attrs=tuple(buckets["attrs"]),
    )


def derive_window(time_preds: tuple[Predicate, ...]) -> tuple[float, float]:
    """The getPR time window implied by start/end predicates.

    ``start >= t`` bounds raise the window start, ``end <= t`` bounds
    lower the window end; with no predicates the window is wide open.
    """
    start, end = WINDOW_START, WINDOW_END
    for pred in time_preds:
        bound = float(str(pred.value))
        if pred.field == "start":
            start = max(start, bound)
        else:
            end = min(end, bound)
    return start, end


@dataclass(frozen=True)
class ValueBounds:
    """Inclusive value bounds, when the value conjunction can express them."""

    minimum: float | None
    maximum: float | None
    pushable: bool


def derive_value_bounds(value_preds: tuple[Predicate, ...]) -> ValueBounds:
    if any(pred.op not in _PUSHABLE_VALUE_OPS for pred in value_preds):
        return ValueBounds(None, None, pushable=False)
    minimum: float | None = None
    maximum: float | None = None
    for pred in value_preds:
        bound = float(str(pred.value))
        if pred.op in ("=", ">="):
            minimum = bound if minimum is None else max(minimum, bound)
        if pred.op in ("=", "<="):
            maximum = bound if maximum is None else min(maximum, bound)
    return ValueBounds(minimum, maximum, pushable=True)


def focus_allowlist(focus_preds: tuple[Predicate, ...]) -> frozenset[str] | None:
    """The set of foci the query admits (None = unconstrained).

    Multiple focus predicates AND together, so their value sets
    intersect; an empty set means the query can match nothing.
    """
    allowed: frozenset[str] | None = None
    for pred in focus_preds:
        values = frozenset(pred.values())
        allowed = values if allowed is None else (allowed & values)
    return allowed


def filter_foci(exec_foci: list[str], allowlist: frozenset[str] | None) -> list[str]:
    """Query foci for one execution: its foci, narrowed by the allowlist."""
    if allowlist is None:
        return list(exec_foci)
    return [focus for focus in exec_foci if focus in allowlist]


# ----------------------------------------------------------- residual filters
def app_matches(app_name: str, app_preds: tuple[Predicate, ...]) -> bool:
    for pred in app_preds:
        if pred.op == "=" and app_name != pred.value:
            return False
        if pred.op == "!=" and app_name == pred.value:
            return False
        if pred.op == "in" and app_name not in pred.values():
            return False
    return True


def _compare(stored: str, pred: Predicate) -> bool:
    """One predicate against one stored attribute value.

    ``IN`` is the disjunction of equality comparisons, matching how the
    planner decomposes it into a union of ``getExecsOp(=)`` calls.
    """
    if pred.op == "in":
        return any(compare_attribute(stored, v, "=") for v in pred.values())
    return compare_attribute(stored, str(pred.value), pred.op)


def exec_matches(exec_id: str, exec_preds: tuple[Predicate, ...]) -> bool:
    return all(_compare(exec_id, pred) for pred in exec_preds)


def attrs_match(info: dict[str, str], attr_preds: tuple[Predicate, ...]) -> bool:
    """Client-side attribute filter over an execution's info records."""
    for pred in attr_preds:
        stored = info.get(pred.field)
        if stored is None:
            return False
        if not _compare(stored, pred):
            return False
    return True


def matches_value(value: float, value_preds: tuple[Predicate, ...]) -> bool:
    """Exact client-side value filter (the non-pushable fallback)."""
    for pred in value_preds:
        bound = float(str(pred.value))
        ok = {
            "=": value == bound,
            "!=": value != bound,
            "<": value < bound,
            "<=": value <= bound,
            ">": value > bound,
            ">=": value >= bound,
        }[pred.op]
        if not ok:
            return False
    return True
