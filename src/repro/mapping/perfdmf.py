"""Mapping-Layer wrapper exposing a PerfDMF profile database (§2.4).

Profiles are pre-aggregated, so ``get_pr`` for a ``/Code`` focus returns
exactly one PR per focus (the trial-wide total) rather than SMG98's
per-interval stream — demonstrating that stores of very different
granularity fit the same Execution interface.

Metric mapping: PPerfGrid ``time_spent`` -> PerfDMF TIME
(exclusive_value), ``func_calls`` -> CALLS (num_calls).
"""

from __future__ import annotations

from repro.core.semantic import (
    UNDEFINED_TYPE,
    MetricStats,
    PerformanceResult,
    StoreStats,
)
from repro.mapping.base import ApplicationWrapper, ExecutionWrapper, MappingError
from repro.mapping.rdbms import _SQL_OPS, _sql_value
from repro.minidb import Connection, Database, connect


class PerfDmfWrapper(ApplicationWrapper):
    """One PerfDMF APPLICATION exposed as a PPerfGrid Application."""

    result_type = "perfdmf"
    NUMERIC_ATTRS = frozenset({"node_count", "contexts_per_node", "threads_per_context"})
    ATTRIBUTES = ("date", "node_count", "contexts_per_node", "threads_per_context")
    METRICS = ("time_spent", "func_calls")
    _METRIC_COLUMNS = {"time_spent": "exclusive_value", "func_calls": "num_calls"}

    def __init__(self, database: Database, app_id: int = 1) -> None:
        self.conn: Connection = connect(database)
        self.app_id = app_id
        row = self.conn.execute(
            "SELECT name, version FROM application WHERE app_id = ?", [app_id]
        ).fetchone()
        if row is None:
            raise MappingError(f"no PerfDMF application {app_id}")
        self.app_name, self.app_version = row

    def get_app_info(self) -> list[tuple[str, str]]:
        count = self.conn.execute(
            "SELECT COUNT(*) FROM trial t JOIN experiment e ON t.exp_id = e.exp_id "
            "WHERE e.app_id = ?",
            [self.app_id],
        ).scalar()
        return [
            ("name", str(self.app_name)),
            ("description", "PerfDMF profile database (Huck et al., 2004 schema)"),
            ("version", str(self.app_version)),
            ("executions", str(count)),
        ]

    def get_exec_query_params(self) -> dict[str, list[str]]:
        params: dict[str, list[str]] = {}
        cursor = self.conn.cursor()
        for attr in self.ATTRIBUTES:
            cursor.execute(
                f"SELECT DISTINCT t.{attr} FROM trial t "
                "JOIN experiment e ON t.exp_id = e.exp_id WHERE e.app_id = ? "
                f"ORDER BY t.{attr}",
                [self.app_id],
            )
            params[attr] = [str(row[0]) for row in cursor.fetchall()]
        return params

    def get_all_exec_ids(self) -> list[str]:
        cursor = self.conn.execute(
            "SELECT t.trial_id FROM trial t JOIN experiment e ON t.exp_id = e.exp_id "
            "WHERE e.app_id = ? ORDER BY t.trial_id",
            [self.app_id],
        )
        return [str(row[0]) for row in cursor.fetchall()]

    def get_exec_ids(self, attribute: str, value: str, operator: str = "=") -> list[str]:
        self.check_operator(operator)
        attr = attribute.lower()
        if attr == "trial_id":
            pass
        elif attr not in self.ATTRIBUTES:
            raise MappingError(f"unknown attribute {attribute!r} for PerfDMF")
        numeric = attr in self.NUMERIC_ATTRS or attr == "trial_id"
        cursor = self.conn.execute(
            "SELECT t.trial_id FROM trial t JOIN experiment e ON t.exp_id = e.exp_id "
            f"WHERE e.app_id = ? AND t.{attr} {_SQL_OPS[operator]} ? ORDER BY t.trial_id",
            [self.app_id, _sql_value(value, numeric)],
        )
        return [str(row[0]) for row in cursor.fetchall()]

    def execution(self, exec_id: str) -> "PerfDmfExecutionWrapper":
        cursor = self.conn.execute(
            "SELECT total_time FROM trial WHERE trial_id = ?", [int(exec_id)]
        )
        row = cursor.fetchone()
        if row is None:
            raise MappingError(f"no PerfDMF trial {exec_id!r}")
        return PerfDmfExecutionWrapper(self.conn, int(exec_id), float(row[0]))

    def get_stats(self) -> StoreStats:
        """SQL aggregates over the profile tables (already pre-reduced)."""
        from dataclasses import replace

        return replace(
            _perfdmf_stats(self.conn, app_id=self.app_id, trial_id=None),
            distincts=self.attribute_distincts(),
        )


def _perfdmf_stats(conn: Connection, app_id: int | None, trial_id: int | None) -> StoreStats:
    """Shared PerfDMF stats query, app-wide or scoped to one trial.

    Profiles carry at most one row per (trial, focus, metric), so counts
    and ranges are exact column aggregates.  Time coverage spans the
    trial totals; sub-range ``get_pr`` windows return nothing for this
    store, which only makes the window fraction an overestimate — safe,
    since the planner never skips on the window.
    """
    if trial_id is not None:
        execs_where = "WHERE t.trial_id = ?"
        params: list[object] = [trial_id]
    else:
        execs_where = "JOIN experiment e ON t.exp_id = e.exp_id WHERE e.app_id = ?"
        params = [app_id]
    row = conn.execute(
        f"SELECT COUNT(*), MAX(t.total_time) FROM trial t {execs_where}", params
    ).fetchone()
    assert row is not None
    execs = int(row[0])
    end = float(row[1]) if row[1] is not None else 0.0
    if trial_id is not None:
        ie_where = "ie.trial_id = ?"
        ie_join = ""
    else:
        ie_where = "e.app_id = ?"
        ie_join = (
            "JOIN trial t ON ie.trial_id = t.trial_id "
            "JOIN experiment e ON t.exp_id = e.exp_id "
        )
    metrics = []
    scanned: dict[str, list[float]] = {}
    for metric, column in sorted(PerfDmfWrapper._METRIC_COLUMNS.items()):
        metric_name = "TIME" if metric == "time_spent" else "CALLS"
        stats_row = conn.execute(
            f"SELECT COUNT(*), MIN(ie.{column}), MAX(ie.{column}) "
            f"FROM interval_event ie {ie_join}"
            "JOIN metric m ON ie.metric_id = m.metric_id "
            f"WHERE {ie_where} AND m.name = ?",
            params + [metric_name],
        ).fetchone()
        assert stats_row is not None
        # profiles hold one row per (trial, focus, metric), so this scan
        # is the complete get_pr row set the tier-0 sketches require
        scanned[metric] = [
            float(value_row[0])
            for value_row in conn.execute(
                f"SELECT ie.{column} FROM interval_event ie {ie_join}"
                "JOIN metric m ON ie.metric_id = m.metric_id "
                f"WHERE {ie_where} AND m.name = ?",
                params + [metric_name],
            ).fetchall()
        ]
        metrics.append(
            MetricStats(
                metric=metric,
                rows=int(stats_row[0]),
                minimum=float(stats_row[1]) if stats_row[1] is not None else 0.0,
                maximum=float(stats_row[2]) if stats_row[2] is not None else 0.0,
            )
        )
    foci_cursor = conn.execute(
        f"SELECT DISTINCT ie.event_group, ie.event_name FROM interval_event ie {ie_join}"
        f"WHERE {ie_where} ORDER BY ie.event_group, ie.event_name",
        params,
    )
    from repro.fedquery.sketch import distincts_from_values, sketches_from_values

    distinct_keys = {} if trial_id is None else {"exec": [str(trial_id)]}
    return StoreStats(
        executions=execs,
        start=0.0,
        end=end,
        foci=tuple(f"/Code/{grp}/{name}" for grp, name in foci_cursor.fetchall()),
        types=(PerfDmfWrapper.result_type,),
        metrics=tuple(metrics),
        sketches=sketches_from_values(scanned),
        distincts=distincts_from_values(distinct_keys),
    )


class PerfDmfExecutionWrapper(ExecutionWrapper):
    """One PerfDMF TRIAL as a PPerfGrid Execution."""

    def __init__(self, conn: Connection, trial_id: int, total_time: float) -> None:
        self.conn = conn
        self.trial_id = trial_id
        self.total_time = total_time

    def get_info(self) -> list[tuple[str, str]]:
        cursor = self.conn.execute(
            "SELECT * FROM trial WHERE trial_id = ?", [self.trial_id]
        )
        row = cursor.fetchone()
        assert row is not None and cursor.description is not None
        return [(desc[0], str(value)) for desc, value in zip(cursor.description, row)]

    def get_foci(self) -> list[str]:
        cursor = self.conn.execute(
            "SELECT DISTINCT event_group, event_name FROM interval_event "
            "WHERE trial_id = ? ORDER BY event_group, event_name",
            [self.trial_id],
        )
        return [f"/Code/{grp}/{name}" for grp, name in cursor.fetchall()]

    def get_metrics(self) -> list[str]:
        return sorted(PerfDmfWrapper.METRICS)

    def get_types(self) -> list[str]:
        return [PerfDmfWrapper.result_type]

    def get_time_start_end(self) -> tuple[float, float]:
        return (0.0, self.total_time)

    def get_pr(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
    ) -> list[PerformanceResult]:
        if result_type not in (UNDEFINED_TYPE, "", PerfDmfWrapper.result_type):
            return []
        column = PerfDmfWrapper._METRIC_COLUMNS.get(metric)
        if column is None:
            raise MappingError(f"unknown PerfDMF metric {metric!r}")
        lo = max(0.0, start)
        hi = self.total_time if end <= 0 else min(self.total_time, end)
        # Profiles have no time dimension; a sub-range query cannot be
        # answered from aggregated data and returns nothing rather than a
        # wrong value (contrast with the SMG98 trace wrapper).
        if lo > 0.0 or hi < self.total_time:
            return []
        results: list[PerformanceResult] = []
        metric_name = "TIME" if metric == "time_spent" else "CALLS"
        for focus in foci:
            parts = focus.split("/")
            if len(parts) != 4 or parts[1] != "Code":
                raise MappingError(f"unknown PerfDMF focus {focus!r}")
            _, _, grp, name = parts
            cursor = self.conn.execute(
                f"SELECT ie.{column} FROM interval_event ie "
                "JOIN metric m ON ie.metric_id = m.metric_id "
                "WHERE ie.trial_id = ? AND ie.event_group = ? AND ie.event_name = ? "
                "AND m.name = ?",
                [self.trial_id, grp, name, metric_name],
            )
            row = cursor.fetchone()
            if row is not None:
                results.append(
                    PerformanceResult(metric, focus, "perfdmf", lo, hi, float(row[0]))
                )
        return results

    def get_stats(self) -> StoreStats:
        """Per-trial stats via the shared SQL aggregates."""
        return _perfdmf_stats(self.conn, app_id=None, trial_id=self.trial_id)
