"""The Application Grid service (thesis §5.3.1, Table 1).

The Application instance answers metadata queries from its wrapper and
turns execution-record queries into Execution service instances by way
of the Manager (Figure 5's flow: wrapper -> Manager -> Execution
Factory -> GSHs back to the client).
"""

from __future__ import annotations

from repro.core.semantic import APPLICATION_PORTTYPE, MANAGER_PORTTYPE
from repro.mapping.base import ApplicationWrapper
from repro.ogsi.gsh import GridServiceHandle
from repro.ogsi.service import GridServiceBase


class ApplicationService(GridServiceBase):
    """One Application semantic object exposed as a Grid service."""

    porttype = APPLICATION_PORTTYPE

    def __init__(self, wrapper: ApplicationWrapper, manager_handle: str) -> None:
        super().__init__()
        self.wrapper = wrapper
        self.manager_handle = GridServiceHandle.parse(manager_handle)

    def on_deployed(self, container, gsh) -> None:
        super().on_deployed(container, gsh)
        self.service_data.set(
            "appInfo", [f"{k}|{v}" for k, v in self.wrapper.get_app_info()]
        )

    def _manager_stub(self):
        if self.container is None:
            raise RuntimeError("Application service is not deployed")
        # The Manager is itself accessed as a Grid service (§5.3.1.4:
        # "Grid services need not be accessed only in the traditional
        # client-server model").
        return self.container.environment.stub_for_handle(
            self.manager_handle, MANAGER_PORTTYPE
        )

    # ----------------------------------------------- Table 1 operations
    def getAppInfo(self) -> list[str]:
        self.require_active()
        return [f"{name}|{value}" for name, value in self.wrapper.get_app_info()]

    def getNumExecs(self) -> int:
        self.require_active()
        return self.wrapper.get_num_execs()

    def getExecQueryParams(self) -> list[str]:
        self.require_active()
        params = self.wrapper.get_exec_query_params()
        return [f"{attr}|{'|'.join(values)}" for attr, values in sorted(params.items())]

    def getAllExecs(self) -> list[str]:
        self.require_active()
        keys = self.wrapper.get_all_exec_ids()
        return self._manager_stub().getExecs(keys)

    def getExecs(self, attribute: str, value: str) -> list[str]:
        self.require_active()
        keys = self.wrapper.get_exec_ids(attribute, value, "=")
        return self._manager_stub().getExecs(keys)

    def getExecsOp(self, attribute: str, value: str, operator: str) -> list[str]:
        """Extension: operator-qualified execution query (§2.2.3)."""
        self.require_active()
        keys = self.wrapper.get_exec_ids(attribute, value, operator or "=")
        return self._manager_stub().getExecs(keys)

    def getStats(self) -> list[str]:
        """Extension: application-wide store statistics (packed records).

        Computed on demand (not at deploy time — some Mapping Layers pay
        a file parse per execution) and mirrored to the ``storeStats``
        SDE so FindServiceData clients see the same numbers.
        """
        self.require_active()
        records = self.wrapper.get_stats().pack_records()
        self.service_data.set("storeStats", records)
        return records
