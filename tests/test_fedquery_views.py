"""Incremental materialized views: maintenance oracle + subscription e2e.

The centerpiece is a randomized interleaving oracle: over randomized
federations (reusing the cost-model suite's generators), a pool of
materialized views is registered and the member stores are mutated —
rows appended, modified, and removed, including ghost-metric backfills
that reopen stats-proven skips — with every mutation announced via the
publisher-side ``data_updated()``.  After *each* step, every view's
maintained rows must be byte-identical to a from-scratch
:func:`~repro.fedquery.naive.naive_query` recompute, and a subscribed
client replica must track the server without a single stale refresh.

All synthetic values are integer-valued floats, so sums and means are
exact doubles regardless of merge order and byte comparison is sound.
"""

from __future__ import annotations

import random

import pytest

from repro.core.semantic import PerformanceResult
from repro.experiments.common import build_synthetic_grid
from repro.fedquery import (
    QueryError,
    ViewDelta,
    naive_query,
    parse_query,
    view_shape,
)
from repro.fedquery.views import VIEW_STAT_NAMES
from repro.fedquery.viewservice import VIEW_REGISTRY_PORTTYPE
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper
from repro.soap.faults import SoapFault

from tests.test_fedquery_costmodel import (
    GHOST_METRIC,
    _vocabulary,
    make_federation,
    make_query,
)

N_FEDERATIONS = 3
VIEWS_PER_FEDERATION = 6
UPDATE_STEPS = 8


# --------------------------------------------------------------- unit layer
class TestViewShapes:
    def test_combinable_aggregate(self):
        shape = view_shape(parse_query("SELECT count(m), sum(m) GROUP BY app"))
        assert shape.kind == "aggregate-merge"
        assert shape.combinable

    def test_mean_decomposes(self):
        # mean folds as (total, count), so it merges like sum and count
        shape = view_shape(parse_query("SELECT mean(m) GROUP BY app"))
        assert shape.kind == "aggregate-merge"
        assert "sum" in shape.detail and "count" in shape.detail

    def test_raw_splice(self):
        assert view_shape(parse_query("SELECT m")).kind == "raw-splice"

    def test_topk_bounded(self):
        shape = view_shape(parse_query("SELECT m ORDER BY value DESC LIMIT 5"))
        assert shape.kind == "topk-bounded"
        assert shape.combinable


class TestViewDeltaWire:
    def test_roundtrip(self):
        delta = ViewDelta(
            view_id="view-3",
            epoch=2,
            from_version=7,
            to_version=8,
            kind="delta",
            removed=("a|b|1.0",),
            added=("a|b|2.0", "c|d|3.0"),
        )
        assert ViewDelta.decode(delta.encode()) == delta

    def test_empty_delta_roundtrip(self):
        delta = ViewDelta("view-1", 1, 1, 2, "replace")
        assert ViewDelta.decode(delta.encode()) == delta

    def test_bad_header_rejected(self):
        with pytest.raises(QueryError, match="bad view delta header"):
            ViewDelta.decode("not-a-header")


# ------------------------------------------------------- randomized oracle
def _mutate(rng, name, wrapper, execution, vocab) -> None:
    """One random store mutation with integer-valued floats."""
    results = execution.results
    roll = rng.random()
    if results and roll < 0.3:  # modify a value in place
        index = rng.randrange(len(results))
        old = results[index]
        results[index] = PerformanceResult(
            metric=old.metric,
            focus=old.focus,
            result_type=old.result_type,
            start=old.start,
            end=old.end,
            value=float(rng.randint(0, 150)),
        )
    elif results and roll < 0.45:  # remove a row
        results.pop(rng.randrange(len(results)))
    else:  # append a row; sometimes a ghost backfill (reopens skips)
        if rng.random() < 0.15:
            metric = GHOST_METRIC
        else:
            metric = rng.choice(vocab.metrics[name])
        start = float(rng.randint(0, 5))
        results.append(
            PerformanceResult(
                metric=metric,
                focus=rng.choice(vocab.foci[name]),
                result_type=wrapper.result_type,
                start=start,
                end=start + float(rng.randint(1, 5)),
                value=float(rng.randint(0, 150)),
            )
        )


def _assert_views_match_recompute(views, engine) -> None:
    members = engine.members()
    for view in views:
        expected = [row.pack() for row in naive_query(view.text, members)]
        assert view.packed_rows() == expected, (
            f"view {view.view_id} diverged for {view.text!r}\n"
            f"maintained ({len(view.packed_rows())}): {view.packed_rows()[:5]}\n"
            f"recomputed ({len(expected)}): {expected[:5]}"
        )


@pytest.mark.parametrize("fed", range(N_FEDERATIONS))
def test_any_interleaving_matches_recompute(fed, oracle_seed):
    rng = random.Random(52000 + fed * 1000 + 1_000_000 * oracle_seed)
    wrappers = make_federation(rng)
    grid = build_synthetic_grid(wrappers)
    engine = grid.deploy_federation(authority=f"viewfed{fed}.pdx.edu:9090")
    try:
        vocab = _vocabulary(wrappers)
        maintainer = engine.views()
        views = [
            maintainer.create_view(make_query(rng, vocab))
            for _ in range(VIEWS_PER_FEDERATION)
        ]
        _assert_views_match_recompute(views, engine)
        subscriber = grid.client.subscribe_view(
            views[0].view_id, authority=f"viewsub{fed}.pdx.edu:7070"
        )

        mutable = [
            (name, wrapper, execution)
            for name, wrapper in wrappers.items()
            for execution in wrapper.executions_data
        ]
        if not mutable:
            pytest.skip("federation rolled no executions to mutate")
        for step in range(UPDATE_STEPS):
            name, wrapper, execution = rng.choice(mutable)
            _mutate(rng, name, wrapper, execution, vocab)
            service = grid.execution_service(name, execution.exec_id)
            assert service is not None
            service.data_updated(f"oracle step {step}")
            _assert_views_match_recompute(views, engine)

        stats = maintainer.stats()
        assert stats["maintenanceErrors"] == 0
        assert stats["epochRefreshes"] == 0  # every update was attributable
        assert stats["deltasApplied"] >= 1
        # the push half tracked the server without one consistent-refresh
        assert subscriber.stale_refreshes == 0
        assert [row.pack() for row in subscriber.rows] == views[0].packed_rows()
        subscriber.close()
    finally:
        grid.cleanup()


# --------------------------------------------------------------- e2e layer
def _result(metric, focus, value, start=0.0, end=1.0):
    return PerformanceResult(
        metric=metric,
        focus=focus,
        result_type="synthetic",
        start=start,
        end=end,
        value=value,
    )


@pytest.fixture()
def view_grid():
    attrs = {"numprocs": "4", "machine": "mcurie"}
    a = InMemoryWrapper(
        "A",
        [
            InMemoryExecution(
                "0", dict(attrs), [_result("alpha", "/A", 3.0), _result("alpha", "/B", 5.0)]
            ),
            InMemoryExecution("1", dict(attrs), [_result("alpha", "/A", 7.0)]),
        ],
    )
    b = InMemoryWrapper(
        "B",
        [
            InMemoryExecution(
                "0", dict(attrs), [_result("alpha", "/A", 11.0), _result("beta", "/A", 2.0)]
            ),
        ],
    )
    grid = build_synthetic_grid({"A": a, "B": b})
    engine = grid.deploy_federation()
    yield grid, engine, a, b
    grid.cleanup()


AGG_VIEW = "SELECT count(alpha), sum(alpha), mean(alpha) GROUP BY app"


class TestViewRegistryOverSoap:
    def test_create_get_list_drop(self, view_grid):
        grid, engine, a, b = view_grid
        view_id = grid.client.create_view(AGG_VIEW)
        header, rows = grid.client.get_view(view_id)
        assert header["viewId"] == view_id
        assert header["shape"] == "aggregate-merge"
        assert (int(header["epoch"]), int(header["version"])) == (1, 1)
        assert int(header["rows"]) == len(rows)
        expected = naive_query(AGG_VIEW, engine.members())
        assert [row.pack() for row in rows] == [row.pack() for row in expected]
        listed = list(
            grid.environment.stub_for_handle(
                grid.views_gsh, VIEW_REGISTRY_PORTTYPE
            ).listViews()
        )
        assert any(record.startswith(f"{view_id}|aggregate-merge|") for record in listed)
        assert grid.client.drop_view(view_id) is True
        assert grid.client.drop_view(view_id) is False
        with pytest.raises(SoapFault, match="unknown view"):
            grid.client.get_view(view_id)

    def test_subscribe_view_delivers_deltas_end_to_end(self, view_grid):
        grid, engine, a, b = view_grid
        view_id = grid.client.create_view(AGG_VIEW)
        subscriber = grid.client.subscribe_view(view_id)
        assert [row.pack() for row in subscriber.rows] == [
            row.pack() for row in naive_query(AGG_VIEW, engine.members())
        ]

        a.executions_data[0].results.append(_result("alpha", "/A", 13.0))
        assert grid.execution_service("A", "0").data_updated("ingest") == 1

        expected = [row.pack() for row in naive_query(AGG_VIEW, engine.members())]
        assert engine.views().get_view(view_id).packed_rows() == expected
        assert [row.pack() for row in subscriber.rows] == expected
        assert subscriber.deltas_applied == 1
        assert subscriber.stale_refreshes == 0
        assert subscriber.version == 2

        stats = grid.client.view_stats()
        assert stats["deltasApplied"] == 1
        assert stats["pushedDeltas"] == 1
        # the delta refetched one partition, not the whole federation
        assert stats["deltaRowsFetched"] <= 4
        subscriber.close()

    def test_unchanged_update_is_a_noop(self, view_grid):
        grid, engine, a, b = view_grid
        view_id = grid.client.create_view(AGG_VIEW)
        subscriber = grid.client.subscribe_view(view_id)
        # beta does not feed this view: the refetched partition folds to
        # identical rows, and nothing is pushed
        b.executions_data[0].results.append(_result("beta", "/A", 4.0))
        grid.execution_service("B", "0").data_updated("beta only")
        stats = grid.client.view_stats()
        assert stats["noopUpdates"] == 1
        assert stats["pushedDeltas"] == 0
        assert subscriber.deltas_applied == 0
        assert subscriber.version == 1
        subscriber.close()

    def test_subscribe_unknown_view_rejected(self, view_grid):
        grid, engine, a, b = view_grid
        with pytest.raises(SoapFault, match="unknown view"):
            grid.client.subscribe_view("view-99")


class TestConsistencyProtocol:
    def test_stale_epoch_delta_triggers_consistent_refresh(self, view_grid):
        grid, engine, a, b = view_grid
        view_id = grid.client.create_view(AGG_VIEW)
        subscriber = grid.client.subscribe_view(view_id)
        baseline = [row.pack() for row in subscriber.rows]
        subscriber.apply(
            ViewDelta(
                view_id=view_id,
                epoch=subscriber.epoch + 5,
                from_version=subscriber.version,
                to_version=subscriber.version + 1,
                kind="delta",
                added=("junk|row|1.0",),
            )
        )
        assert subscriber.stale_refreshes == 1
        assert [row.pack() for row in subscriber.rows] == baseline

    def test_removing_an_unknown_row_triggers_refresh(self, view_grid):
        grid, engine, a, b = view_grid
        view_id = grid.client.create_view(AGG_VIEW)
        subscriber = grid.client.subscribe_view(view_id)
        subscriber.apply(
            ViewDelta(
                view_id=view_id,
                epoch=subscriber.epoch,
                from_version=subscriber.version,
                to_version=subscriber.version + 1,
                kind="delta",
                removed=("never|seen|0.0",),
            )
        )
        assert subscriber.stale_refreshes == 1
        assert subscriber.version == 1  # re-adopted the server's version

    def test_unattributable_update_opens_a_new_epoch(self, view_grid):
        grid, engine, a, b = view_grid
        view_id = grid.client.create_view(AGG_VIEW)
        subscriber = grid.client.subscribe_view(view_id)
        engine._on_update("data-update", "zz|1|mystery")
        view = engine.views().get_view(view_id)
        assert view.epoch == 2
        assert engine.view_stats()["epochRefreshes"] == 1
        assert engine.coherence_stats()["fullClears"] == 1
        # the pushed refresh is adopted unconditionally, not as stale
        assert subscriber.epoch == 2
        assert subscriber.stale_refreshes == 0
        assert [row.pack() for row in subscriber.rows] == view.packed_rows()
        subscriber.close()

    def test_member_scoped_clear_recomputes_only_that_member(self, view_grid):
        grid, engine, a, b = view_grid
        view_id = grid.client.create_view(AGG_VIEW)
        source = "ppg://mem0.pdx.edu:8080/services/A/ExecutionFactory/instances/99"
        engine._on_update("data-update", f"99|1|{source}|late publisher")
        coherence = engine.coherence_stats()
        assert coherence["memberClears"] == 1
        assert coherence["fullClears"] == 0
        stats = engine.view_stats()
        assert stats["scopedRecomputes"] == 1
        assert stats["epochRefreshes"] == 0
        view = engine.views().get_view(view_id)
        assert view.epoch == 1  # scoped recompute stays within the epoch
        expected = naive_query(AGG_VIEW, engine.members())
        assert view.packed_rows() == [row.pack() for row in expected]


class TestViewStatsSurfaces:
    def test_view_stats_over_soap(self, view_grid):
        grid, engine, a, b = view_grid
        grid.client.create_view(AGG_VIEW)
        stats = grid.client.view_stats()
        assert set(stats) == set(VIEW_STAT_NAMES)
        assert stats["views"] == 1 and stats["created"] == 1

    def test_manager_stats_surface_view_counters(self, view_grid):
        grid, engine, a, b = view_grid
        grid.client.create_view(AGG_VIEW)
        for site in grid.sites.values():
            assert site.manager.stats()["viewStats"] == engine.view_stats()

    def test_view_stats_service_data(self, view_grid):
        from repro.fedquery.executor import _sde_values

        grid, engine, a, b = view_grid
        grid.client.create_view(AGG_VIEW)
        stub = grid.environment.stub_for_handle(
            grid.views_gsh, VIEW_REGISTRY_PORTTYPE
        )
        values = _sde_values(stub.FindServiceData("name:viewStats"))
        names = {value.split("|", 1)[0] for value in values}
        assert set(VIEW_STAT_NAMES) <= names
