"""Service container and grid environment (the Axis/Tomcat analog).

The container is the server half of the Architecture Adapter pattern:
its ingress takes ``(path, request-bytes)``, parses the SOAP envelope,
validates the operation against the target service's PortType, invokes
the native method, and serializes the result (or a fault) back to bytes.

Dispatch is serialized **per service**, not per container: each deployed
path gets its own :class:`~repro.ogsi.dispatch.ServiceGate`, so requests
to different services proceed concurrently while one stateful instance
still sees one request at a time.  The ingress runs under an
:class:`~repro.ogsi.dispatch.AdmissionController` — a bounded request
queue with per-client fair queueing that sheds excess load with a
``Server``-role busy fault instead of convoying.  Lifetime sweeps take
each victim's gate (and re-check expiry under it), so a sweep can never
destroy a service mid-dispatch.

A :class:`GridEnvironment` groups containers, wires them to a shared
transport/clock/reactor, and builds client stubs — the whole "grid" of
one PPerfGrid session lives in one environment object.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable

from repro.ogsi.dispatch import (
    AdmissionController,
    BusyFault,
    DispatchCore,
    client_context,
    dispatch_frame,
    extract_client_id,
    in_dispatch,
)
from repro.ogsi.gsh import GridServiceHandle, GshError
from repro.ogsi.porttypes import GRID_SERVICE_PORTTYPE
from repro.ogsi.service import GridServiceBase, ServiceState
from repro.simnet.clock import Clock, RealClock
from repro.simnet.host import SimHost
from repro.simnet.metrics import Recorder
from repro.simnet.reactor import Reactor, RepeatingTask
from repro.simnet.transport import LoopbackTransport, Transport
from repro.soap.faults import SoapFault, fault_from_exception
from repro.soap.rpc import decode_request, encode_fault, encode_response
from repro.wsdl.porttype import Operation, PortType
from repro.wsdl.stubgen import ClientStub, make_stub
from repro.xmlkit import Element

#: optional security check: (headers, request_bytes) -> None or raise
SecurityVerifier = Callable[[list[Element], bytes], None]


class ContainerError(RuntimeError):
    """Deployment/routing errors inside a container."""


class ServiceContainer:
    """Hosts Grid services under one authority (one "host:port").

    ``max_inflight``/``max_queue_depth`` configure admission control
    (both default to unbounded: no queueing, no shedding — existing
    single-tenant deployments behave as before, minus the container-wide
    serialization).  ``serialize_dispatch=True`` restores the legacy
    whole-container lock; it exists as the benchmark baseline and as an
    escape hatch, not as a recommended mode.
    """

    def __init__(
        self,
        authority: str,
        environment: "GridEnvironment",
        host: SimHost | None = None,
        max_inflight: int | None = None,
        max_queue_depth: int | None = None,
        serialize_dispatch: bool = False,
    ) -> None:
        self.authority = authority
        self.environment = environment
        self.host = host
        self._services: dict[str, GridServiceBase] = {}
        self._instance_counters: dict[str, int] = {}
        #: guards the service/counter maps only — never held across a
        #: service method call or any SOAP work
        self._services_lock = threading.Lock()
        self._core = DispatchCore(serialize_all=serialize_dispatch)
        self.admission = AdmissionController(max_inflight, max_queue_depth)
        self.verifier: SecurityVerifier | None = None
        # Ingress accounting: *handled* requests reached a service method;
        # *rejected* ones never routed (malformed envelope, unknown path/
        # operation, bad arity, failed verification); *shed* ones were
        # refused by admission control.  Only the sum is "traffic".
        self.requests_handled = 0
        self.requests_rejected = 0
        self.requests_shed = 0
        self._counter_lock = threading.Lock()

    @property
    def clock(self) -> Clock:
        return self.environment.clock

    # ---------------------------------------------------------- deployment
    def deploy(self, path: str, service: GridServiceBase) -> GridServiceHandle:
        """Deploy a persistent service at *path*; returns its GSH."""
        with self._services_lock:
            if path in self._services:
                raise ContainerError(
                    f"path {path!r} already deployed on {self.authority}"
                )
            gsh = GridServiceHandle(self.authority, path)
            self._services[path] = service
        service.on_deployed(self, gsh)
        return gsh

    def deploy_instance(self, factory_path: str, instance: GridServiceBase) -> GridServiceHandle:
        """Deploy a transient instance under a factory's path."""
        with self._services_lock:
            count = self._instance_counters.get(factory_path, 0) + 1
            self._instance_counters[factory_path] = count
        path = f"{factory_path}/instances/{count}"
        return self.deploy(path, instance)

    def deploy_monitor(self, path: str = "services/container-monitor", sources=None):
        """Deploy a :class:`~repro.ogsi.monitor.ContainerMonitorService`
        publishing this container's ingress/admission counters as SDEs.

        ``sources`` (name -> zero-arg stats provider) merge extra
        counter dicts into the surface as ``<name>.<key>`` entries —
        e.g. the federation engine's fan-out scheduler gauges.
        """
        from repro.ogsi.monitor import ContainerMonitorService

        return self.deploy(path, ContainerMonitorService(self, sources=sources))

    def remove_service(self, gsh: GridServiceHandle) -> None:
        with self._services_lock:
            self._services.pop(gsh.path, None)
        self._core.discard(gsh.path)

    def has_service(self, gsh: GridServiceHandle) -> bool:
        with self._services_lock:
            service = self._services.get(gsh.path)
        return service is not None and service.state is ServiceState.ACTIVE

    def service_at(self, path: str) -> GridServiceBase | None:
        with self._services_lock:
            return self._services.get(path)

    def service_count(self) -> int:
        with self._services_lock:
            return len(self._services)

    def service_paths(self) -> list[str]:
        with self._services_lock:
            return sorted(self._services)

    def sweep_expired(self) -> int:
        """Destroy instances whose termination time has passed.

        Each victim is destroyed under its own dispatch gate, with the
        expiry re-checked once the gate is held: an in-flight ``next()``
        that renews a cursor's TTL wins over a concurrent sweep, and a
        service mid-dispatch is never destroyed under the caller.
        """
        now = self.clock.now()
        with self._services_lock:
            candidates = [
                (path, svc)
                for path, svc in self._services.items()
                if svc.state is ServiceState.ACTIVE and svc.is_expired(now)
            ]
        swept = 0
        for path, service in candidates:
            gate = self._core.gate_for(path)
            gate.acquire()
            try:
                if service.sweep(now):
                    swept += 1
            finally:
                gate.release()
        return swept

    # ------------------------------------------------------------- ingress
    def handle_request(self, path: str, request: bytes) -> bytes:
        """The container ingress: bytes in, bytes out, faults on errors."""
        if in_dispatch():
            # A nested call from already-admitted work (a service invoking
            # another service mid-request).  Admission applies only at the
            # outermost ingress — re-admitting would deadlock a saturated
            # queue against itself — but the per-service gate still does.
            return self._dispatch(path, request)
        client_header = extract_client_id(request)
        client = client_header or f"thread-{threading.get_ident()}"
        try:
            self.admission.acquire(client)
        except BusyFault as fault:
            with self._counter_lock:
                self.requests_shed += 1
            return encode_fault(fault)
        try:
            # the explicit header identity (never the thread fallback) is
            # visible to dispatched code via current_client_id(), so the
            # engine's tenant scheduling sees the same key admission did
            with client_context(client_header):
                return self._dispatch(path, request)
        finally:
            self.admission.release()

    def _dispatch(self, path: str, request: bytes) -> bytes:
        routed = False
        try:
            rpc = decode_request(request)
        except SoapFault as fault:
            self._count_rejected()
            return encode_fault(fault)
        except Exception as exc:
            self._count_rejected()
            return encode_fault(fault_from_exception(exc, caller_error=True))
        try:
            if self.verifier is not None:
                self.verifier(rpc.headers, request)
            with self._services_lock:
                service = self._services.get(path)
            if service is None or service.state is not ServiceState.ACTIVE:
                raise SoapFault("Client", f"no service at {self.authority}/{path}")
            operation = self._find_operation(service, rpc.operation)
            if len(rpc.params) != len(operation.parameters):
                raise SoapFault(
                    "Client",
                    f"{rpc.operation} takes {len(operation.parameters)} "
                    f"argument(s), got {len(rpc.params)}",
                )
            method = getattr(service, rpc.operation, None)
            if method is None:
                raise SoapFault(
                    "Server",
                    f"{type(service).__name__} declares but does not implement "
                    f"{rpc.operation}",
                )
            gate = self._core.gate_for(path)
            with dispatch_frame(gate):
                # Re-check under the gate: a sweep or Destroy may have won
                # the race while this request waited its turn.
                if service.state is not ServiceState.ACTIVE:
                    raise SoapFault(
                        "Client", f"no service at {self.authority}/{path}"
                    )
                routed = True
                with self._counter_lock:
                    self.requests_handled += 1
                result = method(*rpc.params)
                # Encode under the gate too: services may return views of
                # state (cached PR lists) that the next dispatch mutates.
                return encode_response(
                    rpc.namespace,
                    rpc.operation,
                    result,
                    is_void=operation.returns == "void",
                )
        except SoapFault as fault:
            if not routed:
                self._count_rejected()
            return encode_fault(fault)
        except Exception as exc:
            if not routed:
                self._count_rejected()
            return encode_fault(fault_from_exception(exc))

    def _count_rejected(self) -> None:
        with self._counter_lock:
            self.requests_rejected += 1

    def stats(self) -> dict[str, int]:
        """Ingress and admission counters (the container-monitor SDEs)."""
        snapshot = self.admission.snapshot()
        with self._counter_lock:
            snapshot.update(
                requestsHandled=self.requests_handled,
                requestsRejected=self.requests_rejected,
                requestsShed=self.requests_shed,
            )
        snapshot["services"] = self.service_count()
        return snapshot

    @staticmethod
    def _find_operation(service: GridServiceBase, name: str) -> Operation:
        if service.porttype.has_operation(name):
            return service.porttype.operation(name)
        if GRID_SERVICE_PORTTYPE.has_operation(name):
            return GRID_SERVICE_PORTTYPE.operation(name)
        raise SoapFault(
            "Client",
            f"PortType {service.porttype.name!r} has no operation {name!r}",
        )


#: default stub-pool entry lifetime: long enough to amortize bind work
#: across a burst of calls, short enough that a re-published GSH cannot
#: be answered by a stale binding for long
DEFAULT_STUB_TTL_S = 30.0
DEFAULT_STUB_POOL_CAPACITY = 512


class StubPool:
    """Keyed, TTL'd cache of bound client stubs.

    Binding a stub validates the handle and (on the dynamic path)
    fetches and parses the service's WSDL; repeated calls to the same
    GSH paid that on every construction.  The pool keys entries by
    ``(handle, porttype)``, expires them after ``ttl`` seconds (expiry
    forces a liveness re-validation through the normal bind), and is
    invalidated wholesale on ``refresh_members()`` and per handle on
    bind faults.  Stubs are stateless operation tables, safe to share
    across threads; identity-stamped stubs (a ``headers_provider``) are
    never pooled.
    """

    def __init__(
        self,
        ttl: float = DEFAULT_STUB_TTL_S,
        capacity: int = DEFAULT_STUB_POOL_CAPACITY,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.ttl = ttl
        self.capacity = capacity
        self._lock = threading.Lock()
        #: (handle url, porttype name) -> (stub, expiry monotonic time)
        self._entries: OrderedDict[tuple[str, str], tuple[ClientStub, float]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: tuple[str, str]) -> ClientStub | None:
        now = time.monotonic()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            stub, expiry = entry
            if expiry <= now:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return stub

    def put(self, key: tuple[str, str], stub: ClientStub) -> None:
        with self._lock:
            self._entries[key] = (stub, time.monotonic() + self.ttl)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, handle: str) -> int:
        """Drop every pooled stub bound to *handle* (bind-fault path)."""
        with self._lock:
            doomed = [key for key in self._entries if key[0] == handle]
            for key in doomed:
                del self._entries[key]
            self.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "expirations": self.expirations,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }


class GridEnvironment:
    """One grid: shared clock, transport, reactor, a set of containers."""

    def __init__(self, clock: Clock | None = None, recorder: Recorder | None = None) -> None:
        self.clock: Clock = clock or RealClock()
        self.recorder = recorder if recorder is not None else Recorder(self.clock)
        self.transport: Transport = LoopbackTransport(self.recorder)
        self._containers: dict[str, ServiceContainer] = {}
        self._reactor: Reactor | None = None
        self._sweeper: RepeatingTask | None = None
        #: shared TTL'd stub cache for the pooled bind helpers
        self.stub_pool = StubPool()

    def create_container(
        self,
        authority: str,
        host: SimHost | None = None,
        max_inflight: int | None = None,
        max_queue_depth: int | None = None,
        serialize_dispatch: bool = False,
    ) -> ServiceContainer:
        if authority in self._containers:
            raise ContainerError(f"a container is already bound at {authority!r}")
        container = ServiceContainer(
            authority,
            self,
            host=host,
            max_inflight=max_inflight,
            max_queue_depth=max_queue_depth,
            serialize_dispatch=serialize_dispatch,
        )
        self._containers[authority] = container
        # The loopback transport routes by authority to the container ingress.
        self.transport.bind(authority, container.handle_request)  # type: ignore[attr-defined]
        return container

    def container_for(self, authority: str) -> ServiceContainer | None:
        return self._containers.get(authority)

    def containers(self) -> list[ServiceContainer]:
        return [self._containers[a] for a in sorted(self._containers)]

    # --------------------------------------------------------------- reactor
    @property
    def reactor(self) -> Reactor:
        """The environment's deferred-work loop (created on first use)."""
        if self._reactor is None:
            self._reactor = Reactor(name="grid-env")
        return self._reactor

    def start_sweeper(self, interval: float) -> RepeatingTask:
        """Run :meth:`sweep_expired` every *interval* seconds on the reactor.

        Replaces any previously started sweeper.  The sweep itself
        serializes with dispatch through the per-service gates, so it is
        safe to run concurrently with live traffic.
        """
        if self._sweeper is not None:
            self._sweeper.cancel()
        self._sweeper = self.reactor.call_every(interval, self.sweep_expired)
        return self._sweeper

    def stop_sweeper(self) -> None:
        if self._sweeper is not None:
            self._sweeper.cancel()
            self._sweeper = None

    def close(self, drain_timeout: float = 5.0) -> None:
        """Quiesce, then tear down; the environment stays usable for
        synchronous work afterwards.  Idempotent.

        Ordering matters: first cancel the sweeper (no *new* sweeps),
        then let already-due reactor work — including a sweep caught
        mid-flight — run to completion, then wait for every container's
        in-flight and queued dispatches to drain, and only then stop the
        reactor.  The old stop-everything-at-once order could shut the
        reactor down under a dispatch that was about to schedule
        deferred work on it.
        """
        self.stop_sweeper()
        reactor = self._reactor
        if reactor is not None:
            reactor.drain(timeout=drain_timeout)
        for container in self._containers.values():
            container.admission.wait_idle(timeout=drain_timeout)
        if reactor is not None:
            reactor.shutdown()
            self._reactor = None

    # ---------------------------------------------------------------- stubs
    def stub_for_handle(
        self,
        handle: str | GridServiceHandle,
        porttype: PortType,
        headers_provider=None,
    ) -> ClientStub:
        """Bind a stub to the service a GSH names (the Figure 1 'bind' step)."""
        gsh = handle if isinstance(handle, GridServiceHandle) else GridServiceHandle.parse(handle)
        container = self._containers.get(gsh.authority)
        if container is None or not container.has_service(gsh):
            raise GshError(f"handle {gsh} does not resolve to a live service")
        return make_stub(porttype, gsh.endpoint_url(), self.transport, headers_provider)

    def stub_for_endpoint(
        self, endpoint_url: str, porttype: PortType, headers_provider=None
    ) -> ClientStub:
        return make_stub(porttype, endpoint_url, self.transport, headers_provider)

    def pooled_stub_for_handle(
        self,
        handle: str | GridServiceHandle,
        porttype: PortType,
        headers_provider=None,
    ) -> ClientStub:
        """:meth:`stub_for_handle` through the TTL'd :class:`StubPool`.

        A hit skips handle validation and stub construction entirely;
        expiry re-validates through the normal bind.  A bind fault
        drops every pooled stub for the handle before propagating, so a
        dead service's cached bindings never outlive the failure.
        Identity-stamped stubs (``headers_provider``) bypass the pool.
        """
        if headers_provider is not None:
            return self.stub_for_handle(handle, porttype, headers_provider)
        url = handle.url() if isinstance(handle, GridServiceHandle) else str(handle)
        key = (url, porttype.name)
        stub = self.stub_pool.get(key)
        if stub is not None:
            return stub
        try:
            stub = self.stub_for_handle(handle, porttype)
        except GshError:
            self.stub_pool.invalidate(url)
            raise
        self.stub_pool.put(key, stub)
        return stub

    def pooled_stub_from_wsdl(
        self, handle: str | GridServiceHandle, headers_provider=None
    ) -> ClientStub:
        """:meth:`stub_from_wsdl` through the pool — the expensive path.

        The dynamic bind fetches and parses the service's WSDL on every
        call; pooling keys it under ``(handle, "@wsdl")`` so repeated
        dynamic binds to one GSH pay the parse once per TTL window.
        """
        if headers_provider is not None:
            return self.stub_from_wsdl(handle, headers_provider)
        url = handle.url() if isinstance(handle, GridServiceHandle) else str(handle)
        key = (url, "@wsdl")
        stub = self.stub_pool.get(key)
        if stub is not None:
            return stub
        try:
            stub = self.stub_from_wsdl(handle)
        except GshError:
            self.stub_pool.invalidate(url)
            raise
        self.stub_pool.put(key, stub)
        return stub

    def stub_from_wsdl(
        self, handle: str | GridServiceHandle, headers_provider=None
    ) -> ClientStub:
        """Bind with no compile-time PortType knowledge (Figure 1 flow).

        Fetches the service's published WSDL through the GridService
        PortType (always available), parses it, and builds the stub from
        the parsed interface — the analog of WSDL2Java stub generation.
        """
        from repro.wsdl.document import parse_wsdl
        from repro.xmlkit import parse as parse_xml

        bootstrap = self.stub_for_handle(handle, GRID_SERVICE_PORTTYPE, headers_provider)
        result_xml = bootstrap.FindServiceData("wsdl")
        root = parse_xml(result_xml).root
        sde = root.find("serviceDataElement")
        if sde is None:
            raise GshError(f"service {handle} publishes no WSDL service data")
        value = sde.find("value")
        wsdl_text = value.text() if value is not None else ""
        porttype, endpoint = parse_wsdl(wsdl_text)
        return make_stub(porttype, endpoint, self.transport, headers_provider)

    def sweep_expired(self) -> int:
        """Run lifetime sweeps on every container."""
        return sum(c.sweep_expired() for c in self._containers.values())

    def total_services(self) -> int:
        return sum(c.service_count() for c in self._containers.values())
