"""GSI-style security (thesis future-work §7).

The thesis notes the prototype "does not address security" and proposes
GT3.2's Grid Security Infrastructure: public-key credentials, message
protection, and single-sign-on proxy delegation.  This package provides
an offline-friendly equivalent built on HMAC-SHA256:

* a :class:`CertificateAuthority` issues :class:`Credential` objects
  (identity + signing key, signed by the CA);
* :class:`ProxyCredential` supports delegation chains with bounded
  lifetimes (the "single sign-on" workflow);
* :func:`sign_request` / :func:`make_verifier` put a signature header on
  each SOAP request and verify it at the container ingress.

HMAC replaces X.509 because no crypto backends exist offline; the
*protocol shape* — who holds what secret, what travels in the message,
what the server checks — matches GSI's.
"""

from repro.gsi.credentials import (
    CertificateAuthority,
    Credential,
    CredentialError,
    ProxyCredential,
)
from repro.gsi.messages import GSI_NS, make_verifier, sign_request, signature_header_provider

__all__ = [
    "CertificateAuthority",
    "Credential",
    "CredentialError",
    "GSI_NS",
    "ProxyCredential",
    "make_verifier",
    "sign_request",
    "signature_header_provider",
]
