"""Table 4 — Grid services overhead.

Method (thesis §6.4): each ``getPR`` call is timed at two layers —
the Virtualization-layer call (total query time, at the client stub) and
the Mapping-layer call (the local data-store query) — and the overhead is
the difference.  100 queries run against HPL and RMA; 30 against SMG98
(long-running).  Caching is disabled so every query pays the full path.

Reported per data source: mean total, mean mapping, mean overhead,
overhead as % of total, COV of total time, and bytes transferred per
query (request + response over the transport).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import coefficient_of_variation, mean
from repro.analysis.tables import format_table
from repro.core.semantic import UNDEFINED_TYPE
from repro.experiments.common import GridScale, TestGrid, build_grid

#: per-source query plans: (metric, foci) for the getPR calls
_QUERY_PLANS = {
    "HPL": ("gflops", ["/Run"]),
    "PRESTA-RMA": (
        "bandwidth_mbps",
        ["/Op/MPI_Put", "/Op/MPI_Get", "/Op/MPI_Accumulate", "/Op/MPI_Send", "/Op/MPI_Isend"],
    ),
    "SMG98": ("time_spent", ["/Code/MPI/MPI_Allgather"]),
}


@dataclass
class OverheadRow:
    """One Table 4 row."""

    source: str
    store_kind: str
    queries: int
    mean_total_ms: float
    mean_mapping_ms: float
    mean_overhead_ms: float
    overhead_pct: float
    cov: float
    #: transport bytes (request + response envelopes) per query
    bytes_per_query: float
    #: payload bytes per query — the paper's "Total Bytes Transferred"
    #: column counts result data only (HPL ~8 B, RMA ~5,692 B, ...)
    payload_bytes_per_query: float
    results_per_query: float


@dataclass
class OverheadResult:
    rows: list[OverheadRow]

    def to_table(self) -> str:
        headers = [
            "Data Source",
            "Store",
            "N",
            "Mean Total (ms)",
            "Mapping (ms)",
            "Mean Overhead (ms)",
            "Overhead %",
            "COV",
            "Payload Bytes/Query",
            "Wire Bytes/Query",
        ]
        rows = [
            [
                r.source,
                r.store_kind,
                r.queries,
                r.mean_total_ms,
                r.mean_mapping_ms,
                r.mean_overhead_ms,
                f"{r.overhead_pct:.0f}%",
                f"{r.cov:.2f}",
                f"~{r.payload_bytes_per_query:,.0f}",
                f"~{r.bytes_per_query:,.0f}",
            ]
            for r in self.rows
        ]
        return format_table(headers, rows, title="Table 4: PPerfGrid Overhead")

    def row(self, source: str) -> OverheadRow:
        for r in self.rows:
            if r.source == source:
                return r
        raise KeyError(source)


_STORE_KINDS = {"HPL": "RDBMS", "PRESTA-RMA": "ASCII text files", "SMG98": "RDBMS"}


def measure_source(
    grid: TestGrid, source: str, num_queries: int
) -> OverheadRow:
    """Run the Table 4 measurement for one data source."""
    binding = grid.bind(source)
    executions = binding.all_executions()
    if not executions:
        raise RuntimeError(f"{source}: no executions bound")
    metric, foci = _QUERY_PLANS[source]
    recorder = grid.environment.recorder
    total_timer = recorder.timer("virtualization.getPR")
    mapping_timer = recorder.timer("mapping.getPR")

    totals: list[float] = []
    mappings: list[float] = []
    byte_counts: list[int] = []
    payload_counts: list[int] = []
    result_counts: list[int] = []
    for i in range(num_queries):
        execution = executions[i % len(executions)]
        n_total = len(total_timer.samples)
        n_mapping = len(mapping_timer.samples)
        bytes_before = recorder.bytes_total
        results = execution.get_pr(metric, foci, result_type=UNDEFINED_TYPE)
        totals.append(sum(total_timer.samples[n_total:]))
        mappings.append(sum(mapping_timer.samples[n_mapping:]))
        byte_counts.append(recorder.bytes_total - bytes_before)
        # Payload bytes: the result data itself (the paper's definition,
        # which approximates Java object sizes, not SOAP envelopes).
        payload_counts.append(sum(len(r.pack()) for r in results))
        result_counts.append(len(results))

    mean_total = mean(totals)
    mean_mapping = mean(mappings)
    return OverheadRow(
        source=source,
        store_kind=_STORE_KINDS[source],
        queries=num_queries,
        mean_total_ms=mean_total * 1000,
        mean_mapping_ms=mean_mapping * 1000,
        mean_overhead_ms=(mean_total - mean_mapping) * 1000,
        overhead_pct=(mean_total - mean_mapping) / mean_total * 100 if mean_total else 0.0,
        cov=coefficient_of_variation(totals),
        bytes_per_query=mean([float(b) for b in byte_counts]),
        payload_bytes_per_query=mean([float(b) for b in payload_counts]),
        results_per_query=mean([float(c) for c in result_counts]),
    )


def run_overhead_experiment(
    scale: GridScale | None = None,
    hpl_queries: int = 100,
    rma_queries: int = 100,
    smg98_queries: int = 30,
    grid: TestGrid | None = None,
) -> OverheadResult:
    """Run the full Table 4 experiment.

    Query counts default to the thesis's (100 / 100 / 30).  Caching is
    off, so repeated queries against the same execution still exercise
    the Mapping Layer.
    """
    own_grid = grid is None
    grid = grid or build_grid(scale, caching=False)
    try:
        rows = [
            measure_source(grid, "HPL", hpl_queries),
            measure_source(grid, "PRESTA-RMA", rma_queries),
            measure_source(grid, "SMG98", smg98_queries),
        ]
        return OverheadResult(rows=rows)
    finally:
        if own_grid:
            grid.cleanup()
