"""Tests for the discrete-event engine and the Figure 12 cross-check."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.events import EventScheduler, FifoResource, simulate_scalability_des
from repro.simnet.host import SimHost
from repro.simnet.network import NetworkModel


class TestEventScheduler:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        log: list[str] = []
        scheduler.schedule_at(2.0, lambda: log.append("b"))
        scheduler.schedule_at(1.0, lambda: log.append("a"))
        scheduler.schedule_at(3.0, lambda: log.append("c"))
        assert scheduler.run() == 3.0
        assert log == ["a", "b", "c"]

    def test_ties_break_in_schedule_order(self):
        scheduler = EventScheduler()
        log: list[int] = []
        for i in range(5):
            scheduler.schedule_at(1.0, lambda i=i: log.append(i))
        scheduler.run()
        assert log == [0, 1, 2, 3, 4]

    def test_events_can_schedule_events(self):
        scheduler = EventScheduler()
        log: list[float] = []

        def chain(n: int) -> None:
            log.append(scheduler.now)
            if n > 0:
                scheduler.schedule_after(1.0, lambda: chain(n - 1))

        scheduler.schedule_at(0.0, lambda: chain(3))
        scheduler.run()
        assert log == [0.0, 1.0, 2.0, 3.0]

    def test_past_scheduling_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(5.0, lambda: scheduler.schedule_at(1.0, lambda: None))
        with pytest.raises(ValueError):
            scheduler.run()

    def test_run_until_stops_early(self):
        scheduler = EventScheduler()
        log: list[str] = []
        scheduler.schedule_at(1.0, lambda: log.append("a"))
        scheduler.schedule_at(10.0, lambda: log.append("b"))
        scheduler.run(until=5.0)
        assert log == ["a"]
        assert scheduler.now == 5.0
        assert scheduler.pending == 1

    def test_event_budget(self):
        scheduler = EventScheduler()

        def forever() -> None:
            scheduler.schedule_after(1.0, forever)

        scheduler.schedule_at(0.0, forever)
        with pytest.raises(RuntimeError):
            scheduler.run(max_events=100)


class TestFifoResource:
    def test_serializes_tasks(self):
        scheduler = EventScheduler()
        resource = FifoResource(scheduler)
        spans: list[tuple[float, float]] = []
        resource.submit(2.0, lambda s, e: spans.append((s, e)))
        resource.submit(3.0, lambda s, e: spans.append((s, e)))
        scheduler.run()
        assert spans == [(0.0, 2.0), (2.0, 5.0)]
        assert resource.completed == 2
        assert resource.utilization(5.0) == 1.0

    def test_submission_mid_simulation(self):
        scheduler = EventScheduler()
        resource = FifoResource(scheduler)
        spans: list[tuple[float, float]] = []
        scheduler.schedule_at(
            10.0, lambda: resource.submit(1.0, lambda s, e: spans.append((s, e)))
        )
        scheduler.run()
        assert spans == [(10.0, 11.0)]

    def test_negative_duration_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            FifoResource(scheduler).submit(-1.0)


class TestScalabilityCrossCheck:
    """The DES model and the timeline replay must tell the same story."""

    @staticmethod
    def _costs(num_executions: int, queries: int, seed: int = 5) -> list[list[float]]:
        rng = random.Random(seed)
        return [
            [rng.uniform(0.0008, 0.0012) for _ in range(queries)]
            for _ in range(num_executions)
        ]

    @staticmethod
    def _replay_makespan(costs: list[list[float]], replicas: int) -> float:
        hosts = [SimHost(f"h{i}") for i in range(replicas)]
        for exec_index, per_query in enumerate(costs):
            host = hosts[exec_index % replicas]
            for cost in per_query:
                host.charge(cost)
        return max(h.timeline.busy_until for h in hosts)

    @pytest.mark.parametrize("replicas", [1, 2, 4])
    def test_des_matches_replay_cpu_bound(self, replicas):
        # In the CPU-bound regime (no transfer cost) the two independent
        # models must agree exactly: the makespan is each host's summed
        # work, regardless of client-side serialization, because every
        # host always has >= 2 executions feeding it.
        costs = self._costs(num_executions=16, queries=10)
        des = simulate_scalability_des(costs, replicas, latency_s=0.0)
        replay = self._replay_makespan(costs, replicas)
        assert des == pytest.approx(replay, rel=1e-9)

    @pytest.mark.parametrize("replicas", [1, 2])
    def test_des_with_transfers_is_within_replay_bound(self, replicas):
        # With per-query transfers the replay (which charges transfer to
        # the serving host) is an upper bound on the pipelined DES, and
        # the gap is at most the total transfer time.
        network = NetworkModel()
        costs = self._costs(num_executions=16, queries=10)
        transfer = network.transfer_time(0)
        des = simulate_scalability_des(costs, replicas)
        hosts = [SimHost(f"h{i}") for i in range(replicas)]
        for exec_index, per_query in enumerate(costs):
            for cost in per_query:
                hosts[exec_index % replicas].charge(cost + transfer)
        replay_upper = max(h.timeline.busy_until for h in hosts)
        assert des <= replay_upper + 1e-9
        total_transfers = sum(len(q) for q in costs) * transfer
        assert replay_upper - des <= total_transfers / replicas + 1e-9

    def test_des_speedup_near_two(self):
        costs = self._costs(num_executions=32, queries=10)
        one = simulate_scalability_des(costs, 1)
        two = simulate_scalability_des(costs, 2)
        assert one / two == pytest.approx(2.0, abs=0.15)

    def test_des_shared_network_collapse(self):
        # SMG98-sized responses on a shared link: distribution stops helping,
        # independently confirming ablation A4's conclusion.
        costs = self._costs(num_executions=16, queries=5)
        kwargs = dict(response_bytes=500_000, shared_network=True)
        one = simulate_scalability_des(costs, 1, **kwargs)
        two = simulate_scalability_des(costs, 2, **kwargs)
        assert one / two == pytest.approx(1.0, abs=0.1)

    def test_des_dedicated_links_do_not_collapse(self):
        costs = self._costs(num_executions=16, queries=5)
        kwargs = dict(response_bytes=500_000, shared_network=False)
        one = simulate_scalability_des(costs, 1, **kwargs)
        two = simulate_scalability_des(costs, 2, **kwargs)
        assert one / two == pytest.approx(2.0, abs=0.25)

    @given(st.integers(2, 6), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_makespan_never_worse_with_more_replicas(self, executions, queries):
        costs = [[0.001] * queries for _ in range(executions)]
        one = simulate_scalability_des(costs, 1)
        two = simulate_scalability_des(costs, 2)
        assert two <= one + 1e-9
