"""RDBMS wrappers (the Figure 4 case, against minidb instead of JDBC).

Each wrapper issues SQL through the DB-API cursor — the reproduction of
``executeQuery("SELECT id FROM information")`` — and converts result rows
into PPerfGrid types.
"""

from __future__ import annotations

from repro.core.semantic import (
    UNDEFINED_TYPE,
    AggregateRecord,
    MetricStats,
    PerformanceResult,
    StoreStats,
)
from repro.mapping.base import ApplicationWrapper, ExecutionWrapper, MappingError
from repro.minidb import Connection, Database, connect

_SQL_OPS = {"=": "=", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _value_bounds_sql(expr: str, min_value: float | None, max_value: float | None):
    """WHERE fragments (and params) filtering *expr* to [min, max]."""
    clauses: list[str] = []
    params: list[float] = []
    if min_value is not None:
        clauses.append(f"({expr}) >= ?")
        params.append(min_value)
    if max_value is not None:
        clauses.append(f"({expr}) <= ?")
        params.append(max_value)
    return clauses, params


class _Bucket:
    """Combinable aggregation state shared by the SQL push-down paths."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = 0.0
        self.maximum = 0.0

    def absorb(self, count: int, total: float, minimum: float, maximum: float) -> None:
        if count <= 0:
            return
        if self.count == 0:
            self.minimum, self.maximum = minimum, maximum
        else:
            self.minimum = min(self.minimum, minimum)
            self.maximum = max(self.maximum, maximum)
        self.count += count
        self.total += total


def _bucket_records(buckets: dict[str, _Bucket]) -> list[AggregateRecord]:
    return [
        AggregateRecord(key, b.count, b.total, b.minimum, b.maximum)
        for key, b in sorted(buckets.items())
        if b.count > 0
    ]


def _sql_value(value: str, numeric: bool) -> object:
    if not numeric:
        return value
    try:
        f = float(value)
    except ValueError as exc:
        raise MappingError(f"attribute expects a number, got {value!r}") from exc
    return int(f) if f.is_integer() else f


def _type_matches(requested: str, actual: str) -> bool:
    return requested in (UNDEFINED_TYPE, "", actual)


# ------------------------------------------------------------------- HPL


class HplRdbmsWrapper(ApplicationWrapper):
    """HPL in a single relational table (``hpl_runs``)."""

    result_type = "hpl"
    NUMERIC_ATTRS = frozenset({"n", "nb", "p", "q", "numprocs"})
    ATTRIBUTES = ("rundate", "n", "nb", "p", "q", "numprocs", "machine")
    METRICS = ("gflops", "runtimesec", "resid")
    FOCI = ("/Run",)

    def __init__(self, database: Database) -> None:
        self.conn: Connection = connect(database)

    def get_app_info(self) -> list[tuple[str, str]]:
        count = self.conn.execute("SELECT COUNT(*) FROM hpl_runs").scalar()
        return [
            ("name", "HPL"),
            (
                "description",
                "HPL - A Portable Implementation of the High-Performance "
                "Linpack Benchmark for Distributed-Memory Computers",
            ),
            ("version", "1.0"),
            ("executions", str(count)),
        ]

    def get_exec_query_params(self) -> dict[str, list[str]]:
        params: dict[str, list[str]] = {}
        cursor = self.conn.cursor()
        for attr in self.ATTRIBUTES:
            cursor.execute(f"SELECT DISTINCT {attr} FROM hpl_runs ORDER BY {attr}")
            params[attr] = [str(row[0]) for row in cursor.fetchall()]
        return params

    def get_all_exec_ids(self) -> list[str]:
        cursor = self.conn.execute("SELECT runid FROM hpl_runs ORDER BY runid")
        return [str(row[0]) for row in cursor.fetchall()]

    def get_exec_ids(self, attribute: str, value: str, operator: str = "=") -> list[str]:
        self.check_operator(operator)
        attr = attribute.lower()
        if attr == "execid":
            attr = "runid"  # uniform alias: every store answers execid queries
        if attr == "runid":
            pass
        elif attr not in self.ATTRIBUTES:
            raise MappingError(f"unknown attribute {attribute!r} for HPL")
        numeric = attr in self.NUMERIC_ATTRS or attr == "runid"
        cursor = self.conn.execute(
            f"SELECT runid FROM hpl_runs WHERE {attr} {_SQL_OPS[operator]} ? ORDER BY runid",
            [_sql_value(value, numeric)],
        )
        return [str(row[0]) for row in cursor.fetchall()]

    def execution(self, exec_id: str) -> "HplRdbmsExecutionWrapper":
        cursor = self.conn.execute(
            "SELECT runtimesec FROM hpl_runs WHERE runid = ?", [int(exec_id)]
        )
        row = cursor.fetchone()
        if row is None:
            raise MappingError(f"no HPL execution {exec_id!r}")
        return HplRdbmsExecutionWrapper(self.conn, int(exec_id), float(row[0]))

    def get_stats(self) -> StoreStats:
        """One SQL aggregate per metric: exact counts and value ranges.

        ``get_pr`` renders one ``/Run`` result per run per metric, so the
        per-metric row count is the execution count and the value range
        is the column MIN/MAX — exact, hence trivially conservative.
        The metric columns are also the complete row sets, so one column
        scan per metric builds tier-0 sketches honouring the exactness
        contract.
        """
        from repro.fedquery.sketch import sketches_from_values

        count = int(self.conn.execute("SELECT COUNT(*) FROM hpl_runs").scalar() or 0)
        metrics = []
        scanned: dict[str, list[float]] = {}
        for metric in self.METRICS:
            row = self.conn.execute(
                f"SELECT MIN({metric}), MAX({metric}) FROM hpl_runs"
            ).fetchone()
            scanned[metric] = [
                float(value_row[0])
                for value_row in self.conn.execute(
                    f"SELECT {metric} FROM hpl_runs"
                ).fetchall()
            ]
            metrics.append(
                MetricStats(
                    metric=metric,
                    rows=count,
                    minimum=float(row[0]) if count and row and row[0] is not None else 0.0,
                    maximum=float(row[1]) if count and row and row[1] is not None else 0.0,
                )
            )
        end = self.conn.execute("SELECT MAX(runtimesec) FROM hpl_runs").scalar()
        return StoreStats(
            executions=count,
            start=0.0,
            end=float(end) if end is not None else 0.0,
            foci=tuple(self.FOCI),
            types=(self.result_type,),
            metrics=tuple(metrics),
            sketches=sketches_from_values(scanned),
            distincts=self.attribute_distincts(),
        )


class HplRdbmsExecutionWrapper(ExecutionWrapper):
    """One HPL run: scalar metrics over the whole-run focus ``/Run``."""

    def __init__(self, conn: Connection, runid: int, runtimesec: float) -> None:
        self.conn = conn
        self.runid = runid
        self.runtimesec = runtimesec

    def _refresh_runtime(self) -> float:
        """Re-read the run's duration — the store may be live-updated.

        (Caching stale durations here once made ``announce_update``
        republish outdated time-range SDEs; the Data Layer is the source
        of truth, the wrapper holds no state worth trusting.)
        """
        value = self.conn.execute(
            "SELECT runtimesec FROM hpl_runs WHERE runid = ?", [self.runid]
        ).scalar()
        if value is None:
            raise MappingError(f"HPL execution {self.runid} disappeared")
        self.runtimesec = float(value)
        return self.runtimesec

    def get_info(self) -> list[tuple[str, str]]:
        cursor = self.conn.execute("SELECT * FROM hpl_runs WHERE runid = ?", [self.runid])
        row = cursor.fetchone()
        assert row is not None and cursor.description is not None
        return [(desc[0], str(value)) for desc, value in zip(cursor.description, row)]

    def get_foci(self) -> list[str]:
        return list(HplRdbmsWrapper.FOCI)

    def get_metrics(self) -> list[str]:
        return sorted(HplRdbmsWrapper.METRICS)

    def get_types(self) -> list[str]:
        return [HplRdbmsWrapper.result_type]

    def get_time_start_end(self) -> tuple[float, float]:
        return (0.0, self._refresh_runtime())

    def get_pr(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
    ) -> list[PerformanceResult]:
        if not _type_matches(result_type, HplRdbmsWrapper.result_type):
            return []
        if metric not in HplRdbmsWrapper.METRICS:
            raise MappingError(f"unknown HPL metric {metric!r}")
        results: list[PerformanceResult] = []
        for focus in foci:
            if focus != "/Run":
                continue
            cursor = self.conn.execute(
                f"SELECT {metric} FROM hpl_runs WHERE runid = ?", [self.runid]
            )
            row = cursor.fetchone()
            if row is None:
                continue
            results.append(
                PerformanceResult(
                    metric=metric,
                    focus=focus,
                    result_type=HplRdbmsWrapper.result_type,
                    start=max(0.0, start),
                    end=min(self.runtimesec, end) if end > 0 else self.runtimesec,
                    value=float(row[0]),
                )
            )
        return results

    def get_pr_aggregate(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
        min_value: float | None = None,
        max_value: float | None = None,
        group_by: str = "",
    ) -> list[AggregateRecord]:
        """SQL push-down: the value filter runs inside minidb's WHERE."""
        if group_by not in ("", "focus"):
            raise MappingError(f"unsupported aggregate group_by {group_by!r}")
        if not _type_matches(result_type, HplRdbmsWrapper.result_type):
            return []
        if metric not in HplRdbmsWrapper.METRICS:
            raise MappingError(f"unknown HPL metric {metric!r}")
        if "/Run" not in foci:
            return []
        where = ["runid = ?"]
        params: list[object] = [self.runid]
        clauses, bound_params = _value_bounds_sql(metric, min_value, max_value)
        where.extend(clauses)
        params.extend(bound_params)
        row = self.conn.execute(
            f"SELECT COUNT(*), SUM({metric}), MIN({metric}), MAX({metric}) "
            f"FROM hpl_runs WHERE {' AND '.join(where)}",
            params,
        ).fetchone()
        assert row is not None
        count = int(row[0])
        if count == 0:
            return []
        group = "/Run" if group_by == "focus" else ""
        return [AggregateRecord(group, count, float(row[1]), float(row[2]), float(row[3]))]

    def get_stats(self) -> StoreStats:
        """One row read: each metric is a single scalar for this run."""
        from repro.fedquery.sketch import distincts_from_values, sketches_from_values

        row = self.conn.execute(
            "SELECT gflops, runtimesec, resid FROM hpl_runs WHERE runid = ?",
            [self.runid],
        ).fetchone()
        values = dict(zip(HplRdbmsWrapper.METRICS, row)) if row is not None else {}
        metrics = tuple(
            MetricStats(
                metric=metric,
                rows=1 if metric in values else 0,
                minimum=float(values.get(metric, 0.0)),
                maximum=float(values.get(metric, 0.0)),
            )
            for metric in HplRdbmsWrapper.METRICS
        )
        return StoreStats(
            executions=1,
            start=0.0,
            end=float(values.get("runtimesec", 0.0)),
            foci=tuple(HplRdbmsWrapper.FOCI),
            types=(HplRdbmsWrapper.result_type,),
            metrics=metrics,
            sketches=sketches_from_values(
                {metric: [float(value)] for metric, value in values.items()}
            ),
            distincts=distincts_from_values({"exec": [str(self.runid)]}),
        )


# ----------------------------------------------------------------- SMG98


class Smg98RdbmsWrapper(ApplicationWrapper):
    """SMG98 Vampir trace in five relational tables."""

    result_type = "vampir"
    NUMERIC_ATTRS = frozenset({"numprocs", "nx", "ny", "nz"})
    ATTRIBUTES = ("rundate", "numprocs", "nx", "ny", "nz")
    CODE_METRICS = ("time_spent", "func_calls")
    MESSAGE_METRICS = ("msg_count", "msg_bytes", "msg_deliv_time")

    def __init__(self, database: Database) -> None:
        self.conn: Connection = connect(database)

    def get_app_info(self) -> list[tuple[str, str]]:
        count = self.conn.execute("SELECT COUNT(*) FROM executions").scalar()
        return [
            ("name", "SMG98"),
            (
                "description",
                "SMG98 - a semicoarsening multigrid solver; Vampir trace data",
            ),
            ("version", "1998"),
            ("executions", str(count)),
        ]

    def get_exec_query_params(self) -> dict[str, list[str]]:
        params: dict[str, list[str]] = {}
        cursor = self.conn.cursor()
        for attr in self.ATTRIBUTES:
            cursor.execute(f"SELECT DISTINCT {attr} FROM executions ORDER BY {attr}")
            params[attr] = [str(row[0]) for row in cursor.fetchall()]
        return params

    def get_all_exec_ids(self) -> list[str]:
        cursor = self.conn.execute("SELECT execid FROM executions ORDER BY execid")
        return [str(row[0]) for row in cursor.fetchall()]

    def get_exec_ids(self, attribute: str, value: str, operator: str = "=") -> list[str]:
        self.check_operator(operator)
        attr = attribute.lower()
        if attr != "execid" and attr not in self.ATTRIBUTES:
            raise MappingError(f"unknown attribute {attribute!r} for SMG98")
        numeric = attr in self.NUMERIC_ATTRS or attr == "execid"
        cursor = self.conn.execute(
            f"SELECT execid FROM executions WHERE {attr} {_SQL_OPS[operator]} ? ORDER BY execid",
            [_sql_value(value, numeric)],
        )
        return [str(row[0]) for row in cursor.fetchall()]

    def execution(self, exec_id: str) -> "Smg98ExecutionWrapper":
        cursor = self.conn.execute(
            "SELECT runtime, numprocs FROM executions WHERE execid = ?", [int(exec_id)]
        )
        row = cursor.fetchone()
        if row is None:
            raise MappingError(f"no SMG98 execution {exec_id!r}")
        return Smg98ExecutionWrapper(self.conn, int(exec_id), float(row[0]), int(row[1]))

    def get_stats(self) -> StoreStats:
        """A handful of SQL aggregates instead of a trace scan.

        Ranges are conservative supersets because ``get_pr`` derives
        values: ``/Process`` foci return per-function *sums* of interval
        durations (bounded above by the total duration sum), ``func_calls``
        returns per-rank counts (bounded by the interval count), and
        ``msg_count``/``msg_bytes`` return one per-execution total each
        (bounded by the table-wide totals, and present even when zero —
        hence their row count is the execution count, not the message
        count).

        Deliberately publishes *no* metric sketches: every metric's
        ``get_pr`` values are derived (sums/counts over the trace), so
        building an exact sketch would cost the very derivation scan
        stats exist to avoid.  The tier-0 planner therefore falls back
        to push-down for SMG98 members — the designed mixed-tier case.
        """
        from dataclasses import replace

        return replace(
            _smg98_stats(self.conn, execid=None),
            distincts=self.attribute_distincts(),
        )


def _smg98_stats(conn: Connection, execid: int | None) -> StoreStats:
    """Shared SMG98 stats query, optionally scoped to one execution."""
    where = "" if execid is None else " WHERE execid = ?"
    params: list[object] = [] if execid is None else [execid]
    if execid is None:
        execs = int(conn.execute("SELECT COUNT(*) FROM executions").scalar() or 0)
        runtime = conn.execute("SELECT MAX(runtime) FROM executions").scalar()
        ranks = conn.execute("SELECT MAX(numprocs) FROM executions").scalar()
    else:
        row = conn.execute(
            "SELECT runtime, numprocs FROM executions WHERE execid = ?", [execid]
        ).fetchone()
        execs = 1 if row is not None else 0
        runtime = row[0] if row is not None else None
        ranks = row[1] if row is not None else None
    dur = conn.execute(
        "SELECT COUNT(*), MIN(end_ts - start_ts), SUM(end_ts - start_ts), "
        f"MAX(end_ts - start_ts) FROM intervals{where}",
        params,
    ).fetchone()
    assert dur is not None
    n_intervals = int(dur[0])
    dur_min = float(dur[1]) if dur[1] is not None else 0.0
    dur_sum = float(dur[2]) if dur[2] is not None else 0.0
    dur_max = float(dur[3]) if dur[3] is not None else 0.0
    msg = conn.execute(
        "SELECT COUNT(*), MIN(recv_ts - send_ts), MAX(recv_ts - send_ts), "
        f"SUM(nbytes) FROM messages{where}",
        params,
    ).fetchone()
    assert msg is not None
    n_messages = int(msg[0])
    deliv_min = float(msg[1]) if msg[1] is not None else 0.0
    deliv_max = float(msg[2]) if msg[2] is not None else 0.0
    bytes_sum = float(msg[3]) if msg[3] is not None else 0.0
    functions = conn.execute("SELECT grp, name FROM functions ORDER BY grp, name").fetchall()
    foci = [f"/Code/{grp}/{name}" for grp, name in functions]
    foci.extend(f"/Process/{rank}" for rank in range(int(ranks or 0)))
    foci.append("/Messages")
    metrics = (
        # /Code foci: per-interval durations; /Process foci: per-function
        # SUMS of durations — so the max must cover the total sum.
        MetricStats("func_calls", n_intervals, 0.0, float(n_intervals)),
        MetricStats(
            "msg_bytes", execs, 0.0, max(0.0, bytes_sum)
        ),
        MetricStats("msg_count", execs, 0.0, float(n_messages)),
        MetricStats(
            "msg_deliv_time", n_messages, min(0.0, deliv_min), max(0.0, deliv_max)
        ),
        MetricStats(
            "time_spent", n_intervals, min(0.0, dur_min), max(dur_max, dur_sum)
        ),
    )
    return StoreStats(
        executions=execs,
        start=0.0,
        end=float(runtime) if runtime is not None else 0.0,
        foci=tuple(foci),
        types=(Smg98RdbmsWrapper.result_type,),
        metrics=metrics,
    )


class Smg98ExecutionWrapper(ExecutionWrapper):
    """One SMG98 run.

    ``get_pr`` semantics by focus shape:

    * ``/Code/<grp>/<name>`` + ``time_spent`` — one PR *per interval* in
      the window (trace granularity; this is what makes SMG98 transfers
      the largest, as in Table 4);
    * ``/Code/<grp>/<name>`` + ``func_calls`` — one PR per process rank
      (call counts);
    * ``/Process/<rank>`` + ``time_spent`` / ``func_calls`` — one PR per
      function for that rank;
    * ``/Messages`` + msg metrics — aggregate count/bytes, or one PR per
      message for ``msg_deliv_time``.
    """

    def __init__(self, conn: Connection, execid: int, runtime: float, numprocs: int) -> None:
        self.conn = conn
        self.execid = execid
        self.runtime = runtime
        self.numprocs = numprocs

    def get_info(self) -> list[tuple[str, str]]:
        cursor = self.conn.execute(
            "SELECT * FROM executions WHERE execid = ?", [self.execid]
        )
        row = cursor.fetchone()
        assert row is not None and cursor.description is not None
        return [(desc[0], str(value)) for desc, value in zip(cursor.description, row)]

    def get_foci(self) -> list[str]:
        cursor = self.conn.execute("SELECT grp, name FROM functions ORDER BY grp, name")
        foci = [f"/Code/{grp}/{name}" for grp, name in cursor.fetchall()]
        foci.extend(f"/Process/{rank}" for rank in range(self.numprocs))
        foci.append("/Messages")
        return foci

    def get_metrics(self) -> list[str]:
        return sorted(Smg98RdbmsWrapper.CODE_METRICS + Smg98RdbmsWrapper.MESSAGE_METRICS)

    def get_types(self) -> list[str]:
        return [Smg98RdbmsWrapper.result_type]

    def get_time_start_end(self) -> tuple[float, float]:
        return (0.0, self.runtime)

    def _window(self, start: float, end: float) -> tuple[float, float]:
        hi = self.runtime if end <= 0 else min(end, self.runtime)
        return (max(0.0, start), hi)

    def get_pr(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
    ) -> list[PerformanceResult]:
        if not _type_matches(result_type, Smg98RdbmsWrapper.result_type):
            return []
        known = Smg98RdbmsWrapper.CODE_METRICS + Smg98RdbmsWrapper.MESSAGE_METRICS
        if metric not in known:
            raise MappingError(f"unknown SMG98 metric {metric!r}")
        lo, hi = self._window(start, end)
        results: list[PerformanceResult] = []
        for focus in foci:
            if focus.startswith("/Code/"):
                results.extend(self._code_focus(metric, focus, lo, hi))
            elif focus.startswith("/Process/"):
                results.extend(self._process_focus(metric, focus, lo, hi))
            elif focus == "/Messages":
                results.extend(self._message_focus(metric, focus, lo, hi))
            else:
                raise MappingError(f"unknown SMG98 focus {focus!r}")
        return results

    def get_pr_aggregate(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
        min_value: float | None = None,
        max_value: float | None = None,
        group_by: str = "",
    ) -> list[AggregateRecord]:
        """SQL push-down for the trace-granularity metrics.

        ``time_spent`` on ``/Code`` foci and ``msg_deliv_time`` on
        ``/Messages`` — the payloads that dominate Table 4 — reduce to a
        single ``SELECT COUNT/SUM/MIN/MAX`` with the value filter in the
        ``WHERE`` clause, so thousands of interval rows never leave the
        store.  Shapes minidb cannot express in one statement (per-rank
        subaggregates) fall back to the generic Mapping-Layer reduction,
        which is still server-side.
        """
        if group_by not in ("", "focus"):
            raise MappingError(f"unsupported aggregate group_by {group_by!r}")
        if not _type_matches(result_type, Smg98RdbmsWrapper.result_type):
            return []
        known = Smg98RdbmsWrapper.CODE_METRICS + Smg98RdbmsWrapper.MESSAGE_METRICS
        if metric not in known:
            raise MappingError(f"unknown SMG98 metric {metric!r}")
        lo, hi = self._window(start, end)
        buckets: dict[str, _Bucket] = {}

        def absorb(key: str, count: int, total: float, mn: float, mx: float) -> None:
            buckets.setdefault(key, _Bucket()).absorb(count, total, mn, mx)

        for focus in foci:
            key = focus if group_by == "focus" else ""
            if focus.startswith("/Code/") and metric == "time_spent":
                parts = focus.split("/")
                if len(parts) != 4:
                    raise MappingError(f"bad /Code focus {focus!r}")
                _, _, grp, name = parts
                expr = "i.end_ts - i.start_ts"
                where = [
                    "i.execid = ?", "f.grp = ?", "f.name = ?",
                    "i.start_ts >= ?", "i.end_ts <= ?",
                ]
                params: list[object] = [self.execid, grp, name, lo, hi]
                clauses, bound_params = _value_bounds_sql(expr, min_value, max_value)
                where.extend(clauses)
                params.extend(bound_params)
                row = self.conn.execute(
                    f"SELECT COUNT(*), SUM({expr}), MIN({expr}), MAX({expr}) "
                    "FROM intervals i JOIN functions f ON i.funcid = f.funcid "
                    f"WHERE {' AND '.join(where)}",
                    params,
                ).fetchone()
                assert row is not None
                if int(row[0]):
                    absorb(key, int(row[0]), float(row[1]), float(row[2]), float(row[3]))
            elif focus == "/Messages" and metric == "msg_deliv_time" and group_by != "focus":
                # Focus grouping cannot use this shape: delivery-time
                # results carry per-message foci (/Messages/<snd>-<rcv>),
                # so those buckets come from the generic path below.
                expr = "recv_ts - send_ts"
                where = ["execid = ?", "send_ts >= ?", "recv_ts <= ?"]
                params = [self.execid, lo, hi]
                clauses, bound_params = _value_bounds_sql(expr, min_value, max_value)
                where.extend(clauses)
                params.extend(bound_params)
                row = self.conn.execute(
                    f"SELECT COUNT(*), SUM({expr}), MIN({expr}), MAX({expr}) "
                    f"FROM messages WHERE {' AND '.join(where)}",
                    params,
                ).fetchone()
                assert row is not None
                if int(row[0]):
                    absorb(key, int(row[0]), float(row[1]), float(row[2]), float(row[3]))
            else:
                # Per-rank / per-function subaggregates need a derived
                # table; reduce those foci through the generic path.
                for record in super().get_pr_aggregate(
                    metric, [focus], start, end, result_type,
                    min_value, max_value, group_by,
                ):
                    absorb(record.group, record.count, record.total,
                           record.minimum, record.maximum)
        return _bucket_records(buckets)

    def get_stats(self) -> StoreStats:
        """Per-execution stats via the shared SQL aggregates (no scan)."""
        return _smg98_stats(self.conn, execid=self.execid)

    def _code_focus(
        self, metric: str, focus: str, lo: float, hi: float
    ) -> list[PerformanceResult]:
        parts = focus.split("/")
        if len(parts) != 4:
            raise MappingError(f"bad /Code focus {focus!r}")
        _, _, grp, name = parts
        if metric == "time_spent":
            cursor = self.conn.execute(
                "SELECT i.start_ts, i.end_ts FROM intervals i "
                "JOIN functions f ON i.funcid = f.funcid "
                "WHERE i.execid = ? AND f.grp = ? AND f.name = ? "
                "AND i.start_ts >= ? AND i.end_ts <= ? ORDER BY i.start_ts",
                [self.execid, grp, name, lo, hi],
            )
            return [
                PerformanceResult(metric, focus, "vampir", s, e, e - s)
                for s, e in cursor.fetchall()
            ]
        if metric == "func_calls":
            cursor = self.conn.execute(
                "SELECT p.rank, COUNT(*) FROM intervals i "
                "JOIN functions f ON i.funcid = f.funcid "
                "JOIN processes p ON i.procid = p.procid "
                "WHERE i.execid = ? AND f.grp = ? AND f.name = ? "
                "AND i.start_ts >= ? AND i.end_ts <= ? "
                "GROUP BY p.rank ORDER BY p.rank",
                [self.execid, grp, name, lo, hi],
            )
            return [
                PerformanceResult(metric, f"{focus}/rank/{rank}", "vampir", lo, hi, float(n))
                for rank, n in cursor.fetchall()
            ]
        return []  # message metrics do not apply to /Code foci

    def _process_focus(
        self, metric: str, focus: str, lo: float, hi: float
    ) -> list[PerformanceResult]:
        parts = focus.split("/")
        if len(parts) != 3:
            raise MappingError(f"bad /Process focus {focus!r}")
        try:
            rank = int(parts[2])
        except ValueError as exc:
            raise MappingError(f"bad /Process focus {focus!r}") from exc
        if metric == "time_spent":
            agg = "SUM(i.end_ts - i.start_ts)"
        elif metric == "func_calls":
            agg = "COUNT(*)"
        else:
            return []
        cursor = self.conn.execute(
            f"SELECT f.grp, f.name, {agg} FROM intervals i "
            "JOIN functions f ON i.funcid = f.funcid "
            "JOIN processes p ON i.procid = p.procid "
            "WHERE i.execid = ? AND p.rank = ? "
            "AND i.start_ts >= ? AND i.end_ts <= ? "
            "GROUP BY f.grp, f.name ORDER BY f.grp, f.name",
            [self.execid, rank, lo, hi],
        )
        return [
            PerformanceResult(metric, f"{focus}/Code/{grp}/{name}", "vampir", lo, hi, float(v))
            for grp, name, v in cursor.fetchall()
        ]

    def _message_focus(
        self, metric: str, focus: str, lo: float, hi: float
    ) -> list[PerformanceResult]:
        if metric == "msg_count":
            value = self.conn.execute(
                "SELECT COUNT(*) FROM messages WHERE execid = ? "
                "AND send_ts >= ? AND recv_ts <= ?",
                [self.execid, lo, hi],
            ).scalar()
            return [PerformanceResult(metric, focus, "vampir", lo, hi, float(value or 0))]
        if metric == "msg_bytes":
            value = self.conn.execute(
                "SELECT SUM(nbytes) FROM messages WHERE execid = ? "
                "AND send_ts >= ? AND recv_ts <= ?",
                [self.execid, lo, hi],
            ).scalar()
            return [PerformanceResult(metric, focus, "vampir", lo, hi, float(value or 0))]
        if metric == "msg_deliv_time":
            cursor = self.conn.execute(
                "SELECT sender, receiver, send_ts, recv_ts FROM messages "
                "WHERE execid = ? AND send_ts >= ? AND recv_ts <= ? ORDER BY send_ts",
                [self.execid, lo, hi],
            )
            return [
                PerformanceResult(
                    metric, f"{focus}/{snd}-{rcv}", "vampir", s, r, r - s
                )
                for snd, rcv, s, r in cursor.fetchall()
            ]
        return []


# ------------------------------------------------------------ PRESTA RMA


class PrestaRdbmsWrapper(ApplicationWrapper):
    """PRESTA RMA loaded into relational tables (future-work §7 variant)."""

    result_type = "presta"
    NUMERIC_ATTRS = frozenset({"numprocs", "tasks_per_node"})
    ATTRIBUTES = ("rundate", "numprocs", "tasks_per_node", "network")
    METRICS = ("latency_us", "bandwidth_mbps")

    def __init__(self, database: Database) -> None:
        self.conn: Connection = connect(database)

    def get_app_info(self) -> list[tuple[str, str]]:
        count = self.conn.execute("SELECT COUNT(*) FROM rma_execs").scalar()
        return [
            ("name", "PRESTA-RMA"),
            ("description", "PRESTA MPI Bandwidth and Latency Benchmark (RMA), relational"),
            ("executions", str(count)),
        ]

    def get_exec_query_params(self) -> dict[str, list[str]]:
        params: dict[str, list[str]] = {}
        cursor = self.conn.cursor()
        for attr in self.ATTRIBUTES:
            cursor.execute(f"SELECT DISTINCT {attr} FROM rma_execs ORDER BY {attr}")
            params[attr] = [str(row[0]) for row in cursor.fetchall()]
        return params

    def get_all_exec_ids(self) -> list[str]:
        cursor = self.conn.execute("SELECT execid FROM rma_execs ORDER BY execid")
        return [str(row[0]) for row in cursor.fetchall()]

    def get_exec_ids(self, attribute: str, value: str, operator: str = "=") -> list[str]:
        self.check_operator(operator)
        attr = attribute.lower()
        if attr != "execid" and attr not in self.ATTRIBUTES:
            raise MappingError(f"unknown attribute {attribute!r} for PRESTA")
        numeric = attr in self.NUMERIC_ATTRS or attr == "execid"
        cursor = self.conn.execute(
            f"SELECT execid FROM rma_execs WHERE {attr} {_SQL_OPS[operator]} ? ORDER BY execid",
            [_sql_value(value, numeric)],
        )
        return [str(row[0]) for row in cursor.fetchall()]

    def execution(self, exec_id: str) -> "PrestaRdbmsExecutionWrapper":
        cursor = self.conn.execute(
            "SELECT start_time, end_time FROM rma_execs WHERE execid = ?", [int(exec_id)]
        )
        row = cursor.fetchone()
        if row is None:
            raise MappingError(f"no PRESTA execution {exec_id!r}")
        return PrestaRdbmsExecutionWrapper(self.conn, int(exec_id), float(row[0]), float(row[1]))

    def get_stats(self) -> StoreStats:
        """Exact counts/ranges straight off ``rma_results``."""
        from dataclasses import replace

        return replace(
            _presta_rdbms_stats(self.conn, execid=None),
            distincts=self.attribute_distincts(),
        )


def _presta_rdbms_stats(conn: Connection, execid: int | None) -> StoreStats:
    """Shared PRESTA stats query, optionally scoped to one execution.

    ``get_pr`` renders one result per ``rma_results`` row per metric, so
    row counts and value ranges are exact column aggregates — and one
    column scan per metric yields the complete row set the tier-0
    sketches require.  Stats foci are the *query* foci (``/Op/<op>``,
    what ``get_foci`` returns), not the per-msgsize result foci.
    """
    from repro.fedquery.sketch import distincts_from_values, sketches_from_values

    where = "" if execid is None else " WHERE execid = ?"
    params: list[object] = [] if execid is None else [execid]
    if execid is None:
        execs = int(conn.execute("SELECT COUNT(*) FROM rma_execs").scalar() or 0)
        span = conn.execute("SELECT MIN(start_time), MAX(end_time) FROM rma_execs").fetchone()
    else:
        execs = 1
        span = conn.execute(
            "SELECT start_time, end_time FROM rma_execs WHERE execid = ?", [execid]
        ).fetchone()
    start = float(span[0]) if span is not None and span[0] is not None else 0.0
    end = float(span[1]) if span is not None and span[1] is not None else 0.0
    rows = int(conn.execute(f"SELECT COUNT(*) FROM rma_results{where}", params).scalar() or 0)
    metrics = []
    scanned: dict[str, list[float]] = {}
    for metric in PrestaRdbmsWrapper.METRICS:
        bounds = conn.execute(
            f"SELECT MIN({metric}), MAX({metric}) FROM rma_results{where}", params
        ).fetchone()
        scanned[metric] = [
            float(value_row[0])
            for value_row in conn.execute(
                f"SELECT {metric} FROM rma_results{where}", params
            ).fetchall()
        ]
        metrics.append(
            MetricStats(
                metric=metric,
                rows=rows,
                minimum=float(bounds[0]) if bounds and bounds[0] is not None else 0.0,
                maximum=float(bounds[1]) if bounds and bounds[1] is not None else 0.0,
            )
        )
    ops = conn.execute(f"SELECT DISTINCT op FROM rma_results{where} ORDER BY op", params)
    distinct_keys = {} if execid is None else {"exec": [str(execid)]}
    return StoreStats(
        executions=execs,
        start=start,
        end=end,
        foci=tuple(f"/Op/{row[0]}" for row in ops.fetchall()),
        types=(PrestaRdbmsWrapper.result_type,),
        metrics=tuple(metrics),
        sketches=sketches_from_values(scanned),
        distincts=distincts_from_values(distinct_keys),
    )


class PrestaRdbmsExecutionWrapper(ExecutionWrapper):
    """One PRESTA run (relational): per-message-size sweeps per operation."""

    def __init__(self, conn: Connection, execid: int, start: float, end: float) -> None:
        self.conn = conn
        self.execid = execid
        self.start_time = start
        self.end_time = end

    def get_info(self) -> list[tuple[str, str]]:
        cursor = self.conn.execute("SELECT * FROM rma_execs WHERE execid = ?", [self.execid])
        row = cursor.fetchone()
        assert row is not None and cursor.description is not None
        return [(desc[0], str(value)) for desc, value in zip(cursor.description, row)]

    def get_foci(self) -> list[str]:
        cursor = self.conn.execute(
            "SELECT DISTINCT op FROM rma_results WHERE execid = ? ORDER BY op", [self.execid]
        )
        return [f"/Op/{row[0]}" for row in cursor.fetchall()]

    def get_metrics(self) -> list[str]:
        return sorted(PrestaRdbmsWrapper.METRICS)

    def get_types(self) -> list[str]:
        return [PrestaRdbmsWrapper.result_type]

    def get_time_start_end(self) -> tuple[float, float]:
        return (self.start_time, self.end_time)

    def get_pr(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
    ) -> list[PerformanceResult]:
        if not _type_matches(result_type, PrestaRdbmsWrapper.result_type):
            return []
        if metric not in PrestaRdbmsWrapper.METRICS:
            raise MappingError(f"unknown PRESTA metric {metric!r}")
        lo = max(self.start_time, start)
        hi = self.end_time if end <= 0 else min(self.end_time, end)
        results: list[PerformanceResult] = []
        for focus in foci:
            if not focus.startswith("/Op/"):
                raise MappingError(f"unknown PRESTA focus {focus!r}")
            op = focus[len("/Op/") :]
            cursor = self.conn.execute(
                f"SELECT msgsize, {metric} FROM rma_results "
                "WHERE execid = ? AND op = ? ORDER BY msgsize",
                [self.execid, op],
            )
            for size, value in cursor.fetchall():
                results.append(
                    PerformanceResult(
                        metric, f"{focus}/msgsize/{size}", "presta", lo, hi, float(value)
                    )
                )
        return results

    def get_pr_aggregate(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
        min_value: float | None = None,
        max_value: float | None = None,
        group_by: str = "",
    ) -> list[AggregateRecord]:
        """SQL push-down; grouping by focus becomes a real SQL GROUP BY."""
        if group_by not in ("", "focus"):
            raise MappingError(f"unsupported aggregate group_by {group_by!r}")
        if not _type_matches(result_type, PrestaRdbmsWrapper.result_type):
            return []
        if metric not in PrestaRdbmsWrapper.METRICS:
            raise MappingError(f"unknown PRESTA metric {metric!r}")
        buckets: dict[str, _Bucket] = {}
        for focus in foci:
            if not focus.startswith("/Op/"):
                raise MappingError(f"unknown PRESTA focus {focus!r}")
            op = focus[len("/Op/") :]
            where = ["execid = ?", "op = ?"]
            params: list[object] = [self.execid, op]
            clauses, bound_params = _value_bounds_sql(metric, min_value, max_value)
            where.extend(clauses)
            params.extend(bound_params)
            aggs = f"COUNT(*), SUM({metric}), MIN({metric}), MAX({metric})"
            if group_by == "focus":
                # get_pr renders one result per message size, so the focus
                # grouping is a per-msgsize GROUP BY inside the store.
                cursor = self.conn.execute(
                    f"SELECT msgsize, {aggs} FROM rma_results "
                    f"WHERE {' AND '.join(where)} GROUP BY msgsize ORDER BY msgsize",
                    params,
                )
                for size, count, total, mn, mx in cursor.fetchall():
                    if int(count):
                        buckets.setdefault(
                            f"{focus}/msgsize/{size}", _Bucket()
                        ).absorb(int(count), float(total), float(mn), float(mx))
            else:
                row = self.conn.execute(
                    f"SELECT {aggs} FROM rma_results WHERE {' AND '.join(where)}",
                    params,
                ).fetchone()
                assert row is not None
                if int(row[0]):
                    buckets.setdefault("", _Bucket()).absorb(
                        int(row[0]), float(row[1]), float(row[2]), float(row[3])
                    )
        return _bucket_records(buckets)

    def get_stats(self) -> StoreStats:
        """Per-execution stats via the shared SQL aggregates."""
        return _presta_rdbms_stats(self.conn, execid=self.execid)
