"""FederationEngine.execute(stream=True): the bounded-memory query path.

The contract under test: a streamed raw query yields byte-identical rows
in byte-identical order to the bulk path, for any chunk size; global
operators (aggregates, ORDER BY) transparently fall back to the bulk
pipeline; member failures degrade the stream the way they degrade bulk
fan-outs; and only a fully drained, error-free stream is memoized in the
plan cache.  Satellite coverage rides along: per-execution stats deltas
on ``data_updated`` and the skipped-member-aware fan-out width.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core.semantic import PerformanceResult
from repro.experiments.common import build_synthetic_grid
from repro.fedquery import QueryError
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper

RAW_QUERY = "SELECT m"


def _rows(metric: str, count: int, base: float) -> list[PerformanceResult]:
    return [
        PerformanceResult(
            metric, "/R", "synthetic", float(i), float(i + 1), base + i * 1.5
        )
        for i in range(count)
    ]


@pytest.fixture()
def fedgrid():
    a = InMemoryWrapper(
        "A",
        [
            InMemoryExecution("0", {"numprocs": "2"}, _rows("m", 10, 100.0)),
            InMemoryExecution("1", {"numprocs": "4"}, _rows("m", 10, 200.0)),
        ],
    )
    b = InMemoryWrapper(
        "B",
        [
            InMemoryExecution(
                "0", {"numprocs": "8"}, _rows("m", 10, 300.0) + _rows("n", 5, 0.0)
            )
        ],
    )
    grid = build_synthetic_grid({"A": a, "B": b})
    engine = grid.deploy_federation()
    # force the cursor path: every remote execution streams, tiny chunks
    engine.stream_threshold_rows = 0
    engine.stream_chunk_rows = 5
    return grid, engine


def packs(rows) -> list[str]:
    return [row.pack() for row in rows]


class TestStreamedEqualsBulk:
    @pytest.mark.parametrize("chunk_rows", [1, 2, 7, 64])
    def test_byte_identical_for_any_chunk_size(self, fedgrid, chunk_rows):
        _, engine = fedgrid
        engine.stream_chunk_rows = chunk_rows
        with engine.execute(RAW_QUERY, stream=True) as streamed:
            streamed_rows = list(streamed)
        assert streamed.stats["chunkedCalls"] >= 1
        engine.invalidate_cache()
        bulk = engine.execute(RAW_QUERY)
        assert packs(streamed_rows) == packs(bulk.rows)
        assert len(streamed_rows) == 30

    def test_value_predicate_applies_client_side(self, fedgrid):
        _, engine = fedgrid
        text = "SELECT m WHERE value >= 300"
        streamed_rows = list(engine.execute(text, stream=True))
        engine.invalidate_cache()
        assert packs(streamed_rows) == packs(engine.execute(text).rows)
        assert all(row["value"] >= 300 for row in streamed_rows)

    def test_columns_and_completion_flags(self, fedgrid):
        _, engine = fedgrid
        streamed = engine.execute(RAW_QUERY, stream=True)
        assert streamed.complete is False
        rows = list(streamed)
        assert rows and streamed.complete is True
        assert list(streamed.columns) == list(rows[0].columns)

    def test_limit_early_stop_matches_bulk(self, fedgrid):
        _, engine = fedgrid
        text = "SELECT m LIMIT 3"
        streamed_rows = list(engine.execute(text, stream=True))
        assert len(streamed_rows) == 3
        engine.invalidate_cache()
        assert packs(streamed_rows) == packs(engine.execute(text).rows)


class TestGlobalOperatorFallback:
    def test_aggregate_streams_bulk_rows(self, fedgrid):
        _, engine = fedgrid
        text = "SELECT count(m), max(m) GROUP BY app"
        streamed_rows = list(engine.execute(text, stream=True))
        engine.invalidate_cache()
        bulk = engine.execute(text)
        assert packs(streamed_rows) == packs(bulk.rows)
        assert {row["app"] for row in streamed_rows} == {"A", "B"}

    def test_order_by_streams_bulk_rows(self, fedgrid):
        _, engine = fedgrid
        text = "SELECT m ORDER BY value DESC LIMIT 5"
        streamed_rows = list(engine.execute(text, stream=True))
        engine.invalidate_cache()
        assert packs(streamed_rows) == packs(engine.execute(text).rows)
        values = [row["value"] for row in streamed_rows]
        assert values == sorted(values, reverse=True)


class TestStreamMemoization:
    def test_full_drain_is_memoized(self, fedgrid):
        _, engine = fedgrid
        list(engine.execute(RAW_QUERY, stream=True))
        hot = engine.execute(RAW_QUERY)
        assert hot.cached is True
        rehot = engine.execute(RAW_QUERY, stream=True)
        assert rehot.cached is True
        assert packs(list(rehot)) == packs(hot.rows)

    def test_limit_stop_is_memoized(self, fedgrid):
        _, engine = fedgrid
        text = "SELECT m LIMIT 4"
        list(engine.execute(text, stream=True))
        assert engine.execute(text).cached is True

    def test_partial_drain_not_memoized(self, fedgrid):
        _, engine = fedgrid
        with engine.execute(RAW_QUERY, stream=True) as streamed:
            next(streamed)
            next(streamed)
        assert streamed.closed is True
        assert engine.execute(RAW_QUERY).cached is False

    def test_memoize_byte_budget_respected(self, fedgrid):
        _, engine = fedgrid
        engine.stream_memoize_max_bytes = 16  # a row is bigger than this
        rows = list(engine.execute(RAW_QUERY, stream=True))
        assert len(rows) == 30  # drain still completes...
        assert engine.execute(RAW_QUERY).cached is False  # ...uncached


class TestStreamDegradation:
    def test_mid_stream_member_failure_degrades(self, fedgrid, monkeypatch):
        grid, engine = fedgrid

        def broken(*args, **kwargs):
            raise RuntimeError("store connection lost")

        monkeypatch.setattr(grid.execution_service("B", "0"), "getPRChunked", broken)
        with engine.execute(RAW_QUERY, stream=True) as streamed:
            rows = list(streamed)
        # A's 20 rows survive; B's contribution is the degradation
        assert {row["app"] for row in rows} == {"A"}
        assert len(rows) == 20
        assert streamed.stats["errors"] == 1
        assert len(streamed.errors) == 1 and "store connection lost" in streamed.errors[0]
        # degraded results are never memoized
        assert engine.execute(RAW_QUERY).cached is False

    def test_all_members_failing_raises(self, fedgrid, monkeypatch):
        grid, engine = fedgrid

        def broken(*args, **kwargs):
            raise RuntimeError("down")

        for app, exec_id in (("A", "0"), ("A", "1"), ("B", "0")):
            monkeypatch.setattr(
                grid.execution_service(app, exec_id), "getPRChunked", broken
            )
        with pytest.raises(QueryError, match="member task"):
            list(engine.execute(RAW_QUERY, stream=True))


class TestQueryStreamOverSoap:
    def test_client_stream_matches_bulk(self, fedgrid):
        grid, engine = fedgrid
        with grid.client.query_stream(RAW_QUERY, max_rows=7) as it:
            streamed_rows = list(it)
        engine.invalidate_cache()
        assert packs(streamed_rows) == packs(engine.execute(RAW_QUERY).rows)

    def test_closing_client_iterator_releases_cursor(self, fedgrid):
        grid, _ = fedgrid
        it = grid.client.query_stream(RAW_QUERY, max_rows=2)
        next(it)
        it.close()
        # the server-side cursor is gone: further fetches fault, which the
        # closed iterator surfaces as plain exhaustion
        assert list(it) == []


class TestMemberStreamClose:
    """Satellite: ``close()`` wakes a blocked producer immediately.

    The old ``_enqueue`` retried a 50 ms ``queue.Full`` poll loop, so an
    early close slept out up to a full tick per member before the
    producer noticed.  The condition-signalled buffer wakes it at once.
    """

    def _blocked_stream(self):
        import threading

        from repro.fedquery.stream import MemberStream

        producing = threading.Event()

        def produce(stop):
            for i in range(1000):
                producing.set()
                yield [f"row-{i}"]

        stream = MemberStream("m", produce, chunk_depth=1)
        stream.start()
        assert producing.wait(timeout=5.0)
        return stream

    def test_close_wakes_blocked_producer_promptly(self):
        import time

        stream = self._blocked_stream()
        time.sleep(0.05)  # let the producer block on the full window
        start = time.monotonic()
        stream.close()
        elapsed = time.monotonic() - start
        assert not stream._thread.is_alive()  # producer exited, joined
        assert elapsed < 0.5, f"close took {elapsed * 1e3:.0f} ms"

    def test_next_row_after_close_returns_none(self):
        stream = self._blocked_stream()
        stream.close()
        assert stream.next_row() is None

    def test_consumer_blocked_on_empty_stream_woken_by_close(self):
        import threading
        import time

        from repro.fedquery.stream import MemberStream

        release = threading.Event()

        def produce(stop):
            release.wait(timeout=10.0)
            yield []

        stream = MemberStream("m", produce, chunk_depth=1)
        stream.start()
        got: list = []
        consumer = threading.Thread(
            target=lambda: got.append(stream.next_row()), daemon=True
        )
        consumer.start()
        time.sleep(0.05)  # consumer is parked on the empty buffer
        release.set()
        consumer.join(timeout=5.0)
        assert not consumer.is_alive()
        assert got == [None]
        stream.close()


class TestFanoutWidth:
    """Satellite: members the cost model skipped must not size the pool."""

    def _engine_with_fake_managers(self, fedgrid):
        _, engine = fedgrid
        engine.managers = {
            "A": SimpleNamespace(stats=lambda: {"replicas": 4}),
            "B": SimpleNamespace(stats=lambda: {"replicas": 16}),
        }
        return engine

    def test_only_participating_members_count(self, fedgrid):
        engine = self._engine_with_fake_managers(fedgrid)
        a_tasks = [SimpleNamespace(app="A") for _ in range(50)]
        # fanout_slots_per_replica (4, per-service dispatch) * A's 4 replicas
        assert engine._fanout_width(a_tasks) == 16
        mixed = a_tasks + [SimpleNamespace(app="B") for _ in range(50)]
        assert engine._fanout_width(mixed) == 32  # capped at FANOUT_CAP

    def test_unknown_provenance_falls_back_to_topology(self, fedgrid):
        engine = self._engine_with_fake_managers(fedgrid)
        bare = [SimpleNamespace() for _ in range(50)]  # no .app tag
        assert engine._fanout_width(bare) == 32

    def test_width_never_exceeds_task_count(self, fedgrid):
        engine = self._engine_with_fake_managers(fedgrid)
        assert engine._fanout_width([SimpleNamespace(app="A")]) == 1

    def test_max_workers_still_wins(self, fedgrid):
        engine = self._engine_with_fake_managers(fedgrid)
        engine.max_workers = 3
        assert engine._fanout_width([SimpleNamespace(app="A")] * 10) == 3


class TestStatsDeltas:
    """Satellite: data_updated refreshes only the touched execution's
    statistics contribution instead of refetching the whole member."""

    def _update_a0(self, grid, value: float) -> None:
        wrapper = grid.sites["A"].wrapper
        wrapper.executions_data[0].results.append(
            PerformanceResult("m", "/R", "synthetic", 50.0, 51.0, value)
        )
        assert grid.execution_service("A", "0").data_updated("ingest") == 1

    def test_delta_applied_and_counted(self, fedgrid):
        grid, engine = fedgrid
        engine.execute(RAW_QUERY)  # caches member stats
        assert engine.coherence_stats()["statsDeltas"] == 0
        self._update_a0(grid, 999.0)
        assert engine.coherence_stats()["statsInvalidations"] >= 1
        fresh = engine.execute(RAW_QUERY)
        assert fresh.cached is False
        assert any(row["value"] == 999.0 for row in fresh.rows)
        assert engine.coherence_stats()["statsDeltas"] >= 1

    def test_delta_keeps_planning_consistent(self, fedgrid):
        """The delta-refreshed stats must plan exactly like a refetch:
        a value range that only exists after the update must not be
        skipped by stale statistics."""
        grid, engine = fedgrid
        text = "SELECT m WHERE value >= 5000"
        assert engine.execute(text).rows == []
        self._update_a0(grid, 9999.0)
        engine.execute(RAW_QUERY)  # applies the delta
        assert engine.coherence_stats()["statsDeltas"] >= 1
        result = engine.execute(text)
        assert [row["value"] for row in result.rows] == [9999.0]

    def test_second_update_uses_per_exec_baseline(self, fedgrid):
        grid, engine = fedgrid
        engine.execute(RAW_QUERY)
        self._update_a0(grid, 1.0)
        engine.execute(RAW_QUERY)
        first = engine.coherence_stats()["statsDeltas"]
        self._update_a0(grid, 2.0)
        engine.execute(RAW_QUERY)
        assert engine.coherence_stats()["statsDeltas"] > first

    def test_delta_failure_falls_back_to_refetch(self, fedgrid, monkeypatch):
        grid, engine = fedgrid
        engine.execute(RAW_QUERY)
        self._update_a0(grid, 1.0)
        engine.execute(RAW_QUERY)  # establishes the per-exec baseline
        before = engine.coherence_stats()["statsDeltas"]

        def broken(*args, **kwargs):
            raise RuntimeError("transport glitch")

        monkeypatch.setattr(engine.members()["A"], "query_executions", broken)
        self._update_a0(grid, 4242.0)
        result = engine.execute(RAW_QUERY)  # whole-member refetch fallback
        assert any(row["value"] == 4242.0 for row in result.rows)
        assert engine.coherence_stats()["statsDeltas"] == before

    def test_deltas_disabled_reverts_to_drop(self, fedgrid):
        grid, engine = fedgrid
        engine.stats_deltas = False
        engine.execute(RAW_QUERY)
        self._update_a0(grid, 777.0)
        fresh = engine.execute(RAW_QUERY)
        assert any(row["value"] == 777.0 for row in fresh.rows)
        assert engine.coherence_stats()["statsDeltas"] == 0
        assert engine.coherence_stats()["statsInvalidations"] >= 1
