"""Tests for the Application and Execution Grid services over the wire."""

import pytest

from repro.core.semantic import UNDEFINED_TYPE, PerformanceResult
from repro.soap import SoapFault


@pytest.fixture(scope="module")
def hpl_app(shared_grid):
    return shared_grid.bind("HPL")


@pytest.fixture(scope="module")
def smg_app(shared_grid):
    return shared_grid.bind("SMG98")


class TestApplicationService:
    def test_app_info_pipe_format(self, hpl_app):
        raw = hpl_app.stub.getAppInfo()
        assert all("|" in record for record in raw)
        assert hpl_app.app_info()["name"] == "HPL"

    def test_num_execs(self, hpl_app, shared_grid):
        assert hpl_app.num_executions() == shared_grid.scale.hpl_executions

    def test_exec_query_params_format(self, hpl_app):
        raw = hpl_app.stub.getExecQueryParams()
        parsed = hpl_app.exec_query_params()
        assert len(raw) == len(parsed)
        assert "numprocs" in parsed
        assert all(parsed[attr] for attr in parsed)

    def test_get_all_execs_returns_gshs(self, hpl_app, shared_grid):
        handles = hpl_app.stub.getAllExecs()
        assert len(handles) == shared_grid.scale.hpl_executions
        assert all(h.startswith("ppg://") for h in handles)
        assert len(set(handles)) == len(handles)  # GSH uniqueness

    def test_get_execs_by_attribute(self, hpl_app):
        params = hpl_app.exec_query_params()
        value = params["numprocs"][0]
        executions = hpl_app.query_executions("numprocs", value)
        assert executions
        for execution in executions:
            assert execution.info()["numprocs"] == value

    def test_get_execs_operator_extension(self, hpl_app):
        lt = hpl_app.query_executions("numprocs", "16", "<")
        ge = hpl_app.query_executions("numprocs", "16", ">=")
        assert len(lt) + len(ge) == hpl_app.num_executions()

    def test_or_semantics_of_successive_queries(self, hpl_app):
        # "A group of subsequent queries would be similar to stringing
        # 'OR' terms together" (§5.3.1.2) — the panel dedups by GSH.
        from repro.core import ApplicationQueryPanel

        panel = ApplicationQueryPanel()
        panel.add_query(hpl_app, "numprocs", "16")
        panel.add_query(hpl_app, "numprocs", "16")  # duplicate query
        merged = panel.run_queries()
        assert len(merged) == len(hpl_app.query_executions("numprocs", "16"))

    def test_bad_attribute_is_fault(self, hpl_app):
        with pytest.raises(SoapFault):
            hpl_app.query_executions("bogus", "1")


class TestExecutionService:
    def test_discovery_operations(self, smg_app):
        execution = smg_app.all_executions()[0]
        assert "/Messages" in execution.foci()
        assert "time_spent" in execution.metrics()
        assert execution.types() == ["vampir"]
        start, end = execution.time_range()
        assert 0.0 == start < end

    def test_info_pipe_format(self, smg_app):
        execution = smg_app.all_executions()[0]
        info = execution.info()
        assert info["execid"] == "1"

    def test_get_pr_returns_packed_strings(self, smg_app):
        execution = smg_app.all_executions()[0]
        t0, t1 = execution.time_range()
        raw = execution.stub.getPR(
            "time_spent", ["/Code/SMG/smg_relax"], repr(t0), repr(t1), UNDEFINED_TYPE
        )
        assert raw
        parsed = [PerformanceResult.unpack(r) for r in raw]
        assert all(p.metric == "time_spent" for p in parsed)

    def test_get_pr_defaults_to_full_range(self, smg_app):
        execution = smg_app.all_executions()[0]
        explicit = execution.get_pr(
            "time_spent", ["/Code/SMG/smg_relax"], *execution.time_range()
        )
        defaulted = execution.get_pr("time_spent", ["/Code/SMG/smg_relax"])
        assert len(explicit) == len(defaulted)

    def test_get_pr_type_mismatch_empty(self, smg_app):
        execution = smg_app.all_executions()[0]
        assert execution.get_pr("time_spent", ["/Code/SMG/smg_relax"], result_type="hpl") == []

    def test_bad_time_bound_is_fault(self, smg_app):
        execution = smg_app.all_executions()[0]
        with pytest.raises(SoapFault):
            execution.stub.getPR("time_spent", ["/Code/SMG/smg_relax"], "zero", "1", "UNDEFINED")

    def test_unknown_metric_is_fault(self, smg_app):
        execution = smg_app.all_executions()[0]
        with pytest.raises(SoapFault):
            execution.get_pr("watts", ["/Messages"])

    def test_sdes_expose_discovery_data(self, smg_app):
        execution = smg_app.all_executions()[0]
        xml = execution.find_service_data("metrics")
        assert "time_spent" in xml
        xml = execution.find_service_data("xpath://serviceDataElement[@name='types']/value")
        assert "vampir" in xml

    def test_destroy_then_query_faults(self, fresh_grid):
        app = fresh_grid.bind("HPL")
        execution = app.all_executions()[0]
        execution.destroy()
        with pytest.raises(SoapFault):
            execution.metrics()


class TestExecutionCaching:
    def test_cache_hit_skips_mapping(self, fresh_grid):
        app = fresh_grid.bind("HPL")
        execution = app.all_executions()[0]
        mapping_timer = fresh_grid.environment.recorder.timer("mapping.getPR")
        execution.get_pr("gflops", ["/Run"])
        count_after_first = mapping_timer.count
        execution.get_pr("gflops", ["/Run"])
        assert mapping_timer.count == count_after_first  # no new mapping call

    def test_different_params_miss(self, fresh_grid):
        app = fresh_grid.bind("HPL")
        execution = app.all_executions()[0]
        mapping_timer = fresh_grid.environment.recorder.timer("mapping.getPR")
        execution.get_pr("gflops", ["/Run"])
        execution.get_pr("runtimesec", ["/Run"])
        assert mapping_timer.count == 2

    def test_announce_update_invalidates_cache(self, fresh_grid):
        app = fresh_grid.bind("HPL")
        execution = app.all_executions()[0]
        exec_id = execution.info()["runid"]
        before = execution.get_pr("gflops", ["/Run"])[0].value
        # Mutate the store under the service.
        fresh_grid.hpl_site.wrapper.conn.execute(
            "UPDATE hpl_runs SET gflops = ? WHERE runid = ?", [123.456, int(exec_id)]
        )
        # Cached value still served.
        assert execution.get_pr("gflops", ["/Run"])[0].value == before
        container = fresh_grid.environment.container_for("hpl.pdx.edu:8080")
        for path in container.service_paths():
            service = container.service_at(path)
            if getattr(service, "exec_id", None) == exec_id:
                service.announce_update("test")
        assert execution.get_pr("gflops", ["/Run"])[0].value == 123.456
