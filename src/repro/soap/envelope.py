"""SOAP envelope construction and parsing."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmlkit import Document, Element, QName, parse, serialize

SOAP_ENV_NS = "http://schemas.xmlsoap.org/soap/envelope/"

_ENVELOPE = QName(SOAP_ENV_NS, "Envelope")
_HEADER = QName(SOAP_ENV_NS, "Header")
_BODY = QName(SOAP_ENV_NS, "Body")


class SoapMessageError(ValueError):
    """Raised when bytes do not form a valid SOAP envelope."""


@dataclass
class SoapEnvelope:
    """A parsed or under-construction SOAP message.

    ``headers``: header entry elements (e.g. GSI signatures, routing info).
    ``body_entries``: body entry elements (RPC call or response or fault).
    """

    headers: list[Element] = field(default_factory=list)
    body_entries: list[Element] = field(default_factory=list)

    def to_element(self) -> Element:
        env = Element(_ENVELOPE)
        env.declare("soapenv", SOAP_ENV_NS)
        if self.headers:
            header = env.subelement(_HEADER)
            header.children.extend(self.headers)
        body = env.subelement(_BODY)
        body.children.extend(self.body_entries)
        return env

    def to_bytes(self) -> bytes:
        doc = Document(self.to_element())
        return serialize(doc).encode("utf-8")

    def first_body_entry(self) -> Element:
        if not self.body_entries:
            raise SoapMessageError("SOAP body is empty")
        return self.body_entries[0]


def build_envelope(body_entry: Element, headers: list[Element] | None = None) -> SoapEnvelope:
    """Build an envelope around one body entry."""
    return SoapEnvelope(headers=list(headers or []), body_entries=[body_entry])


def parse_envelope(data: bytes | str) -> SoapEnvelope:
    """Parse raw bytes into a :class:`SoapEnvelope`, validating structure."""
    try:
        doc = parse(data)
    except ValueError as exc:
        raise SoapMessageError(f"malformed XML: {exc}") from exc
    root = doc.root
    if root.tag != _ENVELOPE:
        raise SoapMessageError(f"root element is {root.tag}, expected soapenv:Envelope")
    headers: list[Element] = []
    body: Element | None = None
    for child in root.iter_elements():
        if child.tag == _HEADER:
            headers = list(child.iter_elements())
        elif child.tag == _BODY:
            if body is not None:
                raise SoapMessageError("multiple soapenv:Body elements")
            body = child
        else:
            raise SoapMessageError(f"unexpected envelope child {child.tag}")
    if body is None:
        raise SoapMessageError("missing soapenv:Body")
    return SoapEnvelope(headers=headers, body_entries=list(body.iter_elements()))
