"""Transport boundary between client stubs and service containers.

Everything above this layer (stubs, SOAP, dispatch) is identical whether
messages cross a real network or not; the transport only moves bytes from
an endpoint string to a registered handler and back.  The loopback
transport is the workhorse for Tables 4/5 — real serialization, real
parsing, real dispatch, with byte counts recorded per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.simnet.metrics import Recorder

#: A service container's ingress: request bytes -> response bytes.
RequestHandler = Callable[[str, bytes], bytes]


class TransportError(RuntimeError):
    """Raised when an endpoint cannot be reached."""


@dataclass(frozen=True)
class Endpoint:
    """Parsed endpoint URL: ``http://<authority>/<path>``.

    The authority names a container (a "host:port"); the path names a
    deployed service or service instance within it.
    """

    authority: str
    path: str

    @staticmethod
    def parse(url: str) -> "Endpoint":
        for scheme in ("http://", "https://", "ppg://"):
            if url.startswith(scheme):
                rest = url[len(scheme) :]
                break
        else:
            raise TransportError(f"unsupported endpoint URL {url!r}")
        authority, _, path = rest.partition("/")
        if not authority:
            raise TransportError(f"endpoint URL {url!r} has no authority")
        return Endpoint(authority=authority, path=path)

    def url(self) -> str:
        return f"http://{self.authority}/{self.path}"


class Transport(Protocol):
    """Moves one request to an endpoint and returns the response bytes."""

    def send(self, endpoint_url: str, request: bytes) -> bytes:  # pragma: no cover
        ...


class LoopbackTransport:
    """In-process transport: routes by authority to registered handlers.

    Handlers receive ``(path, request_bytes)`` and return response bytes.
    A :class:`Recorder` (optional) accumulates byte counts and a
    ``transport.calls`` counter; per-call overhead is whatever the real
    serialize/parse work costs — nothing is modeled.
    """

    def __init__(self, recorder: Recorder | None = None) -> None:
        self._handlers: dict[str, RequestHandler] = {}
        self.recorder = recorder

    def bind(self, authority: str, handler: RequestHandler) -> None:
        if authority in self._handlers:
            raise TransportError(f"authority {authority!r} already bound")
        self._handlers[authority] = handler

    def unbind(self, authority: str) -> None:
        self._handlers.pop(authority, None)

    def authorities(self) -> list[str]:
        return sorted(self._handlers)

    def send(self, endpoint_url: str, request: bytes) -> bytes:
        endpoint = Endpoint.parse(endpoint_url)
        handler = self._handlers.get(endpoint.authority)
        if handler is None:
            raise TransportError(f"no container bound at {endpoint.authority!r}")
        if self.recorder is not None:
            self.recorder.record_bytes("sent", len(request))
            self.recorder.incr("transport.calls")
        response = handler(endpoint.path, request)
        if self.recorder is not None:
            self.recorder.record_bytes("received", len(response))
        return response


class LatencyTransport:
    """Wraps another transport, sleeping the modeled wire time per call.

    Each ``send`` pays the :class:`~repro.simnet.network.NetworkModel`
    round-trip for its actual request/response byte counts, scaled by
    ``time_scale`` so benchmarks can model a WAN without waiting for
    one.  This makes *time-to-first-row* measurable: a bulk transfer
    pays one huge response in a single sleep, while a chunked cursor
    pays small sleeps interleaved with consumption.

    Install it on ``environment.transport`` *before* containers are
    created — containers capture the transport at bind time.
    """

    def __init__(self, inner: Transport, model, time_scale: float = 1.0) -> None:
        if time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {time_scale}")
        self.inner = inner
        self.model = model
        self.time_scale = time_scale
        self.calls = 0
        self.slept_s = 0.0
        # dispatch is concurrent now: per-call accounting must not race
        import threading

        self._stats_lock = threading.Lock()

    def send(self, endpoint_url: str, request: bytes) -> bytes:
        import time

        response = self.inner.send(endpoint_url, request)
        delay = self.model.round_trip_time(len(request), len(response)) * self.time_scale
        with self._stats_lock:
            self.calls += 1
            self.slept_s += delay
        if delay > 0:
            time.sleep(delay)
        return response

    # delegate the registry surface so containers can bind through us
    def bind(self, authority: str, handler: RequestHandler) -> None:
        self.inner.bind(authority, handler)

    def unbind(self, authority: str) -> None:
        self.inner.unbind(authority)

    def authorities(self) -> list[str]:
        return self.inner.authorities()


class RecordingTransport:
    """Wraps another transport, logging (endpoint, request, response) tuples.

    Used by tests and by the notification examples to observe traffic
    without disturbing it.
    """

    def __init__(self, inner: Transport) -> None:
        self.inner = inner
        self.log: list[tuple[str, bytes, bytes]] = []

    def send(self, endpoint_url: str, request: bytes) -> bytes:
        response = self.inner.send(endpoint_url, request)
        self.log.append((endpoint_url, request, response))
        return response
