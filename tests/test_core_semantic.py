"""Tests for the PerformanceResult model, cache keys, and PortTypes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semantic import (
    APPLICATION_PORTTYPE,
    EXECUTION_PORTTYPE,
    MANAGER_PORTTYPE,
    PerformanceResult,
    application_porttype_table,
    execution_porttype_table,
    pr_cache_key,
)


class TestPerformanceResult:
    def test_pack_format(self):
        pr = PerformanceResult("gflops", "/Run", "hpl", 0.0, 11.047856, 9.5)
        packed = pr.pack()
        assert packed.startswith("gflops|/Run|hpl|0.000000000-11.047856000|")

    def test_unpack_roundtrip(self):
        pr = PerformanceResult("m", "/f", "t", 1.25, 2.5, -3.75)
        back = PerformanceResult.unpack(pr.pack())
        assert back == pr

    def test_tiny_value_roundtrip(self):
        # Values with negative exponents must survive (the span uses
        # fixed-point, the value uses repr).
        pr = PerformanceResult("t", "/f", "x", 0.0, 1.0, 1.5e-7)
        assert PerformanceResult.unpack(pr.pack()).value == 1.5e-7

    @pytest.mark.parametrize(
        "bad",
        ["", "a|b|c", "a|b|c|d|e|f", "m|f|t|nodash|1", "m|f|t|1-2|notafloat"],
    )
    def test_unpack_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            PerformanceResult.unpack(bad)

    @given(
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=0, max_value=1e6),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    )
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, start, end, value):
        pr = PerformanceResult("metric", "/focus/x", "tool", start, end, float(value))
        back = PerformanceResult.unpack(pr.pack())
        assert back.start == pytest.approx(start, abs=1e-9)
        assert back.end == pytest.approx(end, abs=1e-9)
        assert back.value == float(value)
        assert (back.metric, back.focus, back.result_type) == ("metric", "/focus/x", "tool")


class TestCacheKey:
    def test_matches_thesis_format(self):
        key = pr_cache_key(
            "func_calls", ["/Code/MPI/MPI_Allgather"], "0.0", "11.047856", "UNDEFINED"
        )
        assert key == "func_calls | /Code/MPI/MPI_Allgather | UNDEFINED | 0.0-11.047856"

    def test_multiple_foci_joined(self):
        key = pr_cache_key("m", ["/a", "/b"], "0", "1", "t")
        assert "/a;/b" in key

    def test_distinct_queries_distinct_keys(self):
        base = pr_cache_key("m", ["/a"], "0", "1", "t")
        assert pr_cache_key("m2", ["/a"], "0", "1", "t") != base
        assert pr_cache_key("m", ["/b"], "0", "1", "t") != base
        assert pr_cache_key("m", ["/a"], "0", "2", "t") != base
        assert pr_cache_key("m", ["/a"], "0", "1", "u") != base


class TestPortTypes:
    def test_table1_operations(self):
        ops = [name for name, _ in application_porttype_table()]
        # The five Table 1 operations plus the documented extensions:
        # getExecsOp (operator queries) and getStats (cost-based planning).
        assert ops == [
            "getAppInfo",
            "getNumExecs",
            "getExecQueryParams",
            "getAllExecs",
            "getExecs",
            "getExecsOp",
            "getStats",
        ]

    def test_table2_operations(self):
        ops = [name for name, _ in execution_porttype_table()]
        # The six Table 2 operations plus the documented extensions:
        # getPRAgg (federated push-down), getPRChunked (streaming
        # cursors), getPRAsync (§7 callbacks), and getStats (cost-based
        # planning).
        assert ops == [
            "getInfo",
            "getFoci",
            "getMetrics",
            "getTypes",
            "getTimeStartEnd",
            "getPR",
            "getPRAgg",
            "getPRChunked",
            "getPRAsync",
            "getStats",
        ]

    def test_every_operation_documented(self):
        for _, doc in application_porttype_table() + execution_porttype_table():
            assert doc.strip()

    def test_getexecs_signature_matches_table1(self):
        op = APPLICATION_PORTTYPE.operation("getExecs")
        assert [p.name for p in op.parameters] == ["attribute", "value"]
        assert op.returns == "xsd:string[]"

    def test_getpr_signature_matches_table2(self):
        op = EXECUTION_PORTTYPE.operation("getPR")
        assert [p.wire_type for p in op.parameters] == [
            "xsd:string",
            "xsd:string[]",
            "xsd:string",
            "xsd:string",
            "xsd:string",
        ]

    def test_execution_extends_notification_source(self):
        assert EXECUTION_PORTTYPE.has_operation("SubscribeToNotificationTopic")
        assert EXECUTION_PORTTYPE.has_operation("Destroy")

    def test_manager_porttype(self):
        assert MANAGER_PORTTYPE.operation("getExecs").returns == "xsd:string[]"
