"""Tests for the UDDI registry server and client proxies."""

import pytest

from repro.ogsi import GridEnvironment
from repro.uddi import (
    OrganizationEntry,
    ServiceEntry,
    UddiClient,
    UddiError,
    UddiRegistryServer,
)


@pytest.fixture()
def env_and_client():
    env = GridEnvironment()
    container = env.create_container("registry:9090")
    gsh = container.deploy("services/uddi", UddiRegistryServer())
    return env, UddiClient.connect(env, gsh)


class TestRecords:
    def test_organization_pack_roundtrip(self):
        entry = OrganizationEntry("org-1", "PSU", "x@pdx.edu", "desc")
        assert OrganizationEntry.unpack(entry.pack()) == entry

    def test_service_pack_roundtrip(self):
        entry = ServiceEntry("svc-1", "org-1", "HPL", "ppg://h:1/f", "d")
        assert ServiceEntry.unpack(entry.pack()) == entry

    @pytest.mark.parametrize("bad", ["", "a|b", "a|b|c|d|e|f"])
    def test_bad_organization_records(self, bad):
        with pytest.raises(UddiError):
            OrganizationEntry.unpack(bad)


class TestPublishing:
    def test_publish_and_find(self, env_and_client):
        _, client = env_and_client
        key = client.publish_organization("PSU", "a@pdx.edu", "lab")
        client.publish_service(key, "HPL", "ppg://h:1/services/f", "runs")
        orgs = client.find_organizations("PS%")
        assert len(orgs) == 1 and orgs[0].name == "PSU"
        services = orgs[0].services()
        assert services[0].name == "HPL"
        assert services[0].factory_url == "ppg://h:1/services/f"

    def test_find_by_pattern(self, env_and_client):
        _, client = env_and_client
        client.publish_organization("Alpha Lab", "", "")
        client.publish_organization("Beta Lab", "", "")
        assert [o.name for o in client.find_organizations("%Lab")] == [
            "Alpha Lab",
            "Beta Lab",
        ]
        assert [o.name for o in client.find_organizations("Beta%")] == ["Beta Lab"]

    def test_all_services(self, env_and_client):
        _, client = env_and_client
        k1 = client.publish_organization("One", "", "")
        k2 = client.publish_organization("Two", "", "")
        client.publish_service(k1, "A", "ppg://h:1/a")
        client.publish_service(k2, "B", "ppg://h:1/b")
        assert sorted(s.name for s in client.all_services()) == ["A", "B"]

    def test_unknown_org_key_rejected(self, env_and_client):
        _, client = env_and_client
        with pytest.raises(Exception):
            client.publish_service("org-999", "X", "ppg://h:1/x")

    def test_pipe_in_name_rejected(self, env_and_client):
        _, client = env_and_client
        with pytest.raises(Exception):
            client.publish_organization("bad|name", "", "")

    def test_empty_name_rejected(self, env_and_client):
        _, client = env_and_client
        with pytest.raises(Exception):
            client.publish_organization("", "", "")


class TestRemoval:
    def test_remove_service(self, env_and_client):
        _, client = env_and_client
        key = client.publish_organization("Org", "", "")
        svc_key = client.publish_service(key, "A", "ppg://h:1/a")
        client.stub.removeService(svc_key)
        assert client.find_organizations("Org")[0].services() == []

    def test_remove_organization_cascades(self, env_and_client):
        _, client = env_and_client
        key = client.publish_organization("Org", "", "")
        client.publish_service(key, "A", "ppg://h:1/a")
        client.stub.removeOrganization(key)
        assert client.find_organizations("%") == []

    def test_counts(self):
        server = UddiRegistryServer()
        # Exercise the server directly (no container needed for counts).
        assert server.organization_count() == 0
        assert server.service_count() == 0
