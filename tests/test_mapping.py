"""Tests for the Mapping Layer wrappers (Tables 1-2 semantics per store)."""

import pytest

from repro.core.semantic import UNDEFINED_TYPE
from repro.datastores import XmlStore
from repro.mapping import (
    HplRdbmsWrapper,
    HplXmlWrapper,
    MappingError,
    PrestaRdbmsWrapper,
    PrestaTextWrapper,
    Smg98RdbmsWrapper,
    TimedExecutionWrapper,
)
from repro.mapping.base import compare_attribute
from repro.simnet.metrics import Recorder


# ------------------------------------------------------------------- HPL


@pytest.fixture(scope="module")
def hpl_wrapper(hpl_db):
    return HplRdbmsWrapper(hpl_db)


class TestHplWrapper:
    def test_app_info(self, hpl_wrapper):
        info = dict(hpl_wrapper.get_app_info())
        assert info["name"] == "HPL"
        assert info["executions"] == "20"

    def test_num_execs(self, hpl_wrapper):
        assert hpl_wrapper.get_num_execs() == 20

    def test_query_params_cover_attributes(self, hpl_wrapper):
        params = hpl_wrapper.get_exec_query_params()
        assert set(params) == set(HplRdbmsWrapper.ATTRIBUTES)
        for values in params.values():
            assert values == sorted(set(values), key=values.index)  # unique

    def test_all_exec_ids_sorted(self, hpl_wrapper):
        ids = hpl_wrapper.get_all_exec_ids()
        assert ids == [str(i) for i in range(1, 21)]

    def test_query_by_attribute(self, hpl_wrapper, hpl_dataset):
        expected = [str(r["runid"]) for r in hpl_dataset.rows if r["numprocs"] == 16]
        assert hpl_wrapper.get_exec_ids("numprocs", "16") == expected

    def test_query_with_operator(self, hpl_wrapper, hpl_dataset):
        expected = [str(r["runid"]) for r in hpl_dataset.rows if r["numprocs"] >= 32]
        assert hpl_wrapper.get_exec_ids("numprocs", "32", ">=") == expected

    def test_query_by_string_attribute(self, hpl_wrapper, hpl_dataset):
        machine = hpl_dataset.rows[0]["machine"]
        ids = hpl_wrapper.get_exec_ids("machine", machine)
        assert "1" in ids

    def test_unknown_attribute_raises(self, hpl_wrapper):
        with pytest.raises(MappingError):
            hpl_wrapper.get_exec_ids("nonsense", "1")

    def test_bad_operator_raises(self, hpl_wrapper):
        with pytest.raises(MappingError):
            hpl_wrapper.get_exec_ids("numprocs", "16", "~=")

    def test_non_numeric_value_for_numeric_attr_raises(self, hpl_wrapper):
        with pytest.raises(MappingError):
            hpl_wrapper.get_exec_ids("numprocs", "many")

    def test_execution_discovery(self, hpl_wrapper, hpl_dataset):
        execution = hpl_wrapper.execution("1")
        assert execution.get_foci() == ["/Run"]
        assert execution.get_metrics() == ["gflops", "resid", "runtimesec"]
        assert execution.get_types() == ["hpl"]
        start, end = execution.get_time_start_end()
        assert start == 0.0 and end == hpl_dataset.rows[0]["runtimesec"]

    def test_execution_info_contains_row(self, hpl_wrapper, hpl_dataset):
        info = dict(hpl_wrapper.execution("1").get_info())
        assert info["runid"] == "1"
        assert float(info["gflops"]) == hpl_dataset.rows[0]["gflops"]

    def test_unknown_execution_raises(self, hpl_wrapper):
        with pytest.raises(MappingError):
            hpl_wrapper.execution("999")

    def test_get_pr(self, hpl_wrapper, hpl_dataset):
        execution = hpl_wrapper.execution("1")
        results = execution.get_pr("gflops", ["/Run"], 0.0, -1.0, UNDEFINED_TYPE)
        assert len(results) == 1
        assert results[0].value == hpl_dataset.rows[0]["gflops"]
        assert results[0].result_type == "hpl"

    def test_get_pr_type_filter(self, hpl_wrapper):
        execution = hpl_wrapper.execution("1")
        assert execution.get_pr("gflops", ["/Run"], 0.0, -1.0, "vampir") == []
        assert execution.get_pr("gflops", ["/Run"], 0.0, -1.0, "hpl") != []

    def test_get_pr_unknown_metric_raises(self, hpl_wrapper):
        with pytest.raises(MappingError):
            hpl_wrapper.execution("1").get_pr("watts", ["/Run"], 0, -1, UNDEFINED_TYPE)

    def test_get_pr_ignores_unknown_focus(self, hpl_wrapper):
        execution = hpl_wrapper.execution("1")
        assert execution.get_pr("gflops", ["/Other"], 0, -1, UNDEFINED_TYPE) == []


# ------------------------------------------------------- HPL XML parity


class TestHplXmlWrapperParity:
    """The XML wrapper must agree with the RDBMS wrapper on everything."""

    @pytest.fixture(scope="class")
    def pair(self, hpl_db, hpl_dataset):
        return HplRdbmsWrapper(hpl_db), HplXmlWrapper(XmlStore(hpl_dataset.to_xml()))

    def test_exec_ids_agree(self, pair):
        rdbms, xml = pair
        assert rdbms.get_all_exec_ids() == xml.get_all_exec_ids()

    def test_query_params_agree(self, pair):
        rdbms, xml = pair
        r = rdbms.get_exec_query_params()
        x = xml.get_exec_query_params()
        assert set(r) == set(x)
        for attr in r:
            assert sorted(r[attr]) == sorted(x[attr])

    def test_attribute_queries_agree(self, pair):
        rdbms, xml = pair
        for attr, value, op in [
            ("numprocs", "16", "="),
            ("numprocs", "8", ">"),
            ("machine", "wyeast", "="),
            ("nb", "64", "<="),
        ]:
            assert sorted(rdbms.get_exec_ids(attr, value, op), key=int) == sorted(
                xml.get_exec_ids(attr, value, op), key=int
            ), (attr, value, op)

    def test_pr_values_agree(self, pair):
        rdbms, xml = pair
        for exec_id in ("1", "5", "20"):
            for metric in ("gflops", "runtimesec"):
                rv = rdbms.execution(exec_id).get_pr(metric, ["/Run"], 0, -1, UNDEFINED_TYPE)
                xv = xml.execution(exec_id).get_pr(metric, ["/Run"], 0, -1, UNDEFINED_TYPE)
                assert rv[0].value == xv[0].value

    def test_time_ranges_agree(self, pair):
        rdbms, xml = pair
        assert rdbms.execution("3").get_time_start_end() == pytest.approx(
            xml.execution("3").get_time_start_end()
        )


# ----------------------------------------------------------------- SMG98


@pytest.fixture(scope="module")
def smg_wrapper(smg98_db):
    return Smg98RdbmsWrapper(smg98_db)


class TestSmg98Wrapper:
    def test_exec_ids(self, smg_wrapper):
        assert smg_wrapper.get_all_exec_ids() == ["1", "2", "3"]

    def test_foci_structure(self, smg_wrapper, smg98_dataset):
        execution = smg_wrapper.execution("1")
        foci = execution.get_foci()
        numprocs = smg98_dataset.executions[0]["numprocs"]
        assert "/Code/MPI/MPI_Allgather" in foci
        assert f"/Process/{numprocs - 1}" in foci
        assert f"/Process/{numprocs}" not in foci
        assert "/Messages" in foci

    def test_metrics(self, smg_wrapper):
        metrics = smg_wrapper.execution("1").get_metrics()
        assert metrics == sorted(
            ["time_spent", "func_calls", "msg_count", "msg_bytes", "msg_deliv_time"]
        )

    def test_time_spent_prs_are_intervals(self, smg_wrapper, smg98_db):
        execution = smg_wrapper.execution("1")
        results = execution.get_pr(
            "time_spent", ["/Code/MPI/MPI_Irecv"], 0.0, -1.0, UNDEFINED_TYPE
        )
        expected = smg98_db.query(
            "SELECT COUNT(*) FROM intervals i JOIN functions f ON i.funcid = f.funcid "
            "WHERE i.execid = 1 AND f.name = 'MPI_Irecv'"
        ).scalar()
        assert len(results) == expected
        for pr in results:
            assert pr.value == pytest.approx(pr.end - pr.start)

    def test_time_window_restricts(self, smg_wrapper, smg98_dataset):
        execution = smg_wrapper.execution("1")
        runtime = smg98_dataset.executions[0]["runtime"]
        full = execution.get_pr("time_spent", ["/Code/SMG/smg_relax"], 0, -1, UNDEFINED_TYPE)
        half = execution.get_pr(
            "time_spent", ["/Code/SMG/smg_relax"], 0, runtime / 2, UNDEFINED_TYPE
        )
        assert 0 < len(half) < len(full)
        assert all(pr.end <= runtime / 2 for pr in half)

    def test_func_calls_per_rank(self, smg_wrapper):
        execution = smg_wrapper.execution("1")
        results = execution.get_pr(
            "func_calls", ["/Code/MPI/MPI_Waitall"], 0.0, -1.0, UNDEFINED_TYPE
        )
        assert results
        assert all("/rank/" in pr.focus for pr in results)
        assert all(pr.value >= 1 for pr in results)

    def test_process_focus(self, smg_wrapper):
        execution = smg_wrapper.execution("1")
        results = execution.get_pr("time_spent", ["/Process/0"], 0.0, -1.0, UNDEFINED_TYPE)
        assert results
        assert all(pr.focus.startswith("/Process/0/Code/") for pr in results)

    def test_message_metrics(self, smg_wrapper, smg98_dataset):
        execution = smg_wrapper.execution("1")
        count_pr = execution.get_pr("msg_count", ["/Messages"], 0.0, -1.0, UNDEFINED_TYPE)
        expected = sum(1 for m in smg98_dataset.messages if m["execid"] == 1)
        assert count_pr[0].value == expected
        bytes_pr = execution.get_pr("msg_bytes", ["/Messages"], 0.0, -1.0, UNDEFINED_TYPE)
        assert bytes_pr[0].value == sum(
            m["nbytes"] for m in smg98_dataset.messages if m["execid"] == 1
        )
        deliv = execution.get_pr("msg_deliv_time", ["/Messages"], 0.0, -1.0, UNDEFINED_TYPE)
        assert len(deliv) == expected
        assert all(pr.value >= 0 for pr in deliv)

    def test_multiple_foci_concatenate(self, smg_wrapper):
        execution = smg_wrapper.execution("1")
        a = execution.get_pr("time_spent", ["/Code/MPI/MPI_Isend"], 0, -1, UNDEFINED_TYPE)
        b = execution.get_pr("time_spent", ["/Code/MPI/MPI_Irecv"], 0, -1, UNDEFINED_TYPE)
        both = execution.get_pr(
            "time_spent", ["/Code/MPI/MPI_Isend", "/Code/MPI/MPI_Irecv"], 0, -1, UNDEFINED_TYPE
        )
        assert len(both) == len(a) + len(b)

    def test_bad_focus_raises(self, smg_wrapper):
        execution = smg_wrapper.execution("1")
        with pytest.raises(MappingError):
            execution.get_pr("time_spent", ["/Nope"], 0, -1, UNDEFINED_TYPE)
        with pytest.raises(MappingError):
            execution.get_pr("time_spent", ["/Process/notanint"], 0, -1, UNDEFINED_TYPE)

    def test_attribute_query(self, smg_wrapper, smg98_dataset):
        np0 = smg98_dataset.executions[0]["numprocs"]
        ids = smg_wrapper.get_exec_ids("numprocs", str(np0))
        assert "1" in ids


# ------------------------------------------------------------ PRESTA RMA


@pytest.fixture(scope="module")
def presta_wrapper(presta_store):
    return PrestaTextWrapper(presta_store)


class TestPrestaTextWrapper:
    def test_exec_ids(self, presta_wrapper):
        assert presta_wrapper.get_all_exec_ids() == ["1", "2", "3", "4"]

    def test_query_params(self, presta_wrapper):
        params = presta_wrapper.get_exec_query_params()
        assert set(params) == set(PrestaTextWrapper.ATTRIBUTES)

    def test_attribute_query_numeric(self, presta_wrapper, presta_dataset):
        expected = [str(e.execid) for e in presta_dataset.executions if e.numprocs >= 8]
        assert presta_wrapper.get_exec_ids("numprocs", "8", ">=") == expected

    def test_attribute_query_string(self, presta_wrapper, presta_dataset):
        network = presta_dataset.executions[0].network
        ids = presta_wrapper.get_exec_ids("network", network)
        assert "1" in ids

    def test_foci_are_ops(self, presta_wrapper):
        foci = presta_wrapper.execution("1").get_foci()
        assert "/Op/MPI_Put" in foci and len(foci) == 5

    def test_get_pr_sweep(self, presta_wrapper, presta_dataset):
        execution = presta_wrapper.execution("1")
        results = execution.get_pr(
            "bandwidth_mbps", ["/Op/MPI_Put"], 0.0, -1.0, UNDEFINED_TYPE
        )
        assert len(results) == 20  # one per message size
        sizes = [int(pr.focus.rsplit("/", 1)[1]) for pr in results]
        assert sizes == sorted(sizes)

    def test_get_pr_reparses_file(self, presta_wrapper, presta_store):
        before = presta_store.parse_count
        execution = presta_wrapper.execution("2")
        execution.get_pr("latency_us", ["/Op/MPI_Get"], 0.0, -1.0, UNDEFINED_TYPE)
        execution.get_pr("latency_us", ["/Op/MPI_Get"], 0.0, -1.0, UNDEFINED_TYPE)
        assert presta_store.parse_count == before + 2

    def test_bad_metric_and_focus(self, presta_wrapper):
        execution = presta_wrapper.execution("1")
        with pytest.raises(MappingError):
            execution.get_pr("watts", ["/Op/MPI_Put"], 0, -1, UNDEFINED_TYPE)
        with pytest.raises(MappingError):
            execution.get_pr("latency_us", ["/Wrong"], 0, -1, UNDEFINED_TYPE)


class TestPrestaRdbmsParity:
    """The relational RMA wrapper (§7) must agree with the text wrapper."""

    @pytest.fixture(scope="class")
    def pair(self, presta_store, presta_dataset):
        return PrestaTextWrapper(presta_store), PrestaRdbmsWrapper(presta_dataset.to_database())

    def test_exec_ids_agree(self, pair):
        text, rdbms = pair
        assert text.get_all_exec_ids() == rdbms.get_all_exec_ids()

    def test_foci_agree(self, pair):
        text, rdbms = pair
        assert text.execution("1").get_foci() == rdbms.execution("1").get_foci()

    def test_pr_values_agree(self, pair):
        text, rdbms = pair
        tv = text.execution("2").get_pr("latency_us", ["/Op/MPI_Get"], 0, -1, UNDEFINED_TYPE)
        rv = rdbms.execution("2").get_pr("latency_us", ["/Op/MPI_Get"], 0, -1, UNDEFINED_TYPE)
        assert [(p.focus, p.value) for p in tv] == [(p.focus, p.value) for p in rv]

    def test_attribute_queries_agree(self, pair):
        text, rdbms = pair
        assert text.get_exec_ids("numprocs", "4", ">") == rdbms.get_exec_ids(
            "numprocs", "4", ">"
        )


# -------------------------------------------------------------- utilities


class TestCompareAttribute:
    def test_numeric_comparison(self):
        assert compare_attribute("16", "16", "=")
        assert compare_attribute("8", "16", "<")
        assert compare_attribute("16.0", "16", "=")  # numeric, not lexical

    def test_string_comparison(self):
        assert compare_attribute("beta", "alpha", ">")
        assert not compare_attribute("beta", "beta", "!=")

    def test_mixed_falls_back_to_string(self):
        assert compare_attribute("abc", "16", ">")  # lexical


class TestTimedWrapper:
    def test_records_mapping_time(self, hpl_db):
        recorder = Recorder()
        wrapper = HplRdbmsWrapper(hpl_db)
        timed = TimedExecutionWrapper(wrapper.execution("1"), recorder)
        timed.get_pr("gflops", ["/Run"], 0.0, -1.0, UNDEFINED_TYPE)
        assert recorder.timer("mapping.getPR").count == 1
        # Non-PR calls are passed through untimed.
        timed.get_foci()
        assert recorder.timer("mapping.getPR").count == 1

    def test_delegates_everything(self, hpl_db):
        recorder = Recorder()
        wrapper = HplRdbmsWrapper(hpl_db)
        inner = wrapper.execution("1")
        timed = TimedExecutionWrapper(inner, recorder)
        assert timed.get_foci() == inner.get_foci()
        assert timed.get_metrics() == inner.get_metrics()
        assert timed.get_types() == inner.get_types()
        assert timed.get_time_start_end() == inner.get_time_start_end()
        assert timed.get_info() == inner.get_info()
