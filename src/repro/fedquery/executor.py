"""Federated query execution: discovery, fan-out, merge, plan cache.

:class:`FederationEngine` is the run-time half of the planner:

1. **Catalog** — members are discovered once through the UDDI registry
   (every published Application) and bound lazily; their query-param
   vocabularies feed the planner.
2. **Fan-out** — each selected execution becomes one task; tasks run on
   a thread pool whose width follows the Managers' replica topology
   (container dispatch is serialized per container, so useful
   concurrency ≈ a couple of slots per replica container).  The merge
   itself happens on the calling thread as futures complete.
3. **Plan cache** — whole query results are memoized on the query's
   canonical fingerprint (an LRU of packed rows), so repeated dashboards
   cost one cache probe instead of a federation sweep.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field

from repro.core.prcache import LruCache, PrCache
from repro.fedquery.ast import Query, QueryError
from repro.fedquery.merge import ResultRow, StreamingMerger, TaskContext, order_rows
from repro.fedquery.parser import parse_query
from repro.fedquery.planner import MemberPlan, Plan, plan_query
from repro.fedquery.pushdown import filter_foci
from repro.xmlkit import parse as parse_xml

#: fan-out defaults: *default* when no Manager topology is known, *cap*
#: so a large federation cannot spawn an unbounded thread pool
DEFAULT_FANOUT = 8
FANOUT_CAP = 32


def choose_fanout(
    manager_stats: list[dict[str, object]],
    default: int = DEFAULT_FANOUT,
    cap: int = FANOUT_CAP,
) -> int:
    """Pool width from the Managers' replica topology.

    Two slots per replica container keeps every container busy while one
    request is being dispatched and another is on the (serialized)
    container lock; beyond that, threads just queue.
    """
    replicas = sum(int(stats.get("replicas", 0)) for stats in manager_stats)
    if replicas <= 0:
        return default
    return max(2, min(cap, 2 * replicas))


def _sde_values(xml: str) -> list[str]:
    """Extract ``<value>`` texts from a FindServiceData result document."""
    root = parse_xml(xml).root
    return [el.text() for el in root.iter_all() if el.tag.local == "value"]


@dataclass
class QueryResult:
    """One answered federated query."""

    rows: list[ResultRow]
    columns: tuple[str, ...]
    cached: bool
    plan: Plan | None
    stats: dict[str, int] = field(default_factory=dict)


class FederationEngine:
    """Plans and executes federated queries over published Applications.

    ``client`` is a :class:`repro.core.client.PPerfGridClient` (or any
    object with ``discover_organizations``/``bind``); ``managers`` maps
    member name to its site's :class:`ManagerService` for fan-out sizing
    (optional — remote deployments fall back to the default width).
    """

    def __init__(
        self,
        client,
        managers: dict[str, object] | None = None,
        plan_cache: PrCache | None = None,
        max_workers: int | None = None,
    ) -> None:
        self.client = client
        self.managers = dict(managers or {})
        self.plan_cache = plan_cache if plan_cache is not None else LruCache(256)
        self.max_workers = max_workers
        self._bindings: dict[str, object] | None = None
        self._params: dict[str, dict[str, list[str]]] = {}
        self._metrics: dict[str, list[str]] = {}
        self._exec_ids: dict[str, str] = {}

    # ------------------------------------------------------------ catalog
    def members(self) -> dict[str, object]:
        """name -> Application binding for every published member."""
        if self._bindings is None:
            bindings: dict[str, object] = {}
            for org in self.client.discover_organizations("%"):
                for service in org.services():
                    if service.name not in bindings:
                        bindings[service.name] = self.client.bind(service)
            self._bindings = dict(sorted(bindings.items()))
        return self._bindings

    def refresh_members(self) -> None:
        """Forget discovery results (e.g. after new members publish)."""
        self._bindings = None
        self._params.clear()
        self._metrics.clear()

    def _member_params(self, name: str, binding) -> dict[str, list[str]]:
        params = self._params.get(name)
        if params is None:
            params = self._params[name] = binding.exec_query_params()
        return params

    def _member_metrics(self, name: str, probe) -> list[str]:
        metrics = self._metrics.get(name)
        if metrics is None:
            metrics = self._metrics[name] = probe.metrics()
        return metrics

    def _execution_id(self, binding) -> str:
        if binding.is_local:
            return binding.exec_id
        cached = self._exec_ids.get(binding.gsh)
        if cached is None:
            values = _sde_values(binding.find_service_data("name:execId"))
            if not values:
                raise QueryError(f"execution {binding.gsh} publishes no execId")
            cached = self._exec_ids[binding.gsh] = values[0]
        return cached

    # ------------------------------------------------------------ queries
    def explain(self, query: str | Query) -> str:
        return self._plan(self._parse(query)).explain()

    def execute(self, query: str | Query) -> QueryResult:
        query = self._parse(query)
        fingerprint = query.fingerprint()
        cached = self.plan_cache.get(fingerprint)
        if cached is not None:
            return QueryResult(
                rows=[ResultRow.unpack(r) for r in cached],
                columns=query.output_columns,
                cached=True,
                plan=None,
            )
        plan = self._plan(query)
        merger = StreamingMerger(query)
        stats = {"executions": 0, "calls": 0, "records": 0, "skipped_metrics": 0}
        tasks = self._collect_tasks(plan, stats)
        width = self.max_workers or choose_fanout(
            [m.stats() for m in self.managers.values()]
        )
        if tasks:
            with ThreadPoolExecutor(max_workers=width) as pool:
                pending = {pool.submit(task) for task in tasks}
                # merge on this thread as completions stream in
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        self._merge_payloads(merger, future, stats)
        rows = order_rows(merger.rows(), query)
        self.plan_cache.put(fingerprint, [row.pack() for row in rows])
        return QueryResult(
            rows=rows,
            columns=query.output_columns,
            cached=False,
            plan=plan,
            stats=stats,
        )

    def invalidate_cache(self) -> int:
        """Drop all memoized query results; returns how many were dropped."""
        dropped = len(self.plan_cache)
        self.plan_cache.clear()
        return dropped

    # ----------------------------------------------------------- internals
    def _parse(self, query: str | Query) -> Query:
        if isinstance(query, Query):
            return query.validate()
        return parse_query(query)

    def _plan(self, query: Query) -> Plan:
        members = self.members()
        unknown = [name for name in query.sources if name not in members]
        if unknown:
            raise QueryError(
                f"unknown application(s) {unknown} "
                f"(published: {', '.join(members)})"
            )
        catalog = {
            name: self._member_params(name, binding)
            for name, binding in members.items()
        }
        return plan_query(query, catalog)

    def _select_executions(self, member: MemberPlan, binding, stats) -> list:
        if member.selector is None:
            executions = binding.all_executions()
            stats["calls"] += 1
            return executions
        selected: dict[str, object] | None = None
        for alternatives in member.selector.conjuncts:
            term: dict[str, object] = {}
            for attribute, value, operator in alternatives:
                for execution in binding.query_executions(attribute, value, operator):
                    term.setdefault(execution.gsh, execution)
                stats["calls"] += 1
            if selected is None:
                selected = term
            else:
                selected = {g: e for g, e in selected.items() if g in term}
            if not selected:
                return []
        return list(selected.values()) if selected else []

    def _collect_tasks(self, plan: Plan, stats) -> list:
        tasks = []
        for member in plan.members:
            binding = self.members()[member.app]
            executions = self._select_executions(member, binding, stats)
            if not executions:
                continue
            metrics = self._member_metrics(member.app, executions[0])
            subqueries = [sq for sq in member.subqueries if sq.metric in metrics]
            stats["skipped_metrics"] += len(member.subqueries) - len(subqueries)
            if not subqueries:
                continue
            stats["executions"] += len(executions)
            for execution in executions:
                tasks.append(self._make_task(member, execution, subqueries))
        return tasks

    def _make_task(self, member: MemberPlan, execution, subqueries):
        def run():
            exec_id = self._execution_id(execution) if member.needs_exec_id else ""
            info = dict(execution.info()) if member.needs_info else None
            ctx = TaskContext(app=member.app, exec_id=exec_id, info=info)
            foci = filter_foci(execution.foci(), member.foci)
            payloads: list[tuple[str, str, list]] = []
            if not foci:
                return ctx, payloads
            for sub in subqueries:
                if sub.mode == "aggregate":
                    records = execution.get_pr_agg(
                        sub.metric,
                        foci,
                        sub.start,
                        sub.end,
                        sub.result_type,
                        min_value=sub.min_value,
                        max_value=sub.max_value,
                        group_by="focus" if sub.group_by_focus else "",
                    )
                    payloads.append((sub.metric, "aggregate", records))
                else:
                    results = execution.get_pr(
                        sub.metric, foci, sub.start, sub.end, sub.result_type
                    )
                    payloads.append((sub.metric, "raw", results))
            return ctx, payloads

        return run

    def _merge_payloads(self, merger: StreamingMerger, future: Future, stats) -> None:
        ctx, payloads = future.result()
        for metric, kind, payload in payloads:
            stats["calls"] += 1
            stats["records"] += len(payload)
            if kind == "aggregate":
                merger.absorb_aggregates(ctx, metric, payload)
            else:
                merger.absorb_results(ctx, metric, payload)
