"""Tests for the federated query subsystem (repro.fedquery)."""

from __future__ import annotations

import math

import pytest

from repro.experiments.common import GridScale, build_grid
from repro.fedquery import (
    Accumulator,
    FEDERATED_QUERY_PORTTYPE,
    Predicate,
    QueryError,
    ResultRow,
    SelectItem,
    choose_fanout,
    naive_query,
    order_rows,
    parse_query,
    plan_query,
)
from repro.fedquery.merge import StreamingMerger, TaskContext
from repro.core.semantic import AggregateRecord, PerformanceResult


@pytest.fixture(scope="module")
def fed_grid():
    """A tiny grid with a deployed FederatedQuery service.

    Module-scoped (not the session ``shared_grid``) because
    ``deploy_federation`` repoints the grid's client at the service.
    """
    grid = build_grid(GridScale.tiny())
    grid.deploy_federation()
    yield grid
    grid.cleanup()


def rows_equal(left: list[ResultRow], right: list[ResultRow]) -> bool:
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if a.columns != b.columns:
            return False
        for va, vb in zip(a.values, b.values):
            if isinstance(va, float) or isinstance(vb, float):
                if not math.isclose(float(va), float(vb), rel_tol=1e-9, abs_tol=1e-12):
                    return False
            elif va != vb:
                return False
    return True


class TestParser:
    def test_full_grammar(self):
        q = parse_query(
            "SELECT mean(time_spent), count(time_spent) FROM SMG98 "
            "WHERE numprocs >= 16 AND focus = '/Code/MPI' "
            "GROUP BY numprocs ORDER BY numprocs DESC LIMIT 3"
        )
        assert q.select == (
            SelectItem("time_spent", "mean"),
            SelectItem("time_spent", "count"),
        )
        assert q.sources == ("SMG98",)
        assert q.where == (
            Predicate("numprocs", ">=", "16"),
            Predicate("focus", "=", "/Code/MPI"),
        )
        assert q.group_by == ("numprocs",)
        assert q.order_by == "numprocs"
        assert q.order_desc is True
        assert q.limit == 3

    def test_minimal_query(self):
        q = parse_query("SELECT gflops")
        assert q.select == (SelectItem("gflops"),)
        assert q.sources == () and q.where == () and q.limit is None
        assert not q.is_aggregate

    def test_keywords_case_insensitive(self):
        q = parse_query("select Count(x) from HPL group by app order by app asc")
        assert q.aggregates[0].func == "count"
        assert q.order_desc is False

    def test_in_list(self):
        q = parse_query("SELECT gflops WHERE numprocs IN (2, 8, 16)")
        assert q.where == (Predicate("numprocs", "in", ("2", "8", "16")),)

    def test_order_by_aggregate_label(self):
        q = parse_query("SELECT count(gflops) GROUP BY app ORDER BY count(gflops)")
        assert q.order_by == "count(gflops)"

    def test_quoted_literals(self):
        q = parse_query("SELECT gflops WHERE machine = 'jefferson node'")
        assert q.where[0].value == "jefferson node"

    def test_unquoted_path_literals(self):
        q = parse_query("SELECT time_spent WHERE focus = /Code/MPI/MPI_Allreduce")
        assert q.where[0].value == "/Code/MPI/MPI_Allreduce"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "SELECT",
            "gflops",  # no SELECT keyword
            "SELECT gflops WHERE",
            "SELECT gflops WHERE machine = 'unterminated",
            "SELECT gflops LIMIT many",
            "SELECT gflops LIMIT -1",
            "SELECT gflops trailing",
            "SELECT median(gflops)",  # unknown aggregate
            "SELECT gflops, count(gflops)",  # raw + aggregate mix
            "SELECT gflops GROUP BY numprocs",  # GROUP BY without aggregate
            "SELECT count(gflops) ORDER BY nothere",  # not an output column
            "SELECT count(gflops) GROUP BY value",  # reserved group key
            "SELECT gflops WHERE value = notanumber",
            "SELECT gflops WHERE focus > '/a'",  # focus only supports = / IN
            "SELECT gflops WHERE type != hpl",  # type only supports =
            "SELECT gflops WHERE start <= 5",  # start only supports >=
            "SELECT gflops WHERE numprocs ? 4",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)


class TestFingerprint:
    def test_where_and_from_order_normalized(self):
        a = parse_query("SELECT count(x) FROM A, B WHERE p = 1 AND q = 2 GROUP BY app")
        b = parse_query("SELECT count(x) FROM B, A WHERE q = 2 AND p = 1 GROUP BY app")
        assert a.fingerprint() == b.fingerprint()

    def test_in_values_normalized(self):
        a = parse_query("SELECT count(x) WHERE p IN (1, 2)")
        b = parse_query("SELECT count(x) WHERE p IN (2, 1)")
        assert a.fingerprint() == b.fingerprint()

    def test_select_order_preserved(self):
        a = parse_query("SELECT count(x), mean(x)")
        b = parse_query("SELECT mean(x), count(x)")
        assert a.fingerprint() != b.fingerprint()

    def test_group_order_preserved(self):
        a = parse_query("SELECT count(x) GROUP BY app, numprocs")
        b = parse_query("SELECT count(x) GROUP BY numprocs, app")
        assert a.fingerprint() != b.fingerprint()

    def test_limit_and_order_distinguish(self):
        base = parse_query("SELECT count(x) GROUP BY app").fingerprint()
        assert parse_query("SELECT count(x) GROUP BY app LIMIT 5").fingerprint() != base
        assert (
            parse_query("SELECT count(x) GROUP BY app ORDER BY app DESC").fingerprint()
            != base
        )


CATALOG = {
    "HPL": {"numprocs": ["1", "2"], "machine": ["wyeast"]},
    "SMG98": {"numprocs": ["8", "16"], "nx": ["32"]},
    "PRESTA-RMA": {"numprocs": ["16"], "network": ["myrinet"]},
}


class TestPlanner:
    def test_prunes_by_from_clause(self):
        plan = plan_query(parse_query("SELECT count(gflops) FROM HPL GROUP BY app"), CATALOG)
        assert [m.app for m in plan.members] == ["HPL"]
        assert sorted(p.app for p in plan.pruned) == ["PRESTA-RMA", "SMG98"]
        assert all("FROM" in p.reason for p in plan.pruned)

    def test_prunes_by_app_predicate(self):
        plan = plan_query(parse_query("SELECT count(x) WHERE app != HPL GROUP BY app"), CATALOG)
        assert sorted(m.app for m in plan.members) == ["PRESTA-RMA", "SMG98"]

    def test_prunes_unpublished_attribute(self):
        plan = plan_query(parse_query("SELECT count(x) WHERE nx = 32 GROUP BY app"), CATALOG)
        assert [m.app for m in plan.members] == ["SMG98"]
        reasons = {p.app: p.reason for p in plan.pruned}
        assert "nx" in reasons["HPL"]

    def test_prunes_unpublished_group_attribute(self):
        plan = plan_query(parse_query("SELECT count(x) GROUP BY network"), CATALOG)
        assert [m.app for m in plan.members] == ["PRESTA-RMA"]

    def test_aggregate_mode_with_inclusive_bounds(self):
        plan = plan_query(
            parse_query("SELECT mean(x) WHERE value >= 1 AND value <= 9 GROUP BY app"),
            CATALOG,
        )
        assert plan.mode == "aggregate"
        sub = plan.members[0].subqueries[0]
        assert (sub.min_value, sub.max_value) == (1.0, 9.0)

    def test_raw_mode_on_strict_value_predicate(self):
        plan = plan_query(parse_query("SELECT mean(x) WHERE value > 1 GROUP BY app"), CATALOG)
        assert plan.mode == "raw"
        assert plan.members[0].subqueries[0].min_value is None

    def test_raw_mode_for_raw_select(self):
        plan = plan_query(parse_query("SELECT gflops FROM HPL"), CATALOG)
        assert plan.mode == "raw"
        assert plan.members[0].needs_exec_id is True

    def test_in_predicate_decomposes_to_union(self):
        plan = plan_query(
            parse_query("SELECT count(x) WHERE numprocs IN (8, 16) GROUP BY app"),
            CATALOG,
        )
        selector = plan.members[0].selector
        assert selector.conjuncts == ((("numprocs", "8", "="), ("numprocs", "16", "=")),)

    def test_conjuncts_intersect(self):
        plan = plan_query(
            parse_query("SELECT count(x) FROM SMG98 WHERE numprocs >= 8 AND nx = 32 GROUP BY app"),
            CATALOG,
        )
        selector = plan.members[0].selector
        assert len(selector.conjuncts) == 2

    def test_window_and_focus_pushdown(self):
        plan = plan_query(
            parse_query(
                "SELECT count(x) WHERE start >= 1.5 AND end <= 9.5 "
                "AND focus IN ('/a', '/b') GROUP BY app"
            ),
            CATALOG,
        )
        assert plan.window == (1.5, 9.5)
        assert plan.members[0].foci == frozenset({"/a", "/b"})

    def test_group_by_focus_flag(self):
        plan = plan_query(parse_query("SELECT count(x) GROUP BY focus"), CATALOG)
        assert plan.members[0].subqueries[0].group_by_focus is True
        assert plan.members[0].needs_info is False

    def test_exec_group_needs_exec_id(self):
        plan = plan_query(parse_query("SELECT count(x) GROUP BY exec"), CATALOG)
        assert plan.members[0].needs_exec_id is True

    def test_explain_mentions_everything(self):
        plan = plan_query(
            parse_query("SELECT mean(x) FROM HPL WHERE numprocs = 2 GROUP BY machine"),
            CATALOG,
        )
        text = plan.explain()
        assert "mode: aggregate" in text
        assert "getExecsOp(numprocs, '2', =)" in text
        assert "pruned SMG98" in text and "pruned PRESTA-RMA" in text


class TestAccumulator:
    def test_add_matches_python_aggregates(self):
        values = [3.5, -1.25, 7.0, 0.5]
        acc = Accumulator()
        for v in values:
            acc.add(v)
        assert acc.result("count") == len(values)
        assert acc.result("sum") == pytest.approx(sum(values))
        assert acc.result("mean") == pytest.approx(sum(values) / len(values))
        assert acc.result("min") == min(values)
        assert acc.result("max") == max(values)

    def test_absorb_combines_partials(self):
        acc = Accumulator()
        acc.absorb(AggregateRecord("g", count=2, total=5.0, minimum=2.0, maximum=3.0))
        acc.absorb(AggregateRecord("g", count=1, total=-1.0, minimum=-1.0, maximum=-1.0))
        assert acc.result("count") == 3
        assert acc.result("sum") == pytest.approx(4.0)
        assert acc.result("min") == -1.0
        assert acc.result("max") == 3.0

    def test_absorb_ignores_empty_bucket(self):
        acc = Accumulator()
        acc.absorb(AggregateRecord("g", count=0, total=0.0, minimum=0.0, maximum=0.0))
        assert acc.count == 0

    def test_unknown_func_rejected(self):
        acc = Accumulator()
        acc.add(1.0)
        with pytest.raises(QueryError):
            acc.result("median")


class TestResultRow:
    def test_pack_unpack_roundtrip(self):
        row = ResultRow(
            ("numprocs", "count(x)", "mean(x)", "value"),
            ("16", 7, 1.5e-7, 2.25),
        )
        back = ResultRow.unpack(row.pack())
        assert back == row
        assert isinstance(back["count(x)"], int)
        assert isinstance(back["mean(x)"], float)

    def test_getitem_and_as_dict(self):
        row = ResultRow(("app", "value"), ("HPL", 1.0))
        assert row["app"] == "HPL"
        assert row.as_dict() == {"app": "HPL", "value": 1.0}
        with pytest.raises(KeyError):
            row["missing"]

    def test_unpack_rejects_malformed(self):
        with pytest.raises(ValueError):
            ResultRow.unpack("noequalsign")


class TestOrderRows:
    def rows(self):
        cols = ("numprocs", "count(x)")
        return [
            ResultRow(cols, ("16", 3)),
            ResultRow(cols, ("2", 9)),
            ResultRow(cols, ("8", 1)),
        ]

    def test_default_order_is_numeric(self):
        q = parse_query("SELECT count(x) GROUP BY numprocs")
        ordered = order_rows(self.rows(), q)
        assert [r["numprocs"] for r in ordered] == ["2", "8", "16"]

    def test_explicit_order_by_desc(self):
        q = parse_query("SELECT count(x) GROUP BY numprocs ORDER BY count(x) DESC")
        ordered = order_rows(self.rows(), q)
        assert [r["count(x)"] for r in ordered] == [9, 3, 1]

    def test_limit_applies_after_order(self):
        q = parse_query("SELECT count(x) GROUP BY numprocs ORDER BY numprocs LIMIT 2")
        ordered = order_rows(self.rows(), q)
        assert [r["numprocs"] for r in ordered] == ["2", "8"]

    def test_mixed_types_sort_stably(self):
        cols = ("k", "count(x)")
        rows = [ResultRow(cols, ("banana", 1)), ResultRow(cols, ("10", 1))]
        q = parse_query("SELECT count(x) GROUP BY k ORDER BY k")
        assert [r["k"] for r in order_rows(rows, q)] == ["10", "banana"]


class TestMergerSemantics:
    def test_group_requires_every_metric(self):
        q = parse_query("SELECT count(a), count(b) GROUP BY app")
        merger = StreamingMerger(q)
        ctx = TaskContext(app="HPL")
        merger.absorb_results(ctx, "a", [PerformanceResult("a", "/f", "t", 0, 1, 1.0)])
        assert merger.rows() == []  # no metric b yet -> incomplete group
        merger.absorb_results(ctx, "b", [PerformanceResult("b", "/f", "t", 0, 1, 2.0)])
        rows = merger.rows()
        assert len(rows) == 1 and rows[0]["count(a)"] == 1

    def test_missing_group_attribute_drops_record(self):
        q = parse_query("SELECT count(a) GROUP BY numprocs")
        merger = StreamingMerger(q)
        merger.absorb_results(
            TaskContext(app="HPL", info={}),
            "a",
            [PerformanceResult("a", "/f", "t", 0, 1, 1.0)],
        )
        assert merger.rows() == []

    def test_value_predicate_filters_raw_results(self):
        q = parse_query("SELECT count(a) WHERE value > 5 GROUP BY app")
        merger = StreamingMerger(q)
        merger.absorb_results(
            TaskContext(app="HPL"),
            "a",
            [
                PerformanceResult("a", "/f", "t", 0, 1, 4.0),
                PerformanceResult("a", "/f", "t", 0, 1, 6.0),
            ],
        )
        assert merger.rows()[0]["count(a)"] == 1


class TestChooseFanout:
    def test_default_without_managers(self):
        assert choose_fanout([]) == 8
        assert choose_fanout([{"replicas": 0}]) == 8

    def test_two_slots_per_replica(self):
        assert choose_fanout([{"replicas": 2}, {"replicas": 1}]) == 6

    def test_floor_and_cap(self):
        assert choose_fanout([{"replicas": 1}]) == 2
        assert choose_fanout([{"replicas": 100}]) == 32


class TestFederationEngine:
    def test_aggregate_matches_naive(self, fed_grid):
        text = (
            "SELECT count(gflops), mean(gflops), max(gflops) FROM HPL "
            "WHERE numprocs >= 2 GROUP BY numprocs"
        )
        engine = fed_grid.fed_engine
        result = engine.execute(text)
        assert result.cached is False
        assert result.plan.mode == "aggregate"
        assert rows_equal(result.rows, naive_query(text, engine.members()))

    def test_raw_matches_naive(self, fed_grid):
        text = "SELECT gflops FROM HPL WHERE numprocs = 16 AND value > 1"
        engine = fed_grid.fed_engine
        result = engine.execute(text)
        assert result.plan.mode == "raw"
        assert result.rows and rows_equal(result.rows, naive_query(text, engine.members()))
        assert result.rows[0].columns == (
            "app", "exec", "metric", "focus", "type", "start", "end", "value",
        )

    def test_plan_cache_hit_returns_same_rows(self, fed_grid):
        text = "SELECT count(latency_us) FROM PRESTA-RMA GROUP BY network"
        engine = fed_grid.fed_engine
        cold = engine.execute(text)
        hot = engine.execute(text)
        assert cold.cached is False and hot.cached is True
        assert hot.rows == cold.rows
        # equivalent spelling hits the same fingerprint
        assert engine.execute(
            "SELECT count(latency_us) FROM PRESTA-RMA GROUP BY network"
        ).cached

    def test_invalidate_cache(self, fed_grid):
        engine = fed_grid.fed_engine
        engine.execute("SELECT count(gflops) FROM HPL GROUP BY app")
        assert engine.invalidate_cache() >= 1
        assert len(engine.plan_cache) == 0

    def test_unknown_source_rejected(self, fed_grid):
        with pytest.raises(QueryError, match="unknown application"):
            fed_grid.fed_engine.execute("SELECT count(x) FROM NOPE GROUP BY app")

    def test_unpublished_metric_skipped_not_fatal(self, fed_grid):
        # gflops exists only on HPL; SMG98/PRESTA contribute nothing
        result = fed_grid.fed_engine.execute("SELECT count(gflops) GROUP BY app")
        assert [r["app"] for r in result.rows] == ["HPL"]
        assert result.stats["skipped_metrics"] >= 2

    def test_explain_without_execution(self, fed_grid):
        engine = fed_grid.fed_engine
        before = len(engine.plan_cache)
        text = engine.explain("SELECT mean(time_spent) FROM SMG98 GROUP BY numprocs")
        assert "member SMG98" in text and "pruned HPL" in text
        assert len(engine.plan_cache) == before  # explain never executes

    def test_stats_counters(self, fed_grid):
        engine = fed_grid.fed_engine
        engine.invalidate_cache()
        result = engine.execute("SELECT count(resid) FROM HPL GROUP BY numprocs")
        assert result.stats["executions"] == 12
        assert result.stats["calls"] >= 12
        assert result.stats["records"] >= 1


class TestFederatedQueryService:
    def stub(self, grid):
        return grid.environment.stub_for_handle(grid.fed_gsh, FEDERATED_QUERY_PORTTYPE)

    def test_client_query_over_soap(self, fed_grid):
        text = (
            "SELECT mean(time_spent), count(time_spent) FROM SMG98 "
            "WHERE numprocs >= 16 GROUP BY numprocs ORDER BY numprocs"
        )
        rows = fed_grid.client.query(text)
        assert rows and rows_equal(rows, naive_query(text, fed_grid.fed_engine.members()))

    def test_client_explain_over_soap(self, fed_grid):
        text = fed_grid.client.explain_query("SELECT count(gflops) FROM HPL GROUP BY app")
        assert "member HPL" in text

    def test_query_without_federation_rejected(self, fed_grid):
        from repro.core.client import PPerfGridClient

        bare = PPerfGridClient(fed_grid.environment, fed_grid.uddi_gsh)
        with pytest.raises(RuntimeError, match="use_federation"):
            bare.query("SELECT gflops")

    def test_cache_stats_operation(self, fed_grid):
        stub = self.stub(fed_grid)
        stub.invalidateCache()
        fed_grid.client.query("SELECT count(gflops) FROM HPL GROUP BY app")
        fed_grid.client.query("SELECT count(gflops) FROM HPL GROUP BY app")
        records = dict(r.split("|", 1) for r in stub.getCacheStats())
        assert int(records["hits"]) >= 1
        assert int(records["misses"]) >= 1
        assert int(records["entries"]) >= 1
        assert set(records) >= {"hits", "misses", "evictions", "lookups", "hitRate", "entries"}

    def test_invalidate_over_soap(self, fed_grid):
        stub = self.stub(fed_grid)
        fed_grid.client.query("SELECT count(resid) FROM HPL GROUP BY machine")
        assert stub.invalidateCache() >= 1
        assert stub.invalidateCache() == 0

    def test_plan_cache_stats_service_data(self, fed_grid):
        from repro.fedquery.executor import _sde_values

        stub = self.stub(fed_grid)
        fed_grid.client.query("SELECT count(gflops) FROM HPL GROUP BY app")
        values = _sde_values(stub.FindServiceData("name:planCacheStats"))
        names = {v.split("|", 1)[0] for v in values}
        assert {"hits", "misses", "entries"} <= names
