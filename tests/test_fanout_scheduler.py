"""FanoutScheduler: pooled fan-out workers, tenant fairness, rate limits.

The contract under test: one engine-lifetime pool replaces the per-query
``ThreadPoolExecutor`` without changing a single merged byte (the oracle
suites cover the bytes; here we cover the pool mechanics) — fair
round-robin across tenants, token-bucket shedding with the established
``ServerBusy`` fault, reactor-driven queue-wait shedding, lazy worker
growth with idle reaping, the elastic stream lane, and the process-wide
shared pool behind ``ExecutionQueryPanel.run_queries_parallel``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.client import ExecutionQuery, ExecutionQueryPanel
from repro.core.semantic import PerformanceResult
from repro.experiments.common import build_synthetic_grid
from repro.fedquery.scheduler import (
    DEFAULT_TENANT,
    FanoutScheduler,
    TokenBucket,
    shared_scheduler,
)
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper
from repro.ogsi.dispatch import BusyFault, client_id_headers, is_busy_fault
from repro.simnet.reactor import Reactor


def wait_until(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def blocked_worker(sched: FanoutScheduler, tenant: str = DEFAULT_TENANT):
    """Occupy one pool worker until the returned event is set."""
    release = threading.Event()
    started = threading.Event()

    def block():
        started.set()
        release.wait(timeout=10.0)

    future = sched.submit(block, tenant=tenant)
    assert started.wait(timeout=5.0)
    return release, future


class TestFairQueueing:
    def test_round_robin_interleaves_minority_tenant(self):
        sched = FanoutScheduler(max_workers=1, fair=True)
        try:
            release, blocker = blocked_worker(sched)
            order: list[str] = []
            futures = [
                sched.submit(lambda t=t: order.append(t), tenant=t)
                for t in ["hog", "hog", "hog", "hog", "meek"]
            ]
            release.set()
            for future in futures:
                future.result(timeout=5.0)
            # strict FIFO would run meek last; round-robin admits it
            # right after the flooding tenant's first grant
            assert order == ["hog", "meek", "hog", "hog", "hog"]
        finally:
            sched.shutdown()

    def test_unfair_mode_is_submission_order(self):
        sched = FanoutScheduler(max_workers=1, fair=False)
        try:
            release, blocker = blocked_worker(sched)
            order: list[str] = []
            futures = [
                sched.submit(lambda t=t: order.append(t), tenant=t)
                for t in ["hog", "hog", "hog", "meek"]
            ]
            release.set()
            for future in futures:
                future.result(timeout=5.0)
            assert order == ["hog", "hog", "hog", "meek"]
        finally:
            sched.shutdown()

    def test_queue_wait_stats_recorded_per_tenant(self):
        sched = FanoutScheduler(max_workers=1, fair=True)
        try:
            release, _ = blocked_worker(sched, tenant="a")
            future = sched.submit(lambda: None, tenant="a")
            time.sleep(0.05)  # measurable queue wait
            release.set()
            future.result(timeout=5.0)
            tenants = sched.stats()["tenants"]
            assert tenants["a"]["maxWaitMs"] >= 40.0
            assert tenants["a"]["avgWaitMs"] > 0.0
            assert tenants["a"]["completed"] == 2
        finally:
            sched.shutdown()


class TestRateLimiting:
    def test_token_bucket_validates_and_refills(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)
        bucket = TokenBucket(rate=1000.0, burst=1)
        assert bucket.try_acquire()
        assert wait_until(bucket.try_acquire, timeout=1.0)  # refilled

    def test_over_rate_sheds_with_server_busy(self):
        sched = FanoutScheduler(max_workers=1)
        try:
            sched.set_rate_limit("greedy", rate=0.0001, burst=2)
            sched.acquire_rate("greedy")
            sched.acquire_rate("greedy")
            with pytest.raises(BusyFault) as info:
                sched.acquire_rate("greedy")
            assert is_busy_fault(info.value)
            stats = sched.stats()
            assert stats["shed"] == 1
            assert stats["tenants"]["greedy"]["shed"] == 1
            # other tenants have no bucket configured: unlimited
            sched.acquire_rate("other")
        finally:
            sched.shutdown()

    def test_default_bucket_applies_to_every_tenant(self):
        sched = FanoutScheduler(max_workers=1, rate=0.0001, burst=1)
        try:
            sched.acquire_rate("anyone")
            with pytest.raises(BusyFault):
                sched.acquire_rate("anyone")
            sched.set_rate_limit("anyone", rate=None)  # lift the limit
            sched.acquire_rate("anyone")
        finally:
            sched.shutdown()


class TestWorkerLifecycle:
    def test_workers_reused_across_batches(self):
        sched = FanoutScheduler(max_workers=4)
        try:
            for future in [sched.submit(lambda: 1) for _ in range(8)]:
                assert future.result(timeout=5.0) == 1
            created = sched.stats()["workersCreated"]
            assert created <= 4
            for future in [sched.submit(lambda: 2) for _ in range(8)]:
                assert future.result(timeout=5.0) == 2
            assert sched.stats()["workersCreated"] == created
        finally:
            sched.shutdown()

    def test_idle_workers_reaped_and_regrown(self):
        sched = FanoutScheduler(max_workers=2, worker_idle_s=0.05)
        try:
            assert sched.submit(lambda: "x").result(timeout=5.0) == "x"
            assert wait_until(lambda: sched.worker_count() == 0, timeout=5.0)
            # the shrunk pool regrows lazily on the next submit
            assert sched.submit(lambda: "y").result(timeout=5.0) == "y"
            assert sched.stats()["workersCreated"] >= 2
        finally:
            sched.shutdown()

    def test_cancelled_future_never_runs(self):
        sched = FanoutScheduler(max_workers=1)
        try:
            release, blocker = blocked_worker(sched)
            ran = threading.Event()
            victim = sched.submit(ran.set)
            assert victim.cancel()
            release.set()
            blocker.result(timeout=5.0)
            assert wait_until(lambda: sched.stats()["cancelled"] == 1)
            assert not ran.is_set()
        finally:
            sched.shutdown()

    def test_task_exception_propagates_via_future(self):
        sched = FanoutScheduler(max_workers=1)
        try:
            def boom():
                raise RuntimeError("kaput")

            with pytest.raises(RuntimeError, match="kaput"):
                sched.submit(boom).result(timeout=5.0)
        finally:
            sched.shutdown()

    def test_shutdown_idempotent_and_cancels_queued(self):
        sched = FanoutScheduler(max_workers=1)
        release, blocker = blocked_worker(sched)
        queued = sched.submit(lambda: None)
        sched.shutdown()
        assert queued.cancelled()
        release.set()
        sched.shutdown()  # idempotent
        with pytest.raises(RuntimeError):
            sched.submit(lambda: None)
        with pytest.raises(RuntimeError):
            sched.spawn(lambda: None)


class TestQueueWaitShedding:
    def test_reactor_tick_sheds_overstayed_tasks(self):
        reactor = Reactor("shed-test")
        sched = FanoutScheduler(
            max_workers=1,
            reactor=reactor,
            max_queue_wait_s=0.05,
            tick_interval_s=0.02,
        )
        try:
            release, blocker = blocked_worker(sched)
            victim = sched.submit(lambda: "never", tenant="slowpoke")
            with pytest.raises(BusyFault) as info:
                victim.result(timeout=5.0)
            assert is_busy_fault(info.value)
            release.set()
            blocker.result(timeout=5.0)
            stats = sched.stats()
            assert stats["shedTimeouts"] >= 1
            assert stats["tenants"]["slowpoke"]["shed"] >= 1
            assert stats["avgUtilization"] > 0.0  # the tick sampled
        finally:
            sched.shutdown()
            reactor.shutdown()

    def test_attaching_to_shut_down_reactor_degrades_gracefully(self):
        reactor = Reactor("dead")
        reactor.shutdown()
        sched = FanoutScheduler(max_workers=1, reactor=reactor)
        try:
            assert sched.submit(lambda: 7).result(timeout=5.0) == 7
        finally:
            sched.shutdown()


class TestStreamLane:
    def test_spawn_releases_slots_and_reuses_threads(self):
        sched = FanoutScheduler(max_workers=1)
        try:
            done = threading.Event()
            sched.spawn(done.set, tenant="s")
            assert done.wait(timeout=5.0)
            assert wait_until(lambda: sched.stats()["streamActive"] == 0)
            time.sleep(0.2)  # let the lane thread park
            done2 = threading.Event()
            sched.spawn(done2.set, tenant="s")
            assert done2.wait(timeout=5.0)
            assert wait_until(lambda: sched.stats()["streamActive"] == 0)
            stats = sched.stats()
            assert stats["streamThreadsCreated"] == 1
            assert stats["streamThreadsReused"] == 1
            assert stats["tenants"]["s"]["streamSlots"] == 0
            assert stats["streamPeak"] == 1
        finally:
            sched.shutdown()

    def test_stream_failure_still_releases_slot(self):
        sched = FanoutScheduler(max_workers=1)
        try:
            def boom():
                raise RuntimeError("producer died")

            sched.spawn(boom, tenant="f")
            assert wait_until(lambda: sched.stats()["streamActive"] == 0)
            stats = sched.stats()
            assert stats["tenants"]["f"]["streamSlots"] == 0
            assert stats["streamFailures"] == 1
            # the lane thread survived the escape and parked for reuse
            done = threading.Event()
            time.sleep(0.1)
            sched.spawn(done.set, tenant="f")
            assert done.wait(timeout=5.0)
            assert sched.stats()["streamThreadsReused"] == 1
        finally:
            sched.shutdown()


class TestSharedScheduler:
    def test_singleton_and_recreation_after_shutdown(self):
        first = shared_scheduler()
        assert shared_scheduler() is first
        first.shutdown()
        second = shared_scheduler()
        assert second is not first
        assert not second.is_shutdown


class _PanelExecution:
    """Minimal Execution-shaped adapter over an InMemoryExecution."""

    def __init__(self, gsh: str, rows: list[PerformanceResult]) -> None:
        self.gsh = gsh
        self._rows = rows

    def get_pr(self, metric, foci, start, end, result_type):
        return [r for r in self._rows if r.metric == metric]


class TestPanelSharedPool:
    def test_parallel_matches_serial_and_reuses_threads(self):
        rows = [
            PerformanceResult("wall", "/R", "s", float(i), float(i + 1), 10.0 * i)
            for i in range(4)
        ]
        panel = ExecutionQueryPanel(
            executions=[_PanelExecution(f"gsh-{i}", rows) for i in range(6)],
            queries=[ExecutionQuery("wall", ["/R"])],
        )
        serial = panel.run_queries()
        pool = shared_scheduler()
        first = panel.run_queries_parallel(max_workers=3)
        created = pool.stats()["workersCreated"]
        second = panel.run_queries_parallel(max_workers=3)
        # the regression under test: repeated panel runs must not build
        # a fresh thread pool per call
        assert pool.stats()["workersCreated"] == created
        assert first == serial
        assert second == serial

    def test_parallel_validates_max_workers(self):
        panel = ExecutionQueryPanel(executions=[], queries=[])
        with pytest.raises(ValueError):
            panel.run_queries_parallel(max_workers=0)


def _grid_rows(metric: str, count: int, base: float) -> list[PerformanceResult]:
    return [
        PerformanceResult(
            metric, "/R", "synthetic", float(i), float(i + 1), base + i * 1.5
        )
        for i in range(count)
    ]


@pytest.fixture()
def fedgrid():
    a = InMemoryWrapper(
        "A",
        [
            InMemoryExecution("0", {"numprocs": "2"}, _grid_rows("m", 10, 100.0)),
            InMemoryExecution("1", {"numprocs": "4"}, _grid_rows("m", 10, 200.0)),
        ],
    )
    b = InMemoryWrapper(
        "B",
        [InMemoryExecution("0", {"numprocs": "8"}, _grid_rows("m", 10, 300.0))],
    )
    grid = build_synthetic_grid({"A": a, "B": b})
    engine = grid.deploy_federation()
    return grid, engine


class TestEngineIntegration:
    def test_engine_reuses_one_pool_across_queries(self, fedgrid):
        grid, engine = fedgrid
        engine.execute("SELECT m WHERE numprocs = 2")
        sched = engine._scheduler
        assert sched is not None
        created = sched.stats()["workersCreated"]
        engine.execute("SELECT m WHERE numprocs = 4")
        engine.execute("SELECT m WHERE numprocs = 8")
        assert engine._scheduler is sched
        assert sched.stats()["workersCreated"] == created

    def test_client_id_header_becomes_the_tenant(self, fedgrid):
        grid, engine = fedgrid
        from repro.fedquery.service import FEDERATED_QUERY_PORTTYPE

        stub = grid.environment.stub_for_handle(
            grid.fed_gsh,
            FEDERATED_QUERY_PORTTYPE,
            headers_provider=client_id_headers("alice"),
        )
        assert stub.query("SELECT m WHERE numprocs = 2")
        tenants = engine.scheduler_stats()["tenants"]
        assert "alice" in tenants
        assert tenants["alice"]["completed"] >= 1

    def test_anonymous_queries_land_on_default_tenant(self, fedgrid):
        grid, engine = fedgrid
        engine.execute("SELECT m WHERE numprocs = 8")
        assert DEFAULT_TENANT in engine.scheduler_stats()["tenants"]

    def test_scheduler_stats_before_first_query_reports_absent_pool(self):
        from repro.fedquery.executor import FederationEngine

        engine = FederationEngine(client=None, managers={})
        stats = engine.scheduler_stats()
        assert stats["enabled"] == 1
        assert stats["workers"] == 0
        assert stats["submitted"] == 0

    def test_engine_rate_limit_sheds_queries(self, fedgrid):
        grid, engine = fedgrid
        engine.set_rate_limit("flooder", rate=0.0001, burst=1)
        engine.execute("SELECT m WHERE numprocs = 2", tenant="flooder")
        with pytest.raises(BusyFault):
            engine.execute("SELECT m WHERE numprocs = 4", tenant="flooder")
        # the plan cache answers without charging the bucket? no: the
        # shed happens before fan-out, so even a cached query is shed
        tenants = engine.scheduler_stats()["tenants"]
        assert tenants["flooder"]["shed"] >= 1

    def test_legacy_arm_still_answers_identically(self, fedgrid):
        grid, engine = fedgrid
        pooled = engine.execute("SELECT m")
        legacy_engine = grid.fed_engine
        legacy_engine.use_shared_pool = False
        legacy_engine.plan_cache.clear()
        legacy = legacy_engine.execute("SELECT m")
        assert [r.pack() for r in pooled.rows] == [r.pack() for r in legacy.rows]

    def test_monitor_publishes_scheduler_sdes(self, fedgrid):
        grid, engine = fedgrid
        engine.execute("SELECT m WHERE numprocs = 2")
        container = grid.environment.container_for("fed.pdx.edu:9090")
        monitor = container.service_at("services/FederatedQuery/monitor")
        records = dict(
            record.split("=", 1) for record in monitor.getContainerStats()
        )
        assert int(records["fanoutScheduler.submitted"]) >= 1
        assert "fanoutScheduler.queueDepth" in records
        assert f"fanoutScheduler.tenants.{DEFAULT_TENANT}.completed" in records

    def test_manager_stats_nest_scheduler_counters(self, fedgrid):
        grid, engine = fedgrid
        engine.execute("SELECT m WHERE numprocs = 2")
        site = next(iter(grid.sites.values()))
        nested = site.manager.stats()["fanoutScheduler"]
        assert nested["enabled"] == 1
        assert nested["submitted"] >= 1
