"""Substrate microbenchmarks: the building blocks under the experiments.

Not tied to a paper artifact; these track the performance of the
from-scratch substrates (XML, SOAP, SQL engine, XPath, text parser) so a
regression in one is visible before it distorts the table reproductions.
"""

import pytest

from repro.datastores import generate_hpl, generate_presta, generate_smg98
from repro.datastores.textfiles import parse_presta_file
from repro.minidb import connect
from repro.soap.rpc import decode_response, encode_response
from repro.xmlkit import parse, xpath_select

_SAMPLE_PRS = [
    f"time_spent|/Code/MPI/MPI_Allgather|vampir|{i}.000000000-{i}.100000000|0.001"
    for i in range(200)
]


@pytest.fixture(scope="module")
def hpl_conn():
    return connect(generate_hpl().to_database())


@pytest.fixture(scope="module")
def smg_conn():
    ds = generate_smg98(num_executions=5, intervals_per_execution=5000)
    return connect(ds.to_database())


def test_xml_parse(benchmark):
    text = serialize_sample()
    doc = benchmark(parse, text)
    assert doc.root.tag.local == "hplResults"


def serialize_sample() -> str:
    return generate_hpl(num_executions=50).to_xml()


def test_xml_serialize(benchmark):
    ds = generate_hpl(num_executions=50)
    text = benchmark(ds.to_xml)
    assert text.startswith("<?xml")


def test_xpath_predicate_query(benchmark):
    root = parse(serialize_sample()).root
    hits = benchmark(xpath_select, root, "/hplResults/run[@numprocs='16']/@runid")
    assert isinstance(hits, list)


def test_soap_roundtrip_200_results(benchmark):
    def roundtrip():
        data = encode_response("urn:ppg", "getPR", _SAMPLE_PRS)
        return decode_response(data)

    response = benchmark(roundtrip)
    assert len(response.value) == 200


def test_minidb_indexed_point_query(benchmark, hpl_conn):
    cursor = hpl_conn.cursor()
    row = benchmark(
        lambda: cursor.execute("SELECT gflops FROM hpl_runs WHERE runid = 42").fetchone()
    )
    assert row is not None


def test_minidb_join_aggregate(benchmark, smg_conn):
    cursor = smg_conn.cursor()

    def query():
        return cursor.execute(
            "SELECT p.rank, COUNT(*) FROM intervals i "
            "JOIN functions f ON i.funcid = f.funcid "
            "JOIN processes p ON i.procid = p.procid "
            "WHERE i.execid = 2 AND f.grp = 'MPI' GROUP BY p.rank"
        ).fetchall()

    rows = benchmark.pedantic(query, rounds=3, iterations=1)
    assert rows


def test_presta_file_parse(benchmark, tmp_path_factory):
    directory = tmp_path_factory.mktemp("presta-bench")
    generate_presta(num_executions=1).write_files(directory)
    path = str(directory / "presta_rma_1.txt")
    execution = benchmark(parse_presta_file, path)
    assert len(execution.measurements) == 100
