"""Property test: cost-based plans == the naive oracle, byte-identical.

Builds several randomized federations of :class:`InMemoryWrapper`
members — randomized member counts, metric vocabularies, foci, tool
types, row counts, value ranges, and deliberately empty members — and
runs a few hundred randomized queries through the cost-based
planner/executor pipeline, comparing the packed output rows *byte for
byte* against :func:`repro.fedquery.naive.naive_query`.

All synthetic values are integer-valued floats, so sums and means are
exact doubles regardless of accumulation order and the byte-identical
comparison is sound.

The sweep must exercise every plan mode the cost model can emit — raw,
aggregate, mixed (members or metrics diverge), and skip (statistics
prove no member can contribute) — which the final coverage test asserts
on the engines' ``plan_modes`` counters.
"""

from __future__ import annotations

import random
from types import SimpleNamespace

import pytest

from repro.core.semantic import PerformanceResult
from repro.experiments.common import build_synthetic_grid
from repro.fedquery import naive_query
from repro.fedquery.merge import RAW_COLUMNS
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper

#: federations x queries-per-federation randomized checks (ISSUE: >= 200)
N_FEDERATIONS = 6
QUERIES_PER_FEDERATION = 40

AGG_FUNCS = ("count", "sum", "mean", "min", "max")
METRIC_POOL = ("alpha", "beta", "gamma")
FOCUS_POOL = ("/A", "/B", "/C", "/D")
TYPE_POOL = ("synthetic", "toolx")
#: a metric no member ever records — queries selecting it are provably
#: empty everywhere, driving the planner's "skip" mode
GHOST_METRIC = "ghost"


def make_federation(rng: random.Random) -> dict[str, InMemoryWrapper]:
    """2-4 members with randomized, precisely known contents."""
    wrappers: dict[str, InMemoryWrapper] = {}
    for index in range(rng.randint(2, 4)):
        name = f"M{index}"
        metrics = rng.sample(METRIC_POOL, rng.randint(1, len(METRIC_POOL)))
        foci = rng.sample(FOCUS_POOL, rng.randint(1, 3))
        result_type = rng.choice(TYPE_POOL)
        # some members have narrow value ranges (all large / all small),
        # so strict value predicates become vacuous or unsatisfiable on
        # them while staying selective on others -> mixed plans
        value_lo = rng.choice((0, 0, 50))
        value_hi = value_lo + rng.choice((10, 100))
        executions: list[InMemoryExecution] = []
        for exec_index in range(rng.randint(0, 4)):
            results: list[PerformanceResult] = []
            if rng.random() < 0.85:  # else: an execution with no rows
                for metric in metrics:
                    for _ in range(rng.randint(0, 6)):
                        start = float(rng.randint(0, 5))
                        results.append(
                            PerformanceResult(
                                metric=metric,
                                focus=rng.choice(foci),
                                result_type=result_type,
                                start=start,
                                end=start + float(rng.randint(1, 5)),
                                value=float(rng.randint(value_lo, value_hi)),
                            )
                        )
            executions.append(
                InMemoryExecution(
                    exec_id=str(exec_index),
                    attrs={
                        "numprocs": str(rng.choice((2, 4, 8, 16))),
                        "machine": rng.choice(("mcurie", "tcomp")),
                    },
                    results=results,
                )
            )
        wrappers[name] = InMemoryWrapper(name, executions, result_type=result_type)
    return wrappers


def _vocabulary(name_to_wrapper: dict[str, InMemoryWrapper]) -> SimpleNamespace:
    metrics: dict[str, list[str]] = {}
    foci: dict[str, list[str]] = {}
    types: dict[str, str] = {}
    samples: dict[str, list[float]] = {}
    end_max = 1.0
    for name, wrapper in name_to_wrapper.items():
        app_metrics: set[str] = set()
        app_foci: set[str] = set()
        for execution in wrapper.executions_data:
            for result in execution.results:
                app_metrics.add(result.metric)
                app_foci.add(result.focus)
                samples.setdefault(result.metric, []).append(result.value)
                end_max = max(end_max, result.end)
        metrics[name] = sorted(app_metrics) or ["alpha"]
        foci[name] = sorted(app_foci) or ["/A"]
        types[name] = wrapper.result_type
    return SimpleNamespace(
        apps=sorted(name_to_wrapper),
        metrics=metrics,
        foci=foci,
        types=types,
        samples={m: sorted(v) for m, v in samples.items()},
        end_max=end_max,
    )


@pytest.fixture(scope="module")
def cost_env(oracle_seed):
    envs = []
    for fed_seed in range(N_FEDERATIONS):
        rng = random.Random(31000 + fed_seed + 1_000_000 * oracle_seed)
        wrappers = make_federation(rng)
        grid = build_synthetic_grid(wrappers)
        engine = grid.deploy_federation(authority=f"fed{fed_seed}.pdx.edu:9090")
        envs.append(
            SimpleNamespace(
                grid=grid,
                engine=engine,
                members=engine.members(),
                vocab=_vocabulary(wrappers),
            )
        )
    yield envs
    for env in envs:
        env.grid.cleanup()


def _quote(text: str) -> str:
    return f"'{text}'"


def make_query(rng: random.Random, V) -> str:
    """One random, always-valid query from the federation's vocabulary."""
    aggregate = rng.random() < 0.65
    sources: list[str] = []
    if rng.random() < 0.4:
        sources = rng.sample(V.apps, rng.randint(1, len(V.apps)))
    candidates = sources or V.apps
    primary = rng.choice(candidates)
    pool = list(V.metrics[primary])
    if rng.random() < 0.08:  # provably-empty everywhere -> skip plans
        chosen = [GHOST_METRIC]
    else:
        chosen = rng.sample(pool, 1 if rng.random() < 0.7 else min(2, len(pool)))

    where: list[str] = []
    if rng.random() < 0.5:
        attr = rng.choice(("numprocs", "machine"))
        values = {"numprocs": ("2", "4", "8", "16"), "machine": ("mcurie", "tcomp")}[attr]
        op = rng.choice(("=", "!=", "in"))
        if op == "in":
            picked = rng.sample(values, rng.randint(1, 2))
            where.append(f"{attr} IN ({', '.join(_quote(v) for v in picked)})")
        else:
            where.append(f"{attr} {op} {_quote(rng.choice(values))}")
    if rng.random() < 0.15:
        op = rng.choice(("=", "!=", "in"))
        if op == "in":
            picked = rng.sample(V.apps, rng.randint(1, 2))
            where.append(f"app IN ({', '.join(_quote(a) for a in picked)})")
        else:
            where.append(f"app {op} {_quote(rng.choice(V.apps))}")
    if rng.random() < 0.15:
        where.append(f"exec {rng.choice(('=', '<=', '>='))} {_quote(str(rng.randint(0, 3)))}")
    if rng.random() < 0.35:  # focus allowlist; sometimes disjoint from a member
        picked = rng.sample(FOCUS_POOL, rng.randint(1, 2))
        if len(picked) == 1:
            where.append(f"focus = {_quote(picked[0])}")
        else:
            where.append(f"focus IN ({', '.join(_quote(f) for f in picked)})")
    if rng.random() < 0.15:  # tool type; members of the other type skip
        where.append(f"type = {_quote(rng.choice(TYPE_POOL))}")
    if rng.random() < 0.2:
        where.append(f"start >= {float(rng.randint(0, 3))!r}")
    if rng.random() < 0.2:
        where.append(f"end <= {float(rng.randint(2, 9))!r}")
    values = V.samples.get(chosen[0])
    if values and rng.random() < 0.55:
        # thresholds off the global distribution: vacuous on a member
        # whose range sits entirely above/below, selective on others
        threshold = rng.choice(values)
        op = rng.choice(("<", "<=", ">", ">", ">=", ">=", "=", "!="))
        where.append(f"value {op} {threshold!r}")

    group_by: list[str] = []
    if aggregate:
        funcs = rng.sample(AGG_FUNCS, rng.randint(1, 3))
        items = [f"{func}({metric})" for metric in chosen for func in funcs]
        if rng.random() < 0.9:
            keys = ["app", "exec", "focus", "numprocs", "machine"]
            group_by = rng.sample(keys, rng.randint(1, 2))
        order_pool = group_by + [i for i in items if i.startswith("count(")]
    else:
        items = list(chosen)
        order_pool = list(RAW_COLUMNS)

    text = "SELECT " + ", ".join(items)
    if sources:
        text += " FROM " + ", ".join(sources)
    if where:
        text += " WHERE " + " AND ".join(where)
    if group_by:
        text += " GROUP BY " + ", ".join(group_by)
    if order_pool and rng.random() < 0.4:
        text += f" ORDER BY {rng.choice(order_pool)}"
        if rng.random() < 0.5:
            text += " DESC"
    if rng.random() < 0.25:
        text += f" LIMIT {rng.randint(1, 10)}"
    return text


@pytest.mark.parametrize("fed", range(N_FEDERATIONS))
@pytest.mark.parametrize("seed", range(QUERIES_PER_FEDERATION))
def test_cost_based_plan_matches_naive_bytewise(cost_env, fed, seed, oracle_seed):
    env = cost_env[fed]
    rng = random.Random(91000 + fed * 1000 + seed + 1_000_000 * oracle_seed)
    text = make_query(rng, env.vocab)
    planned = env.engine.execute(text)
    expected = naive_query(text, env.members)
    assert [r.pack() for r in planned.rows] == [r.pack() for r in expected], (
        f"cost-based != naive for {text!r}\n"
        f"plan:\n{env.engine.explain(text)}\n"
        f"planned ({len(planned.rows)}): {[r.pack() for r in planned.rows[:5]]}\n"
        f"naive   ({len(expected)}): {[r.pack() for r in expected[:5]]}"
    )


def test_plan_mode_coverage(cost_env):
    """The randomized sweep must have exercised every plan mode."""
    totals: dict[str, int] = {}
    for env in cost_env:
        for mode, count in env.engine.plan_modes.items():
            totals[mode] = totals.get(mode, 0) + count
    # tier-0 may or may not fire depending on the drawn queries; the
    # four cost-model modes must all be exercised
    assert all(totals.get(mode, 0) >= 1 for mode in ("raw", "aggregate", "mixed", "skip")), (
        f"plan-mode coverage hole: {totals} — the query generator no "
        "longer drives every cost-model decision"
    )
    assert sum(totals.values()) >= N_FEDERATIONS * QUERIES_PER_FEDERATION * 0.5


def test_skip_is_visible_in_explain(cost_env):
    """A stats-proven skip shows up in the cost-annotated plan text."""
    env = cost_env[0]
    lines = env.engine.explain_plan(f"SELECT count({GHOST_METRIC}) GROUP BY app")
    text = "\n".join(lines)
    assert "skipped" in text and "effective mode: skip" in text
    result = env.engine.execute(f"SELECT count({GHOST_METRIC}) GROUP BY app")
    assert result.rows == []
    assert result.stats["executions"] == 0  # no member was touched
