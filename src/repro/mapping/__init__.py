"""Mapping Layer: wrappers translating PPerfGrid semantics to data stores.

A wrapper implements the operational semantics of Tables 1 and 2 against
one concrete store (Figure 4 of the thesis shows the RDBMS case).  The
Semantic Layer never sees SQL, file formats, or XPath — only the wrapper
interface.

Implementations provided (matching the thesis's three stores plus its
future-work variants):

* :class:`HplRdbmsWrapper` — HPL in a single relational table
* :class:`Smg98RdbmsWrapper` — SMG98 Vampir trace in five tables
* :class:`PrestaTextWrapper` — PRESTA RMA in flat ASCII files
* :class:`HplXmlWrapper` — HPL in native XML (future-work §7)
* :class:`PrestaRdbmsWrapper` — PRESTA RMA relational (future-work §7)
* :class:`PerfDmfWrapper` — a PerfDMF profile database (§2.4
  interoperability: "PPerfGrid could be used to expose a PerfDMF profile
  database")
* :class:`InMemoryWrapper` — explicit synthetic datasets (tests/benches)
"""

from repro.mapping.base import (
    ApplicationWrapper,
    ExecutionWrapper,
    MappingError,
    TimedExecutionWrapper,
)
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper
from repro.mapping.perfdmf import PerfDmfWrapper
from repro.mapping.rdbms import (
    HplRdbmsWrapper,
    PrestaRdbmsWrapper,
    Smg98RdbmsWrapper,
)
from repro.mapping.textfile import PrestaTextWrapper
from repro.mapping.xmlwrap import HplXmlWrapper

__all__ = [
    "ApplicationWrapper",
    "ExecutionWrapper",
    "HplRdbmsWrapper",
    "HplXmlWrapper",
    "InMemoryExecution",
    "InMemoryWrapper",
    "MappingError",
    "PerfDmfWrapper",
    "PrestaRdbmsWrapper",
    "PrestaTextWrapper",
    "Smg98RdbmsWrapper",
    "TimedExecutionWrapper",
]
