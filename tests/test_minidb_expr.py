"""Unit tests for expression evaluation, coercion, and types."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Database, ProgrammingError, SqlSyntaxError
from repro.minidb.expr import (
    BoundExpr,
    ColumnRef,
    Comparison,
    Literal,
    RowLayout,
    contains_aggregate,
    column_refs,
    FuncCall,
    BinaryOp,
)
from repro.minidb.types import SqlType, coerce, compare_values, sort_key


@pytest.fixture()
def db():
    database = Database("x")
    database.execute("CREATE TABLE t (a INTEGER, s TEXT, r REAL, b BOOLEAN)")
    database.execute("INSERT INTO t VALUES (1, 'x', 1.5, TRUE)")
    return database


def _eval(db, expr: str):
    return db.query(f"SELECT {expr} FROM t").scalar()


class TestArithmetic:
    def test_integer_ops(self, db):
        assert _eval(db, "7 + 3") == 10
        assert _eval(db, "7 - 3") == 4
        assert _eval(db, "7 * 3") == 21
        assert _eval(db, "7 / 2") == 3.5
        assert _eval(db, "7 % 3") == 1

    def test_null_propagation(self, db):
        assert _eval(db, "NULL + 1") is None
        assert _eval(db, "1 * NULL") is None
        assert _eval(db, "-(NULL)") is None
        assert _eval(db, "NULL || 'x'") is None

    def test_unary_minus_and_plus(self, db):
        assert _eval(db, "-a") == -1
        assert _eval(db, "+a") == 1
        assert _eval(db, "-(-a)") == 1
        # '--' starts a SQL line comment, so '--a' is not double negation.
        with pytest.raises(SqlSyntaxError):
            _eval(db, "--a")

    def test_string_arithmetic_rejected(self, db):
        with pytest.raises(ProgrammingError):
            _eval(db, "s + 1")
        with pytest.raises(ProgrammingError):
            _eval(db, "1 || 'x'")

    def test_modulo_by_zero(self, db):
        with pytest.raises(ProgrammingError):
            _eval(db, "1 % 0")


class TestComparisonSemantics:
    def test_cross_kind_comparison_is_false(self, db):
        assert _eval(db, "s = 1") is False
        assert _eval(db, "a = 'x'") is False
        assert _eval(db, "b = 1") is False  # bool vs number

    def test_int_float_compare_numerically(self, db):
        assert _eval(db, "1 = 1.0") is True
        assert _eval(db, "r > a") is True

    def test_not_of_null_comparison(self, db):
        # NULL = NULL is false, so NOT of it is true under 2VL.
        assert _eval(db, "NOT (NULL = NULL)") is True


class TestCompareValues:
    def test_nulls(self):
        assert compare_values(None, 1) is None
        assert compare_values(1, None) is None

    def test_numbers(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2.5, 2.5) == 0
        assert compare_values(3, 2.5) == 1

    def test_strings(self):
        assert compare_values("a", "b") == -1

    def test_bools(self):
        assert compare_values(False, True) == -1
        assert compare_values(True, True) == 0

    def test_mixed_kinds_none(self):
        assert compare_values("1", 1) is None
        assert compare_values(True, 1) is None


class TestSortKey:
    def test_total_order_across_kinds(self):
        values = ["b", None, 2, True, "a", 1.5, False, None]
        ordered = sorted(values, key=sort_key)
        assert ordered[:2] == [None, None]
        assert ordered[2:4] == [False, True]
        assert ordered[4:6] == [1.5, 2]
        assert ordered[6:] == ["a", "b"]

    @given(st.lists(st.one_of(st.none(), st.booleans(), st.integers(), st.text(max_size=5))))
    @settings(max_examples=100, deadline=None)
    def test_sort_key_is_total(self, values):
        sorted(values, key=sort_key)  # must never raise


class TestCoercion:
    def test_int_widens_to_real(self):
        assert coerce(3, SqlType.REAL, "c") == 3.0
        assert isinstance(coerce(3, SqlType.REAL, "c"), float)

    def test_integral_float_narrows_to_int(self):
        assert coerce(4.0, SqlType.INTEGER, "c") == 4

    def test_fractional_float_to_int_rejected(self):
        with pytest.raises(ProgrammingError):
            coerce(4.5, SqlType.INTEGER, "c")

    def test_bool_is_not_a_number(self):
        with pytest.raises(ProgrammingError):
            coerce(True, SqlType.INTEGER, "c")
        with pytest.raises(ProgrammingError):
            coerce(1, SqlType.BOOLEAN, "c")

    def test_null_passes(self):
        assert coerce(None, SqlType.TEXT, "c") is None

    def test_type_parse_aliases(self):
        assert SqlType.parse("bigint") is SqlType.INTEGER
        assert SqlType.parse("Double") is SqlType.REAL
        with pytest.raises(ProgrammingError):
            SqlType.parse("blob")


class TestRowLayout:
    def test_qualified_and_unqualified(self):
        layout = RowLayout([("t", "a"), ("t", "b"), ("u", "c")])
        assert layout.resolve(ColumnRef("t", "b")) == 1
        assert layout.resolve(ColumnRef(None, "c")) == 2

    def test_ambiguous_unqualified_raises(self):
        layout = RowLayout([("t", "a"), ("u", "a")])
        with pytest.raises(ProgrammingError):
            layout.resolve(ColumnRef(None, "a"))
        assert layout.resolve(ColumnRef("u", "a")) == 1

    def test_case_insensitive(self):
        layout = RowLayout([("T", "Col")])
        assert layout.resolve(ColumnRef("t", "COL")) == 0

    def test_concat(self):
        left = RowLayout([("t", "a")])
        right = RowLayout([("u", "b")])
        combined = left.concat(right)
        assert combined.resolve(ColumnRef("u", "b")) == 1


class TestAggregateDetection:
    def test_direct(self):
        assert contains_aggregate(FuncCall("COUNT", (), star=True))

    def test_nested_in_arithmetic(self):
        expr = BinaryOp("+", Literal(1), FuncCall("SUM", (ColumnRef(None, "x"),)))
        assert contains_aggregate(expr)

    def test_scalar_function_is_not_aggregate(self):
        assert not contains_aggregate(FuncCall("LOWER", (ColumnRef(None, "x"),)))

    def test_column_refs_collects_in_order(self):
        expr = Comparison(
            "=",
            BinaryOp("+", ColumnRef("t", "a"), ColumnRef(None, "b")),
            ColumnRef("u", "c"),
        )
        refs = column_refs(expr)
        assert [(r.table, r.column) for r in refs] == [("t", "a"), (None, "b"), ("u", "c")]

    def test_aggregate_outside_group_context_rejected(self):
        layout = RowLayout([("t", "a")])
        with pytest.raises(ProgrammingError):
            BoundExpr(FuncCall("SUM", (ColumnRef(None, "a"),)), layout)
