"""Table 5 — Performance-Result caching.

Regenerates the caching-off/caching-on comparison (30 queries per arm,
as in the thesis) and asserts the shape:

* SMG98 benefits enormously (paper: 137x; here the cached floor is the
  SOAP serialization of the ~100 KB response, so the ratio is smaller
  but still dominates every other source);
* HPL and RMA see modest speedups near 1 (paper: 1.96 and 1.03; our
  in-process Mapping Layer is far cheaper than 2004 JDBC, muting HPL).

The per-source benchmarks time cached (hot) ``getPR`` calls for direct
comparison with the uncached benchmarks in ``bench_table4_overhead``.
"""

from conftest import write_result

from repro.core.semantic import UNDEFINED_TYPE
from repro.experiments.caching import run_caching_experiment


def test_table5_regeneration(benchmark):
    result = benchmark.pedantic(
        run_caching_experiment, kwargs={"num_queries": 30}, rounds=1, iterations=1
    )
    write_result("table5_caching.txt", result.to_table())

    by = {r.source: r.speedup for r in result.rows}
    # SMG98 must dominate both other sources decisively.
    assert by["SMG98"] > 3.0
    assert by["SMG98"] > 2 * max(by["HPL"], by["PRESTA-RMA"])
    # Caching never hurts meaningfully anywhere.
    for row in result.rows:
        assert row.speedup > 0.8


def _hot_query(grid, source, metric, foci):
    binding = grid.bind(source)
    execution = binding.all_executions()[0]
    execution.get_pr(metric, foci, result_type=UNDEFINED_TYPE)  # warm the cache

    def query():
        return execution.get_pr(metric, foci, result_type=UNDEFINED_TYPE)

    return query


def test_getpr_hpl_cached(paper_grid_cached, benchmark):
    query = _hot_query(paper_grid_cached, "HPL", "gflops", ["/Run"])
    assert len(benchmark(query)) == 1


def test_getpr_rma_cached(paper_grid_cached, benchmark):
    query = _hot_query(paper_grid_cached, "PRESTA-RMA", "bandwidth_mbps", ["/Op/MPI_Put"])
    assert len(benchmark(query)) == 20


def test_getpr_smg98_cached(paper_grid_cached, benchmark):
    query = _hot_query(
        paper_grid_cached, "SMG98", "time_spent", ["/Code/MPI/MPI_Allgather"]
    )
    results = benchmark.pedantic(query, rounds=5, iterations=1)
    assert len(results) > 100
