"""ContainerMonitor: a service publishing one container's load as SDEs.

The admission-control metrics — queue depth, in-flight count, peaks, and
the ``requests_handled`` / ``requests_rejected`` / ``requests_shed``
split — need a Services Layer surface so remote operators (and the
concurrency benchmark) can read them the same way they read any other
service data.  Deploy one per container with
:meth:`~repro.ogsi.container.ServiceContainer.deploy_monitor`; the SDEs
are refreshed from the live counters on every read, so a plain
``FindServiceData("queueDepth")`` always answers with current state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

from repro.ogsi.service import GridServiceBase
from repro.wsdl.porttype import Operation, PortType

if TYPE_CHECKING:  # pragma: no cover
    from repro.ogsi.container import ServiceContainer

#: PPerfGrid extension namespace for the monitor PortType
MONITOR_NS = "http://pperfgrid.cs.pdx.edu/2004/monitor"

CONTAINER_MONITOR_PORTTYPE = PortType(
    name="ContainerMonitor",
    namespace=MONITOR_NS,
    doc=(
        "Read-only view of a container's ingress and admission-control "
        "counters, published as service data."
    ),
    operations=(
        Operation(
            "getContainerStats",
            (),
            "xsd:string[]",
            doc=(
                "Return every container counter as a 'name=value' record: "
                "requestsHandled/requestsRejected/requestsShed, "
                "inflight/queueDepth and their peaks, admitted/shed/"
                "queueWaits, and the deployed-service count."
            ),
        ),
    ),
)


def _flatten(prefix: str, value, out: dict) -> None:
    """Flatten nested stats dicts into dotted scalar names."""
    if isinstance(value, Mapping):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}", value[key], out)
    else:
        out[prefix] = value


class ContainerMonitorService(GridServiceBase):
    """SDE/operation surface over :meth:`ServiceContainer.stats`.

    ``sources`` (or :meth:`add_stats_source`) attaches extra named stats
    providers — e.g. the federation engine's fan-out scheduler — whose
    dicts are flattened into dotted SDE names
    (``fanoutScheduler.queueDepth``, ``fanoutScheduler.tenants.alpha.shed``)
    so the same FindServiceData surface covers them.  A provider that
    raises contributes a single ``<name>.error=1`` record instead of
    breaking the whole refresh.
    """

    porttype = CONTAINER_MONITOR_PORTTYPE

    def __init__(
        self,
        target: "ServiceContainer",
        sources: Mapping[str, Callable[[], Mapping]] | None = None,
    ) -> None:
        super().__init__()
        self._target = target
        self._sources: dict[str, Callable[[], Mapping]] = dict(sources or {})

    def add_stats_source(self, name: str, provider: Callable[[], Mapping]) -> None:
        """Attach a named stats dict provider after deployment."""
        self._sources[name] = provider

    def _refresh(self) -> dict:
        stats: dict = dict(self._target.stats())
        for name, provider in self._sources.items():
            try:
                _flatten(name, provider(), stats)
            except Exception:
                stats[f"{name}.error"] = 1
        for name, value in stats.items():
            self.service_data.set(name, str(value))
        return stats

    def on_deployed(self, container, gsh) -> None:
        super().on_deployed(container, gsh)
        self._refresh()

    # --------------------------------------------------------- operations
    def FindServiceData(self, queryExpression: str) -> str:
        self.require_active()
        self._refresh()
        return super().FindServiceData(queryExpression)

    def getContainerStats(self) -> list[str]:
        self.require_active()
        stats = self._refresh()
        return [f"{name}={stats[name]}" for name in sorted(stats)]
