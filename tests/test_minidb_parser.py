"""Tests for the SQL lexer and parser."""

import pytest

from repro.minidb.errors import SqlSyntaxError
from repro.minidb.expr import (
    Between,
    BinaryOp,
    BoolOp,
    Comparison,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    NotOp,
)
from repro.minidb.sql_ast import (
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DropIndexStmt,
    DropTableStmt,
    InsertStmt,
    SelectStmt,
    UpdateStmt,
)
from repro.minidb.sql_lexer import TokenKind, tokenize
from repro.minidb.sql_parser import parse_sql
from repro.minidb.types import SqlType


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("MyTable")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "MyTable"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].value == "it's"

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 1e3 2.5E-2 .5")[:-1]]
        assert values == ["1", "2.5", "1e3", "2.5E-2", ".5"]

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT -- comment\n 1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]

    def test_quoted_identifier(self):
        tokens = tokenize('"Weird Name"')
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "Weird Name"

    def test_two_char_operators(self):
        values = [t.value for t in tokenize("<= >= != <> ||")[:-1]]
        assert values == ["<=", ">=", "!=", "<>", "||"]

    @pytest.mark.parametrize("bad", ["'unterminated", '"unterminated', "1e", "@"])
    def test_lex_errors(self, bad):
        with pytest.raises(SqlSyntaxError):
            tokenize(bad)

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].kind is TokenKind.EOF


class TestSelectParsing:
    def test_minimal(self):
        stmt = parse_sql("SELECT * FROM t")
        assert isinstance(stmt, SelectStmt)
        assert stmt.items[0].is_star
        assert stmt.table.table == "t" and stmt.table.alias == "t"

    def test_alias_forms(self):
        assert parse_sql("SELECT * FROM t AS x").table.alias == "x"
        assert parse_sql("SELECT * FROM t x").table.alias == "x"

    def test_select_items_with_aliases(self):
        stmt = parse_sql("SELECT a, b AS bee, a + 1 plus FROM t")
        assert stmt.items[0].alias is None
        assert stmt.items[1].alias == "bee"
        assert stmt.items[2].alias == "plus"
        assert isinstance(stmt.items[2].expr, BinaryOp)

    def test_qualified_star(self):
        stmt = parse_sql("SELECT t.*, u.x FROM t JOIN u ON t.id = u.id")
        assert stmt.items[0].is_star and stmt.items[0].star_table == "t"

    def test_where_precedence(self):
        stmt = parse_sql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, BoolOp) and stmt.where.op == "OR"
        assert isinstance(stmt.where.right, BoolOp) and stmt.where.right.op == "AND"

    def test_not_binds_tighter_than_and(self):
        stmt = parse_sql("SELECT * FROM t WHERE NOT a = 1 AND b = 2")
        assert isinstance(stmt.where, BoolOp) and stmt.where.op == "AND"
        assert isinstance(stmt.where.left, NotOp)

    def test_arithmetic_precedence(self):
        stmt = parse_sql("SELECT a + b * c FROM t")
        expr = stmt.items[0].expr
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_parentheses(self):
        stmt = parse_sql("SELECT (a + b) * c FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "*" and expr.left.op == "+"

    def test_predicates(self):
        stmt = parse_sql(
            "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL AND c IN (1, 2) "
            "AND d NOT IN (3) AND e BETWEEN 1 AND 5 AND f NOT BETWEEN 2 AND 3 "
            "AND g LIKE 'x%' AND h NOT LIKE '_y'"
        )
        kinds = []
        def walk(e):
            if isinstance(e, BoolOp):
                walk(e.left); walk(e.right)
            else:
                kinds.append(type(e).__name__ + (":neg" if getattr(e, "negated", False) else ""))
        walk(stmt.where)
        assert kinds == [
            "IsNull", "IsNull:neg", "InList", "InList:neg",
            "Between", "Between:neg", "Like", "Like:neg",
        ]

    def test_group_by_having_order_limit(self):
        stmt = parse_sql(
            "SELECT a, COUNT(*) n FROM t GROUP BY a HAVING COUNT(*) > 2 "
            "ORDER BY n DESC, a ASC LIMIT 5 OFFSET 2"
        )
        assert len(stmt.group_by) == 1
        assert isinstance(stmt.having, Comparison)
        assert stmt.order_by[0].descending and not stmt.order_by[1].descending
        assert stmt.limit == 5 and stmt.offset == 2

    def test_joins(self):
        stmt = parse_sql(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y "
            "INNER JOIN d ON c.z = d.z"
        )
        assert len(stmt.joins) == 3
        assert not stmt.joins[0].left_outer
        assert stmt.joins[1].left_outer
        assert not stmt.joins[2].left_outer

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_count_star(self):
        stmt = parse_sql("SELECT COUNT(*) FROM t")
        call = stmt.items[0].expr
        assert isinstance(call, FuncCall) and call.star

    def test_star_only_for_count(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT SUM(*) FROM t")

    def test_literals(self):
        stmt = parse_sql("SELECT 1, 2.5, 'x', NULL, TRUE, FALSE, -3 FROM t")
        values = [it.expr for it in stmt.items]
        assert values[0] == Literal(1)
        assert values[1] == Literal(2.5)
        assert values[2] == Literal("x")
        assert values[3] == Literal(None)
        assert values[4] == Literal(True)
        assert values[5] == Literal(False)
        assert isinstance(values[6], Negate)

    def test_trailing_semicolon_ok(self):
        parse_sql("SELECT * FROM t;")

    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT FROM t",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t LIMIT -1",
            "SELECT * FROM t LIMIT x",
            "SELECT * FROM t GROUP a",
            "SELECT * FROM t extra garbage",
            "FROB x",
            "SELECT * FROM t JOIN u",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse_sql(bad)


class TestOtherStatements:
    def test_insert(self):
        stmt = parse_sql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, InsertStmt)
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        stmt = parse_sql("INSERT INTO t VALUES (1)")
        assert stmt.columns == ()

    def test_update(self):
        stmt = parse_sql("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert isinstance(stmt, UpdateStmt)
        assert [col for col, _ in stmt.assignments] == ["a", "b"]
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_sql("DELETE FROM t")
        assert isinstance(stmt, DeleteStmt)
        assert stmt.where is None

    def test_create_table(self):
        stmt = parse_sql(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL, score REAL)"
        )
        assert isinstance(stmt, CreateTableStmt)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[2].sql_type is SqlType.REAL

    def test_create_table_if_not_exists(self):
        assert parse_sql("CREATE TABLE IF NOT EXISTS t (a INT)").if_not_exists

    def test_type_aliases(self):
        stmt = parse_sql("CREATE TABLE t (a INT, b DOUBLE, c VARCHAR, d BOOL)")
        assert [c.sql_type for c in stmt.columns] == [
            SqlType.INTEGER,
            SqlType.REAL,
            SqlType.TEXT,
            SqlType.BOOLEAN,
        ]

    def test_create_index(self):
        stmt = parse_sql("CREATE UNIQUE INDEX idx ON t (col)")
        assert isinstance(stmt, CreateIndexStmt)
        assert stmt.unique and stmt.column == "col"

    def test_drop_statements(self):
        assert isinstance(parse_sql("DROP TABLE t"), DropTableStmt)
        assert parse_sql("DROP TABLE IF EXISTS t").if_exists
        assert isinstance(parse_sql("DROP INDEX i"), DropIndexStmt)
        assert parse_sql("DROP INDEX IF EXISTS i").if_exists

    def test_unknown_column_type_rejected(self):
        from repro.minidb.errors import ProgrammingError

        with pytest.raises(ProgrammingError):
            parse_sql("CREATE TABLE t (a BLOB)")
