"""Table 4 — Grid services overhead.

Regenerates the table at the thesis's query counts (100 HPL / 100 RMA /
30 SMG98) and asserts its shape:

* overhead%% ordering: RMA > HPL > SMG98 (paper: 71%% > 28%% > 11%%);
* payload-bytes ordering: SMG98 >> RMA >> HPL (paper: ~421 KB > ~5.7 KB
  > ~8 B);
* SMG98 overhead%% lands near the paper's 11%%.

The per-source benchmarks time one uncached ``getPR`` through the full
Virtualization -> SOAP -> Semantic -> Mapping -> data-store path.
"""

from conftest import write_result

from repro.core.semantic import UNDEFINED_TYPE
from repro.experiments.overhead import run_overhead_experiment


def test_table4_regeneration(paper_grid_uncached, benchmark):
    result = benchmark.pedantic(
        run_overhead_experiment,
        kwargs={"grid": paper_grid_uncached},
        rounds=1,
        iterations=1,
    )
    table = result.to_table()
    write_result("table4_overhead.txt", table)

    by_pct = {r.source: r.overhead_pct for r in result.rows}
    assert by_pct["PRESTA-RMA"] > by_pct["HPL"] > by_pct["SMG98"]
    assert by_pct["SMG98"] < 30.0  # paper: 11%

    by_payload = {r.source: r.payload_bytes_per_query for r in result.rows}
    assert by_payload["SMG98"] > by_payload["PRESTA-RMA"] > by_payload["HPL"]

    by_total = {r.source: r.mean_total_ms for r in result.rows}
    assert by_total["SMG98"] > by_total["PRESTA-RMA"] > by_total["HPL"]


def _one_query(grid, source, metric, foci):
    binding = grid.bind(source)
    execution = binding.all_executions()[0]

    def query():
        return execution.get_pr(metric, foci, result_type=UNDEFINED_TYPE)

    return query


def test_getpr_hpl_uncached(paper_grid_uncached, benchmark):
    query = _one_query(paper_grid_uncached, "HPL", "gflops", ["/Run"])
    results = benchmark(query)
    assert len(results) == 1


def test_getpr_rma_uncached(paper_grid_uncached, benchmark):
    query = _one_query(
        paper_grid_uncached, "PRESTA-RMA", "bandwidth_mbps", ["/Op/MPI_Put"]
    )
    results = benchmark(query)
    assert len(results) == 20


def test_getpr_smg98_uncached(paper_grid_uncached, benchmark):
    query = _one_query(
        paper_grid_uncached, "SMG98", "time_spent", ["/Code/MPI/MPI_Allgather"]
    )
    results = benchmark.pedantic(query, rounds=3, iterations=1)
    assert len(results) > 100


def test_mapping_layer_only_smg98(paper_grid_uncached, benchmark):
    """The denominator of the SMG98 overhead%: the raw Mapping-Layer query."""
    wrapper = paper_grid_uncached.smg98_site.wrapper.execution("1")
    results = benchmark.pedantic(
        wrapper.get_pr,
        args=("time_spent", ["/Code/MPI/MPI_Allgather"], 0.0, -1.0, UNDEFINED_TYPE),
        rounds=3,
        iterations=1,
    )
    assert results
