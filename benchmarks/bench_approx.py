"""Tier-0 metadata answers and approximate queries vs the exact paths.

Two gates on one skewed synthetic federation (a fat member next to
several thin ones, all publishing complete stats and metric sketches):

* **Tier-0 latency** — a corpus of tier-0-answerable aggregate queries
  (vacuous value thresholds keep each fingerprint distinct while every
  bucket provably matches) runs on a tier-0 engine and on an identical
  engine with the tier disabled.  The tier-0 arm must answer every
  query with **zero member round-trips** (``stats["calls"] == 0``) and
  a p50 cold latency at least **10x** below the fan-out arm's.

* **Approximate transfer** — a straddling strict predicate forces the
  exact planner into raw mode (every matching row crosses the wire);
  ``approx=True`` answers the same aggregates from merged sketches with
  per-cell error bounds.  Every approximate cell must contain the exact
  arm's answer within its stated bounds, at **5x** fewer payload bytes.

``FEDQUERY_BENCH_QUICK=1`` (the CI mode) shrinks the federation so the
file runs in seconds while asserting the same shape.  Alongside the
text table the bench emits ``BENCH_approx.json`` with the key metrics
and speedup ratios.
"""

from __future__ import annotations

import os
import random
import statistics
import time

import pytest
from conftest import write_json, write_result

from repro.core.semantic import PerformanceResult
from repro.experiments.common import build_synthetic_grid
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper

QUICK = os.environ.get("FEDQUERY_BENCH_QUICK", "") not in ("", "0")

METRIC = "elapsed_us"

#: every member's values sit far above these thresholds, so the
#: predicates are vacuous (provably exact tier-0 answers) while each
#: query text keeps its own plan-cache fingerprint
TIER0_CORPUS = [
    f"SELECT count({METRIC}), sum({METRIC}), mean({METRIC}), "
    f"min({METRIC}), max({METRIC}) WHERE value > -{t}.0 GROUP BY app"
    for t in range(1, 7 if QUICK else 13)
]

#: straddles every member's range: not pushable (strict '>'), not
#: vacuous, not unsatisfiable — the exact planner ships raw rows, the
#: approximate planner answers from sketch buckets with bounds
APPROX_QUERY = (
    f"SELECT count({METRIC}), sum({METRIC}), mean({METRIC}) "
    "WHERE value > 500.0 GROUP BY app"
)


def _federation() -> dict[str, InMemoryWrapper]:
    rng = random.Random(20260808)

    def execution(exec_id: str, rows: int, lo: int, hi: int) -> InMemoryExecution:
        return InMemoryExecution(
            exec_id,
            {"numprocs": "8"},
            [
                PerformanceResult(
                    METRIC, "/Comm", "synthetic", 0.0, 5.0,
                    float(rng.randint(lo, hi)),
                )
                for _ in range(rows)
            ],
        )

    wrappers: dict[str, InMemoryWrapper] = {}
    fat_execs = 6 if QUICK else 24
    fat_rows = 40 if QUICK else 150
    wrappers["FAT"] = InMemoryWrapper(
        "FAT",
        [execution(str(index), fat_rows, 100, 900) for index in range(fat_execs)],
    )
    thin_members = 3 if QUICK else 6
    for index in range(thin_members):
        wrappers[f"THIN{index}"] = InMemoryWrapper(
            f"THIN{index}",
            [
                execution(str(exec_index), 8, 200 + 50 * index, 1000)
                for exec_index in range(3)
            ],
        )
    return wrappers


@pytest.fixture(scope="module")
def arms():
    grid = build_synthetic_grid(_federation())
    tier0_engine = grid.deploy_federation(authority="fed-tier0.pdx.edu:9090")
    fanout_engine = grid.deploy_federation(authority="fed-fanout.pdx.edu:9090")
    fanout_engine.tier0 = False
    yield {"tier0": tier0_engine, "fan-out": fanout_engine}
    grid.cleanup()


def _timed(engine, text: str, **kwargs):
    t0 = time.perf_counter()
    result = engine.execute(text, **kwargs)
    return time.perf_counter() - t0, result


def test_tier0_latency_and_round_trips(arms):
    # warmup populates each engine's member-stats cache; the corpus then
    # measures the steady state (every query text is a cache miss)
    for engine in arms.values():
        engine.execute(f"SELECT count({METRIC}) GROUP BY app")

    latencies: dict[str, list[float]] = {name: [] for name in arms}
    for text in TIER0_CORPUS:
        packed: dict[str, list[str]] = {}
        for name, engine in arms.items():
            elapsed, result = _timed(engine, text)
            assert result.cached is False
            latencies[name].append(elapsed)
            packed[name] = [row.pack() for row in result.rows]
            if name == "tier0":
                # the whole point: answered with zero member round-trips
                assert result.stats["calls"] == 0, text
                assert result.stats["tier0Members"] == len(result.plan.members)
                assert result.stats["estimatedRoundTrips"] == 0
                assert result.plan.effective_mode == "tier0"
        # exact mode: the metadata answer is byte-identical to fan-out
        assert packed["tier0"] == packed["fan-out"], text

    p50 = {name: statistics.median(values) for name, values in latencies.items()}
    speedup = p50["fan-out"] / max(p50["tier0"], 1e-9)

    lines = [
        f"Tier-0 metadata answers vs full fan-out ({'quick' if QUICK else 'full'} scale)",
        f"{'arm':<10}{'queries':>9}{'p50':>12}{'p95':>12}",
    ]
    for name, values in latencies.items():
        ordered = sorted(values)
        p95 = ordered[int(0.95 * (len(ordered) - 1))]
        lines.append(f"{name:<10}{len(values):>9}{p50[name] * 1e3:>10.3f}ms{p95 * 1e3:>10.3f}ms")
    lines.append(f"tier-0 p50 speedup: {speedup:.1f}x (gate: >= 10x)")
    write_result("approx_tier0.txt", "\n".join(lines))
    write_json(
        "approx_tier0",
        {
            "scale": "quick" if QUICK else "full",
            "queries": len(TIER0_CORPUS),
            "p50_seconds": p50,
            "p50_speedup": speedup,
            "tier0_round_trips": 0,
        },
    )
    assert speedup >= 10.0, f"tier-0 p50 speedup only {speedup:.1f}x"


def test_approx_bounds_and_bytes(arms):
    tier0_engine, fanout_engine = arms["tier0"], arms["fan-out"]
    _, exact = _timed(fanout_engine, APPROX_QUERY)
    approx_elapsed, approx = _timed(tier0_engine, APPROX_QUERY, approx=True)

    assert approx.approx is True
    assert approx.stats["calls"] == 0, "sketches should answer every member"
    exact_by_app = {row.values[0]: row for row in exact.rows}
    assert {row.values[0] for row in approx.rows} == set(exact_by_app)

    checked = 0
    for row, bounds in zip(approx.rows, approx.error_bounds):
        exact_row = exact_by_app[row.values[0]]
        for label, (low, high) in bounds.items():
            assert low <= exact_row[label] <= high, (
                f"{row.values[0]} {label}: exact {exact_row[label]} "
                f"outside stated bounds [{low}, {high}]"
            )
            checked += 1
    assert checked >= len(approx.rows), "bounds must cover the inexact cells"

    exact_bytes = exact.stats["payloadBytes"]
    approx_bytes = approx.stats["payloadBytes"]
    ratio = exact_bytes / max(1, approx_bytes)

    lines = [
        "Approximate aggregates from merged sketches vs exact push-down",
        f"{'arm':<10}{'mode':>10}{'calls':>7}{'bytes':>10}{'rows':>6}",
        f"{'exact':<10}{exact.plan.effective_mode:>10}{exact.stats['calls']:>7}"
        f"{exact_bytes:>10}{len(exact.rows):>6}",
        f"{'approx':<10}{approx.plan.effective_mode:>10}{approx.stats['calls']:>7}"
        f"{approx_bytes:>10}{len(approx.rows):>6}",
        f"bounded cells checked against exact: {checked} (all within bounds)",
        f"transfer reduction: {ratio:.1f}x fewer bytes (gate: >= 5x)",
    ]
    write_result("approx_bounds.txt", "\n".join(lines))
    write_json(
        "approx_bounds",
        {
            "scale": "quick" if QUICK else "full",
            "exact_bytes": exact_bytes,
            "approx_bytes": approx_bytes,
            "bytes_reduction": ratio,
            "bounded_cells_checked": checked,
            "approx_seconds": approx_elapsed,
        },
    )
    assert exact_bytes >= 5 * max(1, approx_bytes), (
        f"transfer reduction only {ratio:.1f}x"
    )
