"""Semantic-layer data model and PortType definitions (Tables 1 and 2).

The thesis's wire conventions are preserved exactly:

* ``getAppInfo`` / ``getInfo`` return ``"name|value"`` strings;
* ``getExecQueryParams`` returns ``"name|v1|v2|..."`` strings;
* ``getAllExecs`` / ``getExecs`` return GSH strings;
* ``getPR`` returns Performance Results as strings, and the PR cache is
  keyed by a ``"metric | foci | type | start-end"`` parameter string.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ogsi.porttypes import (
    GRID_SERVICE_PORTTYPE,
    NOTIFICATION_SOURCE_PORTTYPE,
)
from repro.wsdl.porttype import Operation, Parameter, PortType

PPERFGRID_NS = "http://pperfgrid.cs.pdx.edu/2004"

#: the thesis's placeholder when a query does not constrain the tool type
UNDEFINED_TYPE = "UNDEFINED"


@dataclass(frozen=True)
class PerformanceResult:
    """One performance measurement: one metric, one focus, one time span.

    ``type`` names the measurement tool that collected the data (e.g.
    ``"vampir"``, ``"hpl"``, ``"presta"``).
    """

    metric: str
    focus: str
    result_type: str
    start: float
    end: float
    value: float

    def pack(self) -> str:
        """Wire form: ``metric|focus|type|start-end|value``.

        Times are rendered fixed-point (they are non-negative offsets), so
        the span contains exactly one ``-`` and round-trips unambiguously.
        """
        return (
            f"{self.metric}|{self.focus}|{self.result_type}|"
            f"{self.start:.9f}-{self.end:.9f}|{self.value!r}"
        )

    @staticmethod
    def unpack(text: str) -> "PerformanceResult":
        parts = text.split("|")
        if len(parts) != 5:
            raise ValueError(f"bad PerformanceResult record {text!r}")
        metric, focus, result_type, span, value = parts
        start_text, sep, end_text = span.partition("-")
        if not sep:
            raise ValueError(f"bad time span in {text!r}")
        try:
            return PerformanceResult(
                metric=metric,
                focus=focus,
                result_type=result_type,
                start=float(start_text),
                end=float(end_text),
                value=float(value),
            )
        except ValueError as exc:
            raise ValueError(f"bad PerformanceResult record {text!r}: {exc}") from exc


def pr_cache_key(metric: str, foci: list[str], start: str, end: str, result_type: str) -> str:
    """The thesis's cache-key format (§5.3.2.3)."""
    return f"{metric} | {';'.join(foci)} | {result_type} | {start}-{end}"


def ordering_key(value: object) -> tuple[int, float, str]:
    """Numeric-aware, type-stable sort key for one cell value.

    This is the canonical total order every deterministic result
    ordering in the system derives from: the federated bulk merge sorts
    whole rows by it, and streaming cursors sort server-side by it so a
    client k-way merge of sorted member streams reproduces the bulk
    ordering byte for byte.
    """
    if isinstance(value, (int, float)):
        return (0, float(value), "")
    try:
        return (0, float(str(value)), "")
    except ValueError:
        return (1, 0.0, str(value))


def pr_sort_key(result: "PerformanceResult") -> tuple:
    """Canonical order of Performance Results within one (execution,
    metric) stream: the per-cell :func:`ordering_key` over the packed
    fields, matching the column order of a federated raw result row."""
    return (
        ordering_key(result.focus),
        ordering_key(result.result_type),
        ordering_key(result.start),
        ordering_key(result.end),
        ordering_key(result.value),
    )


@dataclass(frozen=True)
class AggregateRecord:
    """One server-side aggregation bucket (the ``getPRAgg`` wire unit).

    Instead of shipping every Performance Result to the client, a store
    can reduce them to combinable accumulator fields: ``count``, ``total``,
    ``minimum``, ``maximum``.  Any of count/sum/mean/min/max can be
    recovered from these after merging buckets across executions, which
    is what makes partial aggregation at the store safe.  ``group`` is
    the bucket key (``""`` for a global aggregate, a focus path when
    grouping by focus).
    """

    group: str
    count: int
    total: float
    minimum: float
    maximum: float

    def pack(self) -> str:
        """Wire form: ``group|count|total|min|max`` (group has no '|')."""
        return (
            f"{self.group}|{self.count}|{self.total!r}|"
            f"{self.minimum!r}|{self.maximum!r}"
        )

    @staticmethod
    def unpack(text: str) -> "AggregateRecord":
        parts = text.split("|")
        if len(parts) != 5:
            raise ValueError(f"bad AggregateRecord {text!r}")
        group, count, total, minimum, maximum = parts
        try:
            return AggregateRecord(
                group=group,
                count=int(count),
                total=float(total),
                minimum=float(minimum),
                maximum=float(maximum),
            )
        except ValueError as exc:
            raise ValueError(f"bad AggregateRecord {text!r}: {exc}") from exc


@dataclass(frozen=True)
class MetricStats:
    """Per-metric store statistics (the ``getStats`` wire unit).

    Soundness contract (the planner skips members based on these, so the
    bounds must be conservative):

    * ``rows`` may be an estimate, EXCEPT that ``rows == 0`` must be
      exact — a zero row count is a proof that ``getPR`` for this metric
      returns nothing.
    * ``[minimum, maximum]`` must be a superset of every value ``getPR``
      can ever return for this metric (including derived values such as
      per-focus sums); widening is safe, narrowing is not.
    """

    metric: str
    rows: int
    minimum: float
    maximum: float

    def pack(self) -> str:
        """Wire form: ``metric|name|rows|min|max``."""
        return f"metric|{self.metric}|{self.rows}|{self.minimum!r}|{self.maximum!r}"


@dataclass(frozen=True)
class StoreStats:
    """Statistics describing one store (execution- or application-level).

    Published by ``getStats`` / the ``storeStats`` SDE so the federated
    query planner can cost and, when provable, skip members.  The same
    conservativeness contract as :class:`MetricStats` applies:

    * ``foci`` and ``types`` must be complete (supersets are fine);
    * ``start``/``end`` describe time coverage but are *estimates only* —
      some stores ignore the time window in ``getPR``, so the planner
      never skips on the window;
    * ``complete=False`` marks stats that do not honour the contract;
      the planner then uses them for cost estimates only, never proofs.

    ``sketches``/``distincts`` carry optional mergeable sketches
    (:class:`repro.fedquery.sketch.MetricSketch` /
    :class:`~repro.fedquery.sketch.DistinctSketch`) riding the same wire
    records.  A metric sketch is a *stronger* promise than its
    ``MetricStats`` row: a store may only publish one built from a
    complete scan of the metric's rows (all foci, full window), because
    the tier-0 planner answers aggregates from it without touching the
    store.  Stores that cannot scan cheaply simply omit sketches and the
    planner falls back to push-down for them.
    """

    executions: int
    start: float
    end: float
    foci: tuple[str, ...]
    types: tuple[str, ...]
    metrics: tuple[MetricStats, ...]
    complete: bool = True
    sketches: tuple = ()  # tuple[MetricSketch, ...]
    distincts: tuple = ()  # tuple[DistinctSketch, ...]

    def metric(self, name: str) -> MetricStats | None:
        for stats in self.metrics:
            if stats.metric == name:
                return stats
        return None

    def sketch(self, name: str):
        for sketch in self.sketches:
            if sketch.metric == name:
                return sketch
        return None

    def distinct(self, key: str):
        for sketch in self.distincts:
            if sketch.key == key:
                return sketch
        return None

    def pack_records(self) -> list[str]:
        """Wire form: one ``kind|...`` record per line of the stats."""
        records = [
            f"executions|{self.executions}",
            f"time|{self.start:.9f}|{self.end:.9f}",
            "foci|" + "|".join(self.foci),
            "types|" + "|".join(self.types),
            f"complete|{1 if self.complete else 0}",
        ]
        records.extend(stats.pack() for stats in self.metrics)
        records.extend(sketch.pack() for sketch in self.sketches)
        records.extend(sketch.pack() for sketch in self.distincts)
        return records

    @staticmethod
    def unpack_records(records: list[str]) -> "StoreStats":
        executions = 0
        start, end = 0.0, 0.0
        foci: tuple[str, ...] = ()
        types: tuple[str, ...] = ()
        metrics: list[MetricStats] = []
        complete = True
        sketches: list = []
        distincts: list = []
        for record in records:
            kind, _, rest = record.partition("|")
            try:
                if kind == "executions":
                    executions = int(rest)
                elif kind == "time":
                    start_text, _, end_text = rest.partition("|")
                    start, end = float(start_text), float(end_text)
                elif kind == "foci":
                    foci = tuple(part for part in rest.split("|") if part)
                elif kind == "types":
                    types = tuple(part for part in rest.split("|") if part)
                elif kind == "complete":
                    complete = rest.strip() not in ("0", "")
                elif kind == "metric":
                    name, rows, minimum, maximum = rest.split("|")
                    metrics.append(
                        MetricStats(
                            metric=name,
                            rows=int(rows),
                            minimum=float(minimum),
                            maximum=float(maximum),
                        )
                    )
                elif kind == "sketch":
                    # lazy import: repro.fedquery imports this module
                    from repro.fedquery.sketch import MetricSketch

                    sketches.append(MetricSketch.unpack(rest))
                elif kind == "distinct":
                    from repro.fedquery.sketch import DistinctSketch

                    distincts.append(DistinctSketch.unpack(rest))
                else:
                    raise ValueError(f"unknown stats record kind {kind!r}")
            except ValueError as exc:
                raise ValueError(f"bad StoreStats record {record!r}: {exc}") from exc
        return StoreStats(
            executions=executions,
            start=start,
            end=end,
            foci=foci,
            types=types,
            metrics=tuple(metrics),
            complete=complete,
            sketches=tuple(sketches),
            distincts=tuple(distincts),
        )

    @classmethod
    def merge(cls, parts: list["StoreStats"]) -> "StoreStats":
        """Combine per-execution stats into application-level stats.

        Counts add; time/value ranges and foci/types union; the merge is
        ``complete`` only if every part is.  A metric keeps a merged
        sketch only when *every* part reporting rows for it carries one
        — a partial sketch would silently undercount, and tier-0 treats
        a present sketch as the metric's complete row set.  Distinct
        sketches merge per key by bitwise OR.
        """
        if not parts:
            return cls(0, 0.0, 0.0, (), (), ())
        foci: list[str] = []
        types: list[str] = []
        by_metric: dict[str, MetricStats] = {}
        for part in parts:
            for focus in part.foci:
                if focus not in foci:
                    foci.append(focus)
            for type_name in part.types:
                if type_name not in types:
                    types.append(type_name)
            for stats in part.metrics:
                seen = by_metric.get(stats.metric)
                if seen is None:
                    by_metric[stats.metric] = stats
                elif stats.rows:
                    if not seen.rows:
                        by_metric[stats.metric] = stats
                    else:
                        by_metric[stats.metric] = MetricStats(
                            metric=stats.metric,
                            rows=seen.rows + stats.rows,
                            minimum=min(seen.minimum, stats.minimum),
                            maximum=max(seen.maximum, stats.maximum),
                        )
                # stats.rows == 0 contributes nothing: keep the seen entry.
        sketches: list = []
        for name in by_metric:
            live = [
                part for part in parts
                if (entry := part.metric(name)) is not None and entry.rows
            ]
            part_sketches = [part.sketch(name) for part in live]
            if live and all(sketch is not None for sketch in part_sketches):
                from repro.fedquery.sketch import MetricSketch

                sketches.append(MetricSketch.merge(part_sketches))
        distinct_keys: list[str] = []
        for part in parts:
            for sketch in part.distincts:
                if sketch.key not in distinct_keys:
                    distinct_keys.append(sketch.key)
        distincts: list = []
        for key in distinct_keys:
            from repro.fedquery.sketch import DistinctSketch

            distincts.append(
                DistinctSketch.merge(
                    [part.distinct(key) for part in parts if part.distinct(key)]
                )
            )
        spanned = [part for part in parts if part.executions]
        return cls(
            executions=sum(part.executions for part in parts),
            start=min((part.start for part in spanned), default=0.0),
            end=max((part.end for part in spanned), default=0.0),
            foci=tuple(foci),
            types=tuple(types),
            metrics=tuple(by_metric.values()),
            complete=all(part.complete for part in parts),
            sketches=tuple(sketches),
            distincts=tuple(distincts),
        )


def pr_agg_cache_key(
    metric: str,
    foci: list[str],
    start: str,
    end: str,
    result_type: str,
    min_value: str,
    max_value: str,
    group_by: str,
) -> str:
    """Cache key for server-side aggregate queries (distinct key space)."""
    base = pr_cache_key(metric, foci, start, end, result_type)
    return f"agg: {base} | {min_value},{max_value} | {group_by}"


APPLICATION_PORTTYPE = PortType(
    name="Application",
    namespace=PPERFGRID_NS,
    doc="A program for which performance data is stored (thesis Table 1).",
    operations=(
        Operation(
            "getAppInfo",
            (),
            "xsd:string[]",
            doc=(
                "Returns general information about the application, possibly "
                "including application name, version, etc. Returns an array of "
                "string values, each element of which should contain a name and "
                "a value delimited by the '|' character."
            ),
        ),
        Operation(
            "getNumExecs",
            (),
            "xsd:int",
            doc=(
                "Returns the number of unique executions available for the "
                "application as an integer."
            ),
        ),
        Operation(
            "getExecQueryParams",
            (),
            "xsd:string[]",
            doc=(
                "Returns a list of attributes that describe executions, "
                "arguments or run data, for example. Each attribute has "
                "associated with it a set of values, representing all unique "
                "possible values for that attribute. Returns an array of string "
                "values, each element of which should contain a name and a set "
                "of values delimited by the '|' character."
            ),
        ),
        Operation(
            "getAllExecs",
            (),
            "xsd:string[]",
            doc=(
                "Returns an array of Grid Service Handles (GSHs) representing "
                "an Execution service instance for each unique execution "
                "record. Returns an array of string values, each element of "
                "which should be a properly formatted GSH."
            ),
        ),
        Operation(
            "getExecs",
            (
                Parameter("attribute", "xsd:string"),
                Parameter("value", "xsd:string"),
            ),
            "xsd:string[]",
            doc=(
                "Returns an array of Grid Service Handles (GSHs) representing "
                "an Execution service instance for each execution record "
                "matching the attribute and value passed as parameters. Returns "
                "an array of string values, each element of which should be a "
                "properly formatted GSH."
            ),
        ),
        # Extension beyond Table 1 (OBSERVER-style operator queries, §2.2.3).
        Operation(
            "getExecsOp",
            (
                Parameter("attribute", "xsd:string"),
                Parameter("value", "xsd:string"),
                Parameter("operator", "xsd:string"),
            ),
            "xsd:string[]",
            doc=(
                "Extension: like getExecs but with a comparison operator "
                "(=, !=, <, <=, >, >=) applied to the attribute value."
            ),
        ),
        # Extension beyond Table 1: store statistics for the cost-based
        # federated query planner.
        Operation(
            "getStats",
            (),
            "xsd:string[]",
            doc=(
                "Extension: returns store statistics for the application's "
                "executions — execution count, per-metric row counts and "
                "value ranges, focus cardinality, and time-window coverage "
                "— as packed StoreStats records, plus optional mergeable "
                "sketches (per-metric value histograms, per-key distinct "
                "counts).  Used by the federated query cost model to "
                "choose raw/aggregate/skip per member and by the tier-0 "
                "planner to answer aggregates with zero round-trips."
            ),
        ),
    ),
    extends=(GRID_SERVICE_PORTTYPE,),
)

EXECUTION_PORTTYPE = PortType(
    name="Execution",
    namespace=PPERFGRID_NS,
    doc="A single run of an Application (thesis Table 2).",
    operations=(
        Operation(
            "getInfo",
            (),
            "xsd:string[]",
            doc=(
                "Returns general information about the Execution. Returns an "
                "array of string values, each element of which should contain "
                "a name and a value delimited by the '|' character."
            ),
        ),
        Operation(
            "getFoci",
            (),
            "xsd:string[]",
            doc=(
                "Returns a list of all possible unique focus values for the "
                "Execution (no duplicates) as an array of strings. Foci refer "
                "to the nodes of the resource hierarchy (e.g. /Process/27 or "
                "/Code/MPI/MPI_Comm_rank)."
            ),
        ),
        Operation(
            "getMetrics",
            (),
            "xsd:string[]",
            doc=(
                "Returns a list of all possible unique metric values for the "
                "Execution (no duplicates) as an array of strings. Metric "
                "refers to the measurements recorded in the dataset (e.g. "
                "func_calls, msg_deliv_time)."
            ),
        ),
        Operation(
            "getTypes",
            (),
            "xsd:string[]",
            doc=(
                "Returns a list of all possible unique type values for the "
                "Execution (no duplicates) as an array of strings. Type refers "
                "to the performance tool used to collect the data."
            ),
        ),
        Operation(
            "getTimeStartEnd",
            (),
            "xsd:string[]",
            doc=(
                "Returns a list of two values, the first representing the "
                "start time of the Execution and the second representing the "
                "end time of the Execution, as an array of strings."
            ),
        ),
        Operation(
            "getPR",
            (
                Parameter("metric", "xsd:string"),
                Parameter("foci", "xsd:string[]"),
                Parameter("startTime", "xsd:string"),
                Parameter("endTime", "xsd:string"),
                Parameter("resultType", "xsd:string"),
            ),
            "xsd:string[]",
            doc=(
                "Returns a list of Performance Results that meet the criteria "
                "given by the parameter values as an array of strings."
            ),
        ),
        # Extension beyond Table 2: server-side aggregation for the
        # federated query planner — predicates and GROUP BY are pushed
        # down to the store so only accumulator buckets cross the wire.
        Operation(
            "getPRAgg",
            (
                Parameter("metric", "xsd:string"),
                Parameter("foci", "xsd:string[]"),
                Parameter("startTime", "xsd:string"),
                Parameter("endTime", "xsd:string"),
                Parameter("resultType", "xsd:string"),
                Parameter("minValue", "xsd:string"),
                Parameter("maxValue", "xsd:string"),
                Parameter("groupBy", "xsd:string"),
            ),
            "xsd:string[]",
            doc=(
                "Extension: like getPR, but the store reduces matching "
                "Performance Results to combinable aggregation buckets "
                "(count/total/min/max), optionally filtered by a value "
                "range and grouped by focus.  RDBMS-backed stores answer "
                "with real SQL WHERE/GROUP BY; others aggregate in the "
                "Mapping Layer.  Returns packed AggregateRecord strings."
            ),
        ),
        # Extension beyond Table 2: chunked result transfer — instead of
        # one bulk SOAP array, the service deploys a transient
        # ResultCursor instance and the client drains it at its own pace.
        Operation(
            "getPRChunked",
            (
                Parameter("metric", "xsd:string"),
                Parameter("foci", "xsd:string[]"),
                Parameter("startTime", "xsd:string"),
                Parameter("endTime", "xsd:string"),
                Parameter("resultType", "xsd:string"),
                Parameter("ordered", "xsd:boolean"),
            ),
            "xsd:string",
            doc=(
                "Extension: like getPR, but instead of returning the "
                "whole result set, deploys a transient ResultCursor "
                "service over it and returns the cursor's GSH.  The "
                "client pages through the results with next(maxRows) / "
                "close(); abandoned cursors expire by TTL.  With "
                "ordered=true the rows stream in the canonical "
                "(focus, type, start, end, value) order, so per-stream "
                "merges reproduce bulk ordering exactly; unordered "
                "cursors stream lazily in store order with O(chunk) "
                "server memory."
            ),
        ),
        # Extension beyond Table 2: the registry-callback query model the
        # thesis proposes in §7 to replace per-call client threads.
        Operation(
            "getPRAsync",
            (
                Parameter("metric", "xsd:string"),
                Parameter("foci", "xsd:string[]"),
                Parameter("startTime", "xsd:string"),
                Parameter("endTime", "xsd:string"),
                Parameter("resultType", "xsd:string"),
                Parameter("sinkHandle", "xsd:string"),
            ),
            "xsd:string",
            doc=(
                "Extension: like getPR, but results are delivered to the "
                "given NotificationSink instead of being returned; the "
                "call returns a query id immediately (the 'registry-"
                "callback model' of future-work section 7)."
            ),
        ),
        # Extension beyond Table 2: per-execution store statistics for
        # the cost-based federated query planner.
        Operation(
            "getStats",
            (),
            "xsd:string[]",
            doc=(
                "Extension: returns store statistics for this execution — "
                "per-metric row counts and conservative value ranges, foci, "
                "types, and time coverage — as packed StoreStats records, "
                "plus optional mergeable sketches for tier-0 answers."
            ),
        ),
    ),
    extends=(GRID_SERVICE_PORTTYPE, NOTIFICATION_SOURCE_PORTTYPE),
)

MANAGER_PORTTYPE = PortType(
    name="Manager",
    namespace=PPERFGRID_NS,
    doc=(
        "Internal (non-transient) Grid service caching Execution service "
        "instances and distributing their creation across replica hosts "
        "(thesis §5.3.1.4)."
    ),
    operations=(
        Operation(
            "getExecs",
            (Parameter("keys", "xsd:string[]"),),
            "xsd:string[]",
            doc=(
                "Return one Execution-instance GSH per unique execution ID, "
                "creating instances through the replica Execution Factories on "
                "cache misses."
            ),
        ),
    ),
    extends=(GRID_SERVICE_PORTTYPE,),
)


def application_porttype_table() -> list[tuple[str, str]]:
    """Rows of thesis Table 1: (Operation, Operation Semantics)."""
    return [(op.name, op.doc) for op in APPLICATION_PORTTYPE.operations]


def execution_porttype_table() -> list[tuple[str, str]]:
    """Rows of thesis Table 2: (Operation, Operation Semantics)."""
    return [(op.name, op.doc) for op in EXECUTION_PORTTYPE.operations]
