"""GWSDL-style document generation and parsing.

The generated document is a simplified WSDL 1.1: ``definitions`` with
``portType``/``operation``/``input``/``output`` children plus a
``service`` element carrying the endpoint URL.  The client can rebuild a
:class:`PortType` from the document and hand it to ``make_stub`` — the
"download WSDL, generate stubs, bind" step of Figure 1.
"""

from __future__ import annotations

from repro.wsdl.porttype import Operation, Parameter, PortType
from repro.xmlkit import Document, Element, QName, parse, serialize

WSDL_NS = "http://schemas.xmlsoap.org/wsdl/"
GWSDL_NS = "http://www.gridforum.org/namespaces/2003/03/gridWSDLExtensions"


def generate_wsdl(porttype: PortType, endpoint_url: str) -> str:
    """Render a WSDL document for one PortType at one endpoint."""
    definitions = Element(QName(WSDL_NS, "definitions"))
    definitions.declare("wsdl", WSDL_NS)
    definitions.declare("gwsdl", GWSDL_NS)
    definitions.set("name", porttype.name)
    definitions.set("targetNamespace", porttype.namespace)

    pt_el = definitions.subelement(QName(WSDL_NS, "portType"))
    pt_el.set("name", porttype.name)
    if porttype.extends:
        pt_el.set(
            QName(GWSDL_NS, "extends"),
            " ".join(base.name for base in porttype.extends),
        )
    if porttype.doc:
        pt_el.subelement(QName(WSDL_NS, "documentation"), porttype.doc)
    for op in porttype.all_operations():
        op_el = pt_el.subelement(QName(WSDL_NS, "operation"))
        op_el.set("name", op.name)
        if op.doc:
            op_el.subelement(QName(WSDL_NS, "documentation"), op.doc)
        input_el = op_el.subelement(QName(WSDL_NS, "input"))
        for param in op.parameters:
            part = input_el.subelement(QName(WSDL_NS, "part"))
            part.set("name", param.name)
            part.set("type", param.wire_type)
        output_el = op_el.subelement(QName(WSDL_NS, "output"))
        if op.returns != "void":
            part = output_el.subelement(QName(WSDL_NS, "part"))
            part.set("name", "return")
            part.set("type", op.returns)

    service_el = definitions.subelement(QName(WSDL_NS, "service"))
    service_el.set("name", porttype.name + "Service")
    port_el = service_el.subelement(QName(WSDL_NS, "port"))
    port_el.set("name", porttype.name + "Port")
    address = port_el.subelement(QName(WSDL_NS, "address"))
    address.set("location", endpoint_url)
    return serialize(Document(definitions), indent=2)


def parse_wsdl(text: str | bytes) -> tuple[PortType, str]:
    """Parse a document produced by :func:`generate_wsdl`.

    Returns (porttype, endpoint_url).  Extension hierarchies are
    flattened — the parsed PortType owns every operation directly, which
    is all a client stub needs.
    """
    doc = parse(text)
    definitions = doc.root
    if definitions.tag != QName(WSDL_NS, "definitions"):
        raise ValueError(f"not a WSDL document (root is {definitions.tag})")
    namespace = definitions.get("targetNamespace") or ""
    pt_el = definitions.find(QName(WSDL_NS, "portType"))
    if pt_el is None:
        raise ValueError("WSDL document has no portType")
    operations: list[Operation] = []
    for op_el in pt_el.findall(QName(WSDL_NS, "operation")):
        name = op_el.get("name") or ""
        if not name:
            raise ValueError("operation without a name")
        doc_el = op_el.find(QName(WSDL_NS, "documentation"))
        params: list[Parameter] = []
        input_el = op_el.find(QName(WSDL_NS, "input"))
        if input_el is not None:
            for part in input_el.findall(QName(WSDL_NS, "part")):
                params.append(
                    Parameter(part.get("name") or "", part.get("type") or "xsd:string")
                )
        returns = "void"
        output_el = op_el.find(QName(WSDL_NS, "output"))
        if output_el is not None:
            ret_part = output_el.find(QName(WSDL_NS, "part"))
            if ret_part is not None:
                returns = ret_part.get("type") or "xsd:string"
        operations.append(
            Operation(
                name,
                tuple(params),
                returns,
                doc=doc_el.text() if doc_el is not None else "",
            )
        )
    porttype = PortType(
        name=pt_el.get("name") or "Unnamed",
        namespace=namespace,
        operations=tuple(operations),
    )
    endpoint = ""
    service_el = definitions.find(QName(WSDL_NS, "service"))
    if service_el is not None:
        port_el = service_el.find(QName(WSDL_NS, "port"))
        if port_el is not None:
            address = port_el.find(QName(WSDL_NS, "address"))
            if address is not None:
                endpoint = address.get("location") or ""
    return porttype, endpoint
