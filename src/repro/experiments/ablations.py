"""Ablation studies for the design choices DESIGN.md calls out.

A1 — serialization: how much of the Grid-services overhead is the SOAP
     encode/serialize/parse/decode round trip, as payload grows?
A2 — distribution policy: interleaved vs block vs random vs least-loaded
     Manager policies on homogeneous and heterogeneous replica hosts.
A3 — cache policy: unbounded vs LRU(k) vs adaptive under uniform and
     skewed query streams.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.manager import (
    BlockPolicy,
    DistributionPolicy,
    InterleavedPolicy,
    LeastLoadedPolicy,
    RandomPolicy,
)
from repro.core.prcache import AdaptiveCache, LruCache, PrCache, UnboundedCache
from repro.simnet.host import SimHost
from repro.simnet.network import NetworkModel, SharedMediumNetwork
from repro.soap.rpc import decode_response, encode_response


# ------------------------------------------------------- A1: serialization


@dataclass
class SerializationResult:
    """Per payload size: SOAP round-trip cost vs a direct in-process call."""

    payload_results: list[int]
    soap_us: list[float]
    direct_us: list[float]
    wire_bytes: list[int]

    def to_table(self) -> str:
        headers = ["PRs/payload", "Wire bytes", "SOAP (us)", "Direct (us)", "SOAP/Direct"]
        rows = []
        for i, n in enumerate(self.payload_results):
            ratio = self.soap_us[i] / self.direct_us[i] if self.direct_us[i] else float("inf")
            rows.append(
                [n, self.wire_bytes[i], self.soap_us[i], self.direct_us[i], f"{ratio:,.0f}x"]
            )
        return format_table(headers, rows, title="Ablation A1: serialization cost vs payload")


def run_serialization_ablation(
    payload_sizes: tuple[int, ...] = (1, 10, 100, 1000, 5000),
    trials: int = 20,
) -> SerializationResult:
    """Encode+decode a getPR-shaped string-array response of each size."""
    sample_pr = (
        "time_spent|/Code/MPI/MPI_Allgather|vampir|12.345678901-12.345999901|0.000321"
    )
    soap_us: list[float] = []
    direct_us: list[float] = []
    wire_bytes: list[int] = []
    for n in payload_sizes:
        payload = [f"{sample_pr}-{i}" for i in range(n)]
        t0 = time.perf_counter()
        encoded = b""
        for _ in range(trials):
            encoded = encode_response("urn:ppg", "getPR", payload)
            decode_response(encoded)
        soap_us.append((time.perf_counter() - t0) / trials * 1e6)
        wire_bytes.append(len(encoded))
        sink: list[str] = []
        t0 = time.perf_counter()
        for _ in range(trials):
            sink = list(payload)  # the in-process "call": one list copy
        del sink
        direct_us.append((time.perf_counter() - t0) / trials * 1e6)
    return SerializationResult(
        payload_results=list(payload_sizes),
        soap_us=soap_us,
        direct_us=direct_us,
        wire_bytes=wire_bytes,
    )


# ------------------------------------------- A2: Manager distribution policy


@dataclass
class DistributionResult:
    """Per policy: makespan of a query fan-out on replica hosts."""

    scenario: str
    host_factors: list[float]
    makespans: dict[str, float]

    def to_table(self) -> str:
        best = min(self.makespans.values())
        headers = ["Policy", "Makespan (s)", "vs best"]
        rows = [
            [name, span, f"{span / best:,.2f}x"]
            for name, span in sorted(self.makespans.items(), key=lambda kv: kv[1])
        ]
        return format_table(
            headers, rows, title=f"Ablation A2: distribution policy ({self.scenario})"
        )


class _FakeReplica:
    """Stands in for Manager replicas when replaying policies offline."""

    def __init__(self) -> None:
        self.assigned = 0


def run_distribution_ablation(
    host_factors: tuple[float, ...] = (1.0, 1.0),
    num_executions: int = 32,
    queries_per_execution: int = 100,
    query_cost_s: float = 0.001,
    scenario: str = "homogeneous 2 hosts",
    seed: int = 3,
) -> DistributionResult:
    """Replay each policy's instance placement onto host timelines.

    Each execution instance receives ``queries_per_execution`` queries of
    ``query_cost_s`` seconds, all charged to the host its instance landed
    on.  Heterogeneous hosts (``host_factors`` != 1) show where the
    thesis's interleaving stops being optimal and least-loaded wins.
    """
    policies: list[DistributionPolicy] = [
        InterleavedPolicy(),
        BlockPolicy(),
        RandomPolicy(seed=seed),
        LeastLoadedPolicy(),
    ]
    makespans: dict[str, float] = {}
    for policy in policies:
        policy.reset()
        hosts = [SimHost(f"h{i}", cpu_factor=f) for i, f in enumerate(host_factors)]
        replicas = [_FakeReplica() for _ in host_factors]
        for ordinal in range(num_executions):
            index = policy.choose(replicas, str(ordinal + 1), ordinal)  # type: ignore[arg-type]
            replicas[index].assigned += 1
            hosts[index].charge(query_cost_s * queries_per_execution)
        makespans[policy.name] = max(h.timeline.busy_until for h in hosts)
    return DistributionResult(
        scenario=scenario, host_factors=list(host_factors), makespans=makespans
    )


# ------------------------------------------ A4: shared-medium network limit


@dataclass
class NetworkContentionResult:
    """Two-host speedup vs response payload size, on a shared bus."""

    payload_bytes: list[int]
    speedups: list[float]
    bus_utilization: list[float]
    service_cost_s: float

    def to_table(self) -> str:
        headers = ["Response bytes", "2-host speedup", "Bus utilization"]
        rows = [
            [b, f"{s:.2f}x", f"{u:.0%}"]
            for b, s, u in zip(self.payload_bytes, self.speedups, self.bus_utilization)
        ]
        return format_table(
            headers,
            rows,
            title=(
                "Ablation A4: shared-medium network contention "
                f"(service cost {self.service_cost_s * 1000:.1f} ms/query)"
            ),
        )

    def crossover_bytes(self, threshold: float = 1.5) -> int | None:
        """Smallest payload where the 2-host speedup drops below *threshold*."""
        for b, s in zip(self.payload_bytes, self.speedups):
            if s < threshold:
                return b
        return None


def run_network_contention_ablation(
    payload_bytes: tuple[int, ...] = (100, 10_000, 100_000, 1_000_000, 5_000_000),
    num_executions: int = 32,
    queries_per_execution: int = 10,
    service_cost_s: float = 0.002,
    network: NetworkModel | None = None,
) -> NetworkContentionResult:
    """Where does replica distribution stop paying off?

    Replays the Figure 12 workload with responses of growing size on a
    shared-medium network.  Host CPU work parallelizes across the two
    replicas, but every response crosses the same wire — once the wire is
    the bottleneck (SMG98-sized payloads on fast Ethernet), the optimized
    arm's advantage collapses toward 1x.
    """
    network = network or NetworkModel()
    speedups: list[float] = []
    utilizations: list[float] = []
    for nbytes in payload_bytes:
        makespans: list[float] = []
        utilization = 0.0
        for replica_count in (1, 2):
            hosts = [SimHost(f"h{i}") for i in range(replica_count)]
            bus = SharedMediumNetwork(network)
            for ordinal in range(num_executions):
                host = hosts[ordinal % replica_count]  # interleaved placement
                for _ in range(queries_per_execution):
                    _, served_at = host.charge(service_cost_s)
                    bus.schedule_transfer(nbytes, ready_at=served_at)
            makespan = max(
                bus.busy_until, max(h.timeline.busy_until for h in hosts)
            )
            makespans.append(makespan)
            if replica_count == 2:
                utilization = bus.utilization(makespan)
        speedups.append(makespans[0] / makespans[1])
        utilizations.append(utilization)
    return NetworkContentionResult(
        payload_bytes=list(payload_bytes),
        speedups=speedups,
        bus_utilization=utilizations,
        service_cost_s=service_cost_s,
    )


# ------------------------------------------------------ A3: cache policies


@dataclass
class CachePolicyResult:
    """Per policy: hit rate and final size under one query stream."""

    stream: str
    lookups: int
    hit_rates: dict[str, float]
    sizes: dict[str, int]

    def to_table(self) -> str:
        headers = ["Policy", "Hit rate", "Entries kept"]
        rows = [
            [name, f"{self.hit_rates[name]:.1%}", self.sizes[name]]
            for name in sorted(self.hit_rates, key=lambda n: -self.hit_rates[n])
        ]
        return format_table(
            headers, rows, title=f"Ablation A3: cache policy ({self.stream}, {self.lookups} lookups)"
        )


def run_cache_policy_ablation(
    num_keys: int = 200,
    num_lookups: int = 5000,
    lru_capacity: int = 32,
    skewed: bool = True,
    memory_free_fraction: float = 0.25,
    seed: int = 17,
) -> CachePolicyResult:
    """Drive each cache with the same stream and compare hit rates.

    ``skewed=True`` draws keys Zipf-style (a few hot queries — the
    realistic analysis workload); otherwise uniform.  The adaptive cache
    sees a host at ``memory_free_fraction`` free memory.
    """
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) for i in range(num_keys)] if skewed else [1.0] * num_keys
    keys = [f"metric | /focus/{i} | UNDEFINED | 0.0-1.0" for i in range(num_keys)]
    stream = rng.choices(keys, weights=weights, k=num_lookups)
    caches: dict[str, PrCache] = {
        "unbounded": UnboundedCache(),
        f"lru({lru_capacity})": LruCache(lru_capacity),
        "adaptive": AdaptiveCache(
            stats_provider=lambda: {"memory_free_fraction": memory_free_fraction},
            max_capacity=lru_capacity * 4,
            min_capacity=4,
        ),
    }
    for name, cache in caches.items():
        for key in stream:
            if cache.get(key) is None:
                cache.put(key, [f"value-for-{key}"])
    return CachePolicyResult(
        stream="zipf-skewed" if skewed else "uniform",
        lookups=num_lookups,
        hit_rates={name: cache.stats.hit_rate for name, cache in caches.items()},
        sizes={name: len(cache) for name, cache in caches.items()},
    )
