"""ResultCursor: a transient Grid service streaming one result set.

Large query results should not cross the wire as one SOAP array — the
single-bulk-transfer failure mode stalls the fan-out and blows up both
peers' memory.  Instead the producing service deploys a *ResultCursor*
instance (the same factory/instance idiom as Execution instances: a
transient service under the producer's path, reclaimed by the
container's lifetime sweep) and returns its GSH; the client then drains
the stream with repeated ``next(maxRows)`` calls and ``close()``-es it.

Lifetime follows OGSI soft state: the cursor is created with a TTL and
every successful ``next`` renews it, so an abandoned cursor (client
crashed mid-drain) is reclaimed by ``sweep_expired()`` without any
distributed garbage-collection protocol.  ``close`` is just ``Destroy``
under a cursor-flavored name — after it (or after expiry), further
``next`` calls fault with the container's ``no service at ...`` fault.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.ogsi.gsh import GridServiceHandle
from repro.ogsi.service import GridServiceBase, ServiceState
from repro.soap.chunks import ENCODING_XML, WIRE_ENCODINGS, encode_chunk
from repro.wsdl.porttype import Operation, Parameter, PortType

#: PPerfGrid extension namespace for the cursor PortType
CURSOR_NS = "http://pperfgrid.cs.pdx.edu/2004/cursor"

#: default soft-state lifetime (seconds) between ``next`` renewals
DEFAULT_CURSOR_TTL = 300.0

_NEXT_OPERATION = Operation(
    "next",
    (Parameter("maxRows", "xsd:int"),),
    "xsd:string[]",
    doc=(
        "Return the next chunk of the stream: a '#chunk|seq|count|"
        "done[|encoding]' header record followed by the payload "
        "records (per-row strings, or a columnar batch when that was "
        "negotiated).  Each successful call renews the cursor's "
        "termination time (soft-state keepalive).  Calling next "
        "on a closed or expired cursor faults."
    ),
)

_CLOSE_OPERATION = Operation(
    "close",
    (),
    "void",
    doc=(
        "Release the cursor's server-side state immediately "
        "(equivalent to Destroy).  Idle cursors that are never "
        "closed are reclaimed when their TTL expires."
    ),
)

_NEGOTIATE_OPERATION = Operation(
    "negotiate",
    (Parameter("acceptEncodings", "xsd:string"),),
    "xsd:string",
    doc=(
        "Content-encoding negotiation, called at most once before the "
        "first next(): the client passes the comma-separated encodings "
        "it accepts and the cursor answers with its pick — the first "
        "entry of the server's preference list the client accepts, "
        "'xml' (the universal baseline) when nothing else matches.  "
        "Every subsequent chunk carries the chosen encoding."
    ),
)

RESULT_CURSOR_PORTTYPE = PortType(
    name="ResultCursor",
    namespace=CURSOR_NS,
    doc=(
        "A transient service streaming one query's result set in "
        "client-paced chunks, with soft-state lifetime management "
        "and negotiable payload content encoding."
    ),
    operations=(_NEXT_OPERATION, _CLOSE_OPERATION, _NEGOTIATE_OPERATION),
)

#: the pre-negotiation cursor interface: what a member that predates the
#: columnar encoding publishes.  A client calling ``negotiate`` against
#: it gets the container's "no operation" fault and falls back to XML
#: rows — tests deploy this to prove that path stays transparent.
LEGACY_RESULT_CURSOR_PORTTYPE = PortType(
    name="ResultCursor",
    namespace=CURSOR_NS,
    doc=(
        "A transient service streaming one query's result set in "
        "client-paced chunks, with soft-state lifetime management."
    ),
    operations=(_NEXT_OPERATION, _CLOSE_OPERATION),
)


class ResultCursorService(GridServiceBase):
    """One live result stream, backed by any row iterable.

    ``rows`` is consumed lazily — handing a generator here keeps the
    producer's memory bounded by one chunk, which is the whole point.
    ``on_close`` (optional) runs exactly once when the cursor is
    destroyed, however that happens (``close``, ``Destroy``, or the
    lifetime sweep); producers use it to release upstream resources
    such as member streams feeding the iterator.

    ``encodings`` lists the content encodings this cursor may serve, in
    preference order; chunks are XML rows until ``negotiate`` picks
    something richer.  ``negotiable=False`` deploys the cursor with the
    pre-negotiation PortType (no ``negotiate`` operation at all) — the
    legacy-member profile.
    """

    porttype = RESULT_CURSOR_PORTTYPE

    def __init__(
        self,
        rows: Iterable[str],
        ttl: float | None = DEFAULT_CURSOR_TTL,
        on_close: Callable[[], None] | None = None,
        encodings: tuple[str, ...] = WIRE_ENCODINGS,
        negotiable: bool = True,
    ) -> None:
        super().__init__()
        for encoding in encodings:
            if encoding not in WIRE_ENCODINGS:
                raise ValueError(f"unknown wire encoding {encoding!r}")
        self._iter: Iterator[str] = iter(rows)
        self._pending: str | None = None
        self._exhausted = False
        self._seq = 0
        self.ttl = ttl
        self._on_close = on_close
        self.rows_served = 0
        self._encodings = tuple(encodings) if negotiable else (ENCODING_XML,)
        self._encoding = ENCODING_XML
        if not negotiable:
            self.porttype = LEGACY_RESULT_CURSOR_PORTTYPE

    def on_deployed(self, container, gsh) -> None:
        super().on_deployed(container, gsh)
        if self.ttl is not None:
            self.termination_time = container.clock.now() + self.ttl
        self._publish_progress()

    def _publish_progress(self) -> None:
        self.service_data.set("chunksServed", str(self._seq))
        self.service_data.set("rowsServed", str(self.rows_served))
        self.service_data.set("done", "1" if self._exhausted else "0")
        self.service_data.set("encoding", self._encoding)

    # --------------------------------------------------------- operations
    def negotiate(self, acceptEncodings: str) -> str:
        """Pick the content encoding for this cursor's chunks.

        The answer is the first entry of this cursor's preference list
        the client accepts; ``xml`` — which every peer must accept — is
        the fallback when nothing richer matches.  Negotiating after
        the stream has started would flip the encoding mid-drain, so it
        faults instead.
        """
        self.require_active()
        if self._seq:
            raise ValueError("negotiate must be called before the first next()")
        accepted = {item.strip() for item in acceptEncodings.split(",") if item.strip()}
        accepted.add(ENCODING_XML)
        self._encoding = next(
            (enc for enc in self._encodings if enc in accepted), ENCODING_XML
        )
        self._publish_progress()
        return self._encoding
    def next(self, maxRows: int) -> list[str]:
        """The next chunk: header + up to *maxRows* rows (see chunks.py)."""
        self.require_active()
        if maxRows < 1:
            raise ValueError(f"maxRows must be >= 1, got {maxRows}")
        batch: list[str] = []
        if self._pending is not None:
            batch.append(self._pending)
            self._pending = None
        while len(batch) < maxRows and not self._exhausted:
            try:
                batch.append(next(self._iter))
            except StopIteration:
                self._exhausted = True
        if not self._exhausted:
            # one-row lookahead so the final chunk carries done=1 itself,
            # sparing the client an extra empty round trip
            try:
                self._pending = next(self._iter)
            except StopIteration:
                self._exhausted = True
        if self.container is not None and self.ttl is not None:
            self.termination_time = self.container.clock.now() + self.ttl
        seq = self._seq
        self._seq += 1
        self.rows_served += len(batch)
        self._publish_progress()
        return encode_chunk(
            seq,
            batch,
            done=self._exhausted and self._pending is None,
            encoding=self._encoding,
        )

    def close(self) -> None:
        """Release the stream now (the polite end of the protocol).

        Idempotent: a ``close`` racing the lifetime sweep (both serialize
        on the cursor's dispatch gate, so one always runs first) is a
        no-op rather than a ``destroyed service`` fault.
        """
        if self.state is ServiceState.ACTIVE:
            self.Destroy()

    # ---------------------------------------------------------- lifecycle
    def on_destroyed(self) -> None:
        self._iter = iter(())
        self._pending = None
        self._exhausted = True
        callback, self._on_close = self._on_close, None
        if callback is not None:
            callback()


def deploy_cursor(
    container,
    base_path: str,
    rows: Iterable[str],
    ttl: float | None = DEFAULT_CURSOR_TTL,
    on_close: Callable[[], None] | None = None,
    encodings: tuple[str, ...] = WIRE_ENCODINGS,
    negotiable: bool = True,
) -> GridServiceHandle:
    """Deploy a cursor instance under ``<base_path>/cursors`` and return
    its GSH — the producer-side half of every *Chunked operation."""
    cursor = ResultCursorService(
        rows, ttl=ttl, on_close=on_close, encodings=encodings, negotiable=negotiable
    )
    return container.deploy_instance(f"{base_path}/cursors", cursor)
