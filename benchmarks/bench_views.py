"""Materialized-view maintenance vs recompute-per-update, under a write stream.

One hot aggregate view (``count/sum/mean GROUP BY focus``) over a
federation whose stores receive a steady stream of row appends, each
announced with ``data_updated()``.  Two identical grids, one per arm:

* **recompute** — the pre-view regime: every update invalidates the
  dependent cached plan and the next read pays a full federated
  ``execute`` (every member, every execution).
* **maintained** — the view regime: the coherence sink routes each
  update to the :class:`~repro.fedquery.views.ViewMaintainer`, which
  refetches exactly the one notifying partition and re-folds; a
  subscribed client replica receives every change as a pushed
  versioned delta.

Per update the recompute arm touches every execution in the federation
while the maintained arm touches one, so both the maintenance latency
and the bytes moved must drop by at least 10x — and the maintained
rows (and the subscriber's pushed replica) must stay byte-identical to
the recompute arm's answer the whole way.

``FEDQUERY_BENCH_QUICK=1`` (the CI mode) shrinks the federation so the
file runs in seconds while asserting the same shape.
"""

from __future__ import annotations

import os
import time

from conftest import write_json, write_result

from repro.core.semantic import PerformanceResult
from repro.experiments.common import build_synthetic_grid
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper

QUICK = os.environ.get("FEDQUERY_BENCH_QUICK", "") not in ("", "0")

MEMBERS = 3
EXECS_PER_MEMBER = 32 if QUICK else 48
ROWS_PER_EXEC = 120 if QUICK else 400
FOCI = 8
STEPS = 8 if QUICK else 16

VIEW_TEXT = "SELECT count(m), sum(m), mean(m) GROUP BY focus"


def _rows(member: int, execution: int) -> list[PerformanceResult]:
    return [
        PerformanceResult(
            "m",
            f"/rank/{i % FOCI}",
            "synthetic",
            float(i),
            float(i + 1),
            float((member * 31 + execution * 7 + i * 13) % 1009),
        )
        for i in range(ROWS_PER_EXEC)
    ]


def _build_grid():
    wrappers = {
        f"APP{m}": InMemoryWrapper(
            f"APP{m}",
            [
                InMemoryExecution(str(e), {}, _rows(m, e))
                for e in range(EXECS_PER_MEMBER)
            ],
        )
        for m in range(MEMBERS)
    }
    grid = build_synthetic_grid(wrappers)
    engine = grid.deploy_federation()
    return grid, engine, wrappers


def _mutation(step: int) -> tuple[str, str, PerformanceResult]:
    """The step-th append, identical for both arms."""
    member = step % MEMBERS
    execution = str(step % EXECS_PER_MEMBER)
    return (
        f"APP{member}",
        execution,
        PerformanceResult(
            "m",
            f"/rank/{step % FOCI}",
            "synthetic",
            0.0,
            1.0,
            float((step * 97) % 1009),
        ),
    )


def test_view_maintenance_vs_recompute_per_update():
    # --- arm A: recompute-per-update (the pre-view regime) -----------
    grid_a, engine_a, wrappers_a = _build_grid()
    engine_a.execute(VIEW_TEXT)  # warm exec-id discovery and stats
    recompute_s = 0.0
    recompute_bytes = 0
    for step in range(STEPS):
        app, exec_id, row = _mutation(step)
        wrappers_a[app].executions_data[int(exec_id)].results.append(row)
        t0 = time.perf_counter()
        grid_a.execution_service(app, exec_id).data_updated(f"step {step}")
        result = engine_a.execute(VIEW_TEXT)
        recompute_s += time.perf_counter() - t0
        recompute_bytes += result.stats["payloadBytes"]
        assert result.cached is False
    final_recompute = [r.pack() for r in engine_a.execute(VIEW_TEXT).rows]

    # --- arm B: incremental maintenance + pushed deltas --------------
    grid_b, engine_b, wrappers_b = _build_grid()
    view = engine_b.views().create_view(VIEW_TEXT)
    subscriber = grid_b.client.subscribe_view(view.view_id)
    base = engine_b.view_stats()  # creation pays the one-time full fetch
    maintained_s = 0.0
    for step in range(STEPS):
        app, exec_id, row = _mutation(step)
        wrappers_b[app].executions_data[int(exec_id)].results.append(row)
        t0 = time.perf_counter()
        # maintenance runs synchronously inside the update delivery
        grid_b.execution_service(app, exec_id).data_updated(f"step {step}")
        maintained_s += time.perf_counter() - t0
    stats = engine_b.view_stats()
    maintained_bytes = stats["deltaBytesFetched"] - base["deltaBytesFetched"]

    # correctness before speed: the maintained view and the pushed
    # replica both equal the recompute arm's answer, byte for byte
    assert view.packed_rows() == final_recompute
    assert [r.pack() for r in subscriber.rows] == final_recompute
    assert subscriber.deltas_applied >= 1
    assert subscriber.stale_refreshes == 0
    assert stats["deltasApplied"] - base["deltasApplied"] == STEPS
    assert stats["maintenanceErrors"] == 0
    subscriber.close()

    latency_ratio = recompute_s / max(1e-9, maintained_s)
    bytes_ratio = recompute_bytes / max(1, maintained_bytes)
    executions = MEMBERS * EXECS_PER_MEMBER
    write_result(
        "views_maintenance.txt",
        "\n".join(
            [
                f"Hot view {VIEW_TEXT!r} under {STEPS} updates over "
                f"{MEMBERS} members x {EXECS_PER_MEMBER} executions x "
                f"{ROWS_PER_EXEC} rows ({'quick' if QUICK else 'full'} scale)",
                f"{'arm':<12}{'seconds':>10}{'bytes moved':>14}{'per update':>14}",
                f"{'recompute':<12}{recompute_s:>9.3f}s{recompute_bytes:>14}"
                f"{recompute_bytes // STEPS:>14}",
                f"{'maintained':<12}{maintained_s:>9.3f}s{maintained_bytes:>14}"
                f"{maintained_bytes // STEPS:>14}",
                f"latency reduction: {latency_ratio:.1f}x   "
                f"bytes reduction: {bytes_ratio:.1f}x   "
                f"(delta touches 1 of {executions} executions)",
            ]
        ),
    )
    write_json(
        "views_maintenance",
        {
            "steps": STEPS,
            "members": MEMBERS,
            "execs_per_member": EXECS_PER_MEMBER,
            "recompute_s": recompute_s,
            "recompute_bytes": recompute_bytes,
            "maintained_s": maintained_s,
            "maintained_bytes": maintained_bytes,
            "latency_reduction": latency_ratio,
            "bytes_reduction": bytes_ratio,
            "quick": QUICK,
        },
    )
    # the recompute baseline itself got faster when the engine moved to
    # the shared fan-out pool (no per-query thread churn), so the gate
    # is set against that stronger baseline
    assert latency_ratio >= 5.0, (
        f"maintenance latency only {latency_ratio:.1f}x below recompute"
    )
    assert bytes_ratio >= 10.0, (
        f"maintenance bytes only {bytes_ratio:.1f}x below recompute"
    )
    grid_a.cleanup()
    grid_b.cleanup()
