"""OGSI-style Grid services core (the GT3.2 stand-in).

Implements the conventions that make a Web service a *Grid* service in
the thesis's sense (§3.2, Table 3):

* unique, stateful **service instances** created by Factories and
  addressed by **Grid Service Handles** (GSHs);
* the **GridService** PortType every service implements
  (``FindServiceData`` / ``SetTerminationTime`` / ``Destroy``);
* **Registry** (soft-state registration), **HandleMap** (GSH -> endpoint
  resolution), and **NotificationSource/Sink** PortTypes;
* a hosting **container** (the Axis/Tomcat analog) that turns request
  bytes into native dispatch and back — the server half of the
  Architecture Adapter pattern.
"""

from repro.ogsi.gsh import GridServiceHandle, GshError
from repro.ogsi.porttypes import (
    FACTORY_PORTTYPE,
    GRID_SERVICE_PORTTYPE,
    HANDLE_MAP_PORTTYPE,
    NOTIFICATION_SINK_PORTTYPE,
    NOTIFICATION_SOURCE_PORTTYPE,
    OGSI_NS,
    REGISTRY_PORTTYPE,
    ogsi_porttype_table,
)
from repro.ogsi.servicedata import ServiceDataElement, ServiceDataSet
from repro.ogsi.service import GridServiceBase, ServiceState
from repro.ogsi.cursor import (
    DEFAULT_CURSOR_TTL,
    RESULT_CURSOR_PORTTYPE,
    ResultCursorService,
    deploy_cursor,
)
from repro.ogsi.factory import FactoryService
from repro.ogsi.registry import RegistryService
from repro.ogsi.handlemap import HandleMapService
from repro.ogsi.notification import (
    NotificationSinkBase,
    NotificationSourceMixin,
    PullNotificationSink,
    Subscription,
)
from repro.ogsi.dispatch import (
    AdmissionController,
    BusyFault,
    ServiceGate,
    client_id_headers,
    is_busy_fault,
    suspend_dispatch,
)
from repro.ogsi.monitor import CONTAINER_MONITOR_PORTTYPE, ContainerMonitorService
from repro.ogsi.container import ContainerError, GridEnvironment, ServiceContainer

__all__ = [
    "AdmissionController",
    "BusyFault",
    "CONTAINER_MONITOR_PORTTYPE",
    "ContainerError",
    "ContainerMonitorService",
    "ServiceGate",
    "client_id_headers",
    "is_busy_fault",
    "suspend_dispatch",
    "DEFAULT_CURSOR_TTL",
    "FACTORY_PORTTYPE",
    "FactoryService",
    "GRID_SERVICE_PORTTYPE",
    "GridEnvironment",
    "GridServiceBase",
    "GridServiceHandle",
    "GshError",
    "HANDLE_MAP_PORTTYPE",
    "HandleMapService",
    "NOTIFICATION_SINK_PORTTYPE",
    "NOTIFICATION_SOURCE_PORTTYPE",
    "NotificationSinkBase",
    "NotificationSourceMixin",
    "OGSI_NS",
    "PullNotificationSink",
    "REGISTRY_PORTTYPE",
    "RESULT_CURSOR_PORTTYPE",
    "RegistryService",
    "ResultCursorService",
    "ServiceContainer",
    "ServiceDataElement",
    "ServiceDataSet",
    "ServiceState",
    "Subscription",
    "deploy_cursor",
    "ogsi_porttype_table",
]
