"""Cost-based per-member plan selection.

The global planner picks one mode for the whole federation: aggregate
push-down when the query allows it, raw rows otherwise.  With member
statistics (``getStats``) the planner can do better *per member*:

* **skip** a member whose stats *prove* it cannot contribute — a query
  metric it does not record, a metric with an exact zero row count,
  value predicates unsatisfiable over the published ``[min, max]``, a
  focus allowlist disjoint from its foci, or a type it never produces;
* upgrade a metric to **aggregate without bounds** when every value
  predicate is *vacuous* over ``[min, max]`` (all possible values
  satisfy it), even when a strict ``<``/``>``/``!=`` makes the bounds
  non-pushable globally;
* otherwise fall back to the global choice per metric, yielding
  **mixed** members and mixed plans.

Every proof requires ``stats.complete`` (the soundness contract in
:class:`repro.core.semantic.StoreStats`); time-window coverage is never
a proof because some stores ignore the window.  Missing or failed stats
degrade gracefully: the member keeps the pre-cost-model global mode and
is *never* skipped.

Alongside the mode decision the model estimates result cardinality and
transfer bytes from ``rows × window_fraction × focus_fraction ×
value_fraction`` — estimates feed ``explainPlan`` and the benchmark's
bytes-moved accounting, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.semantic import StoreStats
from repro.fedquery.ast import Predicate, Query
from repro.fedquery.pushdown import (
    PredicateSplit,
    ValueBounds,
    filter_foci,
    matches_value,
)

#: estimated wire bytes per transferred record (packed forms average
#: ``metric|focus|type|span|value`` ≈ 72 and ``group|count|total|min|max``
#: ≈ 44 characters on the reference stores)
RAW_RECORD_BYTES = 72
AGG_RECORD_BYTES = 44

#: selectivity guess for an equality predicate when the range cannot
#: decide it (classic System-R style magic number)
EQ_SELECTIVITY = 0.05


def unsatisfiable_over(pred: Predicate, lo: float, hi: float) -> bool:
    """True iff *no* value in the superset ``[lo, hi]`` satisfies *pred*.

    ``[lo, hi]`` is a superset of the store's possible values, so this
    is a proof the predicate filters out every row the store could
    return.  Conservative: unknown operators prove nothing.
    """
    bound = float(str(pred.value))
    if pred.op == "=":
        return bound < lo or bound > hi
    if pred.op == "!=":
        return lo == hi == bound
    if pred.op == "<":
        return lo >= bound
    if pred.op == "<=":
        return lo > bound
    if pred.op == ">":
        return hi <= bound
    if pred.op == ">=":
        return hi < bound
    return False


def vacuous_over(pred: Predicate, lo: float, hi: float) -> bool:
    """True iff *every* value in ``[lo, hi]`` satisfies *pred*.

    Because ``[lo, hi]`` is a superset of the store's values, a vacuous
    predicate filters nothing — the executor may then aggregate at the
    store with no value bounds even when the predicate itself is not
    expressible as inclusive bounds.
    """
    bound = float(str(pred.value))
    if pred.op == "=":
        return lo == hi == bound
    if pred.op == "!=":
        return bound < lo or bound > hi
    if pred.op == "<":
        return hi < bound
    if pred.op == "<=":
        return hi <= bound
    if pred.op == ">":
        return lo > bound
    if pred.op == ">=":
        return lo >= bound
    return False


def _clamp01(fraction: float) -> float:
    return min(1.0, max(0.0, fraction))


def value_fraction(preds: tuple[Predicate, ...], lo: float, hi: float) -> float:
    """Estimated fraction of rows surviving the value predicates.

    Assumes values spread uniformly over ``[lo, hi]``; predicates
    multiply (independence assumption).  A zero-width range is decided
    exactly via :func:`matches_value`.
    """
    fraction = 1.0
    width = hi - lo
    for pred in preds:
        if width <= 0.0:
            fraction *= 1.0 if matches_value(lo, (pred,)) else 0.0
            continue
        bound = float(str(pred.value))
        if pred.op == "=":
            part = EQ_SELECTIVITY
        elif pred.op == "!=":
            part = 1.0
        elif pred.op in ("<", "<="):
            part = _clamp01((bound - lo) / width)
        else:  # ">", ">="
            part = _clamp01((hi - bound) / width)
        fraction *= part
    return fraction


@dataclass(frozen=True)
class MemberCost:
    """The cost model's verdict for one federation member.

    ``mode`` summarizes the per-metric decisions: ``skip`` (every metric
    provably empty), ``raw``/``aggregate`` (uniform), or ``mixed``.
    ``est_rows``/``est_bytes`` are ``None`` when stats were unavailable
    (``stats_missing=True`` — the member runs in the global mode and the
    degraded plan's result must not be memoized).
    """

    mode: str  # "raw" | "aggregate" | "mixed" | "skip"
    est_rows: int | None
    est_bytes: int | None
    reason: str
    stats_missing: bool = False
    metric_modes: tuple[tuple[str, str], ...] = ()
    vacuous: frozenset[str] = frozenset()
    #: estimated member round-trips (exec selection + per-metric fetches
    #: per touched execution); None when stats were unavailable, 0 for
    #: provable skips — and for tier-0 answers, which never call out
    est_calls: int | None = None

    def metric_mode(self, metric: str) -> str | None:
        for name, mode in self.metric_modes:
            if name == metric:
                return mode
        return None

    def describe(self) -> str:
        if self.stats_missing:
            return f"cost: mode={self.mode} (stats unavailable — global mode)"
        rows = "?" if self.est_rows is None else str(self.est_rows)
        size = "?" if self.est_bytes is None else str(self.est_bytes)
        text = f"cost: mode={self.mode} est_records={rows} est_bytes={size}"
        if self.reason:
            text += f" ({self.reason})"
        return text


class CostModel:
    """Per-member mode selection and cardinality estimation.

    Built once per plan from the query's push-down analysis; *member*
    is then called with each member's :class:`StoreStats` (or ``None``
    when stats could not be fetched).
    """

    def __init__(
        self,
        query: Query,
        split: PredicateSplit,
        window: tuple[float, float],
        bounds: ValueBounds,
        allowlist: frozenset[str] | None,
        global_mode: str,
    ) -> None:
        self.query = query
        self.split = split
        self.window = window
        self.bounds = bounds
        self.allowlist = allowlist
        self.global_mode = global_mode
        self.group_by_focus = "focus" in query.group_by

    # -------------------------------------------------------------- verdict
    def member(self, stats: StoreStats | None) -> MemberCost:
        if stats is None:
            return MemberCost(
                mode=self.global_mode,
                est_rows=None,
                est_bytes=None,
                reason="stats unavailable",
                stats_missing=True,
                metric_modes=tuple(
                    (metric, self.global_mode) for metric in self.query.metrics
                ),
            )
        provable = stats.complete
        skip_all = self._member_skip_reason(stats) if provable else None
        if skip_all is not None:
            return MemberCost(
                mode="skip",
                est_rows=0,
                est_bytes=0,
                reason=skip_all,
                metric_modes=tuple(
                    (metric, "skip") for metric in self.query.metrics
                ),
                est_calls=0,
            )
        metric_modes: list[tuple[str, str]] = []
        vacuous: list[str] = []
        reasons: list[str] = []
        est_rows = 0
        est_bytes = 0
        for metric in self.query.metrics:
            mode, why = self._metric_mode(metric, stats, provable, vacuous)
            metric_modes.append((metric, mode))
            if why:
                reasons.append(why)
            rows, size = self._metric_estimate(metric, mode, stats)
            est_rows += rows
            est_bytes += size
        modes = {mode for _, mode in metric_modes}
        if modes == {"skip"}:
            member_mode = "skip"
        elif len(modes) == 1:
            member_mode = next(iter(modes))
        else:
            member_mode = "mixed"
        if not provable:
            reasons.append("stats incomplete: estimates only, no proofs")
        live_metrics = sum(1 for _, mode in metric_modes if mode != "skip")
        if member_mode == "skip":
            est_calls = 0
        else:
            # one exec-selection exchange plus one data fetch per live
            # metric per touched execution
            est_calls = 1 + live_metrics * max(1, stats.executions)
        return MemberCost(
            mode=member_mode,
            est_rows=est_rows,
            est_bytes=est_bytes,
            reason="; ".join(reasons),
            metric_modes=tuple(metric_modes),
            vacuous=frozenset(vacuous),
            est_calls=est_calls,
        )

    def _member_skip_reason(self, stats: StoreStats) -> str | None:
        """A proof that *no* metric of this member can contribute."""
        if self.allowlist is not None and not filter_foci(
            list(stats.foci), self.allowlist
        ):
            return "focus allowlist disjoint from store foci"
        type_pred = self.split.type
        if type_pred is not None and str(type_pred.value) not in stats.types:
            return f"store never produces type {type_pred.value!r}"
        return None

    def _metric_mode(
        self,
        metric: str,
        stats: StoreStats,
        provable: bool,
        vacuous: list[str],
    ) -> tuple[str, str]:
        """(mode, reason) for one metric; appends to *vacuous* in place."""
        metric_stats = stats.metric(metric)
        value_preds = self.split.value
        if provable:
            if metric_stats is None:
                return "skip", f"{metric}: not recorded"
            if metric_stats.rows == 0:
                return "skip", f"{metric}: 0 rows"
            if value_preds and any(
                unsatisfiable_over(p, metric_stats.minimum, metric_stats.maximum)
                for p in value_preds
            ):
                return "skip", f"{metric}: value predicates unsatisfiable"
        if not self.query.is_aggregate:
            return "raw", ""
        if (
            provable
            and metric_stats is not None
            and value_preds
            and all(
                vacuous_over(p, metric_stats.minimum, metric_stats.maximum)
                for p in value_preds
            )
        ):
            # every possible value passes: aggregate with no bounds even
            # when the predicates are not pushable as inclusive bounds
            vacuous.append(metric)
            return "aggregate", f"{metric}: value predicates vacuous"
        if self.bounds.pushable:
            return "aggregate", ""
        return "raw", ""

    # ------------------------------------------------------------ estimates
    def _metric_estimate(
        self, metric: str, mode: str, stats: StoreStats
    ) -> tuple[int, int]:
        """(records, bytes) estimated to cross the wire for one metric."""
        if mode == "skip":
            return 0, 0
        if mode == "aggregate":
            buckets = max(1, stats.executions)
            if self.group_by_focus:
                buckets *= max(1, len(filter_foci(list(stats.foci), self.allowlist)))
            return buckets, buckets * AGG_RECORD_BYTES
        metric_stats = stats.metric(metric)
        if metric_stats is None:
            return 0, 0
        rows = metric_stats.rows
        rows *= self._window_fraction(stats)
        rows *= self._focus_fraction(stats)
        rows *= value_fraction(
            self.split.value, metric_stats.minimum, metric_stats.maximum
        )
        estimate = int(rows + 0.5)
        if metric_stats.rows and rows > 0.0:
            estimate = max(1, estimate)
        return estimate, estimate * RAW_RECORD_BYTES

    def _window_fraction(self, stats: StoreStats) -> float:
        span = stats.end - stats.start
        if span <= 0.0:
            return 1.0
        overlap = min(stats.end, self.window[1]) - max(stats.start, self.window[0])
        return _clamp01(overlap / span)

    def _focus_fraction(self, stats: StoreStats) -> float:
        if self.allowlist is None or not stats.foci:
            return 1.0
        allowed = filter_foci(list(stats.foci), self.allowlist)
        return _clamp01(len(allowed) / len(stats.foci))
