"""XML serialization.

The writer assigns namespace prefixes deterministically: declarations made
explicitly on elements (``Element.declare``) are honored; any namespace in
use without an in-scope declaration gets a generated ``ns<N>`` prefix
declared at the element that first needs it.  Deterministic output matters
here because byte counts feed the Table 4 "bytes transferred" column.
"""

from __future__ import annotations

from repro.xmlkit.model import Document, Element, QName

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;", "\n": "&#10;", "\t": "&#9;"}


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    if not any(c in value for c in "&<>"):
        return value
    out = []
    for ch in value:
        out.append(_TEXT_ESCAPES.get(ch, ch))
    return "".join(out)


def escape_attr(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    if not any(c in value for c in '&<>"\n\t'):
        return value
    out = []
    for ch in value:
        out.append(_ATTR_ESCAPES.get(ch, ch))
    return "".join(out)


class _PrefixScope:
    """Tracks in-scope prefix->uri bindings while writing."""

    def __init__(self) -> None:
        # Stack of dicts; lookups walk from innermost out.
        self._stack: list[dict[str, str]] = [{"xml": "http://www.w3.org/XML/1998/namespace"}]
        self._counter = 0

    def push(self, decls: dict[str, str]) -> None:
        self._stack.append(dict(decls))

    def pop(self) -> None:
        self._stack.pop()

    def uri_for_prefix(self, prefix: str) -> str | None:
        for frame in reversed(self._stack):
            if prefix in frame:
                return frame[prefix]
        return None

    def prefix_for_uri(self, uri: str, *, allow_default: bool) -> str | None:
        """Innermost prefix bound to *uri* that is not shadowed."""
        seen_prefixes: set[str] = set()
        for frame in reversed(self._stack):
            for prefix, bound in frame.items():
                if prefix in seen_prefixes:
                    continue
                seen_prefixes.add(prefix)
                if bound == uri and (allow_default or prefix != ""):
                    return prefix
        return None

    def fresh_prefix(self) -> str:
        self._counter += 1
        return f"ns{self._counter}"

    def declare_here(self, prefix: str, uri: str) -> None:
        self._stack[-1][prefix] = uri


def serialize(node: Element | Document, *, indent: int | None = None) -> str:
    """Serialize an element or document to a string.

    ``indent``: when given, pretty-print with that many spaces per level.
    Pretty-printing inserts whitespace only between element children (never
    inside mixed content), so data round-trips.
    """
    if isinstance(node, Document):
        header = f'<?xml version="{node.version}" encoding="{node.encoding}"?>'
        body = serialize(node.root, indent=indent)
        return header + ("\n" if indent is not None else "") + body
    scope = _PrefixScope()
    parts: list[str] = []
    _write_element(node, scope, parts, indent, 0)
    return "".join(parts)


def serialize_bytes(node: Element | Document) -> bytes:
    """Serialize compactly and encode to UTF-8 (the on-wire form)."""
    return serialize(node).encode("utf-8")


def _qname_str(name: QName, scope: _PrefixScope, extra_decls: dict[str, str], *, is_attr: bool) -> str:
    """Render a QName, generating a declaration in *extra_decls* if needed."""
    if not name.namespace:
        return name.local
    # Attributes cannot use the default (empty) prefix.
    prefix = scope.prefix_for_uri(name.namespace, allow_default=not is_attr)
    if prefix is None:
        for p, uri in extra_decls.items():
            if uri == name.namespace and (not is_attr or p != ""):
                prefix = p
                break
    if prefix is None:
        prefix = scope.fresh_prefix()
        extra_decls[prefix] = name.namespace
    return f"{prefix}:{name.local}" if prefix else name.local


def _write_element(
    el: Element,
    scope: _PrefixScope,
    parts: list[str],
    indent: int | None,
    depth: int,
) -> None:
    scope.push(el.nsdecls)
    extra_decls: dict[str, str] = {}
    tag = _qname_str(el.tag, scope, extra_decls, is_attr=False)
    attr_parts: list[str] = []
    for key in el.attrs:
        rendered = _qname_str(key, scope, extra_decls, is_attr=True)
        attr_parts.append(f' {rendered}="{escape_attr(el.attrs[key])}"')
    # Register generated declarations so children can reuse them.
    for prefix, uri in extra_decls.items():
        scope.declare_here(prefix, uri)
    decl_parts: list[str] = []
    for prefix, uri in {**el.nsdecls, **extra_decls}.items():
        if prefix:
            decl_parts.append(f' xmlns:{prefix}="{escape_attr(uri)}"')
        else:
            decl_parts.append(f' xmlns="{escape_attr(uri)}"')

    open_tag = f"<{tag}{''.join(decl_parts)}{''.join(attr_parts)}"
    if not el.children:
        parts.append(open_tag + "/>")
        scope.pop()
        return
    parts.append(open_tag + ">")

    only_elements = all(isinstance(c, Element) for c in el.children)
    pretty = indent is not None and only_elements
    for child in el.children:
        if isinstance(child, str):
            parts.append(escape_text(child))
        else:
            if pretty:
                parts.append("\n" + " " * (indent * (depth + 1)))  # type: ignore[operator]
            _write_element(child, scope, parts, indent, depth + 1)
    if pretty:
        parts.append("\n" + " " * (indent * depth))  # type: ignore[operator]
    parts.append(f"</{tag}>")
    scope.pop()
