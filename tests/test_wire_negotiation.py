"""Wire-encoding negotiation: the capability matrix, fallbacks, and the
destroy-on-gap regression.

Covers every cell of the ISSUE's negotiation matrix — columnar-capable
client x XML-only member, XML-only client x capable member, legacy
(non-negotiating) member, and a mid-stream mixed federation — asserting
both the negotiated outcome and byte-identical results, plus the
protocol-error paths: mid-stream encoding switches and sequence gaps
must raise :class:`ChunkError` AND destroy the server-side cursor
eagerly rather than leaving it to the TTL sweep.
"""

from __future__ import annotations

import pytest

from repro.core import client as client_mod
from repro.core.client import ChunkedResultIterator, default_accept_encodings
from repro.core.semantic import PerformanceResult
from repro.experiments.common import build_synthetic_grid
from repro.fedquery.executor import FederationEngine
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper
from repro.ogsi.container import GridEnvironment
from repro.ogsi.cursor import ResultCursorService, deploy_cursor
from repro.simnet.clock import VirtualClock
from repro.soap import SoapFault
from repro.soap.chunks import (
    ENCODING_COLBATCH,
    ENCODING_XML,
    WIRE_ENCODINGS,
    ChunkError,
)

ROWS = [
    f"time_spent|/Code/MPI/MPI_{op}|vampir|{i * 0.5:.9f}-{i * 0.5 + 1:.9f}|{i * 0.125!r}"
    for i, op in enumerate(["Send", "Recv", "Wait", "Bcast"] * 25)
]


@pytest.fixture()
def cursor_env():
    environment = GridEnvironment(clock=VirtualClock())
    container = environment.create_container("wire.pdx.edu:9090")
    return environment, container


class TestNegotiationMatrix:
    def drain(self, environment, gsh, **kwargs):
        iterator = ChunkedResultIterator(environment, gsh.url(), max_rows=16, **kwargs)
        return iterator, list(iterator)

    def test_capable_client_capable_server_picks_colbatch(self, cursor_env):
        environment, container = cursor_env
        gsh = deploy_cursor(container, "services/X", iter(ROWS))
        iterator, rows = self.drain(
            environment, gsh, accept_encodings=WIRE_ENCODINGS
        )
        assert iterator.encoding == ENCODING_COLBATCH
        assert rows == ROWS

    def test_capable_client_xml_only_server_falls_back(self, cursor_env):
        environment, container = cursor_env
        gsh = deploy_cursor(
            container, "services/X", iter(ROWS), encodings=(ENCODING_XML,)
        )
        iterator, rows = self.drain(environment, gsh)
        assert iterator.encoding == ENCODING_XML
        assert rows == ROWS

    def test_capable_client_legacy_server_falls_back(self, cursor_env):
        """A member that predates negotiation has no negotiate operation
        at all; the handshake faults and the drain stays XML, byte for
        byte what the pre-colbatch client saw."""
        environment, container = cursor_env
        gsh = deploy_cursor(container, "services/X", iter(ROWS), negotiable=False)
        iterator, rows = self.drain(environment, gsh)
        assert iterator.encoding == ENCODING_XML
        assert rows == ROWS

    def test_xml_only_client_capable_server_stays_xml(self, cursor_env):
        environment, container = cursor_env
        gsh = deploy_cursor(container, "services/X", iter(ROWS))
        service = container.service_at(gsh.path)
        iterator, rows = self.drain(
            environment, gsh, accept_encodings=(ENCODING_XML,)
        )
        assert iterator.encoding == ENCODING_XML
        assert rows == ROWS
        # an xml-only client skips the handshake round trip entirely
        assert service.service_data.get("encoding").values == [ENCODING_XML]

    def test_env_override_pins_default_to_xml(self, cursor_env, monkeypatch):
        monkeypatch.setenv("PPG_ACCEPT_ENCODINGS", ENCODING_XML)
        assert default_accept_encodings() == (ENCODING_XML,)
        environment, container = cursor_env
        gsh = deploy_cursor(container, "services/X", iter(ROWS))
        iterator, rows = self.drain(environment, gsh)
        assert iterator.encoding == ENCODING_XML
        assert rows == ROWS
        monkeypatch.delenv("PPG_ACCEPT_ENCODINGS")
        assert default_accept_encodings() == WIRE_ENCODINGS

    def test_negotiate_after_first_next_faults(self, cursor_env):
        environment, container = cursor_env
        gsh = deploy_cursor(container, "services/X", iter(ROWS))
        stub = environment.stub_for_handle(gsh.url(), ResultCursorService.porttype)
        stub.next(4)
        with pytest.raises(SoapFault, match="before the first next"):
            stub.negotiate(ENCODING_COLBATCH)

    def test_mid_stream_encoding_switch_rejected_and_closed(self, cursor_env):
        environment, container = cursor_env
        gsh = deploy_cursor(container, "services/X", iter(ROWS))
        iterator = ChunkedResultIterator(
            environment, gsh.url(), max_rows=16, accept_encodings=WIRE_ENCODINGS
        )
        assert iterator.encoding == ENCODING_COLBATCH
        next(iterator)
        # the server flips encodings mid-drain (a protocol violation)
        container.service_at(gsh.path)._encoding = ENCODING_XML
        with pytest.raises(ChunkError, match="switched encoding mid-stream"):
            list(iterator)
        assert container.has_service(gsh) is False


class TestDestroyOnGap:
    def test_sequence_gap_destroys_cursor_eagerly(self, cursor_env):
        """Regression: a seq gap used to leave the server-side cursor
        alive until the TTL sweep; it must be destroyed with the
        ChunkError now."""
        environment, container = cursor_env
        gsh = deploy_cursor(container, "services/X", iter(ROWS))
        iterator = ChunkedResultIterator(environment, gsh.url(), max_rows=16)
        next(iterator)
        # another consumer steals a chunk out from under this iterator
        environment.stub_for_handle(
            gsh.url(), ResultCursorService.porttype
        ).next(16)
        with pytest.raises(ChunkError, match="expected 1"):
            list(iterator)
        assert container.has_service(gsh) is False, (
            "cursor must be destroyed eagerly on a sequence gap, "
            "not linger until the TTL sweep"
        )
        assert iterator._closed is True


def _member_rows(n: int, salt: int) -> list[PerformanceResult]:
    return [
        PerformanceResult(
            "m",
            f"/rank/{(i + salt) % 9}",
            "synthetic",
            float(i),
            float(i + 1),
            float((i * 7 + salt) % 83) / 8,
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def mixed_grid():
    grid = build_synthetic_grid(
        {
            "ALPHA": InMemoryWrapper(
                "ALPHA", [InMemoryExecution("0", {"numprocs": "4"}, _member_rows(700, 1))]
            ),
            "BETA": InMemoryWrapper(
                "BETA", [InMemoryExecution("0", {"numprocs": "8"}, _member_rows(700, 5))]
            ),
        }
    )
    grid.deploy_federation()
    return grid


class RecordingIterator(ChunkedResultIterator):
    """ChunkedResultIterator that logs each negotiated encoding."""

    log: list[str] = []

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        RecordingIterator.log.append(self.encoding)


class TestMixedFederationStreaming:
    def test_mixed_member_encodings_stay_byte_identical(self, mixed_grid, monkeypatch):
        """One member pinned to XML rows, the other columnar-capable:
        the k-way streamed merge must still reproduce the bulk bytes,
        with both encodings actually exercised on the wire."""
        engine = FederationEngine(
            client_mod.PPerfGridClient(mixed_grid.environment, mixed_grid.uddi_gsh),
            stream_threshold_rows=0,
            stream_chunk_rows=13,
            accept_encodings=WIRE_ENCODINGS,
        )
        text = "SELECT m FROM ALPHA, BETA"
        bulk = mixed_grid.fed_engine.execute(text)
        # bind (and deploy) this engine's execution instances, then pin
        # every BETA-side execution service to the legacy XML rows
        engine.execute(text)
        site = mixed_grid.sites["BETA"]
        pinned = 0
        for container in [site.container, *site.replica_containers]:
            for path in container.service_paths():
                service = container.service_at(path)
                if hasattr(service, "wire_encodings"):
                    service.wire_encodings = (ENCODING_XML,)
                    pinned += 1
        assert pinned, "no BETA execution services found to pin"

        # the warm-up memoized the result; force the streamed run back
        # onto the wire
        engine.invalidate_cache()
        monkeypatch.setattr(client_mod, "ChunkedResultIterator", RecordingIterator)
        RecordingIterator.log = []
        with engine.execute(text, stream=True) as streamed:
            streamed_rows = list(streamed)
        assert [r.pack() for r in streamed_rows] == [r.pack() for r in bulk.rows]
        assert ENCODING_XML in RecordingIterator.log, "pinned member must serve xml"
        assert ENCODING_COLBATCH in RecordingIterator.log, (
            "capable member must serve colbatch"
        )

    def test_query_stream_matrix_through_federation_service(self, mixed_grid):
        """queryChunked end to end: the federation endpoint's cursor
        negotiates colbatch by default and serves byte-identical rows
        when pinned to xml."""
        client = mixed_grid.client
        text = "SELECT m FROM ALPHA WHERE focus = '/rank/3'"
        bulk = [row.pack() for row in client.query(text)]
        assert bulk

        with client.query_stream(
            text, max_rows=11, accept_encodings=WIRE_ENCODINGS
        ) as iterator:
            streamed = [row.pack() for row in iterator]
        assert iterator.encoding == ENCODING_COLBATCH
        assert streamed == bulk

        fed_container = mixed_grid.environment.container_for("fed.pdx.edu:9090")
        fed_service = fed_container.service_at("services/FederatedQuery")
        fed_service.wire_encodings = (ENCODING_XML,)
        try:
            with client.query_stream(
                text, max_rows=11, accept_encodings=WIRE_ENCODINGS
            ) as iterator:
                streamed = [row.pack() for row in iterator]
            assert iterator.encoding == ENCODING_XML
            assert streamed == bulk
        finally:
            fed_service.wire_encodings = WIRE_ENCODINGS
