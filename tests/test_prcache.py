"""Tests for the Performance-Result cache policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prcache import (
    AdaptiveCache,
    ByteBudgetLruCache,
    LruCache,
    NullCache,
    UnboundedCache,
    entry_bytes,
)


class TestNullCache:
    def test_never_hits(self):
        cache = NullCache()
        cache.put("k", ["v"])
        assert cache.get("k") is None
        assert len(cache) == 0
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0


class TestUnboundedCache:
    def test_put_get(self):
        cache = UnboundedCache()
        cache.put("k", ["a", "b"])
        assert cache.get("k") == ["a", "b"]
        assert cache.stats.hits == 1

    def test_stores_copy(self):
        cache = UnboundedCache()
        value = ["a"]
        cache.put("k", value)
        value.append("mutated")
        assert cache.get("k") == ["a"]

    def test_overwrite(self):
        cache = UnboundedCache()
        cache.put("k", ["1"])
        cache.put("k", ["2"])
        assert cache.get("k") == ["2"]
        assert len(cache) == 1

    def test_never_evicts(self):
        cache = UnboundedCache()
        for i in range(1000):
            cache.put(str(i), [])
        assert len(cache) == 1000
        assert cache.stats.evictions == 0

    def test_clear(self):
        cache = UnboundedCache()
        cache.put("k", ["v"])
        cache.clear()
        assert cache.get("k") is None


class TestLruCache:
    def test_capacity_enforced(self):
        cache = LruCache(2)
        for key in ("a", "b", "c"):
            cache.put(key, [key])
        assert len(cache) == 2
        assert cache.get("a") is None  # oldest evicted
        assert cache.get("c") == ["c"]
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LruCache(2)
        cache.put("a", ["a"])
        cache.put("b", ["b"])
        cache.get("a")
        cache.put("c", ["c"])
        assert cache.get("a") == ["a"]  # survived because touched
        assert cache.get("b") is None

    def test_put_refreshes_recency(self):
        cache = LruCache(2)
        cache.put("a", ["a"])
        cache.put("b", ["b"])
        cache.put("a", ["a2"])
        cache.put("c", ["c"])
        assert cache.get("a") == ["a2"]
        assert cache.get("b") is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LruCache(0)

    @given(st.lists(st.sampled_from("abcdefgh"), max_size=200), st.integers(1, 5))
    @settings(max_examples=100, deadline=None)
    def test_size_never_exceeds_capacity(self, keys, capacity):
        cache = LruCache(capacity)
        for key in keys:
            if cache.get(key) is None:
                cache.put(key, [key])
            assert len(cache) <= capacity


class TestAdaptiveCache:
    def test_full_memory_behaves_like_max_capacity(self):
        cache = AdaptiveCache(
            stats_provider=lambda: {"memory_free_fraction": 1.0},
            max_capacity=10,
            min_capacity=2,
        )
        for i in range(20):
            cache.put(str(i), [])
        assert len(cache) == 10

    def test_shrinks_under_pressure(self):
        free = {"value": 1.0}
        cache = AdaptiveCache(
            stats_provider=lambda: {"memory_free_fraction": free["value"]},
            max_capacity=100,
            min_capacity=5,
        )
        for i in range(50):
            cache.put(str(i), [])
        assert len(cache) == 50
        free["value"] = 0.0
        cache.put("trigger", [])
        assert len(cache) == 5  # clamped to min_capacity

    def test_evicts_lru_order(self):
        free = {"value": 1.0}
        cache = AdaptiveCache(
            stats_provider=lambda: {"memory_free_fraction": free["value"]},
            max_capacity=10,
            min_capacity=2,
        )
        for key in ("a", "b", "c"):
            cache.put(key, [key])
        cache.get("a")
        free["value"] = 0.0
        cache.put("d", [])
        # capacity 2: keeps the two most recent (a was touched, then d added)
        assert cache.get("d") is not None
        assert cache.get("b") is None

    def test_clamps_bad_fractions(self):
        cache = AdaptiveCache(
            stats_provider=lambda: {"memory_free_fraction": 99.0},
            max_capacity=10,
            min_capacity=2,
        )
        assert cache.effective_capacity() == 10
        cache.stats_provider = lambda: {"memory_free_fraction": -1.0}
        assert cache.effective_capacity() == 2

    def test_invalid_capacities(self):
        with pytest.raises(ValueError):
            AdaptiveCache(max_capacity=1, min_capacity=5)
        with pytest.raises(ValueError):
            AdaptiveCache(max_capacity=5, min_capacity=0)


class TestStats:
    def test_hit_rate(self):
        cache = UnboundedCache()
        cache.put("k", [])
        cache.get("k")
        cache.get("miss")
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert UnboundedCache().stats.hit_rate == 0.0


class TestCacheStatsServiceData:
    """The PR cache counters travel as the ``cacheStats`` SDE (queried
    through the standard OGSI findServiceData operation)."""

    @staticmethod
    def records(execution) -> dict[str, str]:
        from repro.xmlkit import parse

        root = parse(execution.find_service_data("name:cacheStats")).root
        values = [el.text() for el in root.iter_all() if el.tag.local == "value"]
        return dict(value.split("|", 1) for value in values)

    def test_counters_refresh_with_queries(self, shared_grid):
        execution = shared_grid.bind("HPL").all_executions()[0]
        before = self.records(execution)
        assert set(before) >= {"hits", "misses", "evictions", "lookups", "hitRate", "entries"}
        # a window no other test uses, so the first call must miss
        start, end = 0.000321, execution.time_range()[1]
        execution.get_pr("gflops", ["/Run"], start, end, "UNDEFINED")
        execution.get_pr("gflops", ["/Run"], start, end, "UNDEFINED")
        after = self.records(execution)
        assert int(after["misses"]) >= int(before["misses"]) + 1
        assert int(after["hits"]) >= int(before["hits"]) + 1
        assert int(after["entries"]) >= 1
        assert int(after["lookups"]) == int(after["hits"]) + int(after["misses"])
        assert 0.0 <= float(after["hitRate"]) <= 1.0


class TestByteBudgetLruCache:
    def test_entry_bytes_is_monotone_in_payload(self):
        small = entry_bytes("k", ["a"])
        bigger_payload = entry_bytes("k", ["a" * 100])
        more_records = entry_bytes("k", ["a"] * 10)
        assert small < bigger_payload
        assert small < more_records

    def test_put_get_and_byte_accounting(self):
        cache = ByteBudgetLruCache(max_bytes=10_000)
        cache.put("k", ["aa", "bb"])
        assert cache.get("k") == ["aa", "bb"]
        assert cache.approx_bytes == entry_bytes("k", ["aa", "bb"])

    def test_byte_budget_evicts_lru_first(self):
        record = "x" * 100
        per_entry = entry_bytes("k0", [record])
        cache = ByteBudgetLruCache(max_bytes=3 * per_entry)
        for i in range(3):
            cache.put(f"k{i}", [record])
        cache.get("k0")  # now MRU; k1 is the eviction candidate
        cache.put("k3", [record])
        assert cache.contains("k0") and not cache.contains("k1")
        assert cache.contains("k2") and cache.contains("k3")
        assert cache.stats.evictions == 1
        assert cache.approx_bytes <= cache.max_bytes

    def test_oversized_entry_rejected_not_admitted(self):
        cache = ByteBudgetLruCache(max_bytes=500)
        cache.put("small", ["a"])
        cache.put("huge", ["z" * 10_000])
        assert cache.get("huge") is None
        assert cache.stats.evictions == 1
        # the rejection did not disturb resident entries
        assert cache.get("small") == ["a"]

    def test_oversized_overwrite_drops_stale_value(self):
        cache = ByteBudgetLruCache(max_bytes=500)
        cache.put("k", ["old"])
        cache.put("k", ["z" * 10_000])  # too big to admit
        assert cache.get("k") is None  # the old value must not survive
        assert cache.approx_bytes == 0

    def test_overwrite_replaces_size(self):
        cache = ByteBudgetLruCache(max_bytes=10_000)
        cache.put("k", ["a" * 200])
        cache.put("k", ["b"])
        assert cache.approx_bytes == entry_bytes("k", ["b"])
        assert len(cache) == 1

    def test_entry_capacity_still_applies(self):
        cache = ByteBudgetLruCache(max_bytes=10**9, capacity=2)
        for i in range(4):
            cache.put(f"k{i}", ["v"])
        assert len(cache) == 2
        assert cache.stats.evictions == 2
        assert cache.contains("k2") and cache.contains("k3")

    def test_remove_restores_budget(self):
        cache = ByteBudgetLruCache(max_bytes=10_000)
        cache.put("k", ["abc"])
        assert cache.remove("k") is True
        assert cache.approx_bytes == 0
        assert cache.stats.invalidations == 1
        assert cache.remove("k") is False

    def test_clear_resets_bytes(self):
        cache = ByteBudgetLruCache(max_bytes=10_000)
        for i in range(5):
            cache.put(f"k{i}", ["v" * i])
        cache.clear()
        assert len(cache) == 0 and cache.approx_bytes == 0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ByteBudgetLruCache(max_bytes=0)
        with pytest.raises(ValueError):
            ByteBudgetLruCache(max_bytes=100, capacity=0)

    @given(st.lists(st.tuples(st.text(min_size=1, max_size=8),
                              st.lists(st.text(max_size=64), max_size=8)),
                    max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_budget_invariant_property(self, ops):
        cache = ByteBudgetLruCache(max_bytes=1_000)
        for key, value in ops:
            cache.put(key, value)
            assert cache.approx_bytes <= cache.max_bytes
            assert cache.approx_bytes == sum(
                entry_bytes(k, cache._table[k]) for k in cache._table
            )
