"""Tests for the multi-execution comparison analysis (PPerfDB layer)."""

import pytest

from repro.core.compare import (
    aggregate_by_focus,
    collect_metric,
    compare_executions,
    scaling_study,
)
from repro.core.semantic import PerformanceResult


def _pr(focus: str, value: float, metric: str = "m") -> PerformanceResult:
    return PerformanceResult(metric, focus, "t", 0.0, 1.0, value)


class TestAggregateByFocus:
    def test_sums_per_focus(self):
        totals = aggregate_by_focus([_pr("/a", 1.0), _pr("/a", 2.0), _pr("/b", 5.0)])
        assert totals == {"/a": 3.0, "/b": 5.0}

    def test_empty(self):
        assert aggregate_by_focus([]) == {}


class TestCollectMetric:
    def test_alignment_across_executions(self, shared_grid):
        app = shared_grid.bind("HPL")
        executions = app.all_executions()[:4]
        table = collect_metric(executions, "gflops", ["/Run"])
        assert len(table.labels()) == 4
        assert table.foci() == ["/Run"]
        for label in table.labels():
            assert table.value(label, "/Run") > 0

    def test_label_attribute_with_duplicates(self, shared_grid):
        app = shared_grid.bind("HPL")
        executions = app.all_executions()
        table = collect_metric(executions, "gflops", ["/Run"], label_attribute="numprocs")
        # 12 executions over few distinct numprocs values: suffixes keep
        # every execution visible.
        assert len(table.labels()) == len(executions)
        assert any("#" in label for label in table.labels())

    def test_column_slice(self, shared_grid):
        app = shared_grid.bind("HPL")
        table = collect_metric(app.all_executions()[:3], "gflops", ["/Run"])
        column = table.column("/Run")
        assert len(column) == 3


class TestCompareExecutions:
    def test_cross_store_comparison(self, shared_grid):
        """Compare a trace store against itself across two runs."""
        smg = shared_grid.bind("SMG98")
        executions = smg.all_executions()
        foci = ["/Code/MPI/MPI_Waitall", "/Code/SMG/smg_relax"]
        comparison = compare_executions(executions[0], executions[1], "time_spent", foci)
        assert {r.focus for r in comparison.rows} <= set(foci)
        for row in comparison.rows:
            if row.baseline is not None and row.candidate is not None:
                assert row.delta == pytest.approx(row.candidate - row.baseline)
                assert row.ratio == pytest.approx(row.candidate / row.baseline)

    def test_regressions_and_improvements_partition(self):
        from repro.core.compare import ExecutionComparison, FocusComparison

        comparison = ExecutionComparison(
            "m",
            [
                FocusComparison("/slow", 1.0, 2.0),
                FocusComparison("/fast", 2.0, 1.0),
                FocusComparison("/same", 1.0, 1.0),
                FocusComparison("/new", None, 1.0),
                FocusComparison("/gone", 1.0, None),
            ],
        )
        assert [r.focus for r in comparison.regressions()] == ["/slow"]
        assert [r.focus for r in comparison.improvements()] == ["/fast"]
        assert comparison.only_in_candidate() == ["/new"]
        assert comparison.only_in_baseline() == ["/gone"]

    def test_ratio_none_for_zero_baseline(self):
        from repro.core.compare import FocusComparison

        row = FocusComparison("/f", 0.0, 1.0)
        assert row.ratio is None
        assert row.delta == 1.0

    def test_to_table_renders(self, shared_grid):
        hpl = shared_grid.bind("HPL")
        executions = hpl.all_executions()[:2]
        comparison = compare_executions(executions[0], executions[1], "gflops", ["/Run"])
        table = comparison.to_table()
        assert "Execution comparison: gflops" in table
        assert "/Run" in table


class TestScalingStudy:
    def test_gflops_vs_numprocs(self, shared_grid):
        app = shared_grid.bind("HPL")
        study = scaling_study(
            app.all_executions(), "gflops", ["/Run"], "numprocs", higher_is_better=True
        )
        attrs = [p.attribute_value for p in study.points]
        assert attrs == sorted(attrs)
        assert study.points[0].speedup == pytest.approx(1.0)
        assert study.points[0].efficiency == pytest.approx(1.0)
        # Synthetic HPL has communication decay: efficiency falls with
        # process count.
        assert study.points[-1].efficiency < 1.0

    def test_lower_is_better_metric(self, shared_grid):
        app = shared_grid.bind("HPL")
        study = scaling_study(
            app.all_executions(), "runtimesec", ["/Run"], "numprocs", higher_is_better=False
        )
        assert study.points[0].speedup == pytest.approx(1.0)

    def test_missing_attribute_raises(self, shared_grid):
        app = shared_grid.bind("HPL")
        with pytest.raises(KeyError):
            scaling_study(app.all_executions()[:1], "gflops", ["/Run"], "bogus")

    def test_no_data_raises(self, shared_grid):
        app = shared_grid.bind("HPL")
        with pytest.raises(ValueError):
            scaling_study(app.all_executions()[:1], "gflops", ["/Nothing"], "numprocs")

    def test_to_table(self, shared_grid):
        app = shared_grid.bind("HPL")
        study = scaling_study(app.all_executions(), "gflops", ["/Run"], "numprocs")
        assert "Scaling study" in study.to_table()
