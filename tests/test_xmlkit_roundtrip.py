"""Writer/parser tests, including property-based round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlkit import (
    Element,
    QName,
    XmlParseError,
    escape_attr,
    escape_text,
    parse,
    serialize,
)


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_text_no_copy_when_clean(self):
        s = "plain text"
        assert escape_text(s) == s

    def test_attr_escapes_quotes_and_whitespace(self):
        assert escape_attr('a"b') == "a&quot;b"
        assert escape_attr("a\nb") == "a&#10;b"
        assert escape_attr("a\tb") == "a&#9;b"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(Element("e")) == "<e/>"

    def test_attributes_and_text(self):
        el = Element("e", attrs={QName("", "a"): "1"}, children=["hi"])
        assert serialize(el) == '<e a="1">hi</e>'

    def test_namespace_declaration_honored(self):
        el = Element(QName("urn:x", "e"))
        el.declare("x", "urn:x")
        assert serialize(el) == '<x:e xmlns:x="urn:x"/>'

    def test_default_namespace(self):
        el = Element(QName("urn:x", "e"))
        el.declare("", "urn:x")
        assert serialize(el) == '<e xmlns="urn:x"/>'

    def test_generated_prefix_for_undeclared_namespace(self):
        el = Element(QName("urn:x", "e"))
        out = serialize(el)
        assert 'xmlns:ns1="urn:x"' in out and out.startswith("<ns1:e")

    def test_attr_never_uses_default_namespace(self):
        el = Element(QName("urn:x", "e"), attrs={QName("urn:x", "a"): "1"})
        el.declare("", "urn:x")
        out = serialize(el)
        # The element may use the default prefix, the attribute may not.
        assert "ns1:a=" in out

    def test_pretty_print_roundtrips(self):
        root = Element("r")
        root.subelement("a", "x")
        root.subelement("b")
        pretty = serialize(root, indent=2)
        assert "\n" in pretty
        assert parse(pretty).root.structurally_equal(root)

    def test_mixed_content_not_prettified(self):
        root = Element("r", children=["text", Element("a")])
        assert serialize(root, indent=2) == "<r>text<a/></r>"


class TestParse:
    def test_declaration_parsed(self):
        doc = parse('<?xml version="1.1" encoding="UTF-8"?><r/>')
        assert doc.version == "1.1"
        assert doc.encoding == "UTF-8"

    def test_entities_decoded(self):
        doc = parse("<r>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</r>")
        assert doc.root.text() == "<>&'\"AB"

    def test_cdata(self):
        doc = parse("<r><![CDATA[<not & parsed>]]></r>")
        assert doc.root.text() == "<not & parsed>"

    def test_comments_skipped(self):
        doc = parse("<r><!-- hello -->x<!-- bye --></r>")
        assert doc.root.text() == "x"

    def test_namespace_resolution(self):
        doc = parse('<a xmlns="urn:d" xmlns:p="urn:p"><p:b/><c/></a>')
        root = doc.root
        assert root.tag == QName("urn:d", "a")
        children = list(root.iter_elements())
        assert children[0].tag == QName("urn:p", "b")
        assert children[1].tag == QName("urn:d", "c")

    def test_namespace_shadowing(self):
        doc = parse('<a xmlns:p="urn:1"><b xmlns:p="urn:2"><p:c/></b><p:d/></a>')
        b = doc.root.find("b")
        assert b.find("c").tag.namespace == "urn:2"
        assert doc.root.find("d").tag.namespace == "urn:1"

    def test_unprefixed_attr_has_no_namespace(self):
        doc = parse('<a xmlns="urn:d" x="1"/>')
        assert doc.root.get(QName("", "x")) == "1"

    def test_bytes_input(self):
        assert parse(b"<r>\xc3\xa9</r>").root.text() == "é"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "<a>",
            "<a></b>",
            "<a",
            "<a x=1/>",
            "<a x='1' x='2'/>",
            "<a>&unknown;</a>",
            "<a>&#xZZ;</a>",
            "<p:a/>",
            "<a/><b/>",
            "<a><!DOCTYPE x></a>",
            "<!DOCTYPE html><a/>",
            "<a><?pi ?></a>",
            "<a 'x'/>",
            "<a x='<'/>",
        ],
    )
    def test_malformed_inputs_raise(self, bad):
        with pytest.raises(XmlParseError):
            parse(bad)

    def test_error_carries_offset(self):
        with pytest.raises(XmlParseError) as exc_info:
            parse("<a></b>")
        assert exc_info.value.pos > 0


# ----------------------------------------------------------- property tests

_name = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.-]{0,8}", fullmatch=True).filter(
    lambda s: not s.lower().startswith("xml")
)
_text = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters="\r", exclude_categories=("Cs", "Cc")
    ),
    max_size=40,
)


@st.composite
def _elements(draw, depth=0):
    el = Element(draw(_name))
    for attr in draw(st.lists(_name, max_size=3, unique=True)):
        el.set(attr, draw(_text))
    if depth < 3:
        children = draw(
            st.lists(
                st.one_of(_text, _elements(depth=depth + 1)),  # type: ignore[arg-type]
                max_size=3,
            )
        )
        for child in children:
            el.append(child)
    return el


class TestRoundtripProperties:
    @given(_elements())
    @settings(max_examples=150, deadline=None)
    def test_serialize_parse_roundtrip(self, el):
        assert parse(serialize(el)).root.structurally_equal(el)

    @given(_text)
    @settings(max_examples=150, deadline=None)
    def test_text_roundtrip(self, text):
        el = Element("e", children=[text] if text else [])
        assert parse(serialize(el)).root.all_text() == text

    @given(_text)
    @settings(max_examples=150, deadline=None)
    def test_attr_roundtrip(self, value):
        el = Element("e")
        el.set("a", value)
        assert parse(serialize(el)).root.get("a") == value
