"""Streaming merge of per-execution partial results.

Sub-query payloads arrive from the fan-out in completion order; the
merger folds each into per-group accumulators immediately (aggregate
queries) or appends projected rows (raw queries), so memory stays
proportional to the *output*, not to the number of executions touched.

count/sum/mean/min/max are all recoverable from the combinable
(count, total, min, max) accumulator, which is what makes partial
aggregation at the stores safe to merge here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.semantic import AggregateRecord, PerformanceResult, ordering_key
from repro.fedquery.ast import Query, QueryError
from repro.fedquery.pushdown import matches_value

#: raw-mode output columns, in order
RAW_COLUMNS = ("app", "exec", "metric", "focus", "type", "start", "end", "value")

#: columns parsed back as floats when unpacking
_FLOAT_COLUMNS = frozenset({"start", "end", "value"})


@dataclass(frozen=True)
class ResultRow:
    """One output row: parallel (columns, values) tuples.

    Values are strings for group keys / identity columns and numbers for
    measurements and aggregates, so rows survive a ``pack``/``unpack``
    round trip through the SOAP string array unchanged.
    """

    columns: tuple[str, ...]
    values: tuple[object, ...]

    def as_dict(self) -> dict[str, object]:
        return dict(zip(self.columns, self.values))

    def __getitem__(self, column: str) -> object:
        try:
            return self.values[self.columns.index(column)]
        except ValueError as exc:
            raise KeyError(column) from exc

    def pack(self) -> str:
        """Wire form: ``col=value|col=value|...`` (floats via repr)."""
        parts = []
        for column, value in zip(self.columns, self.values):
            rendered = repr(value) if isinstance(value, float) else str(value)
            parts.append(f"{column}={rendered}")
        return "|".join(parts)

    @staticmethod
    def unpack(text: str) -> "ResultRow":
        columns: list[str] = []
        values: list[object] = []
        for part in text.split("|"):
            column, sep, rendered = part.partition("=")
            if not sep:
                raise ValueError(f"bad ResultRow field {part!r} in {text!r}")
            columns.append(column)
            values.append(_parse_value(column, rendered))
        return ResultRow(tuple(columns), tuple(values))


def _parse_value(column: str, rendered: str) -> object:
    if column.startswith("count("):
        return int(rendered)
    if column in _FLOAT_COLUMNS or "(" in column:
        return float(rendered)
    return rendered


class Accumulator:
    """Combinable partial aggregate for one (group, metric)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = 0.0
        self.maximum = 0.0

    def add(self, value: float) -> None:
        if self.count == 0:
            self.minimum = value
            self.maximum = value
        else:
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
        self.count += 1
        self.total += value

    def absorb(self, record: AggregateRecord) -> None:
        if record.count <= 0:
            return
        if self.count == 0:
            self.minimum = record.minimum
            self.maximum = record.maximum
        else:
            if record.minimum < self.minimum:
                self.minimum = record.minimum
            if record.maximum > self.maximum:
                self.maximum = record.maximum
        self.count += record.count
        self.total += record.total

    def merge(self, other: "Accumulator") -> None:
        """Fold another combinable accumulator in (view re-merges)."""
        if other.count <= 0:
            return
        if self.count == 0:
            self.minimum = other.minimum
            self.maximum = other.maximum
        else:
            if other.minimum < self.minimum:
                self.minimum = other.minimum
            if other.maximum > self.maximum:
                self.maximum = other.maximum
        self.count += other.count
        self.total += other.total

    def result(self, func: str) -> object:
        if func == "count":
            return self.count
        if func == "sum":
            return self.total
        if func == "mean":
            return self.total / self.count
        if func == "min":
            return self.minimum
        if func == "max":
            return self.maximum
        raise QueryError(f"unknown aggregate function {func!r}")


@dataclass(frozen=True)
class TaskContext:
    """Identity of the execution a payload came from."""

    app: str
    exec_id: str = ""
    info: dict[str, str] | None = None


class StreamingMerger:
    """Folds per-execution payloads into the final row set."""

    def __init__(self, query: Query) -> None:
        self.query = query
        #: group key tuple -> metric -> Accumulator
        self._groups: dict[tuple[str, ...], dict[str, Accumulator]] = {}
        self._raw_rows: list[ResultRow] = []

    # ------------------------------------------------------------ absorb
    def absorb_aggregates(
        self, ctx: TaskContext, metric: str, records: list[AggregateRecord]
    ) -> None:
        """Fold getPRAgg buckets from one execution into the groups."""
        for record in records:
            if record.count <= 0:
                continue
            key = self._group_key(ctx, focus=record.group)
            if key is None:
                continue
            self._accumulator(key, metric).absorb(record)

    def absorb_results(
        self, ctx: TaskContext, metric: str, results: list[PerformanceResult]
    ) -> None:
        """Fold raw getPR rows: filter by value predicates, then reduce
        (aggregate query) or project (raw query)."""
        value_preds = self.query.predicates_on("value")
        for result in results:
            if value_preds and not matches_value(result.value, value_preds):
                continue
            if self.query.is_aggregate:
                key = self._group_key(ctx, focus=result.focus)
                if key is None:
                    continue
                self._accumulator(key, metric).add(result.value)
            else:
                self._raw_rows.append(
                    ResultRow(
                        RAW_COLUMNS,
                        (
                            ctx.app,
                            ctx.exec_id,
                            result.metric,
                            result.focus,
                            result.result_type,
                            result.start,
                            result.end,
                            result.value,
                        ),
                    )
                )

    # -------------------------------------------------------------- keys
    def _group_key(self, ctx: TaskContext, focus: str) -> tuple[str, ...] | None:
        """The group tuple for one record (None drops the record —
        an execution lacking a grouping attribute contributes nothing)."""
        key: list[str] = []
        info = ctx.info or {}
        for name in self.query.group_by:
            if name == "app":
                key.append(ctx.app)
            elif name == "exec":
                key.append(ctx.exec_id)
            elif name == "focus":
                key.append(focus)
            else:
                stored = info.get(name)
                if stored is None:
                    return None
                key.append(stored)
        return tuple(key)

    def _accumulator(self, key: tuple[str, ...], metric: str) -> Accumulator:
        metrics = self._groups.get(key)
        if metrics is None:
            metrics = self._groups[key] = {}
        acc = metrics.get(metric)
        if acc is None:
            acc = metrics[metric] = Accumulator()
        return acc

    # ------------------------------------------------ partition snapshots
    def group_accumulators(self) -> dict[tuple[str, ...], dict[str, Accumulator]]:
        """Snapshot of the per-group accumulators.

        View maintenance keeps one snapshot per member execution and
        rebuilds the view output by re-merging all partitions — min/max
        are not invertible, so deltas *replace* a partition's snapshot
        instead of subtracting from a global state.
        """
        return {key: dict(metrics) for key, metrics in self._groups.items()}

    def raw_rows(self) -> list[ResultRow]:
        """Snapshot of the (unordered) raw rows absorbed so far."""
        return list(self._raw_rows)

    def absorb_groups(
        self, groups: dict[tuple[str, ...], dict[str, Accumulator]]
    ) -> None:
        """Fold another merger's group snapshot in (combinable merge)."""
        for key, metrics in groups.items():
            for metric, acc in metrics.items():
                self._accumulator(key, metric).merge(acc)

    # ------------------------------------------------------------- output
    def rows(self) -> list[ResultRow]:
        """Materialize the (unordered) output rows."""
        if not self.query.is_aggregate:
            return list(self._raw_rows)
        columns = self.query.output_columns
        out: list[ResultRow] = []
        for key, metrics in self._groups.items():
            values: list[object] = list(key)
            complete = True
            for item in self.query.aggregates:
                acc = metrics.get(item.metric)
                if acc is None or acc.count == 0:
                    # a group never emits partial rows: it must have at
                    # least one matching result for every selected metric
                    complete = False
                    break
                values.append(acc.result(item.func))
            if complete:
                out.append(ResultRow(columns, tuple(values)))
        return out


# the canonical per-cell order lives in the semantic layer so server-side
# cursor sorting (repro.core) and this client-side merge agree by
# construction; the old private name stays as an alias for callers
_ordering_key = ordering_key


def row_sort_key(row: ResultRow) -> tuple:
    """Whole-row canonical sort key (what :func:`order_rows` sorts by,
    and what the streaming k-way merge heaps member rows on)."""
    return tuple(ordering_key(v) for v in row.values)


def order_rows(rows: list[ResultRow], query: Query) -> list[ResultRow]:
    """Deterministic ordering + LIMIT.

    Rows are first sorted by every column (numeric-aware) so output is
    reproducible without an ORDER BY; an explicit ORDER BY then applies
    as the primary, stable key.
    """
    ordered = sorted(rows, key=row_sort_key)
    if query.order_by is not None:
        column = query.order_by
        ordered.sort(
            key=lambda r: _ordering_key(r[column]), reverse=query.order_desc
        )
    if query.limit is not None:
        ordered = ordered[: query.limit]
    return ordered
