"""Tests for statistics, tables, and charts."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ascii_line_chart,
    coefficient_of_variation,
    confidence_interval,
    format_markdown_table,
    format_table,
    geometric_mean,
    mean,
    relative_change,
    speedup,
    stdev,
    summarize,
)


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_stdev_sample_denominator(self):
        assert stdev([2.0, 4.0]) == pytest.approx(math.sqrt(2))
        assert stdev([5.0]) == 0.0

    def test_cov(self):
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(math.sqrt(2) / 2)
        assert coefficient_of_variation([0.0, 0.0]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_confidence_interval_contains_mean(self):
        samples = [1.0, 2.0, 3.0, 4.0] * 10
        lo, hi = confidence_interval(samples, 0.95)
        assert lo < mean(samples) < hi
        lo90, hi90 = confidence_interval(samples, 0.90)
        assert (hi90 - lo90) < (hi - lo)

    def test_confidence_interval_bad_level(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], 0.5)

    def test_speedup_and_relative_change_match_thesis_convention(self):
        # Thesis Table 5 HPL row: 107.39 off / 54.77 on -> 1.96x, 96.05%.
        assert speedup(107.39, 54.77) == pytest.approx(1.96, abs=0.005)
        assert relative_change(107.39, 54.77) == pytest.approx(96.05, abs=0.05)

    def test_speedup_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
        with pytest.raises(ValueError):
            relative_change(1.0, -1.0)

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert (s.n, s.mean, s.minimum, s.maximum) == (3, 2.0, 1.0, 3.0)

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_mean_between_min_and_max(self, samples):
        m = mean(samples)
        eps = 1e-9 * max(abs(x) for x in samples)
        assert min(samples) - eps <= m <= max(samples) + eps

    @given(st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_geometric_le_arithmetic(self, samples):
        assert geometric_mean(samples) <= mean(samples) * (1 + 1e-9)

    @given(
        st.floats(min_value=0.1, max_value=1e3),
        st.floats(min_value=0.1, max_value=1e3),
    )
    @settings(max_examples=100, deadline=None)
    def test_relative_change_consistent_with_speedup(self, a, b):
        assert relative_change(a, b) == pytest.approx((speedup(a, b) - 1) * 100)


class TestTables:
    def test_format_table_aligns(self):
        out = format_table(["A", "Blong"], [["x", 1], ["yy", 2.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("A ")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_format_table_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["A"], [["x", "extra"]])

    def test_float_formatting(self):
        out = format_table(["v"], [[1234.5678], [0.000123], [12.3], [0]])
        assert "1,234.57" in out
        assert "0.000123" in out

    def test_markdown_table(self):
        out = format_markdown_table(["a", "b"], [[1, 2]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_markdown_row_width_checked(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])


class TestCharts:
    def test_line_chart_contains_series_and_ticks(self):
        chart = ascii_line_chart(
            [2, 4, 8],
            {"Opt": [1.0, 2.0, 4.0], "Non": [2.0, 4.0, 8.0]},
            title="T",
            y_label="ms",
        )
        assert "T" in chart
        assert "o = Opt" in chart and "* = Non" in chart
        assert "2" in chart and "8" in chart

    def test_mismatched_series_length_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_chart([1, 2], {"s": [1.0]})

    def test_empty_x_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_chart([], {})

    def test_single_point(self):
        chart = ascii_line_chart([1], {"s": [5.0]})
        assert "s" in chart
