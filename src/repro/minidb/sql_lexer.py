"""SQL lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.minidb.errors import SqlSyntaxError

KEYWORDS = frozenset(
    """
    SELECT FROM WHERE AND OR NOT NULL IS IN BETWEEN LIKE AS DISTINCT
    GROUP BY HAVING ORDER ASC DESC LIMIT OFFSET JOIN INNER LEFT ON
    INSERT INTO VALUES UPDATE SET DELETE CREATE TABLE INDEX DROP
    PRIMARY KEY UNIQUE TRUE FALSE IF EXISTS
    """.split()
)


class TokenKind(Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"  # operators and punctuation
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    pos: int

    def is_kw(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value in names

    def is_op(self, *ops: str) -> bool:
        return self.kind is TokenKind.OP and self.value in ops


_TWO_CHAR_OPS = ("<=", ">=", "!=", "<>", "||")
_ONE_CHAR_OPS = "+-*/%(),.=<>;"


def tokenize(sql: str) -> list[Token]:
    """Tokenize a SQL statement; always ends with an EOF token."""
    tokens: list[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if sql.startswith("--", i):  # line comment
            nl = sql.find("\n", i)
            i = n if nl == -1 else nl + 1
            continue
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError(f"unterminated string literal at {i}")
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token(TokenKind.STRING, "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and sql[j] in "+-":
                        j += 1
                else:
                    break
            text = sql[i:j]
            if text.endswith((".", "e", "E", "+", "-")):
                raise SqlSyntaxError(f"malformed number {text!r} at {i}")
            tokens.append(Token(TokenKind.NUMBER, text, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenKind.IDENT, word, i))
            i = j
            continue
        if ch == '"':  # quoted identifier
            j = sql.find('"', i + 1)
            if j == -1:
                raise SqlSyntaxError(f"unterminated quoted identifier at {i}")
            tokens.append(Token(TokenKind.IDENT, sql[i + 1 : j], i))
            i = j + 1
            continue
        two = sql[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(TokenKind.OP, two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(TokenKind.OP, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
