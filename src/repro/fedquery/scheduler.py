"""Engine-lifetime fan-out scheduling: pooled workers, tenant fairness.

The bulk executor used to build a fresh :class:`ThreadPoolExecutor` per
query — at MDS2-style concurrency the per-request thread create/join
churn dominates long before the stores saturate (the same collapse the
grid information-service studies measured).  :class:`FanoutScheduler`
replaces it with one engine-lifetime pool:

* **Pooled workers** — a bounded set of daemon threads, spawned lazily
  up to ``max_workers`` and reaped after ``worker_idle_s`` of idleness,
  pull member sub-query tasks from the scheduler's queues.  ``submit``
  returns a plain :class:`concurrent.futures.Future`, so the engine's
  ``FIRST_COMPLETED`` merge loop is byte-for-byte unchanged.
* **Per-tenant fair queueing** — with ``fair=True`` (the default) each
  tenant (the container ingress's ``clientId``) gets its own FIFO and
  runnable tasks are admitted round-robin across tenants, so a flooding
  tenant lengthens only its own queue.  ``fair=False`` degrades to one
  global FIFO (the benchmark's unfair arm).
* **Token-bucket rate limiting** — :meth:`acquire_rate` charges one
  token per query against the tenant's bucket and sheds excess with the
  established ``ServerBusy`` :class:`~repro.ogsi.dispatch.BusyFault`.
* **A reactor-driven control loop** — when the environment's
  :class:`~repro.simnet.reactor.Reactor` is attached, a periodic tick
  samples pool utilization and *completes the futures of tasks that
  overstayed* ``max_queue_wait_s`` with a ``BusyFault`` (queue-wait
  shedding).  Data-path completions are set by the worker that computed
  them — funnelling every completion through the single reactor thread
  would serialize the whole pool — so the reactor paces control work,
  never the merge.
* **An elastic stream lane** — :meth:`spawn` runs long-lived
  backpressure-blocked producers (:class:`~repro.fedquery.stream.
  MemberStream`) on reusable threads *outside* the bounded pool, so a
  stalled stream can never deadlock the sub-query workers, while
  per-tenant slot accounting still shows who holds stream capacity.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable

from repro.ogsi.dispatch import BusyFault

#: pool width when no Manager topology is known
DEFAULT_POOL_WORKERS = 8

#: tenant key for work submitted with no client identity
DEFAULT_TENANT = "default"

#: idle pool workers exit after this long with nothing queued
DEFAULT_WORKER_IDLE_S = 10.0

#: parked stream-lane threads exit after this long without a new producer
DEFAULT_STREAM_IDLE_S = 5.0

#: reactor tick interval: utilization sampling + queue-wait shedding
DEFAULT_TICK_INTERVAL_S = 0.25

#: minimum spacing between worker spawns once one worker exists —
#: damped growth: a submit burst must sustain a backlog to grow the
#: pool, so a transient wave is absorbed by the warm workers instead of
#: paying burst-sized thread churn (the very cost the pool exists to
#: avoid) and over-subscribing the interpreter
DEFAULT_SPAWN_INTERVAL_S = 0.01


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = time.monotonic()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        now = time.monotonic()
        self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False


class _Task:
    __slots__ = ("tenant", "fn", "future", "enqueued")

    def __init__(self, tenant: str, fn: Callable, future: Future, enqueued: float) -> None:
        self.tenant = tenant
        self.fn = fn
        self.future = future
        self.enqueued = enqueued


class _TenantState:
    """Per-tenant accounting (guarded by the scheduler condition)."""

    __slots__ = (
        "submitted", "completed", "cancelled", "shed",
        "wait_total_s", "wait_count", "wait_max_s", "stream_slots",
    )

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.cancelled = 0
        self.shed = 0
        self.wait_total_s = 0.0
        self.wait_count = 0
        self.wait_max_s = 0.0
        self.stream_slots = 0

    def snapshot(self, queued: int) -> dict[str, object]:
        avg_ms = (
            1000.0 * self.wait_total_s / self.wait_count if self.wait_count else 0.0
        )
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "shed": self.shed,
            "queued": queued,
            "avgWaitMs": round(avg_ms, 3),
            "maxWaitMs": round(1000.0 * self.wait_max_s, 3),
            "streamSlots": self.stream_slots,
        }


class FanoutScheduler:
    """One shared worker pool for federated fan-out (see module doc).

    ``reactor`` (optional) attaches the control tick; ``rate`` /
    ``burst`` set the default per-tenant token bucket (``None`` = no
    rate limiting until :meth:`set_rate_limit` is called);
    ``max_queue_wait_s`` (``None`` = off) sheds tasks that waited too
    long, their futures completed with a ``BusyFault`` by the reactor.
    """

    def __init__(
        self,
        max_workers: int = DEFAULT_POOL_WORKERS,
        fair: bool = True,
        reactor=None,
        name: str = "fanout",
        rate: float | None = None,
        burst: float | None = None,
        max_queue_wait_s: float | None = None,
        worker_idle_s: float = DEFAULT_WORKER_IDLE_S,
        stream_idle_s: float = DEFAULT_STREAM_IDLE_S,
        tick_interval_s: float = DEFAULT_TICK_INTERVAL_S,
        spawn_interval_s: float = DEFAULT_SPAWN_INTERVAL_S,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.fair = fair
        self.name = name
        self._cond = threading.Condition()
        #: fair mode: tenant -> FIFO of tasks, rotated round-robin
        self._queues: dict[str, deque[_Task]] = {}
        self._rotation: deque[str] = deque()
        #: unfair mode: one global FIFO
        self._fifo: deque[_Task] = deque()
        self._tenants: dict[str, _TenantState] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._default_rate = rate
        self._default_burst = burst if burst is not None else (rate or 0.0)
        self._max_queue_wait_s = max_queue_wait_s
        self._worker_idle_s = worker_idle_s
        self._stream_idle_s = stream_idle_s
        self._spawn_interval_s = spawn_interval_s
        self._last_spawn = 0.0
        self._workers: set[threading.Thread] = set()
        self._idle = 0
        self._busy = 0
        self._queued = 0
        self._shutdown = False
        # counters (guarded by _cond)
        self.workers_created = 0
        self.submitted = 0
        self.completed = 0
        self.cancelled = 0
        self.shed = 0
        self.shed_timeouts = 0
        self.peak_queued = 0
        self._util_sum = 0.0
        self._util_samples = 0
        # elastic stream lane (guarded by _stream_lock)
        self._stream_lock = threading.Lock()
        self._stream_idle_chans: list[queue.SimpleQueue] = []
        self._stream_active = 0
        self._stream_peak = 0
        self.stream_threads_created = 0
        self.stream_threads_reused = 0
        self.stream_failures = 0
        self._reactor_task = None
        if reactor is not None:
            try:
                self._reactor_task = reactor.call_every(tick_interval_s, self._on_tick)
            except RuntimeError:
                # reactor already shut down: run without the control tick
                self._reactor_task = None

    # ------------------------------------------------------------- submission
    def submit(self, fn: Callable, tenant: str = DEFAULT_TENANT) -> Future:
        """Queue ``fn()`` for a pool worker; returns its Future."""
        future: Future = Future()
        task = _Task(tenant, fn, future, time.monotonic())
        with self._cond:
            if self._shutdown:
                raise RuntimeError(f"scheduler {self.name!r} is shut down")
            if self.fair:
                fifo = self._queues.get(tenant)
                if fifo is None:
                    fifo = self._queues[tenant] = deque()
                    self._rotation.append(tenant)
                fifo.append(task)
            else:
                self._fifo.append(task)
            self._queued += 1
            self.submitted += 1
            self.peak_queued = max(self.peak_queued, self._queued)
            self._tenant_locked(tenant).submitted += 1
            if self._idle == 0 and len(self._workers) < self.max_workers:
                # damped growth: always keep at least one worker, then
                # add at most one per spawn interval while demand holds
                now = time.monotonic()
                if (
                    not self._workers
                    or now - self._last_spawn >= self._spawn_interval_s
                ):
                    self._last_spawn = now
                    self._spawn_worker_locked()
            # one task, one wakeup: notify_all here is a thundering herd
            # (every idle worker wakes, one wins, the rest re-sleep) that
            # convoys the pool at high submit rates
            self._cond.notify()
        return future

    def acquire_rate(self, tenant: str = DEFAULT_TENANT, tokens: float = 1.0) -> None:
        """Charge *tokens* against the tenant's bucket or shed the query.

        Raises the established ``ServerBusy`` :class:`BusyFault` when
        the tenant is over its rate; no-op while no limit is configured.
        """
        with self._cond:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                if self._default_rate is None:
                    return
                bucket = self._buckets[tenant] = TokenBucket(
                    self._default_rate, max(1.0, self._default_burst)
                )
            if not bucket.try_acquire(tokens):
                self.shed += 1
                self._tenant_locked(tenant).shed += 1
                raise BusyFault(
                    f"tenant {tenant!r} over its query rate "
                    f"({bucket.rate:g}/s, burst {bucket.burst:g}), try again later"
                )

    def set_rate_limit(
        self, tenant: str | None, rate: float | None, burst: float | None = None
    ) -> None:
        """Configure the token bucket for *tenant* (``None`` = the default
        applied to tenants without an explicit bucket).  ``rate=None``
        removes the limit."""
        with self._cond:
            if tenant is None:
                self._default_rate = rate
                self._default_burst = burst if burst is not None else (rate or 0.0)
                return
            if rate is None:
                self._buckets.pop(tenant, None)
                return
            self._buckets[tenant] = TokenBucket(
                rate, max(1.0, burst if burst is not None else rate)
            )

    # ------------------------------------------------------------ stream lane
    def spawn(self, fn: Callable[[], None], tenant: str = DEFAULT_TENANT) -> None:
        """Run a long-lived producer on the elastic stream lane.

        Stream producers block on backpressure for arbitrarily long, so
        they must not occupy bounded pool slots (a wide streamed query
        could otherwise starve every other tenant's sub-queries into a
        deadlock).  Parked lane threads are reused across streams; the
        tenant's ``streamSlots`` gauge tracks who holds lane capacity.
        """
        with self._cond:
            if self._shutdown:
                raise RuntimeError(f"scheduler {self.name!r} is shut down")
            self._tenant_locked(tenant).stream_slots += 1
            self._stream_active += 1
            self._stream_peak = max(self._stream_peak, self._stream_active)
        job = (fn, tenant)
        with self._stream_lock:
            if self._stream_idle_chans:
                chan = self._stream_idle_chans.pop()
                self.stream_threads_reused += 1
                chan.put(job)
                return
            self.stream_threads_created += 1
        thread = threading.Thread(
            target=self._stream_loop, args=(job,),
            name=f"{self.name}-stream", daemon=True,
        )
        thread.start()

    def _stream_loop(self, job) -> None:
        while job is not None:
            fn, tenant = job
            try:
                fn()
            except Exception:
                # producers report their own failures through the
                # MemberStream contract; a raw escape must not kill the
                # lane thread (it would defeat parking/reuse)
                with self._cond:
                    self.stream_failures += 1
            finally:
                with self._cond:
                    self._tenant_locked(tenant).stream_slots -= 1
                    self._stream_active -= 1
            chan: queue.SimpleQueue = queue.SimpleQueue()
            with self._stream_lock:
                if self._shutdown:
                    return
                self._stream_idle_chans.append(chan)
            try:
                job = chan.get(timeout=self._stream_idle_s)
            except queue.Empty:
                with self._stream_lock:
                    try:
                        self._stream_idle_chans.remove(chan)
                    except ValueError:
                        # a dispatcher (or shutdown) claimed this thread
                        # between the timeout and the lock: the job (or
                        # the shutdown sentinel) is already in flight
                        job = chan.get()
                    else:
                        return

    # ---------------------------------------------------------------- workers
    def _spawn_worker_locked(self) -> None:
        self.workers_created += 1
        thread = threading.Thread(
            target=self._worker_loop,
            name=f"{self.name}-worker-{self.workers_created}",
            daemon=True,
        )
        self._workers.add(thread)
        thread.start()

    def _worker_loop(self) -> None:
        me = threading.current_thread()
        while True:
            with self._cond:
                task = self._pop_locked()
                while task is None:
                    if self._shutdown:
                        self._workers.discard(me)
                        return
                    self._idle += 1
                    signalled = self._cond.wait(timeout=self._worker_idle_s)
                    self._idle -= 1
                    task = self._pop_locked()
                    if task is None and not signalled and not self._shutdown:
                        # idled through the reap window with nothing
                        # queued: shrink the pool (lazily regrown)
                        self._workers.discard(me)
                        return
                self._busy += 1
            tenant = task.tenant
            if task.future.set_running_or_notify_cancel():
                try:
                    result = task.fn()
                except BaseException as exc:  # noqa: BLE001 - forwarded via Future
                    task.future.set_exception(exc)
                else:
                    task.future.set_result(result)
                ran = True
            else:
                ran = False
            with self._cond:
                self._busy -= 1
                state = self._tenant_locked(tenant)
                if ran:
                    self.completed += 1
                    state.completed += 1
                else:
                    self.cancelled += 1
                    state.cancelled += 1

    def _pop_locked(self) -> _Task | None:
        if self.fair:
            if not self._rotation:
                return None
            tenant = self._rotation.popleft()
            fifo = self._queues[tenant]
            task = fifo.popleft()
            if fifo:
                self._rotation.append(tenant)  # round-robin re-queue
            else:
                del self._queues[tenant]
        else:
            if not self._fifo:
                return None
            task = self._fifo.popleft()
        self._queued -= 1
        state = self._tenant_locked(task.tenant)
        wait_s = time.monotonic() - task.enqueued
        state.wait_total_s += wait_s
        state.wait_count += 1
        state.wait_max_s = max(state.wait_max_s, wait_s)
        return task

    def _tenant_locked(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = self._tenants[tenant] = _TenantState()
        return state

    # ----------------------------------------------------------- reactor tick
    def _on_tick(self) -> None:
        """The reactor-driven control loop: sample gauges, shed overstays."""
        overdue: list[_Task] = []
        with self._cond:
            self._util_sum += self._busy / self.max_workers
            self._util_samples += 1
            if self._max_queue_wait_s is not None:
                cutoff = time.monotonic() - self._max_queue_wait_s
                fifos = list(self._queues.values()) if self.fair else [self._fifo]
                for fifo in fifos:
                    while fifo and fifo[0].enqueued < cutoff:
                        task = fifo.popleft()
                        overdue.append(task)
                        self._queued -= 1
                        self.shed += 1
                        self.shed_timeouts += 1
                        self._tenant_locked(task.tenant).shed += 1
                if self.fair:
                    drained = [t for t, fifo in self._queues.items() if not fifo]
                    for tenant in drained:
                        del self._queues[tenant]
                        try:
                            self._rotation.remove(tenant)
                        except ValueError:
                            pass
        for task in overdue:
            # the reactor completes shed futures: the merge loop sees a
            # BusyFault exactly as if admission had refused the work
            if task.future.set_running_or_notify_cancel():
                task.future.set_exception(
                    BusyFault(
                        f"tenant {task.tenant!r} task queued longer than "
                        f"{self._max_queue_wait_s:g}s, shed"
                    )
                )

    # -------------------------------------------------------------- lifecycle
    @property
    def is_shutdown(self) -> bool:
        with self._cond:
            return self._shutdown

    def worker_count(self) -> int:
        with self._cond:
            return len(self._workers)

    def shutdown(self) -> None:
        """Stop workers and cancel queued tasks.  Idempotent."""
        with self._cond:
            self._shutdown = True
            pending: list[_Task] = list(self._fifo)
            self._fifo.clear()
            for fifo in self._queues.values():
                pending.extend(fifo)
            self._queues.clear()
            self._rotation.clear()
            self._queued = 0
            workers = list(self._workers)
            self._cond.notify_all()
        for task in pending:
            task.future.cancel()
        if self._reactor_task is not None:
            self._reactor_task.cancel()
        with self._stream_lock:
            idle = list(self._stream_idle_chans)
            self._stream_idle_chans.clear()
        for chan in idle:
            chan.put(None)
        me = threading.current_thread()
        for thread in workers:
            if thread is not me:
                thread.join(timeout=2.0)

    # -------------------------------------------------------------- telemetry
    def stats(self) -> dict[str, object]:
        """Counter snapshot, with per-tenant sub-records under ``tenants``."""
        with self._cond:
            queued_by_tenant = {t: len(f) for t, f in self._queues.items()}
            tenants = {
                name: state.snapshot(queued_by_tenant.get(name, 0))
                for name, state in sorted(self._tenants.items())
            }
            avg_util = (
                self._util_sum / self._util_samples if self._util_samples else 0.0
            )
            return {
                "fair": int(self.fair),
                "maxWorkers": self.max_workers,
                "workers": len(self._workers),
                "busy": self._busy,
                "queueDepth": self._queued,
                "peakQueueDepth": self.peak_queued,
                "submitted": self.submitted,
                "completed": self.completed,
                "cancelled": self.cancelled,
                "shed": self.shed,
                "shedTimeouts": self.shed_timeouts,
                "workersCreated": self.workers_created,
                "poolUtilization": round(self._busy / self.max_workers, 6),
                "avgUtilization": round(avg_util, 6),
                "streamActive": self._stream_active,
                "streamPeak": self._stream_peak,
                "streamThreadsCreated": self.stream_threads_created,
                "streamThreadsReused": self.stream_threads_reused,
                "streamFailures": self.stream_failures,
                "tenants": tenants,
            }


# ---------------------------------------------------------- shared client pool
_SHARED: FanoutScheduler | None = None
_SHARED_LOCK = threading.Lock()


def shared_scheduler(max_workers: int = DEFAULT_POOL_WORKERS) -> FanoutScheduler:
    """The process-wide pool for client-side batch work (query panels).

    Created on first use; replaced transparently if the previous one was
    shut down.  ``max_workers`` applies only when (re)creating.
    """
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is None or _SHARED.is_shutdown:
            _SHARED = FanoutScheduler(max_workers=max_workers, name="shared")
        return _SHARED
