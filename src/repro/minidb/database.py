"""Database facade: catalog of tables and statement dispatch."""

from __future__ import annotations

from repro.minidb.errors import ProgrammingError
from repro.minidb.executor import ResultSet, SelectExecutor
from repro.minidb.expr import BoundExpr, RowLayout, contains_aggregate
from repro.minidb.schema import TableSchema
from repro.minidb.sql_ast import (
    CreateIndexStmt,
    CreateTableStmt,
    DeleteStmt,
    DropIndexStmt,
    DropTableStmt,
    InsertStmt,
    SelectStmt,
    Statement,
    UpdateStmt,
)
from repro.minidb.sql_parser import parse_sql
from repro.minidb.storage import Table
from repro.minidb.txn import TransactionLog
from repro.minidb.types import SqlValue


class Database:
    """A named collection of tables.

    ``execute(sql)`` parses and runs one statement; SELECT returns a
    :class:`ResultSet`, DML returns the affected-row count, DDL returns 0.
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.tables: dict[str, Table] = {}
        self._index_owner: dict[str, str] = {}  # index name -> table name
        self._txn: TransactionLog | None = None

    # ------------------------------------------------------- transactions
    @property
    def in_transaction(self) -> bool:
        return self._txn is not None and self._txn.active

    def begin(self) -> None:
        """Open a transaction (no nesting; autocommit otherwise)."""
        if self.in_transaction:
            raise ProgrammingError("a transaction is already open")
        self._txn = TransactionLog()
        for table in self.tables.values():
            table.txn_log = self._txn

    def commit(self) -> None:
        if not self.in_transaction:
            raise ProgrammingError("no open transaction to commit")
        txn = self._txn
        self._txn = None
        for table in self.tables.values():
            table.txn_log = None
        assert txn is not None
        txn.commit()

    def rollback(self) -> None:
        if not self.in_transaction:
            raise ProgrammingError("no open transaction to roll back")
        txn = self._txn
        self._txn = None
        for table in self.tables.values():
            table.txn_log = None
        assert txn is not None
        txn.rollback()

    # ------------------------------------------------------------ catalog
    def table(self, name: str) -> Table:
        low = name.lower()
        if low not in self.tables:
            raise ProgrammingError(f"no table {name!r} in database {self.name!r}")
        return self.tables[low]

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def create_table(self, schema: TableSchema) -> Table:
        low = schema.name.lower()
        if low in self.tables:
            raise ProgrammingError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self.tables[low] = table
        return table

    def drop_table(self, name: str) -> None:
        low = name.lower()
        if low not in self.tables:
            raise ProgrammingError(f"no table {name!r}")
        for index_name in list(self.tables[low].indexes):
            self._index_owner.pop(index_name.lower(), None)
        del self.tables[low]

    def table_names(self) -> list[str]:
        return sorted(t.schema.name for t in self.tables.values())

    def total_rows(self) -> int:
        return sum(len(t) for t in self.tables.values())

    def load_rows(self, table: str, columns: list[str], rows: list[tuple] | list[list]) -> int:
        """Bulk-load positional rows into *table* (ETL fast path)."""
        return self.table(table).insert_many(columns, rows)

    # ----------------------------------------------------------- dispatch
    def execute(self, sql: str, params: tuple | list | None = None) -> ResultSet | int:
        """Parse and execute; ``?`` placeholders are bound from *params*."""
        if params:
            sql = _bind_params(sql, list(params))
        stmt = parse_sql(sql)
        return self.execute_statement(stmt)

    def execute_statement(self, stmt: Statement) -> ResultSet | int:
        if isinstance(stmt, SelectStmt):
            return SelectExecutor(self, stmt).run()
        if self.in_transaction and isinstance(
            stmt, (CreateTableStmt, CreateIndexStmt, DropTableStmt, DropIndexStmt)
        ):
            raise ProgrammingError("DDL is not allowed inside a transaction")
        if isinstance(stmt, InsertStmt):
            return self._insert(stmt)
        if isinstance(stmt, UpdateStmt):
            return self._update(stmt)
        if isinstance(stmt, DeleteStmt):
            return self._delete(stmt)
        if isinstance(stmt, CreateTableStmt):
            if stmt.if_not_exists and self.has_table(stmt.table):
                return 0
            self.create_table(TableSchema(stmt.table, list(stmt.columns)))
            return 0
        if isinstance(stmt, CreateIndexStmt):
            low = stmt.name.lower()
            if low in self._index_owner:
                raise ProgrammingError(f"index {stmt.name!r} already exists")
            self.table(stmt.table).create_index(stmt.name, stmt.column, unique=stmt.unique)
            self._index_owner[low] = stmt.table.lower()
            return 0
        if isinstance(stmt, DropTableStmt):
            if stmt.if_exists and not self.has_table(stmt.table):
                return 0
            self.drop_table(stmt.table)
            return 0
        if isinstance(stmt, DropIndexStmt):
            low = stmt.name.lower()
            owner = self._index_owner.pop(low, None)
            if owner is None:
                if stmt.if_exists:
                    return 0
                raise ProgrammingError(f"no index {stmt.name!r}")
            self.tables[owner].drop_index(stmt.name)
            return 0
        raise ProgrammingError(f"unhandled statement {type(stmt).__name__}")  # pragma: no cover

    def query(self, sql: str, params: tuple | list | None = None) -> ResultSet:
        """Execute a statement that must be a SELECT."""
        result = self.execute(sql, params)
        if not isinstance(result, ResultSet):
            raise ProgrammingError("query() requires a SELECT statement")
        return result

    def explain(self, sql: str, params: tuple | list | None = None) -> str:
        """Describe the plan for a SELECT without executing it."""
        if params:
            sql = _bind_params(sql, list(params))
        stmt = parse_sql(sql)
        if not isinstance(stmt, SelectStmt):
            raise ProgrammingError("explain() requires a SELECT statement")
        lines = SelectExecutor(self, stmt).explain()
        return "\n".join(f"{'  ' * i}-> {line}" if i else line for i, line in enumerate(lines))

    # ---------------------------------------------------------------- DML
    def _insert(self, stmt: InsertStmt) -> int:
        table = self.table(stmt.table)
        columns = list(stmt.columns) or table.schema.column_names()
        empty_layout = RowLayout([])
        count = 0
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(columns):
                raise ProgrammingError(
                    f"INSERT has {len(row_exprs)} values for {len(columns)} columns"
                )
            values: dict[str, SqlValue] = {}
            for col, expr in zip(columns, row_exprs):
                if contains_aggregate(expr):
                    raise ProgrammingError("aggregates are not allowed in INSERT values")
                values[col] = BoundExpr(expr, empty_layout).eval(())
            table.insert(values)
            count += 1
        return count

    def _update(self, stmt: UpdateStmt) -> int:
        table = self.table(stmt.table)
        layout = RowLayout([(stmt.table, c.name) for c in table.schema.columns])
        predicate = BoundExpr(stmt.where, layout) if stmt.where is not None else None
        assignments = [(col, BoundExpr(expr, layout)) for col, expr in stmt.assignments]
        to_update: list[tuple[int, dict[str, SqlValue]]] = []
        for rowid, row in table.scan():
            if predicate is None or predicate.eval(row):
                to_update.append((rowid, {col: b.eval(row) for col, b in assignments}))
        for rowid, updates in to_update:
            table.update_row(rowid, updates)
        return len(to_update)

    def _delete(self, stmt: DeleteStmt) -> int:
        table = self.table(stmt.table)
        layout = RowLayout([(stmt.table, c.name) for c in table.schema.columns])
        predicate = BoundExpr(stmt.where, layout) if stmt.where is not None else None
        to_delete = [
            rowid for rowid, row in table.scan() if predicate is None or predicate.eval(row)
        ]
        table.delete_rows(to_delete)
        return len(to_delete)


def _bind_params(sql: str, params: list[SqlValue]) -> str:
    """Substitute ``?`` placeholders with SQL literals (string-safe)."""
    out: list[str] = []
    it = iter(params)
    i, n = 0, len(sql)
    in_string = False
    while i < n:
        ch = sql[i]
        if ch == "'":
            in_string = not in_string
            out.append(ch)
        elif ch == "?" and not in_string:
            try:
                value = next(it)
            except StopIteration:
                raise ProgrammingError("not enough parameters for placeholders") from None
            out.append(_literal(value))
        else:
            out.append(ch)
        i += 1
    try:
        next(it)
    except StopIteration:
        return "".join(out)
    raise ProgrammingError("too many parameters for placeholders")


def _literal(value: SqlValue) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
