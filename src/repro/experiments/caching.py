"""Table 5 — Performance-Result caching.

Thesis method (§6.6): one representative ``getPR`` query per data source,
run 30 times with caching off and 30 times with caching on; report mean
query times, relative change, and speedup.  With caching on only the
first query reaches the Mapping Layer; the rest are hash-table hits, so
the speedup tracks how much of the total time the Mapping Layer was
(huge for SMG98, ~2x for HPL, small for RMA where the text parse is
cheap relative to the SOAP path).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import mean, relative_change, speedup
from repro.analysis.tables import format_table
from repro.core.semantic import UNDEFINED_TYPE
from repro.experiments.common import GridScale, TestGrid, build_grid

_QUERY_PLANS = {
    "HPL": ("gflops", ["/Run"]),
    "PRESTA-RMA": (
        "bandwidth_mbps",
        ["/Op/MPI_Put", "/Op/MPI_Get", "/Op/MPI_Accumulate", "/Op/MPI_Send", "/Op/MPI_Isend"],
    ),
    "SMG98": ("time_spent", ["/Code/MPI/MPI_Allgather"]),
}
_STORE_KINDS = {"HPL": "RDBMS", "PRESTA-RMA": "ASCII text files", "SMG98": "RDBMS"}


@dataclass
class CachingRow:
    source: str
    store_kind: str
    queries: int
    mean_off_ms: float
    mean_on_ms: float

    @property
    def speedup(self) -> float:
        return speedup(self.mean_off_ms, self.mean_on_ms)

    @property
    def relative_change_pct(self) -> float:
        return relative_change(self.mean_off_ms, self.mean_on_ms)


@dataclass
class CachingResult:
    rows: list[CachingRow]

    def to_table(self) -> str:
        headers = [
            "Data Source",
            "Store",
            "Mean query time, caching off (ms)",
            "Mean query time, caching on (ms)",
            "Relative Change",
            "Speedup",
        ]
        rows = [
            [
                r.source,
                r.store_kind,
                r.mean_off_ms,
                r.mean_on_ms,
                f"{r.relative_change_pct:,.2f}%",
                f"{r.speedup:,.2f}",
            ]
            for r in self.rows
        ]
        return format_table(headers, rows, title="Table 5: PPerfGrid Caching")

    def row(self, source: str) -> CachingRow:
        for r in self.rows:
            if r.source == source:
                return r
        raise KeyError(source)


#: a second metric per source, used only to warm code paths without
#: touching the measured query's cache key
_WARMUP_PLANS = {
    "HPL": ("runtimesec", ["/Run"]),
    "PRESTA-RMA": ("latency_us", ["/Op/MPI_Accumulate"]),
    "SMG98": ("func_calls", ["/Code/MPI/MPI_Comm_rank"]),
}


def _measure_arm(grid: TestGrid, source: str, num_queries: int, warmup: int) -> float:
    """Mean total getPR time (seconds) for one arm of one source."""
    binding = grid.bind(source)
    executions = binding.all_executions()
    execution = executions[0]
    metric, foci = _QUERY_PLANS[source]
    warm_metric, warm_foci = _WARMUP_PLANS[source]
    # Warm interpreter/code paths with a *different* query so the
    # measured key still starts cold, exactly as in the thesis's runs.
    for _ in range(warmup):
        execution.get_pr(warm_metric, warm_foci, result_type=UNDEFINED_TYPE)
    timer = grid.environment.recorder.timer("virtualization.getPR")
    samples: list[float] = []
    for _ in range(num_queries):
        n = len(timer.samples)
        execution.get_pr(metric, foci, result_type=UNDEFINED_TYPE)
        samples.append(sum(timer.samples[n:]))
    return mean(samples)


def run_caching_experiment(
    scale: GridScale | None = None,
    num_queries: int = 30,
    fast_source_queries: int | None = None,
    warmup: int = 5,
) -> CachingResult:
    """Run both arms for all three sources.

    ``num_queries`` matches the thesis (30 per arm) and applies to SMG98;
    ``fast_source_queries`` (default ``10 * num_queries``) applies to HPL
    and RMA, whose per-query times are ~100x smaller on this substrate
    than on the 2004 testbed — at 30 samples their means would be
    dominated by scheduler noise rather than the caching effect.
    """
    fast = fast_source_queries if fast_source_queries is not None else num_queries * 10
    grid_off = build_grid(scale, caching=False)
    grid_on = build_grid(scale, caching=True)
    try:
        rows: list[CachingRow] = []
        for source in ("HPL", "PRESTA-RMA", "SMG98"):
            queries = num_queries if source == "SMG98" else fast
            off_s = _measure_arm(grid_off, source, queries, warmup)
            on_s = _measure_arm(grid_on, source, queries, warmup)
            rows.append(
                CachingRow(
                    source=source,
                    store_kind=_STORE_KINDS[source],
                    queries=queries,
                    mean_off_ms=off_s * 1000,
                    mean_on_ms=on_s * 1000,
                )
            )
        return CachingResult(rows=rows)
    finally:
        grid_off.cleanup()
        grid_on.cleanup()
