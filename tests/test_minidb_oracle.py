"""Property-based minidb testing against a plain-Python oracle.

Random row sets are loaded into a table, then queries whose results can
be computed independently in Python are compared against the engine.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Database

_COLS = ("id", "grp", "x", "flag")

_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),  # grp
        st.integers(min_value=-100, max_value=100),  # x
        st.booleans(),
    ),
    min_size=0,
    max_size=60,
)


def _load(rows) -> tuple[Database, list[tuple]]:
    db = Database("oracle")
    db.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, x INTEGER, flag BOOLEAN)"
    )
    table = [(i + 1, grp, x, flag) for i, (grp, x, flag) in enumerate(rows)]
    if table:
        db.load_rows("t", list(_COLS), table)
    return db, table


class TestSelectOracle:
    @given(_rows, st.integers(min_value=-100, max_value=100))
    @settings(max_examples=120, deadline=None)
    def test_where_filter(self, rows, threshold):
        db, table = _load(rows)
        got = db.query("SELECT id FROM t WHERE x > ? ORDER BY id", [threshold])
        expected = [r[0] for r in table if r[2] > threshold]
        assert got.column("id") == expected

    @given(_rows)
    @settings(max_examples=120, deadline=None)
    def test_group_by_aggregates(self, rows):
        db, table = _load(rows)
        got = db.query(
            "SELECT grp, COUNT(*), SUM(x), MIN(x), MAX(x) FROM t GROUP BY grp ORDER BY grp"
        )
        expected = {}
        for _, grp, x, _ in table:
            bucket = expected.setdefault(grp, [0, 0, None, None])
            bucket[0] += 1
            bucket[1] += x
            bucket[2] = x if bucket[2] is None else min(bucket[2], x)
            bucket[3] = x if bucket[3] is None else max(bucket[3], x)
        rows_expected = [
            (grp, c, s, lo, hi) for grp, (c, s, lo, hi) in sorted(expected.items())
        ]
        assert got.rows == rows_expected

    @given(_rows)
    @settings(max_examples=120, deadline=None)
    def test_order_by_stable_against_sorted(self, rows):
        db, table = _load(rows)
        got = db.query("SELECT x FROM t ORDER BY x DESC")
        assert got.column("x") == sorted((r[2] for r in table), reverse=True)

    @given(_rows)
    @settings(max_examples=120, deadline=None)
    def test_distinct(self, rows):
        db, table = _load(rows)
        got = db.query("SELECT DISTINCT grp FROM t ORDER BY grp")
        assert got.column("grp") == sorted({r[1] for r in table})

    @given(_rows, st.integers(min_value=0, max_value=10), st.integers(min_value=0, max_value=10))
    @settings(max_examples=120, deadline=None)
    def test_limit_offset(self, rows, limit, offset):
        db, table = _load(rows)
        got = db.query(f"SELECT id FROM t ORDER BY id LIMIT {limit} OFFSET {offset}")
        expected = [r[0] for r in table][offset : offset + limit]
        assert got.column("id") == expected

    @given(_rows)
    @settings(max_examples=100, deadline=None)
    def test_boolean_column_filter(self, rows):
        db, table = _load(rows)
        got = db.query("SELECT COUNT(*) FROM t WHERE flag = TRUE")
        assert got.scalar() == sum(1 for r in table if r[3])

    @given(_rows)
    @settings(max_examples=100, deadline=None)
    def test_self_join_count(self, rows):
        db, table = _load(rows)
        got = db.query("SELECT COUNT(*) FROM t a JOIN t b ON a.grp = b.grp")
        from collections import Counter

        counts = Counter(r[1] for r in table)
        assert got.scalar() == sum(n * n for n in counts.values())

    @given(_rows, st.integers(min_value=-100, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_delete_then_count(self, rows, threshold):
        db, table = _load(rows)
        deleted = db.execute("DELETE FROM t WHERE x < ?", [threshold])
        expected_deleted = sum(1 for r in table if r[2] < threshold)
        assert deleted == expected_deleted
        assert db.query("SELECT COUNT(*) FROM t").scalar() == len(table) - expected_deleted

    @given(_rows)
    @settings(max_examples=100, deadline=None)
    def test_update_everything(self, rows):
        db, table = _load(rows)
        db.execute("UPDATE t SET x = x + 1000")
        got = db.query("SELECT SUM(x) FROM t")
        expected = sum(r[2] for r in table) + 1000 * len(table) if table else None
        assert got.scalar() == expected

    @given(_rows)
    @settings(max_examples=80, deadline=None)
    def test_index_agrees_with_scan(self, rows):
        db, table = _load(rows)
        db.execute("CREATE INDEX idx_grp ON t (grp)")
        for grp in {r[1] for r in table} | {999}:
            indexed = db.query("SELECT id FROM t WHERE grp = ? ORDER BY id", [grp])
            expected = [r[0] for r in table if r[1] == grp]
            assert indexed.column("id") == expected

    @given(_rows)
    @settings(max_examples=80, deadline=None)
    def test_avg_matches_python(self, rows):
        db, table = _load(rows)
        got = db.query("SELECT AVG(x) FROM t").scalar()
        if not table:
            assert got is None
        else:
            assert got == pytest.approx(sum(r[2] for r in table) / len(table))
