"""Concurrency tests: threaded clients against shared containers."""

import threading

import pytest

from repro.core import ExecutionQuery, ExecutionQueryPanel, PPerfGridClient, PPerfGridSite, SiteConfig
from repro.datastores import generate_hpl
from repro.mapping import HplRdbmsWrapper
from repro.ogsi import GridEnvironment


@pytest.fixture()
def env_site():
    env = GridEnvironment()
    site = PPerfGridSite(
        env,
        SiteConfig("s:1", "HPL"),
        HplRdbmsWrapper(generate_hpl(num_executions=12).to_database()),
    )
    return env, site


class TestThreadedClients:
    def test_many_threads_querying_one_site(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        executions = app.all_executions()
        errors: list[BaseException] = []
        results: dict[int, float] = {}

        def worker(thread_id: int) -> None:
            try:
                execution = executions[thread_id % len(executions)]
                for _ in range(10):
                    prs = execution.get_pr("gflops", ["/Run"])
                    results[thread_id] = prs[0].value
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 16

    def test_threaded_binds_get_unique_instances(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        bindings: list = []
        lock = threading.Lock()
        errors: list[BaseException] = []

        def binder() -> None:
            try:
                binding = client.bind(site.factory_url, "HPL")
                with lock:
                    bindings.append(binding)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=binder) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        gshs = [b.gsh for b in bindings]
        assert len(set(gshs)) == 8  # GSH uniqueness held under contention

    def test_parallel_panel_under_contention(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        panel = ExecutionQueryPanel(executions=app.all_executions())
        panel.add_query(ExecutionQuery("gflops", ["/Run"]))
        panel.add_query(ExecutionQuery("runtimesec", ["/Run"]))
        parallel = panel.run_queries_parallel(max_workers=12)
        serial = panel.run_queries()
        assert parallel == serial

    def test_concurrent_manager_requests_share_instance_cache(self, env_site):
        env, site = env_site
        client = PPerfGridClient(env)
        app = client.bind(site.factory_url, "HPL")
        all_results: list[list[str]] = []
        lock = threading.Lock()

        def fetch() -> None:
            gshs = [e.gsh for e in app.all_executions()]
            with lock:
                all_results.append(gshs)

        threads = [threading.Thread(target=fetch) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Dispatch serialization makes the Manager's cache coherent: every
        # thread saw the same instance handles, and only 12 were created.
        assert all(r == all_results[0] for r in all_results)
        assert site.manager.creations == 12
