"""The Factory PortType.

A Factory is a persistent (non-transient) Grid service that creates
transient service instances on demand.  In PPerfGrid, each published
Application dataset deploys an Application Factory and an Execution
Factory; instances are created when clients (or the Manager) call
``CreateService`` — "creation of a Grid service instance is a relatively
expensive operation" (§5.3.1.4), which this reproduction preserves by
routing creation through the full container path.
"""

from __future__ import annotations

from typing import Callable

from repro.ogsi.porttypes import FACTORY_PORTTYPE
from repro.ogsi.service import GridServiceBase

#: builds a fresh (undeployed) service instance from creation parameters
InstanceBuilder = Callable[[list[str]], GridServiceBase]


class FactoryService(GridServiceBase):
    """A Factory that delegates instance construction to a builder callable.

    ``instance_lifetime``: default relative lifetime (seconds) granted to
    created instances; ``None`` means no expiry.  The created instance is
    deployed into the factory's own container under
    ``<factory-path>/instances/<n>``.
    """

    porttype = FACTORY_PORTTYPE

    def __init__(
        self,
        builder: InstanceBuilder,
        instance_lifetime: float | None = None,
    ) -> None:
        super().__init__()
        self.builder = builder
        self.instance_lifetime = instance_lifetime
        self.created_count = 0

    def CreateService(self, creationParameters: list[str]) -> str:
        """Create one instance; returns its GSH as a string."""
        self.require_active()
        if self.container is None or self.gsh is None:
            raise RuntimeError("factory is not deployed")
        instance = self.builder(list(creationParameters or []))
        gsh = self.container.deploy_instance(self.gsh.path, instance)
        if self.instance_lifetime is not None:
            instance.termination_time = self.container.clock.now() + self.instance_lifetime
        self.created_count += 1
        self.service_data.set("instancesCreated", str(self.created_count))
        return gsh.url()
