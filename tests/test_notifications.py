"""Tests for push/pull notifications."""

import pytest

from repro.ogsi import (
    GRID_SERVICE_PORTTYPE,
    GridEnvironment,
    GridServiceBase,
    NotificationSinkBase,
    PullNotificationSink,
)
from repro.ogsi.notification import NotificationSourceMixin
from repro.ogsi.porttypes import NOTIFICATION_SOURCE_PORTTYPE
from repro.simnet.clock import VirtualClock
from repro.wsdl import PortType


class SourceService(GridServiceBase, NotificationSourceMixin):
    porttype = PortType(
        "Source", "urn:src", (), extends=(GRID_SERVICE_PORTTYPE, NOTIFICATION_SOURCE_PORTTYPE)
    )

    def __init__(self) -> None:
        super().__init__()
        self._init_notification_source()


@pytest.fixture()
def env():
    return GridEnvironment(clock=VirtualClock())


@pytest.fixture()
def setup(env):
    container = env.create_container("site:1")
    source = SourceService()
    source_gsh = container.deploy("services/source", source)
    received: list[tuple[str, str]] = []
    sink = NotificationSinkBase(callback=lambda t, m: received.append((t, m)))
    sink_gsh = container.deploy("services/sink", sink)
    return container, source, source_gsh, sink, sink_gsh, received


class TestPush:
    def test_subscribe_and_notify(self, setup):
        _, source, _, _, sink_gsh, received = setup
        sub = source.SubscribeToNotificationTopic("updates", sink_gsh.url(), 0.0)
        assert sub.startswith("sub-")
        assert source.notify("updates", "hello") == 1
        assert received == [("updates", "hello")]

    def test_topic_filtering(self, setup):
        _, source, _, _, sink_gsh, received = setup
        source.SubscribeToNotificationTopic("a", sink_gsh.url(), 0.0)
        assert source.notify("b", "nope") == 0
        assert received == []

    def test_wildcard_topic(self, setup):
        _, source, _, _, sink_gsh, received = setup
        source.SubscribeToNotificationTopic("*", sink_gsh.url(), 0.0)
        assert source.notify("anything", "msg") == 1

    def test_unsubscribe(self, setup):
        _, source, _, _, sink_gsh, received = setup
        sub = source.SubscribeToNotificationTopic("t", sink_gsh.url(), 0.0)
        source.UnsubscribeFromNotificationTopic(sub)
        assert source.notify("t", "m") == 0

    def test_expired_subscription_dropped(self, env, setup):
        _, source, _, _, sink_gsh, received = setup
        source.SubscribeToNotificationTopic("t", sink_gsh.url(), 5.0)
        env.clock.advance(10.0)
        assert source.notify("t", "late") == 0
        assert source.subscription_count() == 0

    def test_dead_sink_unsubscribed(self, setup):
        _, source, _, sink, sink_gsh, received = setup
        source.SubscribeToNotificationTopic("t", sink_gsh.url(), 0.0)
        sink.Destroy()
        assert source.notify("t", "m") == 0
        assert source.subscription_count() == 0

    def test_empty_topic_rejected(self, setup):
        _, source, _, _, sink_gsh, _ = setup
        with pytest.raises(ValueError):
            source.SubscribeToNotificationTopic("", sink_gsh.url(), 0.0)

    def test_bad_sink_handle_rejected(self, setup):
        _, source, _, _, _, _ = setup
        with pytest.raises(Exception):
            source.SubscribeToNotificationTopic("t", "not-a-gsh", 0.0)

    def test_multiple_sinks(self, env, setup):
        container, source, _, _, sink_gsh, received = setup
        other: list = []
        sink2 = NotificationSinkBase(callback=lambda t, m: other.append(m))
        sink2_gsh = container.deploy("services/sink2", sink2)
        source.SubscribeToNotificationTopic("t", sink_gsh.url(), 0.0)
        source.SubscribeToNotificationTopic("t", sink2_gsh.url(), 0.0)
        assert source.notify("t", "m") == 2
        assert received == [("t", "m")] and other == ["m"]

    def test_expired_pruned_even_on_topic_mismatch(self, env, setup):
        _, source, _, _, sink_gsh, received = setup
        source.SubscribeToNotificationTopic("a", sink_gsh.url(), 5.0)
        source.SubscribeToNotificationTopic("b", sink_gsh.url(), 0.0)
        env.clock.advance(10.0)
        # "c" matches neither subscription: nothing delivered, but the
        # expired "a" entry is pruned while the live "b" one is kept
        assert source.notify("c", "m") == 0
        assert source.subscription_count() == 1
        assert received == []

    def test_non_matching_topic_keeps_subscription(self, setup):
        _, source, _, _, sink_gsh, received = setup
        source.SubscribeToNotificationTopic("a", sink_gsh.url(), 0.0)
        assert source.notify("b", "m") == 0
        assert source.subscription_count() == 1
        assert source.notify("a", "m") == 1  # still live afterwards

    def test_transient_delivery_failure_keeps_subscription(self, setup):
        container, source, _, _, _, _ = setup
        calls: list[str] = []

        def flaky(topic, message):
            calls.append(message)
            if len(calls) == 1:
                raise RuntimeError("sink hiccup")

        sink = NotificationSinkBase(callback=flaky)
        gsh = container.deploy("services/flaky-sink", sink)
        source.SubscribeToNotificationTopic("t", gsh.url(), 0.0)
        assert source.notify("t", "one") == 0  # delivery raised
        assert source.delivery_failures == 1
        assert source.subscription_count() == 1  # kept, not unsubscribed
        assert source.notify("t", "two") == 1  # next delivery succeeds
        assert calls == ["one", "two"]

    def test_transient_bind_failure_keeps_subscription(self, env, setup, monkeypatch):
        """A stub *bind* that raises something other than GshError is a
        transient fault (busy container, flaky transport), not a dead
        sink: the subscription must survive.  The old code dropped it."""
        _, source, _, _, sink_gsh, received = setup
        source.SubscribeToNotificationTopic("t", sink_gsh.url(), 0.0)
        real_bind = env.stub_for_handle
        attempts: list[int] = []

        def flaky_bind(handle, porttype, headers_provider=None):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient bind failure")
            return real_bind(handle, porttype, headers_provider)

        monkeypatch.setattr(env, "stub_for_handle", flaky_bind)
        assert source.notify("t", "one") == 0  # bind raised
        assert source.delivery_failures == 1
        assert source.subscription_count() == 1  # kept, not unsubscribed
        assert source.notify("t", "two") == 1  # bind recovered
        assert received == [("t", "two")]

    def test_dead_sink_bind_failure_still_unsubscribes(self, env, setup, monkeypatch):
        """GshError stays the one bind failure that drops a subscription."""
        from repro.ogsi.gsh import GshError

        _, source, _, _, sink_gsh, _ = setup
        source.SubscribeToNotificationTopic("t", sink_gsh.url(), 0.0)
        monkeypatch.setattr(
            env,
            "stub_for_handle",
            lambda *a, **k: (_ for _ in ()).throw(GshError("stale handle")),
        )
        assert source.notify("t", "m") == 0
        assert source.subscription_count() == 0
        assert source.delivery_failures == 0

    def test_delivery_failure_does_not_block_other_sinks(self, setup):
        container, source, _, _, sink_gsh, received = setup

        def always_broken(topic, message):
            raise RuntimeError("permanently grumpy")

        broken = NotificationSinkBase(callback=always_broken)
        broken_gsh = container.deploy("services/broken-sink", broken)
        source.SubscribeToNotificationTopic("t", broken_gsh.url(), 0.0)
        source.SubscribeToNotificationTopic("t", sink_gsh.url(), 0.0)
        assert source.notify("t", "m") == 1
        assert received == [("t", "m")]
        assert source.delivery_failures == 1


class TestPull:
    def test_queue_and_poll(self, setup):
        container, source, _, _, _, _ = setup
        pull = PullNotificationSink()
        gsh = container.deploy("services/pull", pull)
        source.SubscribeToNotificationTopic("t", gsh.url(), 0.0)
        source.notify("t", "one")
        source.notify("t", "two")
        assert pull.pending() == 2
        assert pull.poll(1) == [("t", "one")]
        assert pull.poll() == [("t", "two")]
        assert pull.pending() == 0

    def test_bounded_queue_drops_oldest(self, setup):
        container, source, _, _, _, _ = setup
        pull = PullNotificationSink(max_queue=2)
        gsh = container.deploy("services/pull", pull)
        source.SubscribeToNotificationTopic("t", gsh.url(), 0.0)
        for i in range(4):
            source.notify("t", str(i))
        assert pull.dropped == 2
        assert [m for _, m in pull.poll()] == ["2", "3"]
