"""XML wrapper: HPL in a native-XML store (future-work §7 variant).

Same semantics as :class:`repro.mapping.rdbms.HplRdbmsWrapper`, but the
Mapping Layer issues XPath queries against an :class:`XmlStore` instead
of SQL — the "same content, different format" comparison the thesis
proposes for overhead testing.
"""

from __future__ import annotations

from repro.core.semantic import (
    UNDEFINED_TYPE,
    MetricStats,
    PerformanceResult,
    StoreStats,
)
from repro.datastores.xmlstore import XmlStore
from repro.mapping.base import (
    ApplicationWrapper,
    ExecutionWrapper,
    MappingError,
    compare_attribute,
)
from repro.xmlkit import Element


class HplXmlWrapper(ApplicationWrapper):
    """HPL over an XML document store."""

    result_type = "hpl"
    ATTRIBUTES = ("rundate", "n", "nb", "p", "q", "numprocs", "machine")
    METRICS = ("gflops", "runtimesec", "resid")

    def __init__(self, store: XmlStore) -> None:
        self.store = store

    def get_app_info(self) -> list[tuple[str, str]]:
        return [
            ("name", "HPL"),
            (
                "description",
                "HPL - A Portable Implementation of the High-Performance "
                "Linpack Benchmark (native XML store)",
            ),
            ("format", "xml"),
            ("executions", str(len(self.store.runs()))),
        ]

    def get_exec_query_params(self) -> dict[str, list[str]]:
        return {attr: self.store.attribute_values(attr) for attr in self.ATTRIBUTES}

    def get_all_exec_ids(self) -> list[str]:
        ids = self.store.attribute_values("runid")
        return sorted(ids, key=int)

    def get_exec_ids(self, attribute: str, value: str, operator: str = "=") -> list[str]:
        self.check_operator(operator)
        attr = attribute.lower()
        if attr != "runid" and attr not in self.ATTRIBUTES:
            raise MappingError(f"unknown attribute {attribute!r} for HPL (xml)")
        if operator == "=":
            # The store's XPath engine handles equality predicates natively.
            hits = self.store.select(f"/hplResults/run[@{attr}='{value}']/@runid")
            return sorted((h for h in hits if isinstance(h, str)), key=int)
        out: list[str] = []
        for run in self.store.runs():
            stored = run.get(attr)
            runid = run.get("runid")
            if stored is not None and runid is not None:
                if compare_attribute(stored, value, operator):
                    out.append(runid)
        return sorted(out, key=int)

    def execution(self, exec_id: str) -> "HplXmlExecutionWrapper":
        try:
            runid = int(exec_id)
        except ValueError as exc:
            raise MappingError(f"bad HPL execution id {exec_id!r}") from exc
        run = self.store.run_by_id(runid)
        if run is None:
            raise MappingError(f"no HPL execution {exec_id!r} in XML store")
        return HplXmlExecutionWrapper(self.store, runid)

    def get_stats(self) -> StoreStats:
        """One pass over the run elements (attributes hold the metrics).

        ``get_pr`` returns one ``/Run`` result per run that carries the
        metric attribute, so per-metric row counts are presence counts
        and ranges are exact attribute min/max — the same pass collects
        the complete value lists the tier-0 sketches require.
        """
        from dataclasses import replace

        return replace(
            _hpl_xml_stats(list(self.store.runs())),
            distincts=self.attribute_distincts(),
        )


def _hpl_xml_stats(runs: list) -> StoreStats:
    from repro.fedquery.sketch import sketches_from_values

    metrics = []
    scanned: dict[str, list[float]] = {}
    for metric in sorted(HplXmlWrapper.METRICS):
        values = []
        for run in runs:
            raw = run.get(metric)
            if raw is not None:
                values.append(float(raw))
        scanned[metric] = values
        metrics.append(
            MetricStats(
                metric=metric,
                rows=len(values),
                minimum=min(values) if values else 0.0,
                maximum=max(values) if values else 0.0,
            )
        )
    runtimes = [float(run.get("runtimesec") or 0.0) for run in runs]
    return StoreStats(
        executions=len(runs),
        start=0.0,
        end=max(runtimes) if runtimes else 0.0,
        foci=("/Run",),
        types=(HplXmlWrapper.result_type,),
        metrics=tuple(metrics),
        sketches=sketches_from_values(scanned),
    )


class HplXmlExecutionWrapper(ExecutionWrapper):
    """One HPL run read from the XML store per query."""

    def __init__(self, store: XmlStore, runid: int) -> None:
        self.store = store
        self.runid = runid

    def _run(self) -> Element:
        run = self.store.run_by_id(self.runid)
        if run is None:
            raise MappingError(f"execution {self.runid} disappeared from XML store")
        return run

    def get_info(self) -> list[tuple[str, str]]:
        run = self._run()
        return sorted((key.local, value) for key, value in run.attrs.items())

    def get_foci(self) -> list[str]:
        return ["/Run"]

    def get_metrics(self) -> list[str]:
        return sorted(HplXmlWrapper.METRICS)

    def get_types(self) -> list[str]:
        return [HplXmlWrapper.result_type]

    def get_time_start_end(self) -> tuple[float, float]:
        run = self._run()
        runtime = run.get("runtimesec")
        if runtime is None:
            raise MappingError(f"execution {self.runid} lacks runtimesec")
        return (0.0, float(runtime))

    def get_pr(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
    ) -> list[PerformanceResult]:
        if result_type not in (UNDEFINED_TYPE, "", HplXmlWrapper.result_type):
            return []
        if metric not in HplXmlWrapper.METRICS:
            raise MappingError(f"unknown HPL metric {metric!r}")
        run = self._run()
        raw = run.get(metric)
        if raw is None:
            return []
        runtime = float(run.get("runtimesec") or 0.0)
        results: list[PerformanceResult] = []
        for focus in foci:
            if focus != "/Run":
                continue
            results.append(
                PerformanceResult(
                    metric=metric,
                    focus=focus,
                    result_type=HplXmlWrapper.result_type,
                    start=max(0.0, start),
                    end=min(runtime, end) if end > 0 else runtime,
                    value=float(raw),
                )
            )
        return results

    def get_stats(self) -> StoreStats:
        """Per-execution stats from this run's attributes."""
        return _hpl_xml_stats([self._run()])
