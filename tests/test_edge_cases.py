"""Edge-case sweep across substrates: writer prefix scoping, SOAP
boundaries, service-data staleness, wrapper corner inputs."""

from repro.core.semantic import UNDEFINED_TYPE
from repro.soap import decode_value, encode_value
from repro.xmlkit import Element, QName, parse, serialize


class TestWriterPrefixScoping:
    def test_child_reuses_parent_declaration(self):
        root = Element(QName("urn:x", "a"))
        root.declare("x", "urn:x")
        root.append(Element(QName("urn:x", "b")))
        out = serialize(root)
        assert out == '<x:a xmlns:x="urn:x"><x:b/></x:a>'

    def test_shadowed_prefix_not_reused(self):
        # The child rebinds 'p' to another URI; a grandchild in the first
        # URI must not pick the shadowed binding.
        root = Element(QName("urn:1", "a"))
        root.declare("p", "urn:1")
        child = Element(QName("urn:2", "b"))
        child.declare("p", "urn:2")
        grandchild = Element(QName("urn:1", "c"))
        child.append(grandchild)
        root.append(child)
        out = serialize(root)
        reparsed = parse(out).root
        assert reparsed.structurally_equal(root)

    def test_two_namespaces_generate_distinct_prefixes(self):
        root = Element(QName("urn:1", "a"))
        root.append(Element(QName("urn:2", "b")))
        reparsed = parse(serialize(root)).root
        assert reparsed.tag.namespace == "urn:1"
        assert next(reparsed.iter_elements()).tag.namespace == "urn:2"

    def test_attribute_in_same_namespace_as_default(self):
        root = Element(QName("urn:x", "a"), attrs={QName("urn:x", "attr"): "v"})
        root.declare("", "urn:x")
        reparsed = parse(serialize(root)).root
        assert reparsed.get(QName("urn:x", "attr")) == "v"

    def test_deeply_nested_roundtrip(self):
        root = Element("l0")
        node = root
        for i in range(1, 60):
            node = node.subelement(f"l{i}", None)
        assert parse(serialize(root)).root.structurally_equal(root)


class TestSoapBoundaries:
    def test_empty_string_array(self):
        assert decode_value(encode_value("v", [])) == []

    def test_array_of_nils(self):
        assert decode_value(encode_value("v", [None, None])) == [None, None]

    def test_unicode_payload(self):
        text = "مرحبا — ειρήνη — 平和 — ✓"
        assert decode_value(encode_value("v", text)) == text

    def test_extreme_floats(self):
        for value in (1e-308, 1.7976931348623157e308, -0.0, 5e-324):
            assert decode_value(encode_value("v", value)) == value

    def test_int_boundaries_pick_long(self):
        el = encode_value("v", 2**31)
        assert el.attrs[QName("http://www.w3.org/2001/XMLSchema-instance", "type")] == "xsd:long"
        el = encode_value("v", 2**31 - 1)
        assert el.attrs[QName("http://www.w3.org/2001/XMLSchema-instance", "type")] == "xsd:int"

    def test_struct_with_empty_dict(self):
        assert decode_value(encode_value("v", {})) == {}


class TestServiceDataFreshness:
    def test_execution_sdes_refresh_on_announce(self, fresh_grid):
        execution = fresh_grid.bind("HPL").all_executions()[0]
        exec_id = execution.info()["runid"]
        before = execution.find_service_data("timeStartEnd")
        fresh_grid.hpl_site.wrapper.conn.execute(
            "UPDATE hpl_runs SET runtimesec = 9999.0 WHERE runid = ?", [int(exec_id)]
        )
        container = fresh_grid.environment.container_for("hpl.pdx.edu:8080")
        for path in container.service_paths():
            service = container.service_at(path)
            if getattr(service, "exec_id", None) == exec_id:
                service.announce_update("runtime fixed")
        after = execution.find_service_data("timeStartEnd")
        assert before != after and "9999" in after


class TestWrapperCornerInputs:
    def test_hpl_inverted_time_window(self, shared_grid):
        execution = shared_grid.bind("HPL").all_executions()[0]
        # end < start: clipping yields an empty-span PR, not an error.
        results = execution.get_pr("gflops", ["/Run"], start=5.0, end=1.0)
        assert len(results) in (0, 1)

    def test_smg98_window_entirely_outside_run(self, shared_grid):
        execution = shared_grid.bind("SMG98").all_executions()[0]
        _, end = execution.time_range()
        results = execution.get_pr(
            "time_spent", ["/Code/SMG/smg_relax"], start=end + 10, end=end + 20
        )
        assert results == []

    def test_empty_foci_list(self, shared_grid):
        execution = shared_grid.bind("SMG98").all_executions()[0]
        assert execution.get_pr("time_spent", []) == []

    def test_duplicate_foci_duplicate_results(self, shared_grid):
        execution = shared_grid.bind("PRESTA-RMA").all_executions()[0]
        once = execution.get_pr("latency_us", ["/Op/MPI_Put"])
        twice = execution.get_pr("latency_us", ["/Op/MPI_Put", "/Op/MPI_Put"])
        assert len(twice) == 2 * len(once)

    def test_blank_result_type_matches_all(self, shared_grid):
        execution = shared_grid.bind("HPL").all_executions()[0]
        assert execution.get_pr("gflops", ["/Run"], result_type="") != []
        assert execution.get_pr("gflops", ["/Run"], result_type=UNDEFINED_TYPE) != []


class TestCacheKeyIsolationAcrossInstances:
    def test_two_executions_do_not_share_cache(self, fresh_grid):
        app = fresh_grid.bind("HPL")
        e1, e2 = app.all_executions()[:2]
        v1 = e1.get_pr("gflops", ["/Run"])[0].value
        v2 = e2.get_pr("gflops", ["/Run"])[0].value
        # Same query parameters, different instances: distinct results.
        assert v1 != v2
