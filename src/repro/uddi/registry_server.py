"""The UDDI registry server.

Entries are exchanged over the wire as packed strings (the thesis's
PortTypes pass ``'|'``-delimited name/value arrays everywhere), keeping
the SOAP layer to scalars and string arrays:

* organization record: ``orgKey|name|contact|description``
* service record: ``serviceKey|orgKey|name|factoryUrl|description``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minidb.expr import like_match
from repro.ogsi.porttypes import OGSI_NS
from repro.ogsi.service import GridServiceBase
from repro.wsdl.porttype import Operation, Parameter, PortType


class UddiError(ValueError):
    """Raised for malformed records or unknown keys."""


@dataclass(frozen=True)
class OrganizationEntry:
    org_key: str
    name: str
    contact: str = ""
    description: str = ""

    def pack(self) -> str:
        return "|".join((self.org_key, self.name, self.contact, self.description))

    @staticmethod
    def unpack(record: str) -> "OrganizationEntry":
        parts = record.split("|")
        if len(parts) != 4:
            raise UddiError(f"bad organization record {record!r}")
        return OrganizationEntry(*parts)


@dataclass(frozen=True)
class ServiceEntry:
    service_key: str
    org_key: str
    name: str
    factory_url: str
    description: str = ""

    def pack(self) -> str:
        return "|".join(
            (self.service_key, self.org_key, self.name, self.factory_url, self.description)
        )

    @staticmethod
    def unpack(record: str) -> "ServiceEntry":
        parts = record.split("|")
        if len(parts) != 5:
            raise UddiError(f"bad service record {record!r}")
        return ServiceEntry(*parts)


UDDI_PORTTYPE = PortType(
    name="UddiRegistry",
    namespace=OGSI_NS,
    doc="Publishing, storing, searching and retrieving service descriptions.",
    operations=(
        Operation(
            "publishOrganization",
            (
                Parameter("name", "xsd:string"),
                Parameter("contact", "xsd:string"),
                Parameter("description", "xsd:string"),
            ),
            "xsd:string",
            doc="Create a new Organization entry; returns its key.",
        ),
        Operation(
            "publishService",
            (
                Parameter("orgKey", "xsd:string"),
                Parameter("name", "xsd:string"),
                Parameter("factoryUrl", "xsd:string"),
                Parameter("description", "xsd:string"),
            ),
            "xsd:string",
            doc="Create a Service entry under an Organization; returns its key.",
        ),
        Operation(
            "findOrganizations",
            (Parameter("namePattern", "xsd:string"),),
            "xsd:string[]",
            doc="Packed organization records whose name matches a LIKE pattern.",
        ),
        Operation(
            "getServices",
            (Parameter("orgKey", "xsd:string"),),
            "xsd:string[]",
            doc="Packed service records of one Organization.",
        ),
        Operation(
            "removeService",
            (Parameter("serviceKey", "xsd:string"),),
            "void",
            doc="Delete a Service entry.",
        ),
        Operation(
            "removeOrganization",
            (Parameter("orgKey", "xsd:string"),),
            "void",
            doc="Delete an Organization entry and its Services.",
        ),
    ),
)


class UddiRegistryServer(GridServiceBase):
    """In-memory UDDI registry deployable in a container."""

    porttype = UDDI_PORTTYPE

    def __init__(self) -> None:
        super().__init__()
        self._orgs: dict[str, OrganizationEntry] = {}
        self._services: dict[str, ServiceEntry] = {}
        self._counter = 0

    def _next_key(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}-{self._counter}"

    # ---------------------------------------------------------- publishing
    def publishOrganization(self, name: str, contact: str, description: str) -> str:
        self.require_active()
        if not name:
            raise UddiError("organization name may not be empty")
        if "|" in name or "|" in contact or "|" in description:
            raise UddiError("'|' is reserved as the record delimiter")
        key = self._next_key("org")
        self._orgs[key] = OrganizationEntry(key, name, contact, description)
        return key

    def publishService(self, orgKey: str, name: str, factoryUrl: str, description: str) -> str:
        self.require_active()
        if orgKey not in self._orgs:
            raise UddiError(f"unknown organization key {orgKey!r}")
        if not name or not factoryUrl:
            raise UddiError("service name and factory URL are required")
        if any("|" in v for v in (name, factoryUrl, description)):
            raise UddiError("'|' is reserved as the record delimiter")
        key = self._next_key("svc")
        self._services[key] = ServiceEntry(key, orgKey, name, factoryUrl, description)
        return key

    # ------------------------------------------------------------- queries
    def findOrganizations(self, namePattern: str) -> list[str]:
        self.require_active()
        pattern = namePattern or "%"
        return sorted(
            org.pack() for org in self._orgs.values() if like_match(org.name, pattern)
        )

    def getServices(self, orgKey: str) -> list[str]:
        self.require_active()
        if orgKey not in self._orgs:
            raise UddiError(f"unknown organization key {orgKey!r}")
        return sorted(s.pack() for s in self._services.values() if s.org_key == orgKey)

    # ------------------------------------------------------------- removal
    def removeService(self, serviceKey: str) -> None:
        self.require_active()
        self._services.pop(serviceKey, None)

    def removeOrganization(self, orgKey: str) -> None:
        self.require_active()
        self._orgs.pop(orgKey, None)
        self._services = {
            k: s for k, s in self._services.items() if s.org_key != orgKey
        }

    # ------------------------------------------------------------- local
    def organization_count(self) -> int:
        return len(self._orgs)

    def service_count(self) -> int:
        return len(self._services)
