"""Native-XML data store (thesis §5.1: "in a text file as XML").

Holds the HPL dataset in XML form and answers queries with the XPath
subset — the alternative storage format used to compare overhead between
"data stores of the same content but different formats" (future-work §7).
"""

from __future__ import annotations

from repro.xmlkit import Element, parse, xpath_select


class XmlStoreError(ValueError):
    """Raised on malformed documents or queries."""


class XmlStore:
    """An XML document queried with XPath.

    The document is parsed once at load (the file sits on disk in the
    thesis; parsing per query would be strictly worse than the text
    store, not representative).  Attribute access per query still walks
    the tree, keeping per-query cost nonzero.
    """

    def __init__(self, text: str | bytes) -> None:
        try:
            self.document = parse(text)
        except ValueError as exc:
            raise XmlStoreError(f"cannot parse XML store: {exc}") from exc
        self.query_count = 0

    @staticmethod
    def from_file(path: str) -> "XmlStore":
        with open(path, "r", encoding="utf-8") as fh:
            return XmlStore(fh.read())

    @property
    def root(self) -> Element:
        return self.document.root

    def select(self, xpath: str) -> list[Element] | list[str]:
        """Run an XPath query against the document root."""
        self.query_count += 1
        return xpath_select(self.root, xpath)

    # Convenience accessors shaped for the HPL XML layout -----------------
    def runs(self) -> list[Element]:
        self.query_count += 1
        result = xpath_select(self.root, "/hplResults/run")
        return [el for el in result if isinstance(el, Element)]

    def run_by_id(self, runid: int) -> Element | None:
        self.query_count += 1
        hits = xpath_select(self.root, f"/hplResults/run[@runid='{runid}']")
        for el in hits:
            if isinstance(el, Element):
                return el
        return None

    def attribute_values(self, attribute: str) -> list[str]:
        """Distinct values of one run attribute, sorted."""
        self.query_count += 1
        values = xpath_select(self.root, f"/hplResults/run/@{attribute}")
        return sorted({v for v in values if isinstance(v, str)})
