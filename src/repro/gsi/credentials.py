"""Credentials, certificate authority, and proxy delegation."""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass, field


class CredentialError(Exception):
    """Raised on verification or delegation failures."""


def _hmac_hex(key: bytes, payload: bytes) -> str:
    return hmac.new(key, payload, hashlib.sha256).hexdigest()


@dataclass
class Credential:
    """A long-lived identity credential.

    ``identity`` is the distinguished name (e.g. ``"/O=PSU/CN=alice"``).
    ``key`` is the secret signing key; ``ca_signature`` binds identity ->
    key-fingerprint under the CA's key, playing the role of the X.509
    certificate.
    """

    identity: str
    key: bytes
    ca_name: str
    ca_signature: str

    def fingerprint(self) -> str:
        return hashlib.sha256(self.key).hexdigest()[:32]

    def sign(self, payload: bytes) -> str:
        return _hmac_hex(self.key, payload)

    def delegate(self, lifetime: float, issued_at: float, depth_limit: int = 8) -> "ProxyCredential":
        """Issue a proxy credential valid for *lifetime* seconds."""
        if lifetime <= 0:
            raise CredentialError("proxy lifetime must be positive")
        proxy_key = secrets.token_bytes(32)
        statement = _delegation_statement(
            self.identity, proxy_key, issued_at, issued_at + lifetime, depth_limit
        )
        return ProxyCredential(
            identity=self.identity + "/CN=proxy",
            key=proxy_key,
            issuer_identity=self.identity,
            issuer_signature=self.sign(statement),
            issued_at=issued_at,
            expires_at=issued_at + lifetime,
            depth_remaining=depth_limit,
            ca_name=self.ca_name,
        )


def _delegation_statement(
    issuer: str, proxy_key: bytes, issued_at: float, expires_at: float, depth: int
) -> bytes:
    fingerprint = hashlib.sha256(proxy_key).hexdigest()
    return f"{issuer}|{fingerprint}|{issued_at!r}|{expires_at!r}|{depth}".encode()


@dataclass
class ProxyCredential:
    """A delegated, short-lived credential (single-sign-on token)."""

    identity: str
    key: bytes
    issuer_identity: str
    issuer_signature: str
    issued_at: float
    expires_at: float
    depth_remaining: int
    ca_name: str

    def fingerprint(self) -> str:
        return hashlib.sha256(self.key).hexdigest()[:32]

    def sign(self, payload: bytes) -> str:
        return _hmac_hex(self.key, payload)

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    def delegate(self, lifetime: float, issued_at: float) -> "ProxyCredential":
        """Further delegation; the chain length is bounded by depth."""
        if self.depth_remaining <= 0:
            raise CredentialError("delegation depth exhausted")
        if issued_at >= self.expires_at:
            raise CredentialError("cannot delegate from an expired proxy")
        lifetime = min(lifetime, self.expires_at - issued_at)
        proxy_key = secrets.token_bytes(32)
        statement = _delegation_statement(
            self.identity, proxy_key, issued_at, issued_at + lifetime, self.depth_remaining - 1
        )
        return ProxyCredential(
            identity=self.identity + "/CN=proxy",
            key=proxy_key,
            issuer_identity=self.identity,
            issuer_signature=self.sign(statement),
            issued_at=issued_at,
            expires_at=issued_at + lifetime,
            depth_remaining=self.depth_remaining - 1,
            ca_name=self.ca_name,
        )


@dataclass
class CertificateAuthority:
    """Issues credentials and answers trust queries.

    The CA retains issued keys (it is the single trust root of one grid);
    verification of a message signature looks the claimed identity up and
    recomputes the HMAC — the offline stand-in for certificate-path
    validation.
    """

    name: str = "PPerfGrid-CA"
    _key: bytes = field(default_factory=lambda: secrets.token_bytes(32))
    _issued: dict[str, Credential] = field(default_factory=dict)
    _proxies: dict[str, ProxyCredential] = field(default_factory=dict)

    def issue(self, identity: str) -> Credential:
        if identity in self._issued:
            raise CredentialError(f"identity {identity!r} already issued")
        key = secrets.token_bytes(32)
        signature = _hmac_hex(self._key, f"{identity}|{hashlib.sha256(key).hexdigest()}".encode())
        cred = Credential(identity=identity, key=key, ca_name=self.name, ca_signature=signature)
        self._issued[identity] = cred
        return cred

    def register_proxy(self, proxy: ProxyCredential) -> None:
        """Record a delegated proxy so its signatures can be verified."""
        issuer = self._issued.get(proxy.issuer_identity) or self._proxies.get(
            proxy.issuer_identity
        )
        if issuer is None:
            raise CredentialError(f"unknown issuer {proxy.issuer_identity!r}")
        statement = _delegation_statement(
            proxy.issuer_identity,
            proxy.key,
            proxy.issued_at,
            proxy.expires_at,
            proxy.depth_remaining,
        )
        if not hmac.compare_digest(issuer.sign(statement), proxy.issuer_signature):
            raise CredentialError("proxy delegation signature is invalid")
        self._proxies[proxy.identity] = proxy

    def key_for_identity(self, identity: str, now: float) -> bytes:
        """Signing key for a known identity; raises for unknown/expired."""
        cred = self._issued.get(identity)
        if cred is not None:
            return cred.key
        proxy = self._proxies.get(identity)
        if proxy is None:
            raise CredentialError(f"unknown identity {identity!r}")
        if proxy.is_expired(now):
            raise CredentialError(f"proxy credential {identity!r} has expired")
        return proxy.key

    def knows(self, identity: str) -> bool:
        return identity in self._issued or identity in self._proxies
