"""Fixed-width and Markdown table rendering for experiment reports."""

from __future__ import annotations


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.2f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4g}"
    return str(cell)


def format_table(headers: list[str], rows: list[list[object]], title: str = "") -> str:
    """Render an aligned fixed-width text table."""
    cells = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells for {len(headers)} headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render a GitHub-flavored Markdown table (for EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells for {len(headers)} headers")
        lines.append("| " + " | ".join(_stringify(c) for c in row) + " |")
    return "\n".join(lines)
