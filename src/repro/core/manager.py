"""The PPerfGrid Manager (thesis §5.3.1.4).

The Manager is a *non-transient, internal* Grid service: clients never
talk to it, Application service instances do (as Grid-service clients
themselves).  It does two things:

1. **Instance caching** — Execution service instances are expensive to
   create, so the Manager keeps a hash table from unique execution ID to
   the GSH of an already-created instance.
2. **Replica distribution** — when a data source is replicated on
   several hosts, uncached instance creations are spread across the
   replica Execution Factories by a pluggable policy.  The thesis's
   policy interleaves ("ID 1 on Host A, ID 2 on host B, ...").
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.core.semantic import MANAGER_PORTTYPE
from repro.ogsi.gsh import GridServiceHandle
from repro.ogsi.porttypes import FACTORY_PORTTYPE
from repro.ogsi.service import GridServiceBase


class DistributionPolicy(ABC):
    """Chooses which replica factory creates the next Execution instance."""

    name = "abstract"

    @abstractmethod
    def choose(self, replicas: list["_Replica"], key: str, ordinal: int) -> int:
        """Index into *replicas* for the *ordinal*-th creation of a batch."""

    def reset(self) -> None:  # pragma: no cover - stateless by default
        """Clear any per-manager state (called when replicas change)."""


class InterleavedPolicy(DistributionPolicy):
    """The thesis's policy: strict round-robin across replicas."""

    name = "interleaved"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, replicas: list["_Replica"], key: str, ordinal: int) -> int:
        index = self._next % len(replicas)
        self._next += 1
        return index

    def reset(self) -> None:
        self._next = 0


class BlockPolicy(DistributionPolicy):
    """All creations of one batch go to a single replica (rotating per batch).

    The degenerate comparison point for the distribution ablation — it
    recreates the "one host" behaviour even with replicas configured.
    """

    name = "block"

    def __init__(self) -> None:
        self._batch = -1
        self._last_ordinal = -1

    def choose(self, replicas: list["_Replica"], key: str, ordinal: int) -> int:
        if ordinal <= self._last_ordinal:
            self._batch += 1
        self._last_ordinal = ordinal
        return self._batch % len(replicas)

    def reset(self) -> None:
        self._batch = -1
        self._last_ordinal = -1


class RandomPolicy(DistributionPolicy):
    """Uniform random choice (seeded for reproducibility)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._seed = seed

    def choose(self, replicas: list["_Replica"], key: str, ordinal: int) -> int:
        return self._rng.randrange(len(replicas))

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class LeastLoadedPolicy(DistributionPolicy):
    """Pick the replica that has received the fewest instances so far.

    With a count tie the lowest index wins, so homogeneous batches behave
    like interleaving; with heterogeneous hosts callers can pre-weight by
    seeding counts (see the ablation bench).
    """

    name = "least-loaded"

    def choose(self, replicas: list["_Replica"], key: str, ordinal: int) -> int:
        loads = [(replica.assigned, i) for i, replica in enumerate(replicas)]
        return min(loads)[1]


class _Replica:
    """One replica Execution Factory known to the Manager."""

    def __init__(self, factory_handle: str) -> None:
        self.factory_handle = factory_handle
        self.gsh = GridServiceHandle.parse(factory_handle)
        self.assigned = 0


class ManagerService(GridServiceBase):
    """GSH cache plus replica distribution."""

    porttype = MANAGER_PORTTYPE

    def __init__(
        self,
        factory_handles: list[str],
        policy: DistributionPolicy | None = None,
    ) -> None:
        super().__init__()
        if not factory_handles:
            raise ValueError("a Manager needs at least one Execution Factory")
        self.replicas = [_Replica(h) for h in factory_handles]
        self.policy = policy or InterleavedPolicy()
        self.policy.reset()
        #: unique execution ID -> Execution instance GSH (the §5.3.1.4 table)
        self._instance_cache: dict[str, str] = {}
        self.creations = 0
        self.cache_hits = 0
        #: named external stats sources merged into :meth:`stats` (e.g.
        #: the federation's view-maintenance counters)
        self._stats_providers: dict[str, object] = {}

    def getExecs(self, keys: list[str]) -> list[str]:
        """One Execution-instance GSH per key, creating on cache misses."""
        self.require_active()
        if self.container is None:
            raise RuntimeError("Manager is not deployed")
        out: list[str] = []
        ordinal = 0
        for key in keys:
            cached = self._instance_cache.get(key)
            if cached is not None:
                # Validate the cached instance is still alive (it may have
                # been destroyed or expired); recreate if not.
                gsh = GridServiceHandle.parse(cached)
                container = self.container.environment.container_for(gsh.authority)
                if container is not None and container.has_service(gsh):
                    self.cache_hits += 1
                    out.append(cached)
                    continue
                del self._instance_cache[key]
            index = self.policy.choose(self.replicas, key, ordinal)
            ordinal += 1
            replica = self.replicas[index]
            stub = self.container.environment.stub_for_handle(
                replica.gsh, FACTORY_PORTTYPE
            )
            instance_gsh = stub.CreateService([key])
            replica.assigned += 1
            self.creations += 1
            self._instance_cache[key] = instance_gsh
            out.append(instance_gsh)
        return out

    # ----------------------------------------------------------- local API
    def add_replica(self, factory_handle: str) -> None:
        """Register another replica Execution Factory (admin operation)."""
        if any(r.factory_handle == factory_handle for r in self.replicas):
            raise ValueError(f"replica {factory_handle!r} already registered")
        self.replicas.append(_Replica(factory_handle))
        self.policy.reset()

    def cached_count(self) -> int:
        return len(self._instance_cache)

    def stats(self) -> dict[str, object]:
        """Snapshot of the Manager's caching and distribution state.

        Used by the federated-query executor to size its fan-out (one
        slot per replica container keeps requests truly concurrent; more
        just queue on the container dispatch locks), and useful on its
        own for capacity dashboards.
        """
        lookups = self.cache_hits + self.creations
        per_host: dict[str, int] = {}
        for replica in self.replicas:
            authority = replica.gsh.authority
            per_host[authority] = per_host.get(authority, 0) + replica.assigned
        out: dict[str, object] = {
            "policy": self.policy.name,
            "replicas": len(self.replicas),
            "creations": self.creations,
            "cache_hits": self.cache_hits,
            "lookups": lookups,
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
            "cached_instances": len(self._instance_cache),
            "instances_per_host": per_host,
        }
        for name, provider in sorted(self._stats_providers.items()):
            try:
                out[name] = provider()
            except Exception:
                out[name] = None
        return out

    def add_stats_provider(self, name: str, provider) -> None:
        """Merge *provider()*'s value into :meth:`stats` under *name*."""
        self._stats_providers[name] = provider

    def assignment_counts(self) -> dict[str, int]:
        """factory handle -> instances created there (for tests/ablation)."""
        return {r.factory_handle: r.assigned for r in self.replicas}

    def evict(self, key: str) -> None:
        self._instance_cache.pop(key, None)
