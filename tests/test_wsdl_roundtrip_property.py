"""Property-based WSDL round trips and extra adapter edge cases."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soap.encoding import XsdType
from repro.wsdl import Operation, Parameter, PortType, generate_wsdl, parse_wsdl

_names = st.from_regex(r"[a-zA-Z][a-zA-Z0-9_]{0,10}", fullmatch=True)
_scalar_types = st.sampled_from(
    [t.value for t in XsdType if t not in (XsdType.ARRAY, XsdType.STRUCT)]
)
_param_types = st.one_of(_scalar_types, _scalar_types.map(lambda t: t + "[]")).filter(
    lambda t: t != "void[]"
)


@st.composite
def _operations(draw):
    name = draw(_names)
    param_names = draw(st.lists(_names, max_size=4, unique=True))
    params = tuple(Parameter(p, draw(_param_types)) for p in param_names)
    returns = draw(st.one_of(st.just("void"), _param_types))
    doc = draw(st.text(alphabet=st.characters(codec="ascii", exclude_categories=("Cc",)), max_size=60))
    return Operation(name, params, returns, doc=doc)


@st.composite
def _porttypes(draw):
    ops = draw(st.lists(_operations(), min_size=1, max_size=5))
    seen: set[str] = set()
    unique_ops = []
    for op in ops:
        if op.name not in seen:
            seen.add(op.name)
            unique_ops.append(op)
    return PortType(draw(_names), "urn:" + draw(_names), tuple(unique_ops))


class TestWsdlProperties:
    @given(_porttypes())
    @settings(max_examples=80, deadline=None)
    def test_generate_parse_roundtrip(self, porttype):
        text = generate_wsdl(porttype, "http://h:1/services/x")
        parsed, endpoint = parse_wsdl(text)
        assert endpoint == "http://h:1/services/x"
        assert parsed.name == porttype.name
        assert parsed.namespace == porttype.namespace
        for op in porttype.operations:
            back = parsed.operation(op.name)
            assert [p.name for p in back.parameters] == [p.name for p in op.parameters]
            assert [p.wire_type for p in back.parameters] == [
                p.wire_type for p in op.parameters
            ]
            assert back.returns == op.returns
            assert " ".join(back.doc.split()) == " ".join(op.doc.split())

    @given(_porttypes())
    @settings(max_examples=40, deadline=None)
    def test_double_roundtrip_is_stable(self, porttype):
        once = generate_wsdl(porttype, "http://h:1/s")
        parsed, _ = parse_wsdl(once)
        twice = generate_wsdl(parsed, "http://h:1/s")
        assert parse_wsdl(twice)[0].operations == parsed.operations
