"""Streaming result cursors: chunk envelope, ResultCursor service,
client-side chunked iteration, and the stats-driven bulk fallback.

Covers the ISSUE acceptance points at the execution level: byte-identical
results for every chunk size (one-row-lookahead done flags included),
soft-state TTL expiry via the container sweep, next()-after-close()
faulting, and a tracemalloc proof that a chunked drain of a large store
holds O(chunk) client/transfer memory while bulk getPR holds O(result).
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.core.client import ChunkedResultIterator
from repro.core.semantic import PerformanceResult, pr_sort_key
from repro.experiments.common import build_synthetic_grid
from repro.mapping.memory import InMemoryExecution, InMemoryWrapper
from repro.ogsi.container import GridEnvironment
from repro.ogsi.cursor import ResultCursorService, deploy_cursor
from repro.simnet.clock import VirtualClock
from repro.soap import SoapFault
from repro.soap.chunks import CHUNK_HEADER, ChunkError, decode_chunk, encode_chunk


class TestChunkEnvelope:
    def test_round_trip(self):
        payload = encode_chunk(3, ["a|b", "c|d"], done=False)
        assert payload[0] == f"{CHUNK_HEADER}|3|2|0"
        envelope = decode_chunk(payload)
        assert envelope.seq == 3
        assert envelope.rows == ("a|b", "c|d")
        assert envelope.done is False

    def test_done_flag(self):
        assert decode_chunk(encode_chunk(0, [], done=True)).done is True

    def test_bad_header_rejected(self):
        with pytest.raises(ChunkError):
            decode_chunk(["not-a-header", "row"])

    def test_row_count_mismatch_rejected(self):
        payload = encode_chunk(0, ["x"], done=True)
        with pytest.raises(ChunkError):
            decode_chunk(payload + ["extra-row"])

    def test_empty_payload_rejected(self):
        with pytest.raises(ChunkError):
            decode_chunk([])


@pytest.fixture()
def cursor_env():
    environment = GridEnvironment(clock=VirtualClock())
    container = environment.create_container("cursors.pdx.edu:9090")
    return environment, container


class TestResultCursorService:
    def rows(self, n):
        return [f"row-{i:04d}" for i in range(n)]

    def test_drain_in_chunks(self, cursor_env):
        environment, container = cursor_env
        gsh = deploy_cursor(container, "services/X", iter(self.rows(10)))
        stub = environment.stub_for_handle(gsh.url(), ResultCursorService.porttype)
        first = decode_chunk(list(stub.next(4)))
        assert first.seq == 0 and first.rows == tuple(self.rows(10)[:4])
        assert first.done is False
        second = decode_chunk(list(stub.next(4)))
        assert second.seq == 1 and not second.done
        third = decode_chunk(list(stub.next(4)))
        # 2 remaining rows: the lookahead lets the final chunk say done=1
        assert third.rows == tuple(self.rows(10)[8:]) and third.done is True

    def test_exact_multiple_needs_no_empty_tail(self, cursor_env):
        environment, container = cursor_env
        gsh = deploy_cursor(container, "services/X", iter(self.rows(8)))
        stub = environment.stub_for_handle(gsh.url(), ResultCursorService.porttype)
        decode_chunk(list(stub.next(4)))
        assert decode_chunk(list(stub.next(4))).done is True

    def test_close_destroys_instance(self, cursor_env):
        environment, container = cursor_env
        gsh = deploy_cursor(container, "services/X", iter(self.rows(4)))
        stub = environment.stub_for_handle(gsh.url(), ResultCursorService.porttype)
        stub.close()
        with pytest.raises(SoapFault, match="no service at"):
            stub.next(2)

    def test_ttl_expiry_reclaims_cursor(self, cursor_env):
        environment, container = cursor_env
        clock = environment.clock
        gsh = deploy_cursor(container, "services/X", iter(self.rows(6)), ttl=30.0)
        stub = environment.stub_for_handle(gsh.url(), ResultCursorService.porttype)
        clock.advance(20.0)
        stub.next(2)  # renews the soft-state lifetime
        clock.advance(20.0)
        assert environment.sweep_expired() == 0  # renewed at t=20 -> alive
        clock.advance(31.0)
        assert environment.sweep_expired() == 1
        with pytest.raises(SoapFault, match="no service at"):
            stub.next(2)

    def test_on_close_fires_exactly_once(self, cursor_env):
        _, container = cursor_env
        fired = []
        gsh = deploy_cursor(
            container, "services/X", iter(()), on_close=lambda: fired.append(1)
        )
        service = container.service_at(gsh.path)
        service.close()
        with pytest.raises(RuntimeError, match="destroyed"):
            service.Destroy()  # already destroyed; callback must not re-fire
        assert fired == [1]

    def test_bad_max_rows_faults(self, cursor_env):
        environment, container = cursor_env
        gsh = deploy_cursor(container, "services/X", iter(self.rows(2)))
        stub = environment.stub_for_handle(gsh.url(), ResultCursorService.porttype)
        with pytest.raises(SoapFault):
            stub.next(0)


class TestChunkedResultIterator:
    def test_yields_all_rows_and_autocloses(self, cursor_env):
        environment, container = cursor_env
        rows = [f"r{i}" for i in range(23)]
        gsh = deploy_cursor(container, "services/X", iter(rows))
        it = ChunkedResultIterator(environment, gsh.url(), max_rows=5)
        assert list(it) == rows
        assert it.chunks_fetched == 5
        # exhaustion closed the server-side instance
        assert container.has_service(gsh) is False

    def test_early_close_releases_cursor(self, cursor_env):
        environment, container = cursor_env
        gsh = deploy_cursor(container, "services/X", (f"r{i}" for i in range(100)))
        with ChunkedResultIterator(environment, gsh.url(), max_rows=10) as it:
            assert next(it) == "r0"
        assert container.has_service(gsh) is False
        assert list(it) == []  # closed iterator is simply exhausted

    def test_sequence_gap_detected(self, cursor_env):
        environment, container = cursor_env
        gsh = deploy_cursor(container, "services/X", iter([f"r{i}" for i in range(9)]))
        it = ChunkedResultIterator(environment, gsh.url(), max_rows=3)
        next(it)
        # another consumer steals a chunk out from under this iterator
        environment.stub_for_handle(gsh.url(), ResultCursorService.porttype).next(3)
        with pytest.raises(ChunkError, match="expected 1"):
            for _ in it:
                pass

    def test_decoder_applied(self, cursor_env):
        environment, container = cursor_env
        pr = PerformanceResult("m", "/f", "t", 0.0, 1.0, 4.5)
        gsh = deploy_cursor(container, "services/X", iter([pr.pack()]))
        it = ChunkedResultIterator(
            environment, gsh.url(), decoder=PerformanceResult.unpack
        )
        assert list(it) == [pr]


def _synthetic_rows(n: int) -> list[PerformanceResult]:
    return [
        PerformanceResult(
            "m", f"/rank/{i % 7}", "synthetic", float(i), float(i + 1), float(i * 3 % 97)
        )
        for i in range(n)
    ]


FOCI = [f"/rank/{i}" for i in range(7)]


def _bind_app(grid, name):
    for org in grid.client.discover_organizations("%"):
        for service in org.services():
            if service.name == name:
                return grid.client.bind(service)
    raise KeyError(f"no published application {name!r}")


@pytest.fixture(scope="module")
def chunk_grid():
    wrapper = InMemoryWrapper(
        "CHUNKY", [InMemoryExecution("0", {"numprocs": "4"}, _synthetic_rows(1000))]
    )
    grid = build_synthetic_grid({"CHUNKY": wrapper})
    binding = _bind_app(grid, "CHUNKY").all_executions()[0]
    return grid, binding


class TestExecutionChunkedTransfer:
    @pytest.mark.parametrize("max_rows", [1, 2, 7, 64, 100000])
    def test_chunked_matches_bulk_for_every_chunk_size(self, chunk_grid, max_rows):
        _, binding = chunk_grid
        bulk = binding.get_pr("m", FOCI)
        with binding.get_pr_chunked("m", FOCI, max_rows=max_rows) as it:
            streamed = list(it)
        assert [pr.pack() for pr in streamed] == [pr.pack() for pr in bulk]

    @pytest.mark.parametrize("max_rows", [1, 7, 64])
    def test_ordered_cursor_is_canonically_sorted(self, chunk_grid, max_rows):
        _, binding = chunk_grid
        expected = sorted(binding.get_pr("m", FOCI), key=pr_sort_key)
        with binding.get_pr_chunked("m", FOCI, max_rows=max_rows, ordered=True) as it:
            streamed = list(it)
        assert [pr.pack() for pr in streamed] == [pr.pack() for pr in expected]

    def test_stream_pr_uses_bulk_below_threshold(self, chunk_grid, monkeypatch):
        _, binding = chunk_grid

        def no_cursor(*args, **kwargs):
            raise AssertionError("small result must not open a cursor")

        monkeypatch.setattr(binding, "get_pr_chunked", no_cursor)
        # getStats says ~1000 rows for m, well under the threshold
        rows = list(binding.stream_pr("m", FOCI, threshold_rows=10**6))
        assert len(rows) == 1000

    def test_stream_pr_uses_cursor_above_threshold(self, chunk_grid, monkeypatch):
        _, binding = chunk_grid
        bulk = binding.get_pr("m", FOCI)

        def no_bulk(*args, **kwargs):
            raise AssertionError("above-threshold result must stream")

        monkeypatch.setattr(binding, "get_pr", no_bulk)
        rows = list(binding.stream_pr("m", FOCI, threshold_rows=1))
        assert [pr.pack() for pr in rows] == [pr.pack() for pr in bulk]

    def test_stream_pr_unknown_size_streams(self, chunk_grid, monkeypatch):
        """Stats probe failing -> unknown size -> stream (bulk is the
        memory risk, the cursor costs only round trips)."""
        _, binding = chunk_grid

        def stats_down():
            raise RuntimeError("getStats unavailable")

        def no_bulk(*args, **kwargs):
            raise AssertionError("unknown-size result must stream")

        monkeypatch.setattr(binding, "get_stats", stats_down)
        monkeypatch.setattr(binding, "get_pr", no_bulk)
        rows = list(binding.stream_pr("m", FOCI, threshold_rows=10**6))
        assert len(rows) == 1000


class TestBoundedMemoryDrain:
    """The headline property: chunked transfer keeps the *transfer path*
    memory flat while bulk is O(result)."""

    N_ROWS = 100_000

    @pytest.fixture(scope="class")
    def big_grid(self):
        wrapper = InMemoryWrapper(
            "BIG", [InMemoryExecution("0", {}, _synthetic_rows(self.N_ROWS))]
        )
        grid = build_synthetic_grid({"BIG": wrapper})
        binding = _bind_app(grid, "BIG").all_executions()[0]
        return grid, binding

    def test_chunked_peak_is_multiples_below_bulk(self, big_grid):
        _, binding = big_grid
        tracemalloc.start()
        try:
            # streamed arm first: the bulk arm populates the server-side
            # PR cache, which would otherwise be charged to this arm
            tracemalloc.reset_peak()
            base = tracemalloc.get_traced_memory()[0]
            count = 0
            for _ in binding.stream_pr("m", FOCI, max_rows=256, threshold_rows=1):
                count += 1
            streamed_peak = tracemalloc.get_traced_memory()[1] - base
            assert count == self.N_ROWS

            tracemalloc.reset_peak()
            base = tracemalloc.get_traced_memory()[0]
            bulk = binding.get_pr("m", FOCI)
            bulk_peak = tracemalloc.get_traced_memory()[1] - base
            assert len(bulk) == self.N_ROWS
        finally:
            tracemalloc.stop()
        assert streamed_peak * 5 <= bulk_peak, (
            f"streamed drain peaked at {streamed_peak} bytes, "
            f"bulk at {bulk_peak} — expected >= 5x headroom"
        )
