"""Tests for the XML element model."""

from repro.xmlkit import Element, QName
from repro.xmlkit.model import Document, _normalized_children


class TestQName:
    def test_parse_clark_notation(self):
        qn = QName.parse("{urn:x}local")
        assert qn.namespace == "urn:x"
        assert qn.local == "local"

    def test_parse_bare_name(self):
        qn = QName.parse("local")
        assert qn.namespace == ""
        assert qn.local == "local"

    def test_str_roundtrip(self):
        assert str(QName("urn:x", "a")) == "{urn:x}a"
        assert str(QName("", "a")) == "a"

    def test_equality_and_hash(self):
        assert QName("u", "a") == QName("u", "a")
        assert QName("u", "a") != QName("v", "a")
        assert len({QName("u", "a"), QName("u", "a")}) == 1


class TestElement:
    def test_subelement_appends_and_returns_child(self):
        root = Element("root")
        child = root.subelement("child", "text")
        assert child.tag.local == "child"
        assert child.text() == "text"
        assert root.children == [child]

    def test_set_get_attr_by_string(self):
        el = Element("e")
        el.set("a", "1")
        assert el.get("a") == "1"
        assert el.get("missing") is None
        assert el.get("missing", "dflt") == "dflt"

    def test_set_get_attr_by_qname(self):
        el = Element("e")
        key = QName("urn:x", "a")
        el.set(key, "v")
        assert el.get(key) == "v"
        # Bare name does not match a namespaced attribute.
        assert el.get("a") is None

    def test_find_matches_any_namespace_for_bare_names(self):
        root = Element("root")
        root.append(Element(QName("urn:x", "child")))
        assert root.find("child") is not None
        assert root.find(QName("urn:y", "child")) is None

    def test_findall_returns_all_matches_in_order(self):
        root = Element("root")
        a1 = root.subelement("a")
        root.subelement("b")
        a2 = root.subelement("a")
        assert root.findall("a") == [a1, a2]

    def test_text_only_direct_children(self):
        root = Element("root", children=["a", Element("x", children=["inner"]), "b"])
        assert root.text() == "ab"
        assert root.all_text() == "ainnerb"

    def test_iter_all_preorder(self):
        root = Element("r")
        a = root.subelement("a")
        b = a.subelement("b")
        c = root.subelement("c")
        assert list(root.iter_all()) == [root, a, b, c]

    def test_structurally_equal_ignores_text_chunking(self):
        one = Element("r", children=["ab"])
        two = Element("r", children=["a", "b"])
        assert one.structurally_equal(two)

    def test_structurally_equal_ignores_interelement_whitespace(self):
        one = Element("r", children=[Element("a"), "\n  ", Element("b")])
        two = Element("r", children=[Element("a"), Element("b")])
        assert one.structurally_equal(two)

    def test_structurally_unequal_on_attrs(self):
        one = Element("r", attrs={QName("", "a"): "1"})
        two = Element("r", attrs={QName("", "a"): "2"})
        assert not one.structurally_equal(two)

    def test_structurally_unequal_on_child_count(self):
        one = Element("r", children=[Element("a")])
        two = Element("r", children=[Element("a"), Element("a")])
        assert not one.structurally_equal(two)

    def test_normalized_children_keeps_text_in_text_only_element(self):
        el = Element("r", children=["  spaced  "])
        assert _normalized_children(el) == ["  spaced  "]


class TestDocument:
    def test_defaults(self):
        doc = Document(Element("root"))
        assert doc.version == "1.0"
        assert doc.encoding == "utf-8"
