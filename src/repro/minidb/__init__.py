"""minidb — a small in-memory relational engine with a SQL subset.

The thesis stores two of its three test datasets in PostgreSQL 7.4 and
accesses them through JDBC SQL queries from the Mapping Layer.  No
database server is available offline, so this package implements the
substrate from scratch: typed tables, hash indexes, a SQL lexer/parser,
an expression evaluator, a rule-based planner, and an iterator-model
executor, fronted by a DB-API-like connection/cursor facade
(:mod:`repro.minidb.dbapi`) that plays the role of JDBC.

Supported SQL
-------------
* ``CREATE TABLE t (col TYPE [PRIMARY KEY] [NOT NULL], ...)``
* ``CREATE INDEX name ON t (col)`` / ``DROP INDEX`` / ``DROP TABLE``
* ``INSERT INTO t [(cols)] VALUES (...), (...)``
* ``UPDATE t SET col = expr [, ...] [WHERE ...]``
* ``DELETE FROM t [WHERE ...]``
* ``SELECT [DISTINCT] exprs FROM t [alias] [JOIN u ON ...]*
  [WHERE ...] [GROUP BY ...] [HAVING ...] [ORDER BY ... [ASC|DESC]]
  [LIMIT n [OFFSET m]]``
* aggregates ``COUNT(*) | COUNT(x) | SUM | AVG | MIN | MAX``, scalar
  functions ``LOWER, UPPER, LENGTH, ABS, ROUND, COALESCE``, operators
  ``+ - * / % || = != <> < <= > >= AND OR NOT IN BETWEEN LIKE IS [NOT]
  NULL``
* transactions: ``Connection.begin()/commit()/rollback()`` (undo-log
  based, DDL excluded) and the ``with conn.transaction():`` scope
* ``Database.explain(sql)`` — plan introspection.
"""

from repro.minidb.database import Database
from repro.minidb.dbapi import Connection, Cursor, connect
from repro.minidb.errors import (
    IntegrityError,
    MiniDbError,
    ProgrammingError,
    SqlSyntaxError,
)
from repro.minidb.schema import ColumnDef, TableSchema
from repro.minidb.types import SqlType

__all__ = [
    "ColumnDef",
    "Connection",
    "Cursor",
    "Database",
    "IntegrityError",
    "MiniDbError",
    "ProgrammingError",
    "SqlSyntaxError",
    "SqlType",
    "TableSchema",
    "connect",
]
