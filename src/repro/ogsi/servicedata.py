"""Service Data Elements (SDEs).

Every Grid service carries a set of named data elements describing it —
handle, interfaces, creation time, plus service-specific entries (an
Execution instance exposes its metrics, foci, types, and time range as
SDEs).  ``FindServiceData`` queries them either **by name** or, per the
thesis's future-work §7, with an **XPath** expression over the XML
rendering of the set (GT3.2's WS Information Services style).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmlkit import Element, XPathError, serialize, xpath_select

SDE_NS = "http://www.gridforum.org/namespaces/2003/03/serviceData"


@dataclass
class ServiceDataElement:
    """One named SDE holding a list of string values."""

    name: str
    values: list[str] = field(default_factory=list)

    def to_element(self) -> Element:
        el = Element("serviceDataElement")
        el.set("name", self.name)
        for value in self.values:
            el.subelement("value", value)
        return el


class ServiceDataSet:
    """The SDE collection of one service."""

    def __init__(self) -> None:
        self._elements: dict[str, ServiceDataElement] = {}

    def set(self, name: str, values: list[str] | str) -> ServiceDataElement:
        if isinstance(values, str):
            values = [values]
        sde = ServiceDataElement(name, list(values))
        self._elements[name] = sde
        return sde

    def get(self, name: str) -> ServiceDataElement | None:
        return self._elements.get(name)

    def names(self) -> list[str]:
        return sorted(self._elements)

    def remove(self, name: str) -> None:
        self._elements.pop(name, None)

    def to_element(self) -> Element:
        root = Element("serviceData")
        for name in sorted(self._elements):
            root.children.append(self._elements[name].to_element())
        return root

    def to_xml(self) -> str:
        return serialize(self.to_element())

    # --------------------------------------------------------------- query
    def query(self, expression: str) -> str:
        """Evaluate a FindServiceData query and return an XML result string.

        Two query dialects, distinguished by prefix:

        * ``name:<sde-name>`` — return that SDE's XML (empty
          ``<serviceDataResult/>`` when absent);
        * ``xpath:<expr>`` — evaluate the XPath subset against the
          ``<serviceData>`` document; element results are embedded,
          string results become ``<value>`` children.

        A bare expression (no prefix) is treated as a name query, which
        matches how the thesis's clients use FindServiceData today.
        """
        result = Element("serviceDataResult")
        if expression.startswith("xpath:"):
            expr = expression[len("xpath:") :]
            try:
                hits = xpath_select(self.to_element(), expr)
            except XPathError as exc:
                raise ValueError(f"bad XPath query: {exc}") from exc
            for hit in hits:
                if isinstance(hit, Element):
                    result.children.append(hit)
                else:
                    result.subelement("value", hit)
            return serialize(result)
        name = expression[len("name:") :] if expression.startswith("name:") else expression
        sde = self._elements.get(name)
        if sde is not None:
            result.children.append(sde.to_element())
        return serialize(result)
