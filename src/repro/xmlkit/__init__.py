"""Minimal XML substrate used by the SOAP / WSDL / data-store layers.

The thesis's Grid-services stack (Globus GT3.2 on Apache Axis) spends its
"overhead" time marshalling calls to XML, shipping bytes, and parsing them
back.  To make that overhead *real* in this reproduction rather than a
constant plugged into a model, this package implements an XML document
model, a serializing writer, a recursive-descent parser, and an XPath
subset from scratch.

Public API
----------
``Element``          mutable element-tree node with namespace support
``Document``         a root element plus an XML declaration
``QName``            qualified name (namespace URI + local part)
``serialize``        element/document -> str
``parse``            str/bytes -> Document
``XmlParseError``    raised on malformed input
``xpath_select``     evaluate an XPath subset expression against an Element
``escape_text`` / ``escape_attr``  low-level escaping helpers
"""

from repro.xmlkit.model import Document, Element, QName
from repro.xmlkit.parser import XmlParseError, parse
from repro.xmlkit.writer import escape_attr, escape_text, serialize
from repro.xmlkit.xpath import XPathError, xpath_select

__all__ = [
    "Document",
    "Element",
    "QName",
    "XmlParseError",
    "XPathError",
    "escape_attr",
    "escape_text",
    "parse",
    "serialize",
    "xpath_select",
]
