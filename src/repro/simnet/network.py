"""Network cost model.

A message of *n* bytes between two distinct hosts costs
``latency + n / bandwidth`` seconds; intra-host messages cost only a
small loopback latency.  Defaults approximate the thesis's fast-Ethernet
(10/100) LAN: 100 Mbit/s with sub-millisecond switch latency.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth parameters for one network."""

    latency_s: float = 0.0005
    bandwidth_bytes_per_s: float = 100e6 / 8  # 100 Mbit/s
    loopback_latency_s: float = 0.00002

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.loopback_latency_s < 0:
            raise ValueError("latencies must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time(self, nbytes: int, *, same_host: bool = False) -> float:
        """Seconds to move *nbytes* one way."""
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        if same_host:
            return self.loopback_latency_s
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def round_trip_time(self, request_bytes: int, response_bytes: int, *, same_host: bool = False) -> float:
        """Seconds for a request/response exchange."""
        return self.transfer_time(request_bytes, same_host=same_host) + self.transfer_time(
            response_bytes, same_host=same_host
        )


class SharedMediumNetwork:
    """A shared-bus network: one transfer at a time on the wire.

    The thesis's 10/100 LAN behaves like a switch with ample backplane at
    its message rates, which :class:`NetworkModel` captures.  But the
    scalability argument has a limit — once response payloads grow, the
    replica hosts all feed the *same* link to the client, and transfers
    serialize.  This model exposes that regime (ablation A4): each
    transfer occupies the bus for ``latency + bytes/bandwidth`` seconds,
    starting no earlier than both its ready time and the bus being free.
    """

    def __init__(self, model: NetworkModel | None = None) -> None:
        self.model = model or NetworkModel()
        self.busy_until = 0.0
        self.total_busy = 0.0
        self.transfers = 0

    def schedule_transfer(self, nbytes: int, ready_at: float = 0.0) -> tuple[float, float]:
        """Occupy the bus for one transfer; returns (start, end)."""
        duration = self.model.transfer_time(nbytes)
        start = max(self.busy_until, ready_at)
        end = start + duration
        self.busy_until = end
        self.total_busy += duration
        self.transfers += 1
        return start, end

    def reset(self) -> None:
        self.busy_until = 0.0
        self.total_busy = 0.0
        self.transfers = 0

    def utilization(self, horizon: float) -> float:
        if horizon <= 0:
            return 0.0
        return min(1.0, self.total_busy / horizon)
