"""minidb exception hierarchy (DB-API style)."""


class MiniDbError(Exception):
    """Base class for all minidb errors."""


class SqlSyntaxError(MiniDbError):
    """Raised by the lexer/parser on malformed SQL."""


class ProgrammingError(MiniDbError):
    """Semantic errors: unknown table/column, type mismatch, bad usage."""


class IntegrityError(MiniDbError):
    """Constraint violations: primary key duplicates, NOT NULL."""
