"""Tests for query execution: scans, joins, aggregates, ordering, DML."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Database, IntegrityError, ProgrammingError
from repro.minidb.expr import like_match


@pytest.fixture()
def db():
    database = Database("test")
    database.execute(
        "CREATE TABLE runs (runid INTEGER PRIMARY KEY, machine TEXT, "
        "numprocs INTEGER, gflops REAL, note TEXT)"
    )
    rows = [
        (1, "alpha", 4, 2.0, None),
        (2, "alpha", 8, 4.5, "good"),
        (3, "beta", 4, 1.5, "bad"),
        (4, "beta", 16, 9.0, None),
        (5, "gamma", 8, 5.5, "good"),
    ]
    for row in rows:
        database.execute(
            "INSERT INTO runs VALUES (?, ?, ?, ?, ?)", row
        )
    database.execute(
        "CREATE TABLE procs (pid INTEGER PRIMARY KEY, runid INTEGER, node TEXT)"
    )
    for pid, runid, node in [(1, 1, "n0"), (2, 1, "n1"), (3, 2, "n0"), (4, 99, "nX")]:
        database.execute("INSERT INTO procs VALUES (?, ?, ?)", (pid, runid, node))
    return database


class TestSelectBasics:
    def test_star(self, db):
        result = db.query("SELECT * FROM runs")
        assert result.columns == ["runid", "machine", "numprocs", "gflops", "note"]
        assert len(result) == 5

    def test_projection_and_expression(self, db):
        result = db.query("SELECT runid, gflops * 2 AS doubled FROM runs WHERE runid = 1")
        assert result.columns == ["runid", "doubled"]
        assert result.rows == [(1, 4.0)]

    def test_where_filters(self, db):
        result = db.query("SELECT runid FROM runs WHERE machine = 'alpha'")
        assert result.column("runid") == [1, 2]

    def test_comparison_operators(self, db):
        assert db.query("SELECT COUNT(*) FROM runs WHERE gflops >= 4.5").scalar() == 3
        assert db.query("SELECT COUNT(*) FROM runs WHERE numprocs <> 4").scalar() == 3
        assert db.query("SELECT COUNT(*) FROM runs WHERE gflops < 2.0").scalar() == 1

    def test_null_comparisons_are_false(self, db):
        assert db.query("SELECT COUNT(*) FROM runs WHERE note = 'good'").scalar() == 2
        assert db.query("SELECT COUNT(*) FROM runs WHERE note != 'good'").scalar() == 1

    def test_is_null(self, db):
        assert db.query("SELECT COUNT(*) FROM runs WHERE note IS NULL").scalar() == 2
        assert db.query("SELECT COUNT(*) FROM runs WHERE note IS NOT NULL").scalar() == 3

    def test_in_and_between(self, db):
        assert db.query("SELECT COUNT(*) FROM runs WHERE runid IN (1, 3, 99)").scalar() == 2
        assert db.query("SELECT COUNT(*) FROM runs WHERE gflops BETWEEN 2 AND 6").scalar() == 3
        assert db.query("SELECT COUNT(*) FROM runs WHERE runid NOT IN (1)").scalar() == 4

    def test_like(self, db):
        assert db.query("SELECT COUNT(*) FROM runs WHERE machine LIKE 'a%'").scalar() == 2
        assert db.query("SELECT COUNT(*) FROM runs WHERE machine LIKE '_eta'").scalar() == 2
        assert db.query("SELECT COUNT(*) FROM runs WHERE machine NOT LIKE '%a'").scalar() == 0

    def test_scalar_functions(self, db):
        row = db.query(
            "SELECT UPPER(machine), LOWER('ABC'), LENGTH(machine), ABS(-2), "
            "ROUND(1.567, 1), COALESCE(note, 'none') FROM runs WHERE runid = 1"
        ).rows[0]
        assert row == ("ALPHA", "abc", 5, 2, 1.6, "none")

    def test_string_concat(self, db):
        value = db.query(
            "SELECT machine || '-' || note FROM runs WHERE runid = 2"
        ).scalar()
        assert value == "alpha-good"

    def test_division_by_zero_raises(self, db):
        with pytest.raises(ProgrammingError):
            db.query("SELECT 1 / 0 FROM runs")

    def test_unknown_column_raises(self, db):
        with pytest.raises(ProgrammingError):
            db.query("SELECT nonsense FROM runs")

    def test_unknown_table_raises(self, db):
        with pytest.raises(ProgrammingError):
            db.query("SELECT * FROM nonsense")

    def test_ambiguous_column_raises(self, db):
        with pytest.raises(ProgrammingError):
            db.query("SELECT runid FROM runs r JOIN procs p ON r.runid = p.runid")


class TestOrderingAndLimits:
    def test_order_by_column(self, db):
        result = db.query("SELECT runid FROM runs ORDER BY gflops DESC")
        assert result.column("runid") == [4, 5, 2, 1, 3]

    def test_order_by_position_and_alias(self, db):
        by_pos = db.query("SELECT runid, gflops FROM runs ORDER BY 2")
        by_alias = db.query("SELECT runid, gflops AS g FROM runs ORDER BY g")
        assert by_pos.column("runid") == by_alias.column("runid") == [3, 1, 2, 5, 4]

    def test_order_by_multiple_keys(self, db):
        result = db.query("SELECT machine, runid FROM runs ORDER BY machine, runid DESC")
        assert result.rows == [
            ("alpha", 2),
            ("alpha", 1),
            ("beta", 4),
            ("beta", 3),
            ("gamma", 5),
        ]

    def test_nulls_sort_first(self, db):
        result = db.query("SELECT note FROM runs ORDER BY note")
        assert result.rows[0] == (None,) and result.rows[1] == (None,)

    def test_limit_offset(self, db):
        result = db.query("SELECT runid FROM runs ORDER BY runid LIMIT 2 OFFSET 1")
        assert result.column("runid") == [2, 3]

    def test_limit_zero(self, db):
        assert len(db.query("SELECT * FROM runs LIMIT 0")) == 0

    def test_distinct(self, db):
        result = db.query("SELECT DISTINCT machine FROM runs ORDER BY machine")
        assert result.column("machine") == ["alpha", "beta", "gamma"]

    def test_order_by_position_out_of_range(self, db):
        with pytest.raises(ProgrammingError):
            db.query("SELECT runid FROM runs ORDER BY 5")


class TestAggregates:
    def test_global_aggregates(self, db):
        row = db.query(
            "SELECT COUNT(*), COUNT(note), SUM(gflops), AVG(numprocs), "
            "MIN(gflops), MAX(machine) FROM runs"
        ).rows[0]
        assert row == (5, 3, 22.5, 8.0, 1.5, "gamma")

    def test_group_by(self, db):
        result = db.query(
            "SELECT machine, COUNT(*) n, SUM(gflops) total FROM runs "
            "GROUP BY machine ORDER BY machine"
        )
        assert result.rows == [("alpha", 2, 6.5), ("beta", 2, 10.5), ("gamma", 1, 5.5)]

    def test_having(self, db):
        result = db.query(
            "SELECT machine FROM runs GROUP BY machine HAVING COUNT(*) > 1 ORDER BY machine"
        )
        assert result.column("machine") == ["alpha", "beta"]

    def test_group_expression_in_output(self, db):
        result = db.query(
            "SELECT numprocs * 2 AS d, COUNT(*) FROM runs GROUP BY numprocs * 2 ORDER BY d"
        )
        assert result.rows == [(8, 2), (16, 2), (32, 1)]

    def test_aggregate_over_empty_input(self, db):
        row = db.query("SELECT COUNT(*), SUM(gflops) FROM runs WHERE runid > 100").rows[0]
        assert row == (0, None)

    def test_group_by_empty_input_yields_no_rows(self, db):
        result = db.query(
            "SELECT machine, COUNT(*) FROM runs WHERE runid > 100 GROUP BY machine"
        )
        assert result.rows == []

    def test_avg_ignores_nulls(self, db):
        db.execute("INSERT INTO runs VALUES (6, 'delta', 2, NULL, NULL)")
        assert db.query("SELECT AVG(gflops) FROM runs").scalar() == pytest.approx(4.5)

    def test_bare_column_without_group_rejected(self, db):
        with pytest.raises(ProgrammingError):
            db.query("SELECT machine, COUNT(*) FROM runs")

    def test_non_group_column_rejected(self, db):
        with pytest.raises(ProgrammingError):
            db.query("SELECT runid FROM runs GROUP BY machine")

    def test_order_by_aggregate(self, db):
        result = db.query(
            "SELECT machine, SUM(gflops) s FROM runs GROUP BY machine ORDER BY SUM(gflops) DESC"
        )
        assert result.column("machine") == ["beta", "alpha", "gamma"]

    def test_sum_of_text_rejected(self, db):
        with pytest.raises(ProgrammingError):
            db.query("SELECT SUM(machine) FROM runs")


class TestJoins:
    def test_inner_join(self, db):
        result = db.query(
            "SELECT r.runid, p.node FROM runs r JOIN procs p ON r.runid = p.runid "
            "ORDER BY p.pid"
        )
        assert result.rows == [(1, "n0"), (1, "n1"), (2, "n0")]

    def test_left_join_pads_nulls(self, db):
        result = db.query(
            "SELECT r.runid, p.node FROM runs r LEFT JOIN procs p ON r.runid = p.runid "
            "WHERE p.node IS NULL ORDER BY r.runid"
        )
        assert result.column("runid") == [3, 4, 5]

    def test_join_with_residual_condition(self, db):
        result = db.query(
            "SELECT p.pid FROM runs r JOIN procs p ON r.runid = p.runid AND p.node = 'n0' "
            "ORDER BY p.pid"
        )
        assert result.column("pid") == [1, 3]

    def test_non_equi_join_falls_back_to_nested_loop(self, db):
        result = db.query(
            "SELECT COUNT(*) FROM runs r JOIN procs p ON r.runid < p.runid"
        )
        # run ids {1..5} x proc run ids {1,1,2,99}: 0+0+1+5 pairs satisfy <
        assert result.scalar() == 6

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE notes (runid INTEGER, text TEXT)")
        db.execute("INSERT INTO notes VALUES (1, 'n')")
        result = db.query(
            "SELECT r.runid FROM runs r JOIN procs p ON r.runid = p.runid "
            "JOIN notes n ON n.runid = r.runid"
        )
        assert result.column("runid") == [1, 1]


class TestDml:
    def test_update_with_where(self, db):
        count = db.execute("UPDATE runs SET gflops = 0 WHERE machine = 'alpha'")
        assert count == 2
        assert db.query("SELECT SUM(gflops) FROM runs").scalar() == 16.0

    def test_update_all(self, db):
        assert db.execute("UPDATE runs SET note = 'x'") == 5

    def test_update_expression_uses_old_values(self, db):
        db.execute("UPDATE runs SET gflops = gflops + numprocs WHERE runid = 1")
        assert db.query("SELECT gflops FROM runs WHERE runid = 1").scalar() == 6.0

    def test_delete(self, db):
        assert db.execute("DELETE FROM runs WHERE numprocs = 4") == 2
        assert db.query("SELECT COUNT(*) FROM runs").scalar() == 3

    def test_insert_partial_columns(self, db):
        db.execute("INSERT INTO runs (runid, machine, numprocs, gflops) VALUES (9, 'x', 1, 0.1)")
        assert db.query("SELECT note FROM runs WHERE runid = 9").scalar() is None

    def test_insert_count_mismatch(self, db):
        with pytest.raises(ProgrammingError):
            db.execute("INSERT INTO runs (runid, machine) VALUES (1, 'x', 'extra')")

    def test_pk_duplicate_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO runs VALUES (1, 'dup', 1, 1.0, NULL)")

    def test_pk_null_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO runs VALUES (NULL, 'x', 1, 1.0, NULL)")

    def test_type_coercion_on_insert(self, db):
        db.execute("INSERT INTO runs VALUES (10, 'x', 2, 3, NULL)")  # int -> REAL
        assert db.query("SELECT gflops FROM runs WHERE runid = 10").scalar() == 3.0

    def test_type_mismatch_rejected(self, db):
        with pytest.raises(ProgrammingError):
            db.execute("INSERT INTO runs VALUES (11, 12, 2, 3.0, NULL)")
        with pytest.raises(ProgrammingError):
            db.execute("INSERT INTO runs VALUES (11, 'x', 2.5, 3.0, NULL)")


class TestIndexUse:
    def test_index_lookup_equals_scan_results(self, db):
        db.execute("CREATE INDEX idx_machine ON runs (machine)")
        indexed = db.query("SELECT runid FROM runs WHERE machine = 'beta' ORDER BY runid")
        assert indexed.column("runid") == [3, 4]

    def test_index_updated_by_dml(self, db):
        db.execute("CREATE INDEX idx_machine ON runs (machine)")
        db.execute("UPDATE runs SET machine = 'delta' WHERE runid = 3")
        assert db.query("SELECT runid FROM runs WHERE machine = 'delta'").column("runid") == [3]
        db.execute("DELETE FROM runs WHERE machine = 'beta'")
        assert db.query("SELECT COUNT(*) FROM runs WHERE machine = 'beta'").scalar() == 0

    def test_pk_lookup_after_many_deletes_and_compaction(self, db):
        # Force the tombstone compaction path.
        for i in range(100, 200):
            db.execute("INSERT INTO runs VALUES (?, 'bulk', 1, 1.0, NULL)", [i])
        db.execute("DELETE FROM runs WHERE machine = 'bulk'")
        assert db.query("SELECT COUNT(*) FROM runs").scalar() == 5
        assert db.query("SELECT machine FROM runs WHERE runid = 4").scalar() == "beta"


class TestPlaceholders:
    def test_binding(self, db):
        result = db.query("SELECT runid FROM runs WHERE machine = ? AND numprocs = ?", ("alpha", 8))
        assert result.column("runid") == [2]

    def test_string_escaping(self, db):
        db.execute("INSERT INTO runs VALUES (50, ?, 1, 1.0, ?)", ["o'brien", "it's"])
        assert db.query("SELECT note FROM runs WHERE runid = 50").scalar() == "it's"

    def test_question_mark_inside_string_literal_kept(self, db):
        db.execute("INSERT INTO runs VALUES (51, 'what?', 1, 1.0, NULL)")
        assert db.query("SELECT machine FROM runs WHERE runid = 51").scalar() == "what?"

    def test_too_few_params(self, db):
        with pytest.raises(ProgrammingError):
            db.query("SELECT * FROM runs WHERE runid = ? AND machine = ?", (1,))

    def test_too_many_params(self, db):
        with pytest.raises(ProgrammingError):
            db.query("SELECT * FROM runs WHERE runid = ?", (1, 2))

    def test_none_and_bool_literals(self, db):
        db.execute("INSERT INTO runs VALUES (?, ?, ?, ?, ?)", [60, "m", 1, 1.0, None])
        assert db.query("SELECT note FROM runs WHERE runid = 60").scalar() is None


# --------------------------------------------------------- property tests


class TestLikeMatchProperties:
    @given(st.text(alphabet="ab%_", max_size=8), st.text(alphabet="ab", max_size=8))
    @settings(max_examples=300, deadline=None)
    def test_like_match_agrees_with_regex(self, pattern, text):
        import re

        regex = "^" + "".join(
            ".*" if c == "%" else "." if c == "_" else re.escape(c) for c in pattern
        ) + "$"
        assert like_match(text, pattern) == bool(re.match(regex, text))

    def test_percent_matches_empty(self):
        assert like_match("", "%")
        assert like_match("abc", "%")
        assert not like_match("abc", "_")
