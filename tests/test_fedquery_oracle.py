"""Property test: the planned federated pipeline == the naive oracle.

Generates a few hundred randomized queries from the live grid's own
vocabulary (published query params, metrics, foci, tool types, observed
value/time ranges) and checks that the full planner/push-down/fan-out/
merge pipeline returns exactly what the boring client-side evaluation
in :mod:`repro.fedquery.naive` returns — same rows, same order, floats
compared with ``math.isclose`` (SQL aggregates sum in store order, the
oracle in arrival order).

All three store flavors are exercised: HPL (RDBMS, scalar metrics),
SMG98 (RDBMS, 5-table Vampir trace) and PRESTA-RMA (flat text files).
"""

from __future__ import annotations

import math
import random
from types import SimpleNamespace

import pytest

from repro.experiments.common import GridScale, build_grid
from repro.fedquery import ResultRow, naive_query
from repro.fedquery.merge import RAW_COLUMNS

#: randomized queries checked against the oracle (ISSUE floor: 200)
N_QUERIES = 240

AGG_FUNCS = ("count", "sum", "mean", "min", "max")


def rows_equal(left: list[ResultRow], right: list[ResultRow]) -> bool:
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if a.columns != b.columns:
            return False
        for va, vb in zip(a.values, b.values):
            if isinstance(va, float) or isinstance(vb, float):
                if not math.isclose(float(va), float(vb), rel_tol=1e-9, abs_tol=1e-12):
                    return False
            elif va != vb:
                return False
    return True


@pytest.fixture(scope="module")
def oracle_env():
    grid = build_grid(GridScale.tiny())
    engine = grid.deploy_federation()
    members = engine.members()

    # independent engines (own plan caches) with the cursor path forced
    # on, so the streamed arms can never answer from the bulk arm's
    # cache — one per wire encoding, so the whole randomized corpus runs
    # over both the negotiated (columnar) and the forced-XML chunk path
    from repro.core.client import PPerfGridClient
    from repro.fedquery.executor import FederationEngine

    def make_stream_engine(accept_encodings):
        return FederationEngine(
            PPerfGridClient(grid.environment, grid.uddi_gsh),
            managers={name: site.manager for name, site in grid.sites.items()},
            stream_threshold_rows=0,
            stream_chunk_rows=7,
            accept_encodings=accept_encodings,
        )

    stream_engines = {
        "negotiated": make_stream_engine(None),  # client default advertisement
        "xml": make_stream_engine(("xml",)),  # forced per-row fallback
    }
    stream_engine = stream_engines["negotiated"]

    params: dict[str, dict[str, list[str]]] = {}
    metrics: dict[str, list[str]] = {}
    foci: dict[str, list[str]] = {}
    types: dict[str, str] = {}
    for name, binding in members.items():
        params[name] = binding.exec_query_params()
        probe = binding.all_executions()[0]
        metrics[name] = probe.metrics()
        foci[name] = probe.foci()
        types[name] = probe.types()[0]

    # observed value samples and time horizon, for plausible predicates
    samples: dict[str, list[float]] = {}
    end_max = 1.0
    for app, app_metrics in metrics.items():
        for metric in app_metrics:
            result = engine.execute(f"SELECT {metric} FROM {app}")
            values = samples.setdefault(metric, [])
            for row in result.rows:
                values.append(float(row["value"]))
                end_max = max(end_max, float(row["end"]))
    samples = {m: sorted(v) for m, v in samples.items() if v}
    engine.invalidate_cache()

    yield SimpleNamespace(
        grid=grid,
        engine=engine,
        stream_engine=stream_engine,
        stream_engines=stream_engines,
        members=members,
        apps=sorted(members),
        params=params,
        metrics=metrics,
        foci=foci,
        types=types,
        samples=samples,
        end_max=end_max,
    )
    grid.cleanup()


def _quote(text: str) -> str:
    return f"'{text}'"


def make_tier0_query(
    rng: random.Random, V, funcs: tuple[str, ...] = AGG_FUNCS, exact_only: bool = False
) -> str:
    """A random query whose *shape* is tier-0 eligible: aggregate-only
    select, group keys at most ``app``, full window, and only value
    predicates.  Whether the answer actually comes from metadata depends
    on the member (sketchless SMG98 falls back) and the predicate — the
    corpus deliberately mixes vacuous windows (exact tier-0 answers),
    straddling ones (exact-mode fallback), and unsatisfiable ones (exact
    empty answers).  *exact_only* keeps to vacuous/absent predicates.
    """
    sources: list[str] = []
    if rng.random() < 0.4:
        sources = rng.sample(V.apps, rng.randint(1, len(V.apps)))
    primary = rng.choice(sources or V.apps)
    pool = V.metrics[primary]
    chosen = rng.sample(pool, 1 if rng.random() < 0.7 else min(2, len(pool)))
    picked_funcs = rng.sample(funcs, rng.randint(1, min(3, len(funcs))))
    items = [f"{func}({metric})" for metric in chosen for func in picked_funcs]

    where: list[str] = []
    values = V.samples.get(chosen[0])
    if values and rng.random() < 0.7:
        low, high = values[0], values[-1]
        vacuous = (
            f"value >= {low!r}", f"value <= {high!r}",
            f"value > {low - 1.0!r}", f"value < {high + 1.0!r}",
            f"value != {high + 1.0!r}",
        )
        if exact_only:
            where.append(rng.choice(vacuous))
        else:
            roll = rng.random()
            if roll < 0.4:
                where.append(rng.choice(vacuous))
            elif roll < 0.85:  # straddles: exact mode must fall back
                op = rng.choice(("<", "<=", ">", ">=", "=", "!="))
                where.append(f"value {op} {rng.choice(values)!r}")
            else:  # unsatisfiable: the provably-empty tier-0 answer
                where.append(f"value > {high + 1.0!r}")

    group_by = ["app"] if rng.random() < 0.8 else []
    order_pool = group_by + [i for i in items if i.startswith("count(")]

    text = "SELECT " + ", ".join(items)
    if sources:
        text += " FROM " + ", ".join(sources)
    if where:
        text += " WHERE " + " AND ".join(where)
    if group_by:
        text += " GROUP BY " + ", ".join(group_by)
    if order_pool and rng.random() < 0.3:
        text += f" ORDER BY {rng.choice(order_pool)}"
        if rng.random() < 0.5:
            text += " DESC"
    if rng.random() < 0.2:
        text += f" LIMIT {rng.randint(1, 12)}"
    return text


def make_query(rng: random.Random, V) -> str:
    """One random, always-valid query drawn from the grid's vocabulary."""
    if rng.random() < 0.2:
        return make_tier0_query(rng, V)
    aggregate = rng.random() < 0.6
    sources: list[str] = []
    if rng.random() < 0.5:
        sources = rng.sample(V.apps, rng.randint(1, len(V.apps)))
    candidates = sources or V.apps
    primary = rng.choice(candidates)
    pool = V.metrics[primary]
    chosen = rng.sample(pool, 1 if rng.random() < 0.7 else min(2, len(pool)))

    where: list[str] = []
    if rng.random() < 0.6:  # execution-attribute predicate
        attr = rng.choice(sorted(V.params[primary]))
        values = V.params[primary][attr]
        op = rng.choice(("=", "!=", "<", "<=", ">", ">=", "in"))
        if op == "in":
            picked = rng.sample(values, min(len(values), rng.randint(1, 3)))
            where.append(f"{attr} IN ({', '.join(_quote(v) for v in picked)})")
        else:
            where.append(f"{attr} {op} {_quote(rng.choice(values))}")
    if rng.random() < 0.2:  # app predicate
        op = rng.choice(("=", "!=", "in"))
        if op == "in":
            picked = rng.sample(V.apps, rng.randint(1, 2))
            where.append(f"app IN ({', '.join(_quote(a) for a in picked)})")
        else:
            where.append(f"app {op} {_quote(rng.choice(V.apps))}")
    if rng.random() < 0.15:  # execution-id predicate
        op = rng.choice(("=", "<=", ">=", "!="))
        where.append(f"exec {op} {_quote(str(rng.randint(0, 11)))}")
    if rng.random() < 0.35:  # focus predicate (narrows the query foci)
        app_foci = V.foci[primary]
        if rng.random() < 0.5 or len(app_foci) == 1:
            where.append(f"focus = {_quote(rng.choice(app_foci))}")
        else:
            picked = rng.sample(app_foci, min(len(app_foci), rng.randint(2, 3)))
            where.append(f"focus IN ({', '.join(_quote(f) for f in picked)})")
    if rng.random() < 0.15:  # tool-type predicate
        where.append(f"type = {_quote(V.types[rng.choice(candidates)])}")
    if rng.random() < 0.25:  # time window
        where.append(f"start >= {round(rng.uniform(0.0, V.end_max * 0.5), 3)}")
    if rng.random() < 0.25:
        where.append(f"end <= {round(rng.uniform(V.end_max * 0.25, V.end_max), 3)}")
    values = V.samples.get(chosen[0])
    if values and rng.random() < 0.45:  # value predicate
        threshold = rng.choice(values)
        op = rng.choice(("<", "<=", "<=", ">", ">=", ">=", "=", "!="))
        where.append(f"value {op} {threshold!r}")

    group_by: list[str] = []
    if aggregate:
        funcs = rng.sample(AGG_FUNCS, rng.randint(1, 3))
        items = [f"{func}({metric})" for metric in chosen for func in funcs]
        if rng.random() < 0.9:
            keys = ["app", "exec", "focus"] + sorted(V.params[primary])
            group_by = rng.sample(keys, rng.randint(1, 2))
        # floats from SQL and Python can differ in the last ulp, so only
        # order on exact columns (group keys and integer counts)
        order_pool = group_by + [i for i in items if i.startswith("count(")]
    else:
        items = list(chosen)
        order_pool = list(RAW_COLUMNS)

    text = "SELECT " + ", ".join(items)
    if sources:
        text += " FROM " + ", ".join(sources)
    if where:
        text += " WHERE " + " AND ".join(where)
    if group_by:
        text += " GROUP BY " + ", ".join(group_by)
    if order_pool and rng.random() < 0.4:
        text += f" ORDER BY {rng.choice(order_pool)}"
        if rng.random() < 0.5:
            text += " DESC"
    if rng.random() < 0.3:
        text += f" LIMIT {rng.randint(1, 12)}"
    return text


@pytest.mark.parametrize("seed", range(N_QUERIES))
def test_planned_matches_naive(oracle_env, seed, oracle_seed):
    rng = random.Random(7000 + seed + 1_000_000 * oracle_seed)
    text = make_query(rng, oracle_env)
    planned = oracle_env.engine.execute(text)
    expected = naive_query(text, oracle_env.members)
    assert rows_equal(planned.rows, expected), (
        f"planned != naive for {text!r}\n"
        f"planned ({len(planned.rows)}): {[r.pack() for r in planned.rows[:5]]}\n"
        f"naive   ({len(expected)}): {[r.pack() for r in expected[:5]]}"
    )


@pytest.mark.parametrize("encoding", ["negotiated", "xml"])
@pytest.mark.parametrize("seed", range(N_QUERIES))
def test_streamed_matches_bulk(oracle_env, seed, oracle_seed, encoding):
    """The same corpus through execute(stream=True): raw queries must be
    byte-identical to the bulk rows (the incremental merge reproduces
    the bulk order exactly); global operators (aggregates/ORDER BY) take
    the documented bulk fallback and are float-compared.  Runs once per
    wire encoding — the columnar batch path and the per-row XML fallback
    must both reproduce the bulk bytes."""
    from repro.fedquery import parse_query

    rng = random.Random(7000 + seed + 1_000_000 * oracle_seed)
    text = make_query(rng, oracle_env)
    bulk = oracle_env.engine.execute(text)
    with oracle_env.stream_engines[encoding].execute(text, stream=True) as streamed:
        streamed_rows = list(streamed)
    query = parse_query(text)
    if query.is_aggregate or query.order_by is not None:
        assert rows_equal(streamed_rows, bulk.rows), (
            f"streamed != bulk for {text!r}"
        )
    else:
        assert [r.pack() for r in streamed_rows] == [r.pack() for r in bulk.rows], (
            f"streamed bytes != bulk bytes for {text!r}\n"
            f"streamed ({len(streamed_rows)}): {[r.pack() for r in streamed_rows[:5]]}\n"
            f"bulk     ({len(bulk.rows)}): {[r.pack() for r in bulk.rows[:5]]}"
        )


@pytest.mark.parametrize("seed", range(40))
def test_tier0_exact_byte_identical_to_naive(oracle_env, seed, oracle_seed):
    """Tier-0 answers restricted to exactly-representable aggregates
    (count/min/max over vacuous windows) must be *byte-identical* to the
    naive evaluation — not merely close: the metadata answer returns the
    very values the stores hold.  (sum/mean are excluded here only
    because legitimate summation-order ulp drift exists even between two
    exact backends; the randomized sweep above covers them via
    ``rows_equal``.)"""
    rng = random.Random(9500 + seed + 1_000_000 * oracle_seed)
    text = make_tier0_query(
        rng, oracle_env, funcs=("count", "min", "max"), exact_only=True
    )
    result = oracle_env.engine.execute(text)
    expected = naive_query(text, oracle_env.members)
    assert [r.pack() for r in result.rows] == [r.pack() for r in expected], (
        f"tier-0 != naive bytes for {text!r}"
    )
    # when every member answered from metadata, no store was contacted
    if result.plan is not None and result.plan.members:
        if all(m.is_tier0 for m in result.plan.members):
            assert result.stats["calls"] == 0, text


def test_streamed_full_drain_is_memoized(oracle_env):
    text = "SELECT gflops FROM HPL"
    oracle_env.stream_engine.invalidate_cache()
    first = list(oracle_env.stream_engine.execute(text, stream=True))
    hot = oracle_env.stream_engine.execute(text, stream=True)
    assert hot.cached is True
    assert [r.pack() for r in hot] == [r.pack() for r in first]


@pytest.mark.parametrize("app", ["HPL", "SMG98", "PRESTA-RMA"])
def test_every_store_flavor_agrees(oracle_env, app):
    """Deterministic per-store check, so a store-specific regression is
    attributed directly even if the randomized sweep shifts."""
    metric = oracle_env.metrics[app][0]
    text = (
        f"SELECT count({metric}), mean({metric}), min({metric}), max({metric}) "
        f"FROM {app} GROUP BY numprocs ORDER BY numprocs"
    )
    planned = oracle_env.engine.execute(text)
    assert planned.rows, f"no rows for {text!r}"
    assert rows_equal(planned.rows, naive_query(text, oracle_env.members))
