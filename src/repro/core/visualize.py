"""ASCII visualization of Performance Results (the Figure 11 analog).

The thesis's Visualizer Panel plots "a metric value (e.g. gflops or
runtimesec) ... for each Execution in a query" with JFreeChart; here the
same chart renders as text so examples and experiment reports remain
terminal-friendly.
"""

from __future__ import annotations

from repro.core.semantic import PerformanceResult


def render_metric_chart(
    results_by_execution: dict[str, list[PerformanceResult]],
    metric: str,
    width: int = 60,
    label_width: int = 28,
) -> str:
    """Horizontal bar chart: one bar per execution, value = first matching PR.

    Executions with no result for *metric* are listed with an empty bar,
    mirroring the GUI's blank data points.
    """
    rows: list[tuple[str, float | None]] = []
    for gsh, results in results_by_execution.items():
        value: float | None = None
        for result in results:
            if result.metric == metric:
                value = result.value
                break
        rows.append((_short_label(gsh), value))
    if not rows:
        return f"(no executions to chart for metric {metric!r})"
    values = [v for _, v in rows if v is not None]
    peak = max(values) if values else 0.0
    lines = [f"{metric} per Execution", "=" * (label_width + width + 12)]
    for label, value in rows:
        shown = label[:label_width].ljust(label_width)
        if value is None:
            lines.append(f"{shown} | {'(no data)'}")
            continue
        bar_len = int(round(width * (value / peak))) if peak > 0 else 0
        lines.append(f"{shown} |{'#' * bar_len} {value:.4g}")
    return "\n".join(lines)


def render_series_table(
    results: list[PerformanceResult], max_rows: int = 20
) -> str:
    """Tabulate PRs (focus, time span, value) — the drill-down view."""
    lines = [f"{'focus':<48} {'span':>23} {'value':>12}"]
    lines.append("-" * 86)
    for result in results[:max_rows]:
        span = f"{result.start:.3f}-{result.end:.3f}"
        lines.append(f"{result.focus:<48} {span:>23} {result.value:>12.5g}")
    if len(results) > max_rows:
        lines.append(f"... ({len(results) - max_rows} more)")
    return "\n".join(lines)


def render_histogram(
    results: list[PerformanceResult],
    bins: int = 12,
    width: int = 50,
) -> str:
    """Histogram of PR values — the distribution view for trace data.

    SMG98-style stores return one PR per interval; the distribution of
    interval durations (long tail of slow MPI calls, say) is what an
    analyst looks at first.  Bins are equal-width over [min, max].
    """
    if not results:
        return "(no results to histogram)"
    values = [r.value for r in results]
    lo, hi = min(values), max(values)
    metric = results[0].metric
    if lo == hi:
        return f"{metric}: all {len(values)} values equal {lo:.6g}"
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    counts = [0] * bins
    span = hi - lo
    for v in values:
        index = min(bins - 1, int((v - lo) / span * bins))
        counts[index] += 1
    peak = max(counts)
    lines = [f"{metric}: {len(values)} values in [{lo:.6g}, {hi:.6g}]"]
    for i, count in enumerate(counts):
        left = lo + span * i / bins
        bar = "#" * int(round(width * count / peak)) if peak else ""
        lines.append(f"{left:>12.6g} | {bar} {count}")
    return "\n".join(lines)


def _short_label(gsh: str) -> str:
    """Compress a GSH to ``authority/.../instances/N`` for chart labels."""
    text = gsh
    for scheme in ("ppg://", "http://"):
        if text.startswith(scheme):
            text = text[len(scheme) :]
            break
    parts = text.split("/")
    if len(parts) > 3:
        return f"{parts[0]}/../{'/'.join(parts[-2:])}"
    return text
