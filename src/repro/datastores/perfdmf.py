"""PerfDMF-style profile database (thesis §2.4 interoperability case).

The thesis singles out one collaboration: "PPerfGrid could be used to
expose a PerfDMF profile database for analysis with performance data
from other locations."  PerfDMF (Huck et al., 2004) stores *profiles*
(aggregated per-function data), not traces, in a relational schema with
the entities APPLICATION, EXPERIMENT, TRIAL, METRIC, INTERVAL_EVENT —
reproduced here as five tables:

* ``application(app_id, name, version)``
* ``experiment(exp_id, app_id, name)``
* ``trial(trial_id, exp_id, name, date, node_count, contexts_per_node,
  threads_per_context, total_time)``
* ``metric(metric_id, trial_id, name)``
* ``interval_event(event_id, trial_id, metric_id, event_name, event_group,
  inclusive_value, exclusive_value, num_calls)``

:func:`profile_from_trace` derives a PerfDMF profile from an SMG98
trace dataset (the workflow PerfDMF's embedded translators perform), so
the two stores hold the same runs at different granularities — which the
parity tests exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datastores.generators.smg98 import SMG98_FUNCTIONS, Smg98Dataset
from repro.minidb import Database

PERFDMF_METRICS = ("TIME", "CALLS")


@dataclass
class PerfDmfDataset:
    """Row lists for the five PerfDMF tables."""

    applications: list[dict] = field(default_factory=list)
    experiments: list[dict] = field(default_factory=list)
    trials: list[dict] = field(default_factory=list)
    metrics: list[dict] = field(default_factory=list)
    interval_events: list[dict] = field(default_factory=list)

    def to_database(self) -> Database:
        db = Database("perfdmf")
        db.execute(
            "CREATE TABLE application (app_id INTEGER PRIMARY KEY, name TEXT, version TEXT)"
        )
        db.execute(
            "CREATE TABLE experiment (exp_id INTEGER PRIMARY KEY, app_id INTEGER, name TEXT)"
        )
        db.execute(
            "CREATE TABLE trial (trial_id INTEGER PRIMARY KEY, exp_id INTEGER, "
            "name TEXT, date TEXT, node_count INTEGER, contexts_per_node INTEGER, "
            "threads_per_context INTEGER, total_time REAL)"
        )
        db.execute(
            "CREATE TABLE metric (metric_id INTEGER PRIMARY KEY, trial_id INTEGER, name TEXT)"
        )
        db.execute(
            "CREATE TABLE interval_event (event_id INTEGER PRIMARY KEY, trial_id INTEGER, "
            "metric_id INTEGER, event_name TEXT, event_group TEXT, "
            "inclusive_value REAL, exclusive_value REAL, num_calls INTEGER)"
        )
        db.execute("CREATE INDEX idx_ie_trial ON interval_event (trial_id)")

        def load(table: str, rows: list[dict]) -> None:
            if rows:
                cols = list(rows[0].keys())
                db.load_rows(table, cols, [tuple(r[c] for c in cols) for r in rows])

        load("application", self.applications)
        load("experiment", self.experiments)
        load("trial", self.trials)
        load("metric", self.metrics)
        load("interval_event", self.interval_events)
        return db


def profile_from_trace(trace: Smg98Dataset, app_name: str = "SMG98") -> PerfDmfDataset:
    """Aggregate a Vampir-style trace into a PerfDMF profile.

    One TRIAL per traced execution; per (trial, function) one
    INTERVAL_EVENT row per metric: TIME (summed interval durations;
    inclusive == exclusive in this flat profile) and CALLS.
    """
    ds = PerfDmfDataset()
    ds.applications.append({"app_id": 1, "name": app_name, "version": "1998"})
    ds.experiments.append({"exp_id": 1, "app_id": 1, "name": f"{app_name}-scaling"})
    func_by_id = {i + 1: (name, grp) for i, (name, grp) in enumerate(SMG98_FUNCTIONS)}

    metric_id = 0
    event_id = 0
    metric_ids: dict[tuple[int, str], int] = {}
    for execution in trace.executions:
        trial_id = execution["execid"]
        ds.trials.append(
            {
                "trial_id": trial_id,
                "exp_id": 1,
                "name": f"trial-{trial_id}",
                "date": execution["rundate"],
                "node_count": execution["numprocs"],
                "contexts_per_node": 1,
                "threads_per_context": 1,
                "total_time": execution["runtime"],
            }
        )
        for metric_name in PERFDMF_METRICS:
            metric_id += 1
            metric_ids[(trial_id, metric_name)] = metric_id
            ds.metrics.append(
                {"metric_id": metric_id, "trial_id": trial_id, "name": metric_name}
            )

    # Aggregate intervals: (execid, funcid) -> [time, calls]
    totals: dict[tuple[int, int], list[float]] = {}
    for row in trace.intervals:
        key = (row["execid"], row["funcid"])
        bucket = totals.setdefault(key, [0.0, 0.0])
        bucket[0] += row["end_ts"] - row["start_ts"]
        bucket[1] += 1
    for (trial_id, funcid), (time_total, calls) in sorted(totals.items()):
        name, grp = func_by_id[funcid]
        for metric_name, value in (("TIME", time_total), ("CALLS", calls)):
            event_id += 1
            ds.interval_events.append(
                {
                    "event_id": event_id,
                    "trial_id": trial_id,
                    "metric_id": metric_ids[(trial_id, metric_name)],
                    "event_name": name,
                    "event_group": grp,
                    "inclusive_value": value,
                    "exclusive_value": value,
                    "num_calls": int(calls),
                }
            )
    return ds
