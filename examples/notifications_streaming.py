#!/usr/bin/env python
"""Data-update notifications, push and pull (future-work §7).

A data store receives new rows while a client is subscribed to its
Execution service.  The push model delivers each update to the client's
NotificationSink through a real SOAP call; the pull model queues updates
in a sink the client polls.  Either way the Execution invalidates its PR
cache, so the client's re-query sees fresh data.

Run: ``python examples/notifications_streaming.py``
"""

from repro.core import PPerfGridClient, PPerfGridSite, SiteConfig
from repro.datastores import generate_hpl
from repro.mapping import HplRdbmsWrapper
from repro.ogsi import GridEnvironment, NotificationSinkBase, PullNotificationSink


def main() -> None:
    env = GridEnvironment()
    hpl = generate_hpl(num_executions=10)
    database = hpl.to_database()
    site = PPerfGridSite(
        env, SiteConfig("siteA:8080", "HPL"), HplRdbmsWrapper(database)
    )
    client = PPerfGridClient(env)
    app = client.bind(site.factory_url, "HPL")
    execution = app.all_executions()[0]

    # ---------------- push model ------------------------------------------
    received: list[tuple[str, str]] = []
    push_sink = NotificationSinkBase(callback=lambda t, m: received.append((t, m)))
    client_container = env.create_container("client.example.org:7070")
    push_gsh = client_container.deploy("services/push-sink", push_sink)
    sub_id = execution.subscribe("data-update", push_gsh.url())
    print(f"Push subscription created: {sub_id}")

    # ---------------- pull model ------------------------------------------
    pull_sink = PullNotificationSink()
    pull_gsh = client_container.deploy("services/pull-sink", pull_sink)
    execution.subscribe("data-update", pull_gsh.url())

    # Initial query (populates the PR cache).
    before = execution.get_pr("gflops", ["/Run"])
    print(f"gflops before update: {before[0].value}")

    # ------------- the data store is updated (a streaming tool writes) ----
    exec_id = execution.info()["runid"]
    database.execute(
        "UPDATE hpl_runs SET gflops = gflops * 1.5 WHERE runid = ?", [int(exec_id)]
    )
    # The publisher-side Execution service announces the change: cache is
    # invalidated, SDEs refreshed, subscribers notified over SOAP.
    exec_container = env.container_for("siteA:8080")
    for path in exec_container.service_paths():
        service = exec_container.service_at(path)
        if getattr(service, "exec_id", None) == exec_id:
            delivered = service.announce_update("gflops recalibrated")
            print(f"announce_update delivered {delivered} push notification(s)")

    print(f"Push sink received: {received}")
    print(f"Pull sink poll:     {pull_sink.poll()}")

    after = execution.get_pr("gflops", ["/Run"])
    print(f"gflops after update:  {after[0].value} (cache was invalidated)")
    assert after[0].value != before[0].value


if __name__ == "__main__":
    main()
