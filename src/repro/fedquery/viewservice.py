"""The ViewRegistry Grid service.

Exposes the engine's :class:`~repro.fedquery.views.ViewMaintainer` as an
OGSI PortType: clients register any supported federated query as a
standing materialized view (``createView``), read its current rows and
(epoch, version) header (``getView``), and — the push half — subscribe a
NotificationSink to ``view-delta/<viewId>``, over which every applied
change arrives as an encoded, versioned
:class:`~repro.fedquery.views.ViewDelta` (``subscribeView``).
"""

from __future__ import annotations

from repro.core.semantic import PPERFGRID_NS
from repro.fedquery.executor import FederationEngine
from repro.fedquery.views import MaterializedView, ViewDelta
from repro.ogsi.notification import NotificationSourceMixin
from repro.ogsi.porttypes import GRID_SERVICE_PORTTYPE, NOTIFICATION_SOURCE_PORTTYPE
from repro.ogsi.service import GridServiceBase, ServiceState
from repro.wsdl.porttype import Operation, Parameter, PortType

VIEW_REGISTRY_PORTTYPE = PortType(
    name="ViewRegistry",
    namespace=PPERFGRID_NS,
    doc=(
        "Standing federated queries maintained as materialized views: "
        "data-update notifications from member stores fold in as "
        "partition deltas instead of invalidating, and subscribers "
        "receive every change as a versioned view delta."
    ),
    operations=(
        Operation(
            "createView",
            (Parameter("queryText", "xsd:string"),),
            "xsd:string",
            doc=(
                "Register a federated query as a materialized view and "
                "compute its initial rows. Returns the view id."
            ),
        ),
        Operation(
            "dropView",
            (Parameter("viewId", "xsd:string"),),
            "xsd:int",
            doc="Stop maintaining a view. Returns 1 if it existed, else 0.",
        ),
        Operation(
            "getView",
            (Parameter("viewId", "xsd:string"),),
            "xsd:string[]",
            doc=(
                "The view's consistent snapshot: six header records "
                "(viewId|..., epoch|..., version|..., shape|..., "
                "query|..., rows|<count>) followed by one packed result "
                "row per record, in the view's canonical order."
            ),
        ),
        Operation(
            "listViews",
            (),
            "xsd:string[]",
            doc=(
                "One record per registered view: "
                "viewId|shape|epoch=..|version=..|rows=.."
            ),
        ),
        Operation(
            "subscribeView",
            (
                Parameter("viewId", "xsd:string"),
                Parameter("sinkHandle", "xsd:string"),
            ),
            "xsd:string",
            doc=(
                "Subscribe a NotificationSink to the view's delta topic "
                "(view-delta/<viewId>); every applied change is pushed "
                "as an encoded versioned ViewDelta. Returns the "
                "subscription id."
            ),
        ),
        Operation(
            "viewStats",
            (),
            "xsd:string[]",
            doc=(
                "View-maintenance counters as 'name|value' records "
                "(views, created, dropped, deltasApplied, "
                "deltaRowsFetched, deltaBytesFetched, scopedRecomputes, "
                "epochRefreshes, noopUpdates, pushedDeltas, "
                "maintenanceErrors)."
            ),
        ),
    ),
    extends=(GRID_SERVICE_PORTTYPE, NOTIFICATION_SOURCE_PORTTYPE),
)


class ViewRegistryService(GridServiceBase, NotificationSourceMixin):
    """One view-registry endpoint backed by a federation engine."""

    porttype = VIEW_REGISTRY_PORTTYPE

    def __init__(self, engine: FederationEngine) -> None:
        super().__init__()
        self._init_notification_source()
        self.engine = engine
        self.maintainer = engine.views()
        self.maintainer.add_listener(self._push_delta)

    def on_deployed(self, container, gsh) -> None:
        super().on_deployed(container, gsh)
        self._publish_view_stats()

    def _push_delta(self, view: MaterializedView, delta: ViewDelta) -> None:
        if self.container is None or self.state is not ServiceState.ACTIVE:
            return
        self.notify(f"view-delta/{view.view_id}", delta.encode())

    # --------------------------------------------------------- operations
    def createView(self, queryText: str) -> str:
        self.require_active()
        # a view is only live if the coherence sink feeds the maintainer
        if self.engine._sink is None and self.container is not None:
            self.engine.enable_coherence(self.container)
        return self.maintainer.create_view(queryText).view_id

    def dropView(self, viewId: str) -> int:
        self.require_active()
        return 1 if self.maintainer.drop_view(viewId) else 0

    def getView(self, viewId: str) -> list[str]:
        self.require_active()
        view = self.maintainer.get_view(viewId)
        packed = view.packed_rows()
        return [
            f"viewId|{view.view_id}",
            f"epoch|{view.epoch}",
            f"version|{view.version}",
            f"shape|{view.shape.kind}",
            f"query|{view.text}",
            f"rows|{len(packed)}",
            *packed,
        ]

    def listViews(self) -> list[str]:
        self.require_active()
        return [view.describe() for view in self.maintainer.views()]

    def subscribeView(self, viewId: str, sinkHandle: str) -> str:
        self.require_active()
        self.maintainer.get_view(viewId)  # raises for unknown views
        return self.SubscribeToNotificationTopic(
            f"view-delta/{viewId}", sinkHandle, 0.0
        )

    def viewStats(self) -> list[str]:
        self.require_active()
        return [f"{k}|{v}" for k, v in sorted(self.maintainer.stats().items())]

    # ---------------------------------------------------------------- SDEs
    def _publish_view_stats(self) -> None:
        self.service_data.set(
            "viewStats",
            [f"{k}|{v}" for k, v in sorted(self.engine.view_stats().items())],
        )

    def FindServiceData(self, queryExpression: str) -> str:
        self._publish_view_stats()
        return super().FindServiceData(queryExpression)
