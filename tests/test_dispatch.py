"""Dispatch core tests: gates, admission control, fairness, counters."""

import threading
import time

import pytest

from repro.ogsi import (
    GRID_SERVICE_PORTTYPE,
    GridEnvironment,
    GridServiceBase,
    client_id_headers,
    is_busy_fault,
)
from repro.ogsi.dispatch import (
    AdmissionController,
    ServiceGate,
    extract_client_id,
    suspend_dispatch,
)
from repro.simnet.reactor import Reactor
from repro.soap.faults import SoapFault
from repro.wsdl.porttype import Operation, Parameter, PortType

ECHO_PORTTYPE = PortType(
    "Echo",
    "urn:echo",
    (
        Operation("ping", (Parameter("payload", "xsd:string"),), "xsd:string"),
        Operation("block", (), "xsd:string"),
    ),
    extends=(GRID_SERVICE_PORTTYPE,),
)


class EchoService(GridServiceBase):
    porttype = ECHO_PORTTYPE

    def __init__(self) -> None:
        super().__init__()
        self.entered = threading.Event()
        self.resume = threading.Event()
        self.calls = 0

    def ping(self, payload: str) -> str:
        self.calls += 1
        return payload

    def block(self) -> str:
        """Hold the dispatch slot until the test releases it."""
        self.entered.set()
        assert self.resume.wait(timeout=10.0), "test never resumed block()"
        self.entered.clear()
        return "unblocked"


def deploy_echo(container, path="services/echo"):
    service = EchoService()
    gsh = container.deploy(path, service)
    return service, gsh


class TestServiceGate:
    def test_reentrant_same_thread(self):
        gate = ServiceGate()
        gate.acquire()
        gate.acquire()
        assert gate.held_by_me()
        gate.release()
        assert gate.held_by_me()
        gate.release()
        assert not gate.held_by_me()

    def test_release_unowned_rejected(self):
        gate = ServiceGate()
        with pytest.raises(RuntimeError):
            gate.release()

    def test_release_save_restores_depth(self):
        gate = ServiceGate()
        gate.acquire()
        gate.acquire()
        depth = gate.release_save()
        assert depth == 2 and not gate.held_by_me()
        gate.acquire_restore(depth)
        assert gate.held_by_me()
        gate.release()
        gate.release()
        assert not gate.held_by_me()

    def test_cross_thread_exclusion(self):
        gate = ServiceGate()
        gate.acquire()
        acquired = threading.Event()

        def contender():
            gate.acquire()
            acquired.set()
            gate.release()

        thread = threading.Thread(target=contender, daemon=True)
        thread.start()
        assert not acquired.wait(timeout=0.1)
        gate.release()
        assert acquired.wait(timeout=2.0)
        thread.join(timeout=2.0)


class TestPerServiceDispatch:
    def test_two_services_dispatch_concurrently(self):
        """The old container lock made this sequence deadlock-by-wait:
        one blocked service froze the whole authority."""
        env = GridEnvironment()
        container = env.create_container("c:1")
        blocker, blocker_gsh = deploy_echo(container, "services/blocker")
        echo, echo_gsh = deploy_echo(container, "services/echo")
        block_stub = env.stub_for_handle(blocker_gsh, ECHO_PORTTYPE)
        echo_stub = env.stub_for_handle(echo_gsh, ECHO_PORTTYPE)

        results: list[str] = []
        t1 = threading.Thread(
            target=lambda: results.append(block_stub.block()), daemon=True
        )
        t1.start()
        assert blocker.entered.wait(timeout=5.0)
        # while services/blocker is mid-dispatch, services/echo still answers
        assert echo_stub.ping("hi") == "hi"
        blocker.resume.set()
        t1.join(timeout=5.0)
        assert results == ["unblocked"]

    def test_same_service_still_serialized(self):
        env = GridEnvironment()
        container = env.create_container("c:1")
        blocker, gsh = deploy_echo(container)
        stub = env.stub_for_handle(gsh, ECHO_PORTTYPE)
        done: list[str] = []
        t1 = threading.Thread(target=lambda: done.append(stub.block()), daemon=True)
        t1.start()
        assert blocker.entered.wait(timeout=5.0)
        t2 = threading.Thread(target=lambda: done.append(stub.ping("x")), daemon=True)
        t2.start()
        time.sleep(0.05)
        assert done == []  # the ping is queued behind the blocked dispatch
        blocker.resume.set()
        t1.join(timeout=5.0)
        t2.join(timeout=5.0)
        assert sorted(done) == ["unblocked", "x"]

    def test_serialize_dispatch_restores_container_lock(self):
        env = GridEnvironment()
        container = env.create_container("c:1", serialize_dispatch=True)
        blocker, blocker_gsh = deploy_echo(container, "services/blocker")
        _, echo_gsh = deploy_echo(container, "services/echo")
        block_stub = env.stub_for_handle(blocker_gsh, ECHO_PORTTYPE)
        echo_stub = env.stub_for_handle(echo_gsh, ECHO_PORTTYPE)
        t1 = threading.Thread(target=block_stub.block, daemon=True)
        t1.start()
        assert blocker.entered.wait(timeout=5.0)
        answered: list[str] = []
        t2 = threading.Thread(
            target=lambda: answered.append(echo_stub.ping("hi")), daemon=True
        )
        t2.start()
        time.sleep(0.05)
        assert answered == []  # legacy mode: whole container serialized
        blocker.resume.set()
        t1.join(timeout=5.0)
        t2.join(timeout=5.0)
        assert answered == ["hi"]

    def test_nested_dispatch_bypasses_admission(self):
        """A service calling a sibling mid-request must not deadlock a
        fully admitted container (admission applies at the ingress only)."""
        env = GridEnvironment()
        container = env.create_container("c:1", max_inflight=1)
        inner, inner_gsh = deploy_echo(container, "services/inner")

        class OuterService(GridServiceBase):
            porttype = ECHO_PORTTYPE

            def ping(self, payload: str) -> str:
                stub = env.stub_for_handle(inner_gsh, ECHO_PORTTYPE)
                return "outer:" + stub.ping(payload)

        outer_gsh = container.deploy("services/outer", OuterService())
        stub = env.stub_for_handle(outer_gsh, ECHO_PORTTYPE)
        assert stub.ping("x") == "outer:x"
        assert inner.calls == 1


class TestAdmissionControl:
    def _saturated(self, max_queue_depth):
        env = GridEnvironment()
        container = env.create_container(
            "c:1", max_inflight=1, max_queue_depth=max_queue_depth
        )
        blocker, gsh = deploy_echo(container)
        stub = env.stub_for_handle(gsh, ECHO_PORTTYPE)
        holder = threading.Thread(target=stub.block, daemon=True)
        holder.start()
        assert blocker.entered.wait(timeout=5.0)
        return env, container, blocker, stub, holder

    def test_shed_when_queue_bound_exceeded(self):
        env, container, blocker, stub, holder = self._saturated(max_queue_depth=0)
        with pytest.raises(SoapFault) as info:
            stub.ping("shed me")
        assert is_busy_fault(info.value)
        assert "busy" in str(info.value)
        assert container.requests_shed == 1
        blocker.resume.set()
        holder.join(timeout=5.0)
        # the blocked call was handled; the shed one was not
        assert container.requests_handled == 1
        assert container.requests_rejected == 0

    def test_queued_request_admitted_after_release(self):
        env, container, blocker, stub, holder = self._saturated(max_queue_depth=4)
        answered: list[str] = []
        waiter = threading.Thread(
            target=lambda: answered.append(stub.ping("queued")), daemon=True
        )
        waiter.start()
        time.sleep(0.05)
        assert container.admission.queued == 1
        assert answered == []
        blocker.resume.set()
        holder.join(timeout=5.0)
        waiter.join(timeout=5.0)
        assert answered == ["queued"]
        assert container.admission.snapshot()["peakQueueDepth"] == 1

    def test_fair_round_robin_across_clients(self):
        """One client queueing three requests cannot starve another
        client's single request: grants alternate round-robin."""
        admission = AdmissionController(max_inflight=1, max_queue_depth=16)
        admission.acquire("holder")  # saturate the one slot
        order: list[str] = []
        order_lock = threading.Lock()
        started: list[threading.Thread] = []

        def request(client):
            admission.acquire(client)
            with order_lock:
                order.append(client)
            admission.release()

        # hog queues 3 requests first, then meek queues 1
        for client in ["hog", "hog", "hog", "meek"]:
            thread = threading.Thread(target=request, args=(client,), daemon=True)
            thread.start()
            started.append(thread)
            time.sleep(0.05)  # deterministic FIFO arrival order
        admission.release()  # free the held slot; grants cascade
        for thread in started:
            thread.join(timeout=5.0)
        # strict FIFO would be hog, hog, hog, meek; fair queueing
        # interleaves meek right after hog's first grant
        assert order == ["hog", "meek", "hog", "hog"]

    def test_client_id_header_names_the_queue(self):
        env = GridEnvironment()
        container = env.create_container("c:1")
        _, gsh = deploy_echo(container)
        stub = env.stub_for_handle(
            gsh, ECHO_PORTTYPE, headers_provider=client_id_headers("alice")
        )
        assert stub.ping("x") == "x"
        assert container.requests_handled == 1

    def test_extract_client_id(self):
        assert extract_client_id(b"<x:clientId>alice</x:clientId>") == "alice"
        assert extract_client_id(b"<clientId>bob</clientId>") == "bob"
        assert extract_client_id(b"<noheader/>") is None

    def test_admission_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=-1)


class TestIngressCounters:
    """Satellite: malformed/unroutable traffic is *rejected*, not handled."""

    @pytest.fixture()
    def wired(self):
        env = GridEnvironment()
        container = env.create_container("c:1")
        service, gsh = deploy_echo(container)
        return env, container, service, gsh

    def test_malformed_envelope_counts_rejected(self, wired):
        env, container, _, _ = wired
        response = env.transport.send("http://c:1/services/echo", b"not xml at all")
        assert b"Fault" in response
        assert container.requests_rejected == 1
        assert container.requests_handled == 0

    def test_unroutable_path_counts_rejected(self, wired):
        env, container, _, gsh = wired
        stub = env.stub_for_endpoint("http://c:1/services/nowhere", ECHO_PORTTYPE)
        with pytest.raises(SoapFault, match="no service"):
            stub.ping("x")
        assert container.requests_rejected == 1
        assert container.requests_handled == 0

    def test_unknown_operation_counts_rejected(self, wired):
        env, container, _, gsh = wired
        bare = env.stub_for_handle(gsh, GRID_SERVICE_PORTTYPE)
        # craft a call the Echo PortType does not declare
        from repro.soap.rpc import encode_request

        request = encode_request("urn:echo", "noSuchOp", [], None)
        response = env.transport.send(gsh.endpoint_url(), request)
        assert b"Fault" in response
        assert container.requests_rejected == 1
        assert container.requests_handled == 0
        assert bare is not None

    def test_service_fault_still_counts_handled(self, wired):
        env, container, service, gsh = wired

        def explode(payload):
            raise RuntimeError("inner failure")

        service.ping = explode
        stub = env.stub_for_handle(gsh, ECHO_PORTTYPE)
        with pytest.raises(SoapFault, match="inner failure"):
            stub.ping("x")
        assert container.requests_handled == 1
        assert container.requests_rejected == 0

    def test_stats_snapshot_keys(self, wired):
        _, container, _, _ = wired
        stats = container.stats()
        for key in (
            "requestsHandled",
            "requestsRejected",
            "requestsShed",
            "inflight",
            "queueDepth",
            "peakInflight",
            "peakQueueDepth",
            "services",
        ):
            assert key in stats


class TestContainerMonitor:
    def test_monitor_publishes_counter_sdes(self):
        env = GridEnvironment()
        container = env.create_container("c:1")
        _, gsh = deploy_echo(container)
        monitor_gsh = container.deploy_monitor()
        stub = env.stub_for_handle(gsh, ECHO_PORTTYPE)
        stub.ping("x")
        mon = env.stub_for_handle(monitor_gsh, GRID_SERVICE_PORTTYPE)
        xml = mon.FindServiceData("requestsHandled")
        # the echo ping plus this FindServiceData dispatch itself
        assert "<value>2</value>" in xml

    def test_monitor_reports_shed_requests(self):
        env = GridEnvironment()
        container = env.create_container("c:1", max_inflight=1, max_queue_depth=0)
        blocker, gsh = deploy_echo(container)
        monitor_gsh = container.deploy_monitor()
        stub = env.stub_for_handle(gsh, ECHO_PORTTYPE)
        holder = threading.Thread(target=stub.block, daemon=True)
        holder.start()
        assert blocker.entered.wait(timeout=5.0)
        with pytest.raises(SoapFault):
            stub.ping("shed")
        blocker.resume.set()
        holder.join(timeout=5.0)
        from repro.ogsi.monitor import ContainerMonitorService

        monitor = container.service_at(monitor_gsh.path)
        assert isinstance(monitor, ContainerMonitorService)
        records = dict(r.split("=", 1) for r in monitor.getContainerStats())
        assert records["requestsShed"] == "1"
        assert records["requestsHandled"] == "1"

    def test_get_container_stats_over_soap(self):
        env = GridEnvironment()
        container = env.create_container("c:1")
        monitor_gsh = container.deploy_monitor()
        from repro.ogsi.monitor import CONTAINER_MONITOR_PORTTYPE

        stub = env.stub_for_handle(monitor_gsh, CONTAINER_MONITOR_PORTTYPE)
        records = stub.getContainerStats()
        assert any(r.startswith("requestsHandled=") for r in records)


class TestSuspendDispatch:
    def test_suspend_outside_dispatch_is_noop(self):
        with suspend_dispatch():
            pass  # nothing held, nothing to release

    def test_gate_released_during_suspend(self):
        env = GridEnvironment()
        container = env.create_container("c:1")
        observed: list[bool] = []

        class Suspender(GridServiceBase):
            porttype = ECHO_PORTTYPE

            def ping(self, payload: str) -> str:
                gate = container._core.gate_for("services/susp")
                with suspend_dispatch():
                    observed.append(gate.held_by_me())
                observed.append(gate.held_by_me())
                return payload

        gsh = container.deploy("services/susp", Suspender())
        stub = env.stub_for_handle(gsh, ECHO_PORTTYPE)
        assert stub.ping("x") == "x"
        assert observed == [False, True]


class TestReactor:
    def test_call_soon_runs_in_order(self):
        reactor = Reactor()
        seen: list[int] = []
        for i in range(5):
            reactor.call_soon(seen.append, i)
        assert reactor.drain(timeout=5.0)
        assert seen == [0, 1, 2, 3, 4]
        reactor.shutdown()

    def test_call_later_delays(self):
        reactor = Reactor()
        seen: list[str] = []
        reactor.call_later(0.05, seen.append, "later")
        reactor.call_soon(seen.append, "soon")
        assert reactor.drain(timeout=5.0)
        assert seen[0] == "soon"
        time.sleep(0.08)
        assert reactor.drain(timeout=5.0)
        assert seen == ["soon", "later"]
        reactor.shutdown()

    def test_call_every_repeats_until_cancelled(self):
        reactor = Reactor()
        seen: list[float] = []
        task = reactor.call_every(0.01, lambda: seen.append(time.monotonic()))
        time.sleep(0.08)
        task.cancel()
        count = len(seen)
        assert count >= 2
        time.sleep(0.05)
        assert len(seen) <= count + 1  # at most one already-queued tick
        reactor.shutdown()

    def test_task_failure_does_not_kill_reactor(self):
        reactor = Reactor()

        def boom():
            raise RuntimeError("task exploded")

        seen: list[str] = []
        reactor.call_soon(boom)
        reactor.call_soon(seen.append, "alive")
        assert reactor.drain(timeout=5.0)
        assert seen == ["alive"]
        assert reactor.task_failures == 1
        reactor.shutdown()

    def test_shutdown_rejects_new_work(self):
        reactor = Reactor()
        reactor.call_soon(lambda: None)
        reactor.drain(timeout=5.0)
        reactor.shutdown()
        with pytest.raises(RuntimeError):
            reactor.call_soon(lambda: None)

    def test_environment_sweeper_runs_on_reactor(self):
        from repro.simnet.clock import VirtualClock

        env = GridEnvironment(clock=VirtualClock())
        container = env.create_container("c:1")
        service, _ = deploy_echo(container)
        service.termination_time = 5.0
        env.clock.advance(10.0)
        env.start_sweeper(interval=0.01)
        deadline = time.monotonic() + 5.0
        while container.service_count() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert container.service_count() == 0
        env.close()
