"""Multi-execution comparison analysis (the PPerfDB integration, §7).

The thesis's parent project, PPerfDB, does "multi-execution performance
tuning": quantifying how performance changes across runs as code,
process counts, or platforms change.  PPerfGrid's role is to feed it
uniform data from heterogeneous stores.  This module provides that
analysis layer over any set of Execution bindings (remote, local-bypass,
or mixed):

* :func:`collect_metric` — gather one metric across executions into an
  aligned table keyed by focus;
* :func:`compare_executions` — per-focus deltas/ratios between two runs;
* :func:`scaling_study` — how a metric scales with an attribute (e.g.
  gflops vs numprocs), with parallel efficiency;
* :func:`aggregate_by_focus` — roll raw trace PRs (one per interval) up
  to per-focus totals so trace stores compare against profile stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.semantic import UNDEFINED_TYPE, PerformanceResult


@dataclass
class MetricTable:
    """One metric across N executions: execution label -> focus -> value."""

    metric: str
    #: per execution label: focus -> aggregated value
    by_execution: dict[str, dict[str, float]] = field(default_factory=dict)

    def labels(self) -> list[str]:
        return list(self.by_execution)

    def foci(self) -> list[str]:
        out: set[str] = set()
        for per_focus in self.by_execution.values():
            out.update(per_focus)
        return sorted(out)

    def value(self, label: str, focus: str) -> float | None:
        return self.by_execution.get(label, {}).get(focus)

    def column(self, focus: str) -> dict[str, float]:
        """focus -> {label: value} slice."""
        return {
            label: per_focus[focus]
            for label, per_focus in self.by_execution.items()
            if focus in per_focus
        }


def aggregate_by_focus(results: list[PerformanceResult]) -> dict[str, float]:
    """Sum PR values per focus.

    Trace-granularity stores (SMG98) return one PR per interval; profile
    stores (HPL) return one per focus.  Summing makes both comparable —
    ``time_spent`` intervals sum to total time, ``func_calls`` per-rank
    counts sum to totals, scalars pass through.
    """
    totals: dict[str, float] = {}
    for result in results:
        # Collapse trace sub-foci (e.g. ".../rank/3") onto their parent
        # only when the focus ends in a numeric leaf under a known split.
        focus = result.focus
        totals[focus] = totals.get(focus, 0.0) + result.value
    return totals


def collect_metric(
    executions: list,
    metric: str,
    foci: list[str],
    result_type: str = UNDEFINED_TYPE,
    label_attribute: str | None = None,
) -> MetricTable:
    """Query *metric* over *foci* on every execution and align by focus.

    ``label_attribute``: an execution-info attribute to label rows with
    (e.g. ``"numprocs"``); defaults to the execution GSH.  Duplicate
    labels get a ``#n`` suffix so repeated runs stay distinguishable.
    """
    table = MetricTable(metric=metric)
    seen_labels: dict[str, int] = {}
    for execution in executions:
        if label_attribute is not None:
            label = execution.info().get(label_attribute, execution.gsh)
        else:
            label = execution.gsh
        count = seen_labels.get(label, 0)
        seen_labels[label] = count + 1
        if count:
            label = f"{label}#{count + 1}"
        results = execution.get_pr(metric, foci, result_type=result_type)
        table.by_execution[label] = aggregate_by_focus(results)
    return table


@dataclass
class FocusComparison:
    """One focus compared between a baseline and a candidate run."""

    focus: str
    baseline: float | None
    candidate: float | None

    @property
    def delta(self) -> float | None:
        if self.baseline is None or self.candidate is None:
            return None
        return self.candidate - self.baseline

    @property
    def ratio(self) -> float | None:
        if self.baseline in (None, 0.0) or self.candidate is None:
            return None
        return self.candidate / self.baseline  # type: ignore[operator]


@dataclass
class ExecutionComparison:
    """Per-focus comparison of two executions on one metric."""

    metric: str
    rows: list[FocusComparison]

    def regressions(self, threshold: float = 1.05) -> list[FocusComparison]:
        """Foci where the candidate is at least *threshold*x the baseline.

        For time-like metrics bigger is worse, so these are regressions;
        callers comparing rate-like metrics should use :meth:`improvements`.
        """
        return [r for r in self.rows if r.ratio is not None and r.ratio >= threshold]

    def improvements(self, threshold: float = 0.95) -> list[FocusComparison]:
        return [r for r in self.rows if r.ratio is not None and r.ratio <= threshold]

    def only_in_baseline(self) -> list[str]:
        return [r.focus for r in self.rows if r.candidate is None and r.baseline is not None]

    def only_in_candidate(self) -> list[str]:
        return [r.focus for r in self.rows if r.baseline is None and r.candidate is not None]

    def to_table(self) -> str:
        from repro.analysis.tables import format_table

        rows = []
        for r in sorted(
            self.rows, key=lambda r: -(r.ratio if r.ratio is not None else 0.0)
        ):
            rows.append(
                [
                    r.focus,
                    "-" if r.baseline is None else f"{r.baseline:.6g}",
                    "-" if r.candidate is None else f"{r.candidate:.6g}",
                    "-" if r.ratio is None else f"{r.ratio:.3f}x",
                ]
            )
        return format_table(
            ["Focus", "Baseline", "Candidate", "Ratio"],
            rows,
            title=f"Execution comparison: {self.metric}",
        )


def compare_executions(
    baseline,
    candidate,
    metric: str,
    foci: list[str],
    result_type: str = UNDEFINED_TYPE,
) -> ExecutionComparison:
    """Compare one metric between two executions, focus by focus.

    The two executions may live in different stores with different
    formats — PPerfGrid's uniform view is what makes this one call.
    """
    base = aggregate_by_focus(baseline.get_pr(metric, foci, result_type=result_type))
    cand = aggregate_by_focus(candidate.get_pr(metric, foci, result_type=result_type))
    rows = [
        FocusComparison(focus, base.get(focus), cand.get(focus))
        for focus in sorted(set(base) | set(cand))
    ]
    return ExecutionComparison(metric=metric, rows=rows)


@dataclass
class ScalingPoint:
    attribute_value: float
    metric_value: float
    speedup: float
    efficiency: float


@dataclass
class ScalingStudy:
    metric: str
    attribute: str
    points: list[ScalingPoint]

    def to_table(self) -> str:
        from repro.analysis.tables import format_table

        rows = [
            [p.attribute_value, p.metric_value, f"{p.speedup:.2f}", f"{p.efficiency:.1%}"]
            for p in self.points
        ]
        return format_table(
            [self.attribute, self.metric, "Speedup", "Efficiency"],
            rows,
            title=f"Scaling study: {self.metric} vs {self.attribute}",
        )


def scaling_study(
    executions: list,
    metric: str,
    foci: list[str],
    attribute: str,
    higher_is_better: bool = True,
    result_type: str = UNDEFINED_TYPE,
) -> ScalingStudy:
    """How *metric* scales with a numeric execution attribute.

    Multiple executions at the same attribute value are averaged.
    Speedup is relative to the smallest attribute value; efficiency is
    speedup / (attribute ratio) — the standard parallel-efficiency
    definition when the attribute is a process count.
    """
    buckets: dict[float, list[float]] = {}
    for execution in executions:
        info = execution.info()
        if attribute not in info:
            raise KeyError(f"execution {execution.gsh} has no attribute {attribute!r}")
        attr_value = float(info[attribute])
        totals = aggregate_by_focus(execution.get_pr(metric, foci, result_type=result_type))
        if not totals:
            continue
        buckets.setdefault(attr_value, []).append(sum(totals.values()))
    if not buckets:
        raise ValueError(f"no data for metric {metric!r} over {foci}")
    points: list[ScalingPoint] = []
    base_attr = min(buckets)
    base_value = sum(buckets[base_attr]) / len(buckets[base_attr])
    for attr_value in sorted(buckets):
        value = sum(buckets[attr_value]) / len(buckets[attr_value])
        if higher_is_better:
            speedup = value / base_value if base_value else 0.0
        else:
            speedup = base_value / value if value else 0.0
        ratio = attr_value / base_attr if base_attr else 1.0
        points.append(
            ScalingPoint(
                attribute_value=attr_value,
                metric_value=value,
                speedup=speedup,
                efficiency=speedup / ratio if ratio else 0.0,
            )
        )
    return ScalingStudy(metric=metric, attribute=attribute, points=points)
