"""Parser for the federated query language.

Grammar (keywords are case-insensitive; identifiers and literals are
case-sensitive):

.. code-block:: text

    query     := SELECT items [FROM sources] [WHERE conj]
                 [GROUP BY keys] [ORDER BY ident [ASC|DESC]] [LIMIT int]
    items     := item ("," item)*
    item      := ident | func "(" ident ")"
    func      := count | sum | mean | min | max
    sources   := ident ("," ident)*
    conj      := pred (AND pred)*
    pred      := ident op literal | ident IN "(" literal ("," literal)* ")"
    op        := "=" | "!=" | "<" | "<=" | ">" | ">="
    keys      := ident ("," ident)*
    literal   := 'quoted string' | number | ident

Identifiers may contain ``.``, ``-``, ``/`` and ``:`` after the first
character so application names (``PRESTA-RMA``), metric names
(``msg_deliv_time``) and focus paths can be written without quotes;
anything else (spaces, leading digits) needs single quotes.
"""

from __future__ import annotations

from repro.fedquery.ast import AGG_FUNCS, Predicate, Query, QueryError, SelectItem

_KEYWORDS = frozenset(
    {"select", "from", "where", "and", "group", "by", "order", "asc", "desc", "limit", "in"}
)
_OPERATOR_CHARS = "=!<>"
_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_/"
)
_IDENT_TAIL = _IDENT_START | frozenset("0123456789.-:")


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str) -> None:
        self.kind = kind  # ident | string | number | op | punct | end
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch == "'":
            j = text.find("'", i + 1)
            if j < 0:
                raise QueryError(f"unterminated string at offset {i}")
            tokens.append(_Token("string", text[i + 1 : j]))
            i = j + 1
        elif ch in "(),*":
            tokens.append(_Token("punct", ch))
            i += 1
        elif ch in _OPERATOR_CHARS:
            j = i + 1
            if j < n and text[j] == "=":
                j += 1
            op = text[i:j]
            if op not in ("=", "!=", "<", "<=", ">", ">="):
                raise QueryError(f"bad operator {op!r} at offset {i}")
            tokens.append(_Token("op", op))
            i = j
        elif ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] in ".eE+-"):
                # stop a trailing +/- that isn't an exponent sign
                if text[j] in "+-" and text[j - 1] not in "eE":
                    break
                j += 1
            number = text[i:j]
            try:
                float(number)
            except ValueError as exc:
                raise QueryError(f"bad number {number!r} at offset {i}") from exc
            tokens.append(_Token("number", number))
            i = j
        elif ch in _IDENT_START:
            j = i + 1
            while j < n and text[j] in _IDENT_TAIL:
                j += 1
            tokens.append(_Token("ident", text[i:j]))
            i = j
        else:
            raise QueryError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(_Token("end", ""))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------ helpers
    @property
    def current(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def at_keyword(self, word: str) -> bool:
        token = self.current
        return token.kind == "ident" and token.text.lower() == word

    def eat_keyword(self, word: str) -> None:
        if not self.at_keyword(word):
            raise QueryError(f"expected {word.upper()}, got {self.current.text!r}")
        self.advance()

    def eat_punct(self, ch: str) -> None:
        if not (self.current.kind == "punct" and self.current.text == ch):
            raise QueryError(f"expected {ch!r}, got {self.current.text!r}")
        self.advance()

    def eat_ident(self, what: str) -> str:
        token = self.current
        if token.kind != "ident" or token.text.lower() in _KEYWORDS:
            raise QueryError(f"expected {what}, got {token.text!r}")
        self.advance()
        return token.text

    def eat_literal(self) -> str:
        token = self.current
        if token.kind in ("string", "number"):
            self.advance()
            return token.text
        if token.kind == "ident" and token.text.lower() not in _KEYWORDS:
            self.advance()
            return token.text
        raise QueryError(f"expected a literal, got {token.text!r}")

    # ------------------------------------------------------------ grammar
    def parse(self) -> Query:
        self.eat_keyword("select")
        select = self._select_items()
        sources: tuple[str, ...] = ()
        if self.at_keyword("from"):
            self.advance()
            sources = self._ident_list("source name")
        where: tuple[Predicate, ...] = ()
        if self.at_keyword("where"):
            self.advance()
            where = self._conjunction()
        group_by: tuple[str, ...] = ()
        if self.at_keyword("group"):
            self.advance()
            self.eat_keyword("by")
            group_by = self._ident_list("group key")
        order_by: str | None = None
        order_desc = False
        if self.at_keyword("order"):
            self.advance()
            self.eat_keyword("by")
            token = self.current
            if token.kind != "ident":
                raise QueryError(f"expected ORDER BY column, got {token.text!r}")
            self.advance()
            order_by = token.text
            # allow ORDER BY count(x): label syntax re-assembled from tokens
            if self.current.kind == "punct" and self.current.text == "(":
                self.advance()
                inner = self.eat_ident("metric name")
                self.eat_punct(")")
                order_by = f"{order_by}({inner})"
            if self.at_keyword("asc"):
                self.advance()
            elif self.at_keyword("desc"):
                self.advance()
                order_desc = True
        limit: int | None = None
        if self.at_keyword("limit"):
            self.advance()
            token = self.current
            if token.kind != "number" or not token.text.isdigit():
                raise QueryError(f"expected LIMIT integer, got {token.text!r}")
            self.advance()
            limit = int(token.text)
        if self.current.kind != "end":
            raise QueryError(f"unexpected trailing input {self.current.text!r}")
        return Query(
            select=select,
            sources=sources,
            where=where,
            group_by=group_by,
            order_by=order_by,
            order_desc=order_desc,
            limit=limit,
        ).validate()

    def _select_items(self) -> tuple[SelectItem, ...]:
        items = [self._select_item()]
        while self.current.kind == "punct" and self.current.text == ",":
            self.advance()
            items.append(self._select_item())
        return tuple(items)

    def _select_item(self) -> SelectItem:
        name = self.eat_ident("metric or aggregate")
        if self.current.kind == "punct" and self.current.text == "(":
            func = name.lower()
            if func not in AGG_FUNCS:
                raise QueryError(
                    f"unknown aggregate function {name!r} "
                    f"(expected one of {', '.join(AGG_FUNCS)})"
                )
            self.advance()
            metric = self.eat_ident("metric name")
            self.eat_punct(")")
            return SelectItem(metric=metric, func=func)
        return SelectItem(metric=name)

    def _ident_list(self, what: str) -> tuple[str, ...]:
        names = [self.eat_ident(what)]
        while self.current.kind == "punct" and self.current.text == ",":
            self.advance()
            names.append(self.eat_ident(what))
        return tuple(names)

    def _conjunction(self) -> tuple[Predicate, ...]:
        preds = [self._predicate()]
        while self.at_keyword("and"):
            self.advance()
            preds.append(self._predicate())
        return tuple(preds)

    def _predicate(self) -> Predicate:
        field = self.eat_ident("predicate field")
        token = self.current
        if token.kind == "ident" and token.text.lower() == "in":
            self.advance()
            self.eat_punct("(")
            values = [self.eat_literal()]
            while self.current.kind == "punct" and self.current.text == ",":
                self.advance()
                values.append(self.eat_literal())
            self.eat_punct(")")
            return Predicate(field=field, op="in", value=tuple(values))
        if token.kind != "op":
            raise QueryError(f"expected comparison after {field!r}, got {token.text!r}")
        self.advance()
        return Predicate(field=field, op=token.text, value=self.eat_literal())


def parse_query(text: str) -> Query:
    """Parse and validate query *text*, raising :class:`QueryError` on issues."""
    if not text or not text.strip():
        raise QueryError("empty query")
    return _Parser(text).parse()
