"""Element-tree document model with namespace support.

The model is deliberately small: elements, attributes, text, and namespace
declarations.  Processing instructions and doctypes are not needed by SOAP
1.1 / WSDL 1.1 payloads and are rejected by the parser (comments are
skipped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class QName:
    """A qualified XML name: ``{namespace-uri}local``.

    ``namespace`` may be ``""`` for names in no namespace.
    """

    namespace: str
    local: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        if self.namespace:
            return "{%s}%s" % (self.namespace, self.local)
        return self.local

    @staticmethod
    def parse(text: str) -> "QName":
        """Parse Clark notation (``{uri}local``) or a bare local name."""
        if text.startswith("{"):
            uri, _, local = text[1:].partition("}")
            return QName(uri, local)
        return QName("", text)


class Element:
    """A mutable XML element.

    Children are either ``Element`` instances or ``str`` text chunks, kept
    in document order.  Attribute keys and the tag are :class:`QName`.

    Namespace *declarations* (``xmlns`` / ``xmlns:p``) are stored separately
    in :attr:`nsdecls` (prefix -> uri, ``""`` for the default namespace) so
    the writer can round-trip prefixes chosen by the caller or the parser.
    """

    __slots__ = ("tag", "attrs", "children", "nsdecls")

    def __init__(
        self,
        tag: QName | str,
        attrs: dict[QName, str] | None = None,
        children: Iterable["Element | str"] | None = None,
        nsdecls: dict[str, str] | None = None,
    ) -> None:
        self.tag = tag if isinstance(tag, QName) else QName.parse(tag)
        self.attrs: dict[QName, str] = dict(attrs or {})
        self.children: list[Element | str] = list(children or [])
        self.nsdecls: dict[str, str] = dict(nsdecls or {})

    # ------------------------------------------------------------- building
    def append(self, child: "Element | str") -> "Element":
        """Append a child; returns the child for chaining when an Element."""
        self.children.append(child)
        return child if isinstance(child, Element) else self

    def subelement(self, tag: QName | str, text: str | None = None) -> "Element":
        """Create, append, and return a child element (optionally with text)."""
        el = Element(tag)
        if text is not None:
            el.children.append(text)
        self.children.append(el)
        return el

    def set(self, name: QName | str, value: str) -> None:
        key = name if isinstance(name, QName) else QName.parse(name)
        self.attrs[key] = value

    def get(self, name: QName | str, default: str | None = None) -> str | None:
        key = name if isinstance(name, QName) else QName.parse(name)
        return self.attrs.get(key, default)

    def declare(self, prefix: str, uri: str) -> None:
        """Declare a namespace prefix on this element (``""`` = default ns)."""
        self.nsdecls[prefix] = uri

    # ------------------------------------------------------------ traversal
    def iter_elements(self) -> Iterator["Element"]:
        """Yield direct element children (text chunks skipped)."""
        for child in self.children:
            if isinstance(child, Element):
                yield child

    def iter_all(self) -> Iterator["Element"]:
        """Depth-first pre-order walk over this element and all descendants."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter_all()

    def find(self, tag: QName | str) -> "Element | None":
        """First direct child with the given tag, or ``None``.

        A bare local name matches regardless of namespace; a :class:`QName`
        (or Clark notation containing ``{``) matches exactly.
        """
        want = tag if isinstance(tag, QName) else QName.parse(tag)
        match_any_ns = not isinstance(tag, QName) and "{" not in str(tag)
        for child in self.iter_elements():
            if child.tag == want or (match_any_ns and child.tag.local == want.local):
                return child
        return None

    def findall(self, tag: QName | str) -> list["Element"]:
        """All direct children with the given tag (see :meth:`find`)."""
        want = tag if isinstance(tag, QName) else QName.parse(tag)
        match_any_ns = not isinstance(tag, QName) and "{" not in str(tag)
        out = []
        for child in self.iter_elements():
            if child.tag == want or (match_any_ns and child.tag.local == want.local):
                out.append(child)
        return out

    def text(self) -> str:
        """Concatenated text of this element's *direct* text children."""
        return "".join(c for c in self.children if isinstance(c, str))

    def all_text(self) -> str:
        """Concatenated text of this element and all descendants."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, str):
                parts.append(child)
            else:
                parts.append(child.all_text())
        return "".join(parts)

    # ------------------------------------------------------------- equality
    def structurally_equal(self, other: "Element") -> bool:
        """Deep equality on tag, attrs, and normalized children.

        Text chunks are compared after merging adjacent runs so that parse
        artifacts (entity splits) do not break round-trip comparisons.
        Namespace *declarations* are ignored: they affect serialization
        prefixes, not infoset identity.
        """
        if self.tag != other.tag or self.attrs != other.attrs:
            return False
        a, b = _normalized_children(self), _normalized_children(other)
        if len(a) != len(b):
            return False
        for ca, cb in zip(a, b):
            if isinstance(ca, str) != isinstance(cb, str):
                return False
            if isinstance(ca, str):
                if ca != cb:
                    return False
            elif not ca.structurally_equal(cb):  # type: ignore[union-attr]
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.tag} attrs={len(self.attrs)} children={len(self.children)}>"


def _normalized_children(el: Element) -> list[Element | str]:
    """Merge adjacent text chunks and drop whitespace-only text between elements."""
    merged: list[Element | str] = []
    for child in el.children:
        if isinstance(child, str) and not child:
            continue  # empty text chunks are not part of the infoset
        if isinstance(child, str) and merged and isinstance(merged[-1], str):
            merged[-1] = merged[-1] + child
        else:
            merged.append(child)
    has_elements = any(isinstance(c, Element) for c in merged)
    if has_elements:
        merged = [c for c in merged if not (isinstance(c, str) and not c.strip())]
    return merged


class Document:
    """An XML document: declaration metadata plus a single root element."""

    __slots__ = ("root", "version", "encoding")

    def __init__(self, root: Element, version: str = "1.0", encoding: str = "utf-8") -> None:
        self.root = root
        self.version = version
        self.encoding = encoding

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Document root={self.root.tag}>"
