"""Text-file wrapper: PRESTA RMA in flat ASCII files (thesis §5.1/§6.1).

Every ``get_pr`` re-parses the execution's file through the custom parser
— the Data-Layer cost Table 4 measures for RMA.  Header-only reads keep
attribute discovery cheap, as the thesis's Java parser did.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.semantic import (
    UNDEFINED_TYPE,
    MetricStats,
    PerformanceResult,
    StoreStats,
)
from repro.datastores.textfiles import TextFileStore, TextStoreError
from repro.mapping.base import (
    ApplicationWrapper,
    ExecutionWrapper,
    MappingError,
    compare_attribute,
)

_HEADER_TO_ATTR = {
    "rundate": "rundate",
    "numprocs": "numprocs",
    "tasks_per_node": "tasks_per_node",
    "network": "network",
}


class PrestaTextWrapper(ApplicationWrapper):
    """PRESTA RMA over a :class:`TextFileStore`."""

    result_type = "presta"
    ATTRIBUTES = ("rundate", "numprocs", "tasks_per_node", "network")
    METRICS = ("latency_us", "bandwidth_mbps")

    def __init__(self, store: TextFileStore) -> None:
        self.store = store

    def get_app_info(self) -> list[tuple[str, str]]:
        return [
            ("name", "PRESTA-RMA"),
            (
                "description",
                "PRESTA MPI Bandwidth and Latency Benchmark - MPI-2 RMA/one-sided "
                "operations (flat ASCII text files)",
            ),
            ("executions", str(len(self.store.execution_ids()))),
        ]

    def get_exec_query_params(self) -> dict[str, list[str]]:
        values: dict[str, set[str]] = {attr: set() for attr in self.ATTRIBUTES}
        for execid in self.store.execution_ids():
            header = self.store.load_header_only(execid)
            for key, attr in _HEADER_TO_ATTR.items():
                if key in header:
                    values[attr].add(header[key])
        return {attr: sorted(vals) for attr, vals in values.items()}

    def get_all_exec_ids(self) -> list[str]:
        return [str(i) for i in self.store.execution_ids()]

    def get_exec_ids(self, attribute: str, value: str, operator: str = "=") -> list[str]:
        self.check_operator(operator)
        attr = attribute.lower()
        if attr == "execid":
            return [
                str(i)
                for i in self.store.execution_ids()
                if compare_attribute(str(i), value, operator)
            ]
        if attr not in self.ATTRIBUTES:
            raise MappingError(f"unknown attribute {attribute!r} for PRESTA")
        out: list[str] = []
        for execid in self.store.execution_ids():
            header = self.store.load_header_only(execid)
            stored = header.get(attr)
            if stored is not None and compare_attribute(stored, value, operator):
                out.append(str(execid))
        return out

    def execution(self, exec_id: str) -> "PrestaTextExecutionWrapper":
        try:
            execid = int(exec_id)
        except ValueError as exc:
            raise MappingError(f"bad PRESTA execution id {exec_id!r}") from exc
        if not self.store.has_execution(execid):
            raise MappingError(f"no PRESTA execution {exec_id!r}")
        return PrestaTextExecutionWrapper(self.store, execid)

    def get_stats(self) -> StoreStats:
        """One parse per file (the cheapest this Data Layer offers)."""
        from dataclasses import replace

        merged = StoreStats.merge(
            [_presta_text_stats(self.store, execid) for execid in self.store.execution_ids()]
        )
        return replace(merged, distincts=self.attribute_distincts())


def _presta_text_stats(store: TextFileStore, execid: int) -> StoreStats:
    """Exact per-execution stats from one file parse.

    ``get_pr`` renders one result per measurement row per metric, so the
    row count is the measurement count and ranges are exact column
    min/max — and the measurement columns are the complete row sets the
    per-metric sketches require.  Stats foci are the query foci
    (``/Op/<op>``), matching ``get_foci``, not the per-msgsize result
    foci.
    """
    from repro.fedquery.sketch import distincts_from_values, sketches_from_values

    execution = store.load(execid)
    latencies = [float(row[3]) for row in execution.measurements]
    bandwidths = [float(row[4]) for row in execution.measurements]
    rows = len(execution.measurements)
    metrics = tuple(
        MetricStats(
            metric=metric,
            rows=rows,
            minimum=min(values) if values else 0.0,
            maximum=max(values) if values else 0.0,
        )
        for metric, values in (("bandwidth_mbps", bandwidths), ("latency_us", latencies))
    )
    ops = sorted({row[0] for row in execution.measurements})
    return StoreStats(
        executions=1,
        start=execution.start_time,
        end=execution.end_time,
        foci=tuple(f"/Op/{op}" for op in ops),
        types=(PrestaTextWrapper.result_type,),
        metrics=metrics,
        sketches=sketches_from_values(
            {"bandwidth_mbps": bandwidths, "latency_us": latencies}
        ),
        distincts=distincts_from_values({"exec": [str(execid)]}),
    )


class PrestaTextExecutionWrapper(ExecutionWrapper):
    """One PRESTA run; parses the text file on each data query."""

    def __init__(self, store: TextFileStore, execid: int) -> None:
        self.store = store
        self.execid = execid

    def get_info(self) -> list[tuple[str, str]]:
        header = self.store.load_header_only(self.execid)
        return [(key, value) for key, value in sorted(header.items())]

    def get_foci(self) -> list[str]:
        execution = self.store.load(self.execid)
        ops = sorted({m[0] for m in execution.measurements})
        return [f"/Op/{op}" for op in ops]

    def get_metrics(self) -> list[str]:
        return sorted(PrestaTextWrapper.METRICS)

    def get_types(self) -> list[str]:
        return [PrestaTextWrapper.result_type]

    def get_time_start_end(self) -> tuple[float, float]:
        header = self.store.load_header_only(self.execid)
        try:
            return (float(header["start"]), float(header["end"]))
        except (KeyError, ValueError) as exc:
            raise MappingError(f"execution {self.execid} has a bad time header") from exc

    def get_pr(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
    ) -> list[PerformanceResult]:
        if result_type not in (UNDEFINED_TYPE, "", PrestaTextWrapper.result_type):
            return []
        if metric not in PrestaTextWrapper.METRICS:
            raise MappingError(f"unknown PRESTA metric {metric!r}")
        try:
            execution = self.store.load(self.execid)  # the per-query parse
        except TextStoreError as exc:
            raise MappingError(str(exc)) from exc
        lo = max(execution.start_time, start)
        hi = execution.end_time if end <= 0 else min(execution.end_time, end)
        metric_index = 3 if metric == "latency_us" else 4
        results: list[PerformanceResult] = []
        for focus in foci:
            if not focus.startswith("/Op/"):
                raise MappingError(f"unknown PRESTA focus {focus!r}")
            op = focus[len("/Op/") :]
            for row in execution.measurements:
                if row[0] != op:
                    continue
                results.append(
                    PerformanceResult(
                        metric,
                        f"{focus}/msgsize/{row[1]}",
                        "presta",
                        lo,
                        hi,
                        float(row[metric_index]),
                    )
                )
        return results

    def iter_pr(
        self,
        metric: str,
        foci: list[str],
        start: float,
        end: float,
        result_type: str,
    ) -> Iterator[PerformanceResult]:
        """Lazy variant of :meth:`get_pr`, identical filter and order.

        The file parse is unavoidable (the store is a flat ASCII file),
        but results are rendered per row instead of materialized, so a
        streaming cursor holds the parsed measurements plus one chunk —
        not a second full PerformanceResult list.
        """
        if result_type not in (UNDEFINED_TYPE, "", PrestaTextWrapper.result_type):
            return
        if metric not in PrestaTextWrapper.METRICS:
            raise MappingError(f"unknown PRESTA metric {metric!r}")
        try:
            execution = self.store.load(self.execid)
        except TextStoreError as exc:
            raise MappingError(str(exc)) from exc
        lo = max(execution.start_time, start)
        hi = execution.end_time if end <= 0 else min(execution.end_time, end)
        metric_index = 3 if metric == "latency_us" else 4
        for focus in foci:
            if not focus.startswith("/Op/"):
                raise MappingError(f"unknown PRESTA focus {focus!r}")
            op = focus[len("/Op/") :]
            for row in execution.measurements:
                if row[0] != op:
                    continue
                yield PerformanceResult(
                    metric,
                    f"{focus}/msgsize/{row[1]}",
                    "presta",
                    lo,
                    hi,
                    float(row[metric_index]),
                )

    def get_stats(self) -> StoreStats:
        """Per-execution stats from one file parse."""
        return _presta_text_stats(self.store, self.execid)
